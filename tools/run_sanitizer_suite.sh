#!/usr/bin/env bash
# Sanitizer job for the observability layer (DESIGN.md §8).
#
# Builds the tree twice — once under ThreadSanitizer, once under UBSan — and runs the
# test selections that exercise the new instrumentation hot paths:
#   - `ctest -L trace`  : the observability suite (conservation invariants, churn
#                         recounts, golden --explain output),
#   - `ctest -R tuner`  : the tuner, whose ParallelFor profiling now calls Attribute()
#                         concurrently from worker threads (the one genuinely
#                         multi-threaded consumer of the span/report machinery),
#   - `ctest -L lint`   : the static plan linter (DESIGN.md §9), whose bitset
#                         reachability and access-map passes index heavily into
#                         per-task state — exactly where UBSan catches drift.
#   - `ctest -L chaos`  : the degraded-mode resilience suite + chaos harness
#                         (DESIGN.md §11) — retry re-issue on the simulator clock and
#                         the elastic coordinator under seeded random fault plans at
#                         several thread counts, the newest multi-threaded hot path.
#   - `ctest -L cluster`: the multi-server scale-out tier (DESIGN.md §12) — the
#                         determinism grid across node counts and sim_threads, tier
#                         conservation, and the hierarchical-linter mutation suite,
#                         whose NIC/ToR event lanes are the newest parallel surface.
#   - `ctest -L sched`  : the multi-tenant cluster scheduler (DESIGN.md §13) — the
#                         trace × policy × sim_threads determinism grid, the
#                         preemption checkpoint/restore protocol, and per-tenant
#                         quota enforcement, which nest whole sessions inside an
#                         outer event stream.
# Pass --full to run the entire ctest suite under each sanitizer instead (slower).
#
# Usage: tools/run_sanitizer_suite.sh [--full]
# Build trees land in build-tsan/ and build-ubsan/ next to the source tree.
set -eu

full=0
if [[ "${1:-}" == "--full" ]]; then
  full=1
fi

repo=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

run_one() {
  local sanitizer=$1 build_dir=$2
  echo "==== HARMONY_SANITIZE=$sanitizer -> $build_dir ===="
  cmake -B "$repo/$build_dir" -S "$repo" -DHARMONY_SANITIZE="$sanitizer" >/dev/null
  cmake --build "$repo/$build_dir" -j "$jobs"
  if [[ $full -eq 1 ]]; then
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs")
  else
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs" -L trace)
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs" -R tuner)
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs" -L lint)
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs" -L simcore)
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs" -L chaos)
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs" -L cluster)
    (cd "$repo/$build_dir" && ctest --output-on-failure -j "$jobs" -L sched)
  fi
  echo "==== $sanitizer: clean ===="
}

run_one thread build-tsan
run_one undefined build-ubsan
echo "OK   both sanitizer jobs clean"
