// harmony_sim: command-line driver for the Harmony training simulator.
//
//   harmony_sim --model=bert-large --scheme=harmony-pp --gpus=4
//               --microbatches=8 --microbatch_size=5 --pack_size=2 --iterations=3
//               --trace=/tmp/schedule.json
//
// Prints the run report (throughput, per-iteration swap volume by tensor class, per-device
// accounting) and optionally writes a chrome://tracing timeline.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/core/recovery.h"
#include "src/core/schedule_render.h"
#include "src/core/session.h"
#include "src/hw/cluster_spec.h"
#include "src/core/tuner.h"
#include "src/runtime/cluster_scheduler.h"
#include "src/graph/model_zoo.h"
#include "src/runtime/plan_lint.h"
#include "src/runtime/report_io.h"
#include "src/runtime/trace_export.h"
#include "src/util/flags.h"
#include "src/util/table.h"

namespace harmony {
namespace {

// Prints the error and reports failure when a checked flag didn't parse. Every flag value
// goes through this path — malformed values are typed errors with a usage hint and a
// non-zero exit, never silent fallbacks to a default.
template <typename T>
bool AssignFlag(const StatusOr<T>& parsed, T* out) {
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n(run with --help for flag usage)\n";
    return false;
  }
  *out = parsed.value();
  return true;
}

int Run(int argc, char** argv) {
  FlagParser flags;
  flags.Define("model", "bert-large",
              "lenet | alexnet | gnmt | amoebanet | bert-base | bert-large | gpt2-xl | toy")
      .Define("scheme", "harmony-pp",
              "baseline-dp | baseline-pp | harmony-dp | harmony-pp | harmony-tp | serving")
      .Define("gpus", "4", "number of GPUs per node")
      .Define("gpu_memory_gib", "11", "per-GPU memory (GiB)")
      .Define("gpus_per_switch", "4", "GPUs below each PCIe switch")
      .Define("nodes", "1", "number of servers (1 = single commodity server, no NICs)")
      .Define("nodes_per_rack", "0",
              "servers per top-of-rack switch (0 = one rack holds every node)")
      .Define("nic_gbps", "25", "per-node NIC bandwidth, Gbit/s (host <-> NIC <-> ToR)")
      .Define("rack_gbps", "100", "rack uplink bandwidth, Gbit/s (ToR <-> spine)")
      .Define("cluster", "",
              "cluster topology spec 'nodes=N,gpus_per_node=G,nodes_per_rack=R,"
              "nic_gbps=X,rack_gbps=Y' (any subset of keys); overrides --nodes, --gpus, "
              "--nodes_per_rack, --nic_gbps, and --rack_gbps")
      .Define("microbatches", "8", "microbatches per GPU (DP) / total (PP)")
      .Define("microbatch_size", "5", "samples per microbatch")
      .Define("iterations", "3", "training iterations to simulate")
      .Define("pack_size", "2", "layers per pack (Harmony-PP)")
      .Define("group_size", "0", "microbatches per input-batch group (0 = whole minibatch)")
      .Define("recompute", "false", "activation recomputation instead of stashing")
      .Define("prefetch", "true", "double-buffer the next task's working set")
      .Define("grouping", "true", "input-batch grouping")
      .Define("jit", "true", "just-in-time weight updates")
      .Define("p2p", "true", "device-to-device transfers")
      .Define("lookahead_eviction", "false", "Belady-style scheduler-informed eviction")
      .Define("tune", "false",
              "run the Performance Tuner sweep (pack x group x microbatch) instead of a "
              "single training run")
      .Define("tuner_threads", "0",
              "worker threads for the tuner sweep (0 = one per hardware thread)")
      .Define("timeline", "false", "print the ASCII schedule timeline")
      .Define("lint", "false",
              "build the plan and run the full static linter (deep checks included) instead "
              "of executing it; --json writes the harmony-lint-report v1 instead of the run "
              "report; exits 1 if the plan has lint errors")
      .Define("explain", "false",
              "print the bottleneck attribution (dominant stall per device, top contended "
              "link, top-churn tensors)")
      .Define("sched", "",
              "run the multi-tenant cluster scheduler with this policy (fifo | priority) "
              "instead of one training session; supply the workload with --jobs and/or "
              "--trace (which is the arrival-trace spec in this mode)")
      .Define("jobs", "",
              "explicit job stream for --sched: '(train|serve)@<arrival>:tenant=<t>,"
              "model=<m>,scheme=<s>,gpus=<n>,iters=<n>,mb=<n>,mbs=<n>,prio=<n>', "
              "semicolon-separated; every key optional")
      .Define("quota", "",
              "per-tenant quotas for --sched: '<tenant|*>:mem_gib=<g>,bw=<frac>', "
              "semicolon-separated; mem_gib caps the tenant's aggregate host-memory "
              "footprint, bw reserves a (0,1] share of host-uplink/NIC bandwidth")
      .Define("trace", "",
              "write a chrome://tracing JSON to this path; with --sched this is instead "
              "the arrival-trace spec 'poisson:seed=<s>,rate=<r>,horizon=<h>"
              "[,serve_frac=<f>]' (also bursty:...,burst=<n>,period=<p> and "
              "diurnal:...,period=<p>)")
      .Define("csv", "", "write per-iteration metrics CSV to this path")
      .Define("json", "", "write the full structured run report (JSON) to this path")
      .Define("faults", "",
              "fault schedule: 'fail@<t>:gpu<i>', 'degrade@<t>:gpu<i>:<scale>:<dur>', "
              "'degrade@<t>:host:<scale>:<dur>', 'mem@<t>:<scale>:<dur>', "
              "'flow_flap@<t>:<gpu<i>|host|nic<i>|rack<i>>', "
              "'brownout@<t>:<gpu<i>|host|nic<i>|rack<i>>:<scale>:<dur>', "
              "'gpu_slow@<t>:gpu<i>:<scale>:<dur>', 'ckpt_corrupt@<t>', or "
              "'rand:seed=<s>,mtbf=<sec>,horizon=<sec>[,gpus=<n>][,nics=<n>][,racks=<n>]"
              "[,fail=<0|1>][,ext=<0|1>][,ckpt=<0|1>]', semicolon-separated; durations are "
              "> 0 seconds or 'inf'; nic/rack targets hit inter-node links and need "
              "--nodes > 1; empty = no faults")
      .Define("checkpoint_every", "0",
              "host-checkpoint weights every k iterations (0 = never); the recovery path "
              "resumes from the last committed checkpoint after a GPU fail-stop")
      .Define("watchdog", "0",
              "flag the run as stalled after this many sim seconds without a task "
              "completion (0 = off)")
      .Define("retry_max", "0",
              "transfer retry budget: total issues allowed per flow before a transient "
              "abort escalates (0 = retries off)")
      .Define("retry_base", "0.001",
              "base backoff delay in sim seconds for transfer retries (capped exponential, "
              "cap = 64x base)")
      .Define("ckpt_keep", "2",
              "checkpoint generations retained in the integrity-verified ring buffer")
      .Define("straggler_threshold", "0",
              "EWMA service-time ratio above which a device is classified a straggler and "
              "the segment degrades gracefully (0 = off; must be > 1 when set)")
      .Define("sim_threads", "0",
              "worker threads for the sharded simulator core (0 = HARMONY_SIM_THREADS env "
              "or 1); output is byte-identical at any value")
      .Define("help", "false", "show this help");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n\n" << flags.Usage(argv[0]);
    return 2;
  }
  bool help = false;
  if (!AssignFlag(flags.GetCheckedBool("help"), &help)) {
    return 2;
  }
  if (help) {
    std::cout << flags.Usage(argv[0]);
    return 0;
  }

  const StatusOr<Model> model = ModelByName(flags.Get("model"));
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 2;
  }
  const StatusOr<Scheme> scheme = SchemeByName(flags.Get("scheme"));
  if (!scheme.ok()) {
    std::cerr << scheme.status().ToString() << "\n";
    return 2;
  }

  SessionConfig config;
  double gpu_memory_gib = 0.0;
  double nic_gbps = 0.0, rack_gbps = 0.0;
  if (!AssignFlag(flags.GetCheckedInt("gpus"), &config.server.num_gpus) ||
      !AssignFlag(flags.GetCheckedInt("gpus_per_switch"), &config.server.gpus_per_switch) ||
      !AssignFlag(flags.GetCheckedInt("nodes"), &config.num_nodes) ||
      !AssignFlag(flags.GetCheckedInt("nodes_per_rack"), &config.nodes_per_rack) ||
      !AssignFlag(flags.GetCheckedDouble("nic_gbps"), &nic_gbps) ||
      !AssignFlag(flags.GetCheckedDouble("rack_gbps"), &rack_gbps) ||
      !AssignFlag(flags.GetCheckedDouble("gpu_memory_gib"), &gpu_memory_gib) ||
      !AssignFlag(flags.GetCheckedInt("microbatches"), &config.microbatches) ||
      !AssignFlag(flags.GetCheckedInt("microbatch_size"), &config.microbatch_size) ||
      !AssignFlag(flags.GetCheckedInt("iterations"), &config.iterations) ||
      !AssignFlag(flags.GetCheckedInt("pack_size"), &config.pack_size) ||
      !AssignFlag(flags.GetCheckedInt("group_size"), &config.group_size) ||
      !AssignFlag(flags.GetCheckedInt("checkpoint_every"), &config.checkpoint_every) ||
      !AssignFlag(flags.GetCheckedDouble("watchdog"), &config.watchdog_timeout) ||
      !AssignFlag(flags.GetCheckedInt("retry_max"), &config.retry_max) ||
      !AssignFlag(flags.GetCheckedDouble("retry_base"), &config.retry_base) ||
      !AssignFlag(flags.GetCheckedInt("ckpt_keep"), &config.ckpt_keep) ||
      !AssignFlag(flags.GetCheckedDouble("straggler_threshold"),
                  &config.straggler_threshold) ||
      !AssignFlag(flags.GetCheckedInt("sim_threads"), &config.sim_threads)) {
    return 2;
  }
  config.server.gpu.memory_bytes =
      static_cast<Bytes>(gpu_memory_gib * static_cast<double>(kGiB));
  config.scheme = scheme.value();
  config.nic_link = NicLinkSpec(nic_gbps);
  config.rack_link = RackLinkSpec(rack_gbps);
  if (!flags.Get("cluster").empty()) {
    // --cluster is the one-flag spelling of the fleet shape; it wins over the individual
    // topology flags so scripted sweeps can override a baseline command line wholesale.
    const StatusOr<ClusterSpec> cluster = ParseClusterSpec(flags.Get("cluster"));
    if (!cluster.ok()) {
      std::cerr << cluster.status().ToString() << "\n(run with --help for flag usage)\n";
      return 2;
    }
    config.num_nodes = cluster.value().nodes;
    config.nodes_per_rack = cluster.value().nodes_per_rack;
    config.server.num_gpus = cluster.value().gpus_per_node;
    config.nic_link = NicLinkSpec(cluster.value().nic_gbps);
    config.rack_link = RackLinkSpec(cluster.value().rack_gbps);
  }
  bool tune = false, timeline = false, explain = false, lint = false;
  if (!AssignFlag(flags.GetCheckedBool("recompute"), &config.recompute) ||
      !AssignFlag(flags.GetCheckedBool("prefetch"), &config.prefetch) ||
      !AssignFlag(flags.GetCheckedBool("grouping"), &config.grouping) ||
      !AssignFlag(flags.GetCheckedBool("jit"), &config.jit_updates) ||
      !AssignFlag(flags.GetCheckedBool("p2p"), &config.p2p) ||
      !AssignFlag(flags.GetCheckedBool("lookahead_eviction"), &config.lookahead_eviction) ||
      !AssignFlag(flags.GetCheckedBool("tune"), &tune) ||
      !AssignFlag(flags.GetCheckedBool("timeline"), &timeline) ||
      !AssignFlag(flags.GetCheckedBool("explain"), &explain) ||
      !AssignFlag(flags.GetCheckedBool("lint"), &lint)) {
    return 2;
  }
  if (!flags.Get("sched").empty()) {
    // Scheduler mode: run a multi-tenant job stream over the cluster instead of one
    // session. --trace is the arrival-trace spec here (chrome tracing has no meaning for
    // a job stream), and the single-run modes are unavailable.
    const StatusOr<SchedPolicy> policy = SchedPolicyByName(flags.Get("sched"));
    if (!policy.ok()) {
      std::cerr << policy.status().ToString() << "\n(run with --help for flag usage)\n";
      return 2;
    }
    if (tune || lint || timeline || !flags.Get("faults").empty() ||
        !flags.Get("csv").empty()) {
      std::cerr << "--sched cannot be combined with --tune, --lint, --timeline, --faults, "
                   "or --csv\n(run with --help for flag usage)\n";
      return 2;
    }
    ClusterSchedulerConfig sched;
    sched.server = config.server;
    sched.num_nodes = config.num_nodes;
    sched.nodes_per_rack = config.nodes_per_rack;
    sched.nic_link = config.nic_link;
    sched.rack_link = config.rack_link;
    sched.policy = policy.value();
    sched.sim_threads = config.sim_threads;
    if (!flags.Get("quota").empty()) {
      const StatusOr<QuotaMap> quotas = ParseQuotaSpec(flags.Get("quota"));
      if (!quotas.ok()) {
        std::cerr << quotas.status().ToString() << "\n(run with --help for flag usage)\n";
        return 2;
      }
      sched.quotas = quotas.value();
    }
    std::vector<JobSpec> jobs;
    if (!flags.Get("jobs").empty()) {
      const StatusOr<std::vector<JobSpec>> parsed_jobs = ParseJobsSpec(flags.Get("jobs"));
      if (!parsed_jobs.ok()) {
        std::cerr << parsed_jobs.status().ToString()
                  << "\n(run with --help for flag usage)\n";
        return 2;
      }
      jobs = parsed_jobs.value();
    }
    if (!flags.Get("trace").empty()) {
      const StatusOr<std::vector<JobSpec>> generated = GenerateTrace(
          flags.Get("trace"), sched.server.num_gpus, sched.num_nodes, flags.Get("model"));
      if (!generated.ok()) {
        std::cerr << generated.status().ToString() << "\n(run with --help for flag usage)\n";
        return 2;
      }
      jobs.insert(jobs.end(), generated.value().begin(), generated.value().end());
    }
    if (jobs.empty()) {
      std::cerr << "--sched needs a workload: pass --jobs and/or --trace\n(run with "
                   "--help for flag usage)\n";
      return 2;
    }
    const StatusOr<ClusterReport> report = RunJobStream(std::move(jobs), sched);
    if (!report.ok()) {
      std::cerr << report.status().ToString() << "\n";
      return 1;
    }
    if (explain) {
      std::cout << report.value().Render();
    } else {
      std::cout << report.value().Summary() << "\n";
    }
    if (!flags.Get("json").empty()) {
      const Status written = WriteClusterReportJson(report.value(), flags.Get("json"));
      if (!written.ok()) {
        std::cerr << written.ToString() << "\n";
        return 1;
      }
      std::cout << "wrote cluster report to " << flags.Get("json") << "\n";
    }
    return 0;
  }
  if (!flags.Get("jobs").empty() || !flags.Get("quota").empty()) {
    std::cerr << "--jobs/--quota only apply to scheduler mode; add --sched=<fifo|priority>"
                 "\n(run with --help for flag usage)\n";
    return 2;
  }

  config.record_timeline = timeline || !flags.Get("trace").empty();
  if (!flags.Get("faults").empty()) {
    const StatusOr<FaultPlan> faults = ParseFaultSpec(flags.Get("faults"));
    if (!faults.ok()) {
      std::cerr << faults.status().ToString() << "\n";
      return 2;
    }
    config.faults = faults.value();
  }

  if (tune) {
    // Tuner mode: sweep the memory-performance tango knobs around the requested config and
    // report the profiled frontier instead of running one fixed schedule.
    TunerOptions options;
    options.minibatch_samples = config.microbatches * config.microbatch_size;
    options.iterations = config.iterations;
    if (!AssignFlag(flags.GetCheckedInt("tuner_threads"), &options.num_threads)) {
      return 2;
    }
    std::cout << model.value().Summary() << "\n";
    const TunerResult tuned = TunePp(model.value(), config, options);
    std::cout << RenderTunerTable(tuned) << "\n";
    std::printf("tuner pick: pack=%d, group=%d, microbatch=%d (%d microbatches) -> %.2f "
                "samples/s\n",
                tuned.best.pack_size, tuned.best.group_size, tuned.best.microbatch_size,
                tuned.best.microbatches, tuned.best.throughput);
    if (!tuned.best.why.empty()) {
      std::printf("tuner pick why: %s\n", tuned.best.why.c_str());
    }
    return 0;
  }

  // Surface bad configurations as messages + non-zero exit instead of HCHECK aborts.
  const Status valid = ValidateSessionConfig(model.value(), config);
  if (!valid.ok()) {
    std::cerr << valid.ToString() << "\n";
    return 1;
  }

  if (lint) {
    // Lint mode: build the plan, run the full static analysis (deep checks included), and
    // report instead of executing. --json switches the output file to the lint report.
    Machine machine = MakeSessionMachine(config);
    TensorRegistry registry;
    const Plan plan = BuildPlanForConfig(model.value(), machine, &registry, config);
    LintOptions options;
    options.deep = true;
    for (const GpuSpec& gpu : machine.gpus) {
      options.device_capacities.push_back(gpu.memory_bytes);
    }
    const LintReport report = LintPlan(plan, registry, options);
    std::cout << report.Render();
    if (!flags.Get("json").empty()) {
      std::ofstream file(flags.Get("json"), std::ios::trunc);
      if (!file) {
        std::cerr << "cannot open lint report file " << flags.Get("json") << "\n";
        return 1;
      }
      file << report.ToJson() << "\n";
      std::cout << "wrote lint report to " << flags.Get("json") << "\n";
    }
    return report.num_errors() > 0 ? 1 : 0;
  }

  if (!config.faults.empty()) {
    // Elastic mode: run with fault injection and recover onto survivors after fail-stops.
    std::cout << model.value().Summary() << "\n";
    std::cout << "fault plan: " << config.faults.ToString() << "\n\n";
    const ElasticResult elastic = RunTrainingElastic(model.value(), config);
    for (std::size_t i = 0; i < elastic.segments.size(); ++i) {
      const RecoverySegment& seg = elastic.segments[i];
      std::printf("segment %zu: %d gpu(s), iterations [%d, %d), completed %zu, makespan "
                  "%.3f s%s\n",
                  i, static_cast<int>(seg.gpus.size()), seg.start_iteration,
                  seg.start_iteration + seg.iterations, seg.result.report.iterations.size(),
                  seg.result.report.makespan,
                  seg.result.report.failed
                      ? (" — " + seg.result.report.failure_kind).c_str()
                      : "");
    }
    std::cout << "\napplied faults:\n" << elastic.FaultTrace();
    std::printf(
        "\nrecovery: %d failure(s), lost work %.3f s, recovery latency %.3f s, re-swap "
        "%s\ncheckpoints: %d committed (%s), completed %d/%d iterations, total makespan "
        "%.3f s\n",
        elastic.stats.failures, elastic.stats.lost_work_sec,
        elastic.stats.recovery_latency_sec, FormatBytes(elastic.stats.reswap_bytes).c_str(),
        elastic.checkpoints_committed, FormatBytes(elastic.checkpoint_bytes).c_str(),
        elastic.completed_iterations, config.iterations, elastic.total_makespan);
    std::int64_t flows_retried = 0;
    double retry_backoff_sec = 0.0;
    for (const RecoverySegment& seg : elastic.segments) {
      flows_retried += seg.result.report.flows_retried;
      retry_backoff_sec += seg.result.report.retry_backoff_sec;
    }
    if (flows_retried > 0 || elastic.stats.degradations > 0 ||
        elastic.stats.retry_exhaustions > 0 || elastic.stats.ckpt_verified > 0 ||
        elastic.stats.ckpt_corrupt_detected > 0) {
      // Only printed when the degraded-mode tier actually engaged, so pre-resilience
      // fault-plan output stays byte-identical.
      std::printf("resilience: %lld flow retr%s absorbed (%.3f s backoff), %d "
                  "degradation(s), %d retry exhaustion(s), checkpoint verification %d ok "
                  "/ %d corrupt\n",
                  static_cast<long long>(flows_retried), flows_retried == 1 ? "y" : "ies",
                  retry_backoff_sec, elastic.stats.degradations,
                  elastic.stats.retry_exhaustions, elastic.stats.ckpt_verified,
                  elastic.stats.ckpt_corrupt_detected);
    }
    if (!elastic.status.ok()) {
      std::cerr << elastic.status.ToString() << "\n";
      return 1;
    }
    std::cout << "\nfinal segment report:\n"
              << elastic.final_segment().result.report.Summary() << "\n";
    return 0;
  }

  std::cout << model.value().Summary() << "\n";
  const SessionResult result = RunTraining(model.value(), config);
  std::cout << result.plan.Stats() << "\n\n";
  std::cout << result.report.Summary() << "\n\n";

  TablePrinter devices({"device", "busy (s)", "swap-in", "swap-out", "high water",
                        "peak task WS", "demand"});
  for (int d = 0; d < result.report.num_devices(); ++d) {
    devices.Row()
        .Cell("gpu" + std::to_string(d))
        .Cell(result.report.device_busy[static_cast<std::size_t>(d)], 2)
        .Cell(FormatBytes(result.report.device_swap_in[static_cast<std::size_t>(d)]))
        .Cell(FormatBytes(result.report.device_swap_out[static_cast<std::size_t>(d)]))
        .Cell(FormatBytes(result.report.device_high_water[static_cast<std::size_t>(d)]))
        .Cell(FormatBytes(result.peak_task_working_set[static_cast<std::size_t>(d)]))
        .Cell(FormatBytes(result.memory_demand_per_device[static_cast<std::size_t>(d)]));
  }
  devices.Print(std::cout);

  std::cout << "\nper-class swap volume (steady iteration):\n";
  TablePrinter classes({"tensor class", "swap-in", "swap-out"});
  const IterationStats& it = result.report.iterations.size() > 1
                                 ? result.report.iterations[1]
                                 : result.report.iterations[0];
  for (int c = 0; c < kNumTensorClasses; ++c) {
    classes.Row()
        .Cell(TensorClassName(static_cast<TensorClass>(c)))
        .Cell(FormatBytes(it.swap_in_by_class[c]))
        .Cell(FormatBytes(it.swap_out_by_class[c]));
  }
  classes.Print(std::cout);

  std::cout << "\nlink usage:\n";
  TablePrinter links({"link", "bytes", "busy (s)", "utilization"});
  for (const RunReport::LinkUsage& link : result.report.links) {
    if (link.bytes == 0) {
      continue;
    }
    links.Row()
        .Cell(link.name)
        .Cell(FormatBytes(link.bytes))
        .Cell(link.busy_time, 2)
        .Cell(link.utilization, 2);
  }
  links.Print(std::cout);

  // Multi-node runs get the per-tier rollup of the same link totals; single-server output
  // is unchanged (tiers empty).
  if (!result.report.tiers.empty()) {
    std::cout << "\ntier byte split:\n";
    TablePrinter tiers({"tier", "bytes", "busy (s)", "flows", "collective", "swap"});
    for (const RunReport::TierUsage& tier : result.report.tiers) {
      tiers.Row()
          .Cell(tier.name)
          .Cell(FormatBytes(tier.bytes))
          .Cell(tier.busy_time, 2)
          .Cell(tier.flows)
          .Cell(FormatBytes(tier.of(TransferKind::kCollective)))
          .Cell(FormatBytes(tier.of(TransferKind::kSwapIn) +
                            tier.of(TransferKind::kSwapOut)));
    }
    tiers.Print(std::cout);
  }

  if (explain) {
    std::cout << "\n" << Attribute(result.report).Render();
  }
  if (timeline) {
    std::cout << "\n" << RenderTimeline(result.plan, result.timeline);
  }
  if (!flags.Get("csv").empty()) {
    const Status written = WriteReportCsv(result.report, flags.Get("csv"));
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "\nwrote per-iteration CSV to " << flags.Get("csv") << "\n";
  }
  if (!flags.Get("json").empty()) {
    const Status written = WriteReportJson(result.report, flags.Get("json"));
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "\nwrote structured report to " << flags.Get("json") << "\n";
  }
  if (!flags.Get("trace").empty()) {
    const Status written =
        WriteChromeTrace(result.plan, result.timeline, flags.Get("trace"), &result.report);
    if (!written.ok()) {
      std::cerr << written.ToString() << "\n";
      return 1;
    }
    std::cout << "\nwrote chrome trace to " << flags.Get("trace") << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace harmony

int main(int argc, char** argv) { return harmony::Run(argc, argv); }
