#!/usr/bin/env bash
# Golden-stdout determinism gate (ctest label: golden).
#
# The experiment benches must produce byte-identical stdout on every run and across code
# changes that claim to be performance-only (stderr is exempt: wall-clock diagnostics live
# there). This script runs each golden bench TWICE — catching nondeterminism within one
# build (iteration-order leaks, uninitialized reads, time-dependent output) — and compares
# the hash against the committed manifest, catching semantic drift against the recorded
# baseline.
#
# Usage: check_stdout_stable.sh <bench_dir> [manifest]
#   bench_dir  directory holding the built bench binaries (e.g. build/bench)
#   manifest   golden sha256 list (default: tools/golden_stdout.sha256 next to this script)
#
# To regenerate the manifest after an intentional output change:
#   cd <scratch>; for b in <benches>; do <bench_dir>/$b > $b.stdout; done
#   sha256sum *.stdout > tools/golden_stdout.sha256
set -u

bench_dir=${1:?usage: check_stdout_stable.sh <bench_dir> [manifest]}
script_dir=$(cd "$(dirname "$0")" && pwd)
manifest=${2:-"$script_dir/golden_stdout.sha256"}

benches=(
  bench_fig1_model_growth
  bench_fig2a_dp_swap
  bench_fig2b_interconnect
  bench_fig2c_pp_imbalance
  bench_fig4_schedule
  bench_fig5_swap_volume
  bench_ablation_opts
  bench_e2e_comparison
  bench_chaos
  bench_cluster_scaleout
  bench_multitenant
)

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

fail=0
for bench in "${benches[@]}"; do
  bin="$bench_dir/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "FAIL $bench: binary not found at $bin (build first)"
    fail=1
    continue
  fi
  if ! "$bin" > "$workdir/$bench.stdout" 2> /dev/null; then
    echo "FAIL $bench: run 1 exited non-zero"
    fail=1
    continue
  fi
  if ! "$bin" > "$workdir/$bench.run2" 2> /dev/null; then
    echo "FAIL $bench: run 2 exited non-zero"
    fail=1
    continue
  fi
  if ! cmp -s "$workdir/$bench.stdout" "$workdir/$bench.run2"; then
    echo "FAIL $bench: stdout differs between two runs of the same binary"
    fail=1
    continue
  fi
  echo "OK   $bench: two runs byte-identical"
done

if [[ -f "$manifest" ]]; then
  # sha256sum -c wants the hashed filenames relative to the cwd.
  if (cd "$workdir" && sha256sum -c --quiet "$manifest"); then
    echo "OK   all stdout hashes match the committed manifest"
  else
    echo "FAIL stdout drifted from the committed golden manifest ($manifest);"
    echo "     if the change is intentional, regenerate it (see header comment)"
    fail=1
  fi

  # Sharded-core gate (DESIGN.md §10): the same manifest must hold at every simulator
  # thread count — parallel lane draining may never change a byte of output.
  for threads in 2 8; do
    threadsdir="$workdir/threads$threads"
    mkdir -p "$threadsdir"
    threads_fail=0
    for bench in "${benches[@]}"; do
      bin="$bench_dir/$bench"
      [[ -x "$bin" ]] || continue
      if ! HARMONY_SIM_THREADS=$threads "$bin" > "$threadsdir/$bench.stdout" 2> /dev/null; then
        echo "FAIL $bench: exited non-zero with HARMONY_SIM_THREADS=$threads"
        threads_fail=1
      fi
    done
    if [[ $threads_fail -eq 0 ]] && (cd "$threadsdir" && sha256sum -c --quiet "$manifest"); then
      echo "OK   all stdout hashes match the manifest at HARMONY_SIM_THREADS=$threads"
    else
      echo "FAIL stdout diverged from the manifest at HARMONY_SIM_THREADS=$threads —"
      echo "     the sharded simulator core broke determinism (see DESIGN.md §10)"
      fail=1
    fi
  done
else
  echo "WARN no golden manifest at $manifest — ran the two-run stability check only"
fi

exit $fail
