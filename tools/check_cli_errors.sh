#!/usr/bin/env bash
# CLI error-handling regression test for harmony_sim.
#
# Malformed flag values used to be coerced (unknown strings fell back to defaults); now
# every flag read goes through the checked accessors, so a bad value must produce a typed
# error on stderr, a usage hint, and exit code 2 — never a silent run with a default.
#
# Usage: tools/check_cli_errors.sh <path-to-harmony_sim>
set -u

sim=${1:?usage: check_cli_errors.sh <path-to-harmony_sim>}
failures=0

# expect_reject <expected-substring> <flag...>: harmony_sim must exit 2 and mention both
# the typed error and the usage hint on stderr.
expect_reject() {
  local expected=$1
  shift
  local err
  err=$("$sim" "$@" 2>&1 >/dev/null)
  local code=$?
  if [[ $code -ne 2 ]]; then
    echo "FAIL $* : exit $code, want 2" >&2
    failures=$((failures + 1))
    return
  fi
  if [[ "$err" != *"INVALID_ARGUMENT"* ]]; then
    echo "FAIL $* : stderr lacks typed INVALID_ARGUMENT error: $err" >&2
    failures=$((failures + 1))
    return
  fi
  if [[ "$err" != *"$expected"* ]]; then
    echo "FAIL $* : stderr lacks '$expected': $err" >&2
    failures=$((failures + 1))
    return
  fi
  if [[ "$err" != *"--help"* ]]; then
    echo "FAIL $* : stderr lacks the --help usage hint: $err" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok   $* -> exit 2 ($expected)"
}

expect_reject "expects true/false" --prefetch=maybe
expect_reject "expects true/false" --lint=sometimes
expect_reject "expects an integer" --gpus=four
expect_reject "expects an integer" --microbatches=2.5
expect_reject "expects a finite number" --watchdog=soon
expect_reject "expects an integer" --retry_max=lots
expect_reject "expects a finite number" --retry_base=slow
expect_reject "expects an integer" --ckpt_keep=all
expect_reject "expects a finite number" --straggler_threshold=high

# Cluster topology flags: individual knobs go through the checked accessors, and the
# --cluster spec grammar rejects with the byte offset of the offending field.
expect_reject "expects an integer" --nodes=two
expect_reject "expects an integer" --nodes_per_rack=1.5
expect_reject "expects a finite number" --nic_gbps=fast
expect_reject "expects a finite number" --rack_gbps=
expect_reject "at byte" --cluster='nodes=0'
expect_reject "unknown cluster option" --cluster='nodes=2,racks=3'
expect_reject "duplicate cluster option" --cluster='nodes=2,nodes=4'
expect_reject "must be a positive number" --cluster='nic_gbps=-25'

# Fault-plan grammar violations (DESIGN.md §11): rejected at parse time with the byte
# offset of the offending field, before any simulation starts.
expect_reject "duration must be > 0 seconds or 'inf'" --faults='degrade@1:gpu0:0.5:0'
expect_reject "at byte" --faults='fail@1:gpu0;degrade@2:gpu0:0.5:nan'
expect_reject "must be 0, 1, true or false" --faults='rand:ext=2'
expect_reject "expected a target like 'nic0'" --faults='flow_flap@1:nic'
expect_reject "expected a target like" --faults='brownout@1:rack-1:0.5:1'

# Scheduler-mode grammars (DESIGN.md §13): --sched, --jobs, --trace and --quota are all
# parsed up front; malformed specs are typed errors with the byte offset of the offending
# field, before any job is admitted.
expect_reject "unknown scheduling policy" --sched=bogus --jobs='train@0'
expect_reject "at byte" --sched=fifo --jobs='train@'
expect_reject "unknown job option" --sched=fifo --jobs='train@0:color=red'
expect_reject "duplicate job option" --sched=fifo --jobs='train@0:gpus=2,gpus=4'
expect_reject "trace kind must be" --sched=fifo --trace='weekly:seed=1,rate=1,horizon=9'
expect_reject "at byte" --sched=fifo --trace='poisson:seed=1,rate=-1,horizon=9'
expect_reject "duplicate trace option" --sched=fifo --trace='poisson:seed=1,seed=2,rate=1,horizon=9'
expect_reject "require burst= and period=" --sched=fifo --trace='bursty:seed=1,rate=1,horizon=9'
expect_reject "do not apply to poisson" --sched=fifo --trace='poisson:seed=1,rate=1,horizon=9,burst=2'
expect_reject "burst= only applies to bursty" --sched=fifo --trace='diurnal:seed=1,rate=1,horizon=9,period=3,burst=2'
expect_reject "at byte" --sched=priority --jobs='train@0' --quota='t0:mem_gib=-4'
expect_reject "duplicate quota for tenant" --sched=priority --jobs='train@0' --quota='t0:bw=0.5;t0:bw=0.25'

# Scheduler flags outside scheduler mode, and single-run modes inside it, are both
# rejected up front (plain typed message, exit 2).
for args in "--jobs=train@0" "--quota=t0:bw=0.5" "--sched=fifo --jobs=train@0 --lint"; do
  # shellcheck disable=SC2086
  err=$("$sim" $args 2>&1 >/dev/null)
  code=$?
  if [[ $code -ne 2 || "$err" != *"--sched"* || "$err" != *"--help"* ]]; then
    echo "FAIL $args : exit $code, stderr: $err" >&2
    failures=$((failures + 1))
  else
    echo "ok   $args -> exit 2 (scheduler-mode gating)"
  fi
done

# Network-scoped fault targets are validated against the cluster shape before the run:
# nic5 on a 2-node fleet is a typed validation error (exit 1, not a crash).
err=$("$sim" --nodes=2 --scheme=harmony-dp --microbatches=2 --faults='flow_flap@1:nic5' 2>&1 >/dev/null)
code=$?
if [[ $code -ne 1 || "$err" != *"targets nic5"* ]]; then
  echo "FAIL out-of-range nic fault target : exit $code, stderr: $err" >&2
  failures=$((failures + 1))
else
  echo "ok   --nodes=2 --faults=flow_flap@1:nic5 -> exit 1 (validation)"
fi

# Unknown flags are rejected up front with the full usage text.
err=$("$sim" --no_such_flag=1 2>&1 >/dev/null)
code=$?
if [[ $code -ne 2 || "$err" != *"no_such_flag"* || "$err" != *"Usage"* && "$err" != *"usage"* ]]; then
  echo "FAIL --no_such_flag : exit $code, stderr: $err" >&2
  failures=$((failures + 1))
else
  echo "ok   --no_such_flag -> exit 2 with usage"
fi

# Well-formed invocations still work: --help exits 0, and --lint on a clean default plan
# exits 0 with a clean report line.
if ! "$sim" --help >/dev/null 2>&1; then
  echo "FAIL --help : non-zero exit" >&2
  failures=$((failures + 1))
else
  echo "ok   --help -> exit 0"
fi

lint_out=$("$sim" --lint --iterations=1 2>&1)
if [[ $? -ne 0 || "$lint_out" != *"clean"* ]]; then
  echo "FAIL --lint on default plan: $lint_out" >&2
  failures=$((failures + 1))
else
  echo "ok   --lint -> exit 0, clean report"
fi

if [[ $failures -ne 0 ]]; then
  echo "FAIL $failures CLI error-handling check(s)" >&2
  exit 1
fi
echo "OK   harmony_sim CLI error handling"
