# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/tp_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
