# Empty compiler generated dependencies file for bench_fig1_model_growth.
# This may be replaced when dependencies are built.
