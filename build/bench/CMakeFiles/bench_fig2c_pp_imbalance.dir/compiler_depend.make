# Empty compiler generated dependencies file for bench_fig2c_pp_imbalance.
# This may be replaced when dependencies are built.
