file(REMOVE_RECURSE
  "CMakeFiles/bench_tp_hugelayer.dir/bench_tp_hugelayer.cpp.o"
  "CMakeFiles/bench_tp_hugelayer.dir/bench_tp_hugelayer.cpp.o.d"
  "bench_tp_hugelayer"
  "bench_tp_hugelayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tp_hugelayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
