# Empty dependencies file for bench_tp_hugelayer.
# This may be replaced when dependencies are built.
