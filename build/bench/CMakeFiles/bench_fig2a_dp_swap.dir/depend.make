# Empty dependencies file for bench_fig2a_dp_swap.
# This may be replaced when dependencies are built.
