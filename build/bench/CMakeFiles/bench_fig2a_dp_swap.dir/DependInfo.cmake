
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2a_dp_swap.cpp" "bench/CMakeFiles/bench_fig2a_dp_swap.dir/bench_fig2a_dp_swap.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2a_dp_swap.dir/bench_fig2a_dp_swap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/harmony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/harmony_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/harmony_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/harmony_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/harmony_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/harmony_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/harmony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
