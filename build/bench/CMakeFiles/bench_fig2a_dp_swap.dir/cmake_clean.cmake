file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_dp_swap.dir/bench_fig2a_dp_swap.cpp.o"
  "CMakeFiles/bench_fig2a_dp_swap.dir/bench_fig2a_dp_swap.cpp.o.d"
  "bench_fig2a_dp_swap"
  "bench_fig2a_dp_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_dp_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
