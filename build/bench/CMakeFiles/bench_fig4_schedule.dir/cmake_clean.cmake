file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_schedule.dir/bench_fig4_schedule.cpp.o"
  "CMakeFiles/bench_fig4_schedule.dir/bench_fig4_schedule.cpp.o.d"
  "bench_fig4_schedule"
  "bench_fig4_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
