# Empty compiler generated dependencies file for bench_fig5_swap_volume.
# This may be replaced when dependencies are built.
