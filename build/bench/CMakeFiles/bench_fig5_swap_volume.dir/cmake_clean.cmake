file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_swap_volume.dir/bench_fig5_swap_volume.cpp.o"
  "CMakeFiles/bench_fig5_swap_volume.dir/bench_fig5_swap_volume.cpp.o.d"
  "bench_fig5_swap_volume"
  "bench_fig5_swap_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_swap_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
