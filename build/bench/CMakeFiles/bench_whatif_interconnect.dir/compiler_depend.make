# Empty compiler generated dependencies file for bench_whatif_interconnect.
# This may be replaced when dependencies are built.
