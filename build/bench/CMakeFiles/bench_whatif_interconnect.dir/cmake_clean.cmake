file(REMOVE_RECURSE
  "CMakeFiles/bench_whatif_interconnect.dir/bench_whatif_interconnect.cpp.o"
  "CMakeFiles/bench_whatif_interconnect.dir/bench_whatif_interconnect.cpp.o.d"
  "bench_whatif_interconnect"
  "bench_whatif_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
