# Empty dependencies file for bench_e2e_comparison.
# This may be replaced when dependencies are built.
