file(REMOVE_RECURSE
  "CMakeFiles/bench_tango_tuner.dir/bench_tango_tuner.cpp.o"
  "CMakeFiles/bench_tango_tuner.dir/bench_tango_tuner.cpp.o.d"
  "bench_tango_tuner"
  "bench_tango_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tango_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
