# Empty dependencies file for bench_tango_tuner.
# This may be replaced when dependencies are built.
