file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_interconnect.dir/bench_fig2b_interconnect.cpp.o"
  "CMakeFiles/bench_fig2b_interconnect.dir/bench_fig2b_interconnect.cpp.o.d"
  "bench_fig2b_interconnect"
  "bench_fig2b_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
