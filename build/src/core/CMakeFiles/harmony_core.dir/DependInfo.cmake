
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/harmony_dp.cc" "src/core/CMakeFiles/harmony_core.dir/harmony_dp.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/harmony_dp.cc.o.d"
  "/root/repo/src/core/harmony_pp.cc" "src/core/CMakeFiles/harmony_core.dir/harmony_pp.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/harmony_pp.cc.o.d"
  "/root/repo/src/core/harmony_tp.cc" "src/core/CMakeFiles/harmony_core.dir/harmony_tp.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/harmony_tp.cc.o.d"
  "/root/repo/src/core/packer.cc" "src/core/CMakeFiles/harmony_core.dir/packer.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/packer.cc.o.d"
  "/root/repo/src/core/schedule_render.cc" "src/core/CMakeFiles/harmony_core.dir/schedule_render.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/schedule_render.cc.o.d"
  "/root/repo/src/core/session.cc" "src/core/CMakeFiles/harmony_core.dir/session.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/session.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/core/CMakeFiles/harmony_core.dir/tuner.cc.o" "gcc" "src/core/CMakeFiles/harmony_core.dir/tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/harmony_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/harmony_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/harmony_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/harmony_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/harmony_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
