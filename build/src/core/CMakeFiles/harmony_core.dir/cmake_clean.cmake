file(REMOVE_RECURSE
  "CMakeFiles/harmony_core.dir/harmony_dp.cc.o"
  "CMakeFiles/harmony_core.dir/harmony_dp.cc.o.d"
  "CMakeFiles/harmony_core.dir/harmony_pp.cc.o"
  "CMakeFiles/harmony_core.dir/harmony_pp.cc.o.d"
  "CMakeFiles/harmony_core.dir/harmony_tp.cc.o"
  "CMakeFiles/harmony_core.dir/harmony_tp.cc.o.d"
  "CMakeFiles/harmony_core.dir/packer.cc.o"
  "CMakeFiles/harmony_core.dir/packer.cc.o.d"
  "CMakeFiles/harmony_core.dir/schedule_render.cc.o"
  "CMakeFiles/harmony_core.dir/schedule_render.cc.o.d"
  "CMakeFiles/harmony_core.dir/session.cc.o"
  "CMakeFiles/harmony_core.dir/session.cc.o.d"
  "CMakeFiles/harmony_core.dir/tuner.cc.o"
  "CMakeFiles/harmony_core.dir/tuner.cc.o.d"
  "libharmony_core.a"
  "libharmony_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
