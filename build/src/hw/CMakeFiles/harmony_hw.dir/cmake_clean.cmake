file(REMOVE_RECURSE
  "CMakeFiles/harmony_hw.dir/topology.cc.o"
  "CMakeFiles/harmony_hw.dir/topology.cc.o.d"
  "CMakeFiles/harmony_hw.dir/transfer_manager.cc.o"
  "CMakeFiles/harmony_hw.dir/transfer_manager.cc.o.d"
  "libharmony_hw.a"
  "libharmony_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
