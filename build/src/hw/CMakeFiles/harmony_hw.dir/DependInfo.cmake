
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/topology.cc" "src/hw/CMakeFiles/harmony_hw.dir/topology.cc.o" "gcc" "src/hw/CMakeFiles/harmony_hw.dir/topology.cc.o.d"
  "/root/repo/src/hw/transfer_manager.cc" "src/hw/CMakeFiles/harmony_hw.dir/transfer_manager.cc.o" "gcc" "src/hw/CMakeFiles/harmony_hw.dir/transfer_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/harmony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
