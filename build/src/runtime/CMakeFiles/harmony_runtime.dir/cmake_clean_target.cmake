file(REMOVE_RECURSE
  "libharmony_runtime.a"
)
