file(REMOVE_RECURSE
  "CMakeFiles/harmony_runtime.dir/collective.cc.o"
  "CMakeFiles/harmony_runtime.dir/collective.cc.o.d"
  "CMakeFiles/harmony_runtime.dir/demand.cc.o"
  "CMakeFiles/harmony_runtime.dir/demand.cc.o.d"
  "CMakeFiles/harmony_runtime.dir/engine.cc.o"
  "CMakeFiles/harmony_runtime.dir/engine.cc.o.d"
  "CMakeFiles/harmony_runtime.dir/metrics.cc.o"
  "CMakeFiles/harmony_runtime.dir/metrics.cc.o.d"
  "CMakeFiles/harmony_runtime.dir/report_io.cc.o"
  "CMakeFiles/harmony_runtime.dir/report_io.cc.o.d"
  "CMakeFiles/harmony_runtime.dir/trace_export.cc.o"
  "CMakeFiles/harmony_runtime.dir/trace_export.cc.o.d"
  "libharmony_runtime.a"
  "libharmony_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
