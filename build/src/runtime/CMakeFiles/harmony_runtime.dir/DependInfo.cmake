
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/collective.cc" "src/runtime/CMakeFiles/harmony_runtime.dir/collective.cc.o" "gcc" "src/runtime/CMakeFiles/harmony_runtime.dir/collective.cc.o.d"
  "/root/repo/src/runtime/demand.cc" "src/runtime/CMakeFiles/harmony_runtime.dir/demand.cc.o" "gcc" "src/runtime/CMakeFiles/harmony_runtime.dir/demand.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/runtime/CMakeFiles/harmony_runtime.dir/engine.cc.o" "gcc" "src/runtime/CMakeFiles/harmony_runtime.dir/engine.cc.o.d"
  "/root/repo/src/runtime/metrics.cc" "src/runtime/CMakeFiles/harmony_runtime.dir/metrics.cc.o" "gcc" "src/runtime/CMakeFiles/harmony_runtime.dir/metrics.cc.o.d"
  "/root/repo/src/runtime/report_io.cc" "src/runtime/CMakeFiles/harmony_runtime.dir/report_io.cc.o" "gcc" "src/runtime/CMakeFiles/harmony_runtime.dir/report_io.cc.o.d"
  "/root/repo/src/runtime/trace_export.cc" "src/runtime/CMakeFiles/harmony_runtime.dir/trace_export.cc.o" "gcc" "src/runtime/CMakeFiles/harmony_runtime.dir/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/harmony_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/harmony_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/harmony_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
