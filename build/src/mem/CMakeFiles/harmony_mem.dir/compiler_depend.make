# Empty compiler generated dependencies file for harmony_mem.
# This may be replaced when dependencies are built.
