file(REMOVE_RECURSE
  "CMakeFiles/harmony_mem.dir/allocator.cc.o"
  "CMakeFiles/harmony_mem.dir/allocator.cc.o.d"
  "CMakeFiles/harmony_mem.dir/memory_manager.cc.o"
  "CMakeFiles/harmony_mem.dir/memory_manager.cc.o.d"
  "CMakeFiles/harmony_mem.dir/tensor.cc.o"
  "CMakeFiles/harmony_mem.dir/tensor.cc.o.d"
  "libharmony_mem.a"
  "libharmony_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
