file(REMOVE_RECURSE
  "libharmony_mem.a"
)
