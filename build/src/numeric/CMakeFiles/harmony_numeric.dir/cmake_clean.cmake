file(REMOVE_RECURSE
  "CMakeFiles/harmony_numeric.dir/matrix.cc.o"
  "CMakeFiles/harmony_numeric.dir/matrix.cc.o.d"
  "CMakeFiles/harmony_numeric.dir/mlp.cc.o"
  "CMakeFiles/harmony_numeric.dir/mlp.cc.o.d"
  "CMakeFiles/harmony_numeric.dir/plan_executor.cc.o"
  "CMakeFiles/harmony_numeric.dir/plan_executor.cc.o.d"
  "CMakeFiles/harmony_numeric.dir/reference.cc.o"
  "CMakeFiles/harmony_numeric.dir/reference.cc.o.d"
  "libharmony_numeric.a"
  "libharmony_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
