# Empty compiler generated dependencies file for harmony_numeric.
# This may be replaced when dependencies are built.
