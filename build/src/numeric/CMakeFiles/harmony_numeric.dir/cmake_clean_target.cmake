file(REMOVE_RECURSE
  "libharmony_numeric.a"
)
