file(REMOVE_RECURSE
  "libharmony_util.a"
)
