# Empty dependencies file for harmony_util.
# This may be replaced when dependencies are built.
