file(REMOVE_RECURSE
  "CMakeFiles/harmony_util.dir/flags.cc.o"
  "CMakeFiles/harmony_util.dir/flags.cc.o.d"
  "CMakeFiles/harmony_util.dir/logging.cc.o"
  "CMakeFiles/harmony_util.dir/logging.cc.o.d"
  "CMakeFiles/harmony_util.dir/rng.cc.o"
  "CMakeFiles/harmony_util.dir/rng.cc.o.d"
  "CMakeFiles/harmony_util.dir/status.cc.o"
  "CMakeFiles/harmony_util.dir/status.cc.o.d"
  "CMakeFiles/harmony_util.dir/table.cc.o"
  "CMakeFiles/harmony_util.dir/table.cc.o.d"
  "CMakeFiles/harmony_util.dir/units.cc.o"
  "CMakeFiles/harmony_util.dir/units.cc.o.d"
  "libharmony_util.a"
  "libharmony_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
