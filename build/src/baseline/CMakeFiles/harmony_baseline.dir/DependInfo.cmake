
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baseline_dp.cc" "src/baseline/CMakeFiles/harmony_baseline.dir/baseline_dp.cc.o" "gcc" "src/baseline/CMakeFiles/harmony_baseline.dir/baseline_dp.cc.o.d"
  "/root/repo/src/baseline/baseline_pp.cc" "src/baseline/CMakeFiles/harmony_baseline.dir/baseline_pp.cc.o" "gcc" "src/baseline/CMakeFiles/harmony_baseline.dir/baseline_pp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/harmony_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/harmony_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/harmony_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
