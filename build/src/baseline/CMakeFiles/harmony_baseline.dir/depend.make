# Empty dependencies file for harmony_baseline.
# This may be replaced when dependencies are built.
