file(REMOVE_RECURSE
  "libharmony_graph.a"
)
