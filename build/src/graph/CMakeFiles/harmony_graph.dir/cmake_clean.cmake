file(REMOVE_RECURSE
  "CMakeFiles/harmony_graph.dir/model.cc.o"
  "CMakeFiles/harmony_graph.dir/model.cc.o.d"
  "CMakeFiles/harmony_graph.dir/model_zoo.cc.o"
  "CMakeFiles/harmony_graph.dir/model_zoo.cc.o.d"
  "CMakeFiles/harmony_graph.dir/partition.cc.o"
  "CMakeFiles/harmony_graph.dir/partition.cc.o.d"
  "CMakeFiles/harmony_graph.dir/plan_builder.cc.o"
  "CMakeFiles/harmony_graph.dir/plan_builder.cc.o.d"
  "CMakeFiles/harmony_graph.dir/task.cc.o"
  "CMakeFiles/harmony_graph.dir/task.cc.o.d"
  "libharmony_graph.a"
  "libharmony_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
