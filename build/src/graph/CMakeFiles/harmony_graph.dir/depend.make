# Empty dependencies file for harmony_graph.
# This may be replaced when dependencies are built.
