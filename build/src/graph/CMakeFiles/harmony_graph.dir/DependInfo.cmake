
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/model.cc" "src/graph/CMakeFiles/harmony_graph.dir/model.cc.o" "gcc" "src/graph/CMakeFiles/harmony_graph.dir/model.cc.o.d"
  "/root/repo/src/graph/model_zoo.cc" "src/graph/CMakeFiles/harmony_graph.dir/model_zoo.cc.o" "gcc" "src/graph/CMakeFiles/harmony_graph.dir/model_zoo.cc.o.d"
  "/root/repo/src/graph/partition.cc" "src/graph/CMakeFiles/harmony_graph.dir/partition.cc.o" "gcc" "src/graph/CMakeFiles/harmony_graph.dir/partition.cc.o.d"
  "/root/repo/src/graph/plan_builder.cc" "src/graph/CMakeFiles/harmony_graph.dir/plan_builder.cc.o" "gcc" "src/graph/CMakeFiles/harmony_graph.dir/plan_builder.cc.o.d"
  "/root/repo/src/graph/task.cc" "src/graph/CMakeFiles/harmony_graph.dir/task.cc.o" "gcc" "src/graph/CMakeFiles/harmony_graph.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/harmony_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/harmony_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/harmony_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
