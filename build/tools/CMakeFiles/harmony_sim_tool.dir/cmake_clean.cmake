file(REMOVE_RECURSE
  "CMakeFiles/harmony_sim_tool.dir/harmony_sim.cc.o"
  "CMakeFiles/harmony_sim_tool.dir/harmony_sim.cc.o.d"
  "harmony_sim"
  "harmony_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
