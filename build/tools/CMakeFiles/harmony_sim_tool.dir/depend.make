# Empty dependencies file for harmony_sim_tool.
# This may be replaced when dependencies are built.
