# Empty compiler generated dependencies file for gpt2_pipeline.
# This may be replaced when dependencies are built.
