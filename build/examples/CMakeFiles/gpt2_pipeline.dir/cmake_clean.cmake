file(REMOVE_RECURSE
  "CMakeFiles/gpt2_pipeline.dir/gpt2_pipeline.cpp.o"
  "CMakeFiles/gpt2_pipeline.dir/gpt2_pipeline.cpp.o.d"
  "gpt2_pipeline"
  "gpt2_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpt2_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
