file(REMOVE_RECURSE
  "CMakeFiles/semantics_check.dir/semantics_check.cpp.o"
  "CMakeFiles/semantics_check.dir/semantics_check.cpp.o.d"
  "semantics_check"
  "semantics_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
