# Empty dependencies file for semantics_check.
# This may be replaced when dependencies are built.
