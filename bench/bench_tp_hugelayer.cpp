// Intra-op splitting (the paper's second key idea): when a *single layer's* working set
// exceeds one GPU's memory, no amount of layer-wise placement helps — DP replicates the
// layer, PP must still run it somewhere whole. Harmony-TP decomposes the operation itself:
// each GPU holds a 1/N shard of the layer's weights/gradients/optimizer state and the
// partial results are reduced over the interconnect.
//
// Workload: a 4-layer "wide classifier" (recommendation-style giant matmuls, 10 GiB of
// weights per layer) on the 4x 11 GiB server.
#include <cstdio>
#include <iostream>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

int main() {
  using namespace harmony;
  std::cout << "=== Intra-op splitting: layers bigger than a GPU (4 x 10 GiB layers, "
               "4x 11 GiB GPUs) ===\n\n";

  UniformModelConfig mc;
  mc.name = "wide-classifier";
  mc.num_layers = 4;
  mc.param_bytes = 10 * kGiB;
  mc.act_bytes_per_sample = 8 * kMiB;
  mc.optimizer_state_factor = 1.0;
  mc.fwd_flops_per_sample = 5e12;  // ~2 flops per weight element
  const Model model = MakeUniformModel(mc);
  std::cout << model.Summary() << "\n\n";

  TablePrinter table({"scheme", "feasible?", "peak task WS", "limit", "seqs/s",
                      "swap (GB/iter)", "collective (GB/iter)"});
  for (Scheme scheme : {Scheme::kBaselineDp, Scheme::kBaselinePp, Scheme::kHarmonyPp,
                        Scheme::kHarmonyTp}) {
    SessionConfig config;
    config.server.num_gpus = 4;
    config.scheme = scheme;
    config.microbatches = scheme == Scheme::kBaselineDp ? 1 : 4;
    config.microbatch_size = 4;
    config.iterations = 3;
    const auto peaks = ProbePeakWorkingSet(model, config);
    const Bytes peak = *std::max_element(peaks.begin(), peaks.end());
    if (peak > config.server.gpu.memory_bytes) {
      table.Row()
          .Cell(SchemeName(scheme))
          .Cell("NO")
          .Cell(FormatBytes(peak))
          .Cell(FormatBytes(config.server.gpu.memory_bytes))
          .Cell("-")
          .Cell("-")
          .Cell("-");
      continue;
    }
    const SessionResult result = RunTraining(model, config);
    table.Row()
        .Cell(SchemeName(scheme))
        .Cell("yes")
        .Cell(FormatBytes(peak))
        .Cell(FormatBytes(config.server.gpu.memory_bytes))
        .Cell(result.report.steady_throughput(), 2)
        .Cell(static_cast<double>(result.report.steady_swap_total()) / kGB, 2)
        .Cell(static_cast<double>(result.report.iterations[1].collective_bytes) / kGB, 2);
  }
  table.Print(std::cout);

  std::cout << "\nShape check vs paper: only intra-op task decomposition makes the job "
              "feasible — every layer-granularity scheme needs the whole 10 GiB operand "
              "(plus gradients) on one device at once. REPRODUCED (key idea 2, which the "
              "paper proposes without evaluation).\n";
  return 0;
}
