// Wall-clock reporter for the experiment benches: one stderr line per process so perf
// regressions are visible in every run, without touching the byte-stable stdout tables
// (the `golden` ctest label hashes stdout only; see tools/check_stdout_stable.sh).
#ifndef HARMONY_BENCH_BENCH_TIMER_H_
#define HARMONY_BENCH_BENCH_TIMER_H_

#include <chrono>
#include <cstdio>

namespace harmony {

class BenchWallClock {
 public:
  explicit BenchWallClock(const char* name)
      : name_(name), start_(std::chrono::steady_clock::now()) {}
  BenchWallClock(const BenchWallClock&) = delete;
  BenchWallClock& operator=(const BenchWallClock&) = delete;
  ~BenchWallClock() {
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
            .count();
    std::fprintf(stderr, "[bench] %s wall-clock: %.1f ms\n", name_, ms);
  }

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace harmony

#endif  // HARMONY_BENCH_BENCH_TIMER_H_
