// Fig. 1: DNN model size growth for image classification and language modeling over two
// decades (LeNet 60K ... GPT-3 175B), plus what each model's *training state* would demand
// versus a commodity 4x11GB server — the motivation for the whole paper.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/graph/model_zoo.h"
#include "src/util/status.h"
#include "src/util/table.h"
#include "src/util/units.h"

#include "bench/bench_timer.h"

int main() {
  harmony::BenchWallClock wall_clock("bench_fig1_model_growth");
  using namespace harmony;
  std::cout << "=== Fig. 1: model size growth (paper data) ===\n\n";

  // Builders exist for the catalogue's trainable entries; their parameter counts are
  // derived from the architectures, independent of the published numbers.
  auto built_params = [](const std::string& name) -> std::string {
    const StatusOr<Model> model = ModelByName(name);
    if (!model.ok()) {
      return "-";
    }
    return FormatCount(model.value().total_params());
  };
  const char* builders[] = {"lenet", "alexnet", "gnmt", "amoebanet", "gpt2-xl", "", ""};
  TablePrinter table(
      {"model", "year", "params (paper)", "params (our cost model)", "log10", "fp32 W+dW+K(Adam)"});
  int idx = 0;
  for (const CatalogueEntry& entry : Fig1Catalogue()) {
    const double training_state = static_cast<double>(entry.params) * 4.0 * (1 + 1 + 2);
    const char* builder = builders[idx];
    // GPT-2 sits at index 4 in the catalogue; T5/GPT-3 have no builder (nothing to run).
    table.Row()
        .Cell(entry.name)
        .Cell(entry.year)
        .Cell(FormatCount(entry.params))
        .Cell(*builder ? built_params(builder) : "-")
        .Cell(std::log10(static_cast<double>(entry.params)), 2)
        .Cell(FormatBytesDecimal(training_state));
    ++idx;
  }
  table.Print(std::cout);

  const double server = 4.0 * 11.0 * static_cast<double>(kGiB);
  std::cout << "\ncommodity server reference: 4x GTX 1080Ti = "
            << FormatBytesDecimal(server) << " aggregate GPU memory\n";
  std::cout << "models whose Adam training state alone exceeds the whole server:";
  for (const CatalogueEntry& entry : Fig1Catalogue()) {
    if (static_cast<double>(entry.params) * 16.0 > server) {
      std::cout << " " << entry.name;
    }
  }
  std::cout << "\n\nShape check vs paper: monotone growth 6e4 -> 1.75e11 over 1998-2020 "
               "(~6 orders of magnitude). REPRODUCED (data table).\n";
  return 0;
}
