// Fig. 4: the simplified Harmony-PP example — a four-layer "large" model trained on two
// GPUs with virtualized pipeline parallelism at layer granularity: layers placed in a loop
// (L0,L2 on gpu0; L1,L3 on gpu1), each layer-task running its group of two microbatches
// back-to-back, boundary activations flowing p2p, and each layer's weight update scheduled
// just-in-time after its backward group. The bench renders the executed timeline and checks
// the schedule's structural properties.
#include <cstdio>
#include <iostream>

#include "src/core/schedule_render.h"
#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

#include "bench/bench_timer.h"

int main() {
  harmony::BenchWallClock wall_clock("bench_fig4_schedule");
  using namespace harmony;
  std::cout << "=== Fig. 4: Harmony-PP toy schedule (4 layers, 2 GPUs, 2 microbatches) "
               "===\n\n";

  UniformModelConfig mc;
  mc.name = "toy-4layer";
  mc.num_layers = 4;
  mc.param_bytes = 256 * kMiB;
  mc.act_bytes_per_sample = 64 * kMiB;
  mc.fwd_flops_per_sample = 4e11;
  mc.optimizer_state_factor = 1.0;
  const Model model = MakeUniformModel(mc);

  SessionConfig config;
  config.server.num_gpus = 2;
  config.server.gpu = TestGpu(2 * kGiB, TFlops(4.0));
  config.scheme = Scheme::kHarmonyPp;
  config.microbatches = 2;
  config.microbatch_size = 4;
  config.iterations = 1;
  config.record_timeline = true;
  const SessionResult result = RunTraining(model, config);
  // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
  std::fprintf(stderr, "[explain] %s\n", Attribute(result.report).Summary().c_str());

  std::cout << RenderTimeline(result.plan, result.timeline) << "\n";
  std::cout << "task listing:\n" << ListTimeline(result.plan, result.timeline) << "\n";

  // Structural checks mirroring the figure.
  bool cyclic_placement = true;
  for (const Task& task : result.plan.tasks) {
    if (task.kind != TaskKind::kAllReduce && task.kind != TaskKind::kLoss &&
        task.device != task.layer_begin % 2) {
      cyclic_placement = false;
    }
  }
  // Grouping: both microbatches of a layer's forward run back-to-back on the device queue.
  bool grouped = true;
  for (const auto& order : result.plan.per_device_order) {
    for (std::size_t i = 1; i < order.size(); ++i) {
      const Task& prev = result.plan.tasks[static_cast<std::size_t>(order[i - 1])];
      const Task& cur = result.plan.tasks[static_cast<std::size_t>(order[i])];
      if (prev.kind == TaskKind::kForward && cur.kind == TaskKind::kForward &&
          prev.microbatch == 0 && cur.microbatch == 1 && prev.layer_begin != cur.layer_begin) {
        grouped = false;
      }
    }
  }
  const bool used_p2p = result.report.total_p2p > 0;

  TablePrinter checks({"figure property", "status"});
  checks.Row().Cell("layers placed in a loop across GPUs (L0,L2 | L1,L3)").Cell(
      cyclic_placement ? "yes" : "NO");
  checks.Row().Cell("input-batch grouping (microbatch group per layer task)").Cell(
      grouped ? "yes" : "NO");
  checks.Row().Cell("boundary activations travel over p2p links").Cell(used_p2p ? "yes"
                                                                               : "NO");
  checks.Row()
      .Cell("just-in-time weight update after each backward group")
      .Cell("yes (validated by scheduler_test)");
  checks.Print(std::cout);

  std::printf("\ntotal p2p %.2f GB, swap %.2f GB, makespan %.2f s\n",
              static_cast<double>(result.report.total_p2p) / kGB,
              static_cast<double>(result.report.total_swap_in +
                                  result.report.total_swap_out) /
                  kGB,
              result.report.makespan);
  std::printf("Shape check vs paper: %s\n",
              (cyclic_placement && grouped && used_p2p) ? "REPRODUCED" : "NOT REPRODUCED");
  return 0;
}
