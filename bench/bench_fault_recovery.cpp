// Fault tolerance under commodity-server failure rates: what elastic recovery costs.
//
// Three sweeps on a 4-GPU Harmony-PP configuration, all deterministic (seeded fault
// schedules, no wall clock):
//   1. throughput vs MTBF — seeded random fault schedules at decreasing mean time between
//      faults; the coordinator rebinds onto survivors after a fail-stop, so effective
//      throughput degrades gracefully instead of dropping to zero,
//   2. degraded-mode overhead — permanent host-uplink degradation at several scales (the
//      "slow PCIe switch" regime) against the clean run, and
//   3. checkpoint overhead — failure-free runs at several checkpoint cadences, isolating
//      the cost of the insurance itself.
// Results go to stdout as tables and to BENCH_fault_recovery.json for tooling.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/recovery.h"
#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/sim/fault_plan.h"
#include "src/util/table.h"

namespace {

struct MtbfPoint {
  double mtbf = 0.0;  // 0 = failure free
  int plan_events = 0;
  int failures = 0;
  int completed = 0;
  double throughput = 0.0;
  double lost_work = 0.0;
  double recovery_latency = 0.0;
  double reswap_gb = 0.0;
};

struct OverheadPoint {
  std::string label;
  double value = 0.0;     // knob value (scale or cadence)
  double makespan = 0.0;
  double overhead = 0.0;  // fraction over the clean run
};

}  // namespace

int main() {
  using namespace harmony;
  std::cout << "=== Fault injection + elastic recovery: throughput vs MTBF, degraded-mode "
               "and checkpoint overhead ===\n\n";

  UniformModelConfig mc;
  mc.name = "uniform-fault-bench";
  mc.num_layers = 12;
  mc.param_bytes = 64 * kMiB;
  mc.act_bytes_per_sample = 16 * kMiB;
  mc.optimizer_state_factor = 1.0;
  mc.fwd_flops_per_sample = 2e11;
  const Model model = MakeUniformModel(mc);
  std::cout << model.Summary() << "\n";

  SessionConfig base;
  base.server.num_gpus = 4;
  base.server.gpus_per_switch = 4;
  base.server.gpu = TestGpu(512 * kMiB, TFlops(2.0));
  base.scheme = Scheme::kHarmonyPp;
  base.microbatches = 4;
  base.microbatch_size = 2;
  base.iterations = 8;
  base.checkpoint_every = 2;

  const ElasticResult clean = RunTrainingElastic(model, base);
  const double clean_makespan = clean.total_makespan;
  const double samples =
      static_cast<double>(clean.final_segment().result.report.samples_per_iteration);
  std::printf("failure-free: %d iterations in %.3f s (%.2f samples/s), %d checkpoints\n\n",
              clean.completed_iterations, clean_makespan,
              samples * base.iterations / clean_makespan, clean.checkpoints_committed);

  // ---- 1. throughput vs MTBF -------------------------------------------------------------
  std::vector<MtbfPoint> mtbf_points;
  {
    MtbfPoint p;
    p.mtbf = 0.0;
    p.completed = clean.completed_iterations;
    p.throughput = samples * base.iterations / clean_makespan;
    mtbf_points.push_back(p);
  }
  // MTBF as multiples of the clean makespan: 4x (rare) down to 0.5x (brutal). The horizon
  // covers the stretched run so recovery segments stay under fire.
  for (double factor : {4.0, 2.0, 1.0, 0.5}) {
    RandomFaultOptions options;
    options.seed = 17;
    options.mtbf = factor * clean_makespan;
    options.horizon = 4.0 * clean_makespan;
    options.num_gpus = base.server.num_gpus;
    SessionConfig config = base;
    config.faults = MakeRandomFaultPlan(options);
    const ElasticResult result = RunTrainingElastic(model, config);
    MtbfPoint p;
    p.mtbf = options.mtbf;
    p.plan_events = config.faults.size();
    p.failures = result.stats.failures;
    p.completed = result.completed_iterations;
    p.lost_work = result.stats.lost_work_sec;
    p.recovery_latency = result.stats.recovery_latency_sec;
    p.reswap_gb = static_cast<double>(result.stats.reswap_bytes) / kGB;
    if (result.status.ok()) {
      p.throughput = samples * base.iterations / result.total_makespan;
    }
    mtbf_points.push_back(p);
  }

  TablePrinter mtbf_table({"MTBF (s)", "plan events", "fail-stops", "iterations done",
                           "throughput (samples/s)", "vs clean", "lost work (s)",
                           "recovery latency (s)", "re-swap (GB)"});
  for (const MtbfPoint& p : mtbf_points) {
    mtbf_table.Row()
        .Cell(p.mtbf > 0.0 ? std::to_string(p.mtbf).substr(0, 5) : "inf")
        .Cell(p.plan_events)
        .Cell(p.failures)
        .Cell(p.completed)
        .Cell(p.throughput, 2)
        .Cell(p.throughput / mtbf_points[0].throughput, 3)
        .Cell(p.lost_work, 3)
        .Cell(p.recovery_latency, 3)
        .Cell(p.reswap_gb, 3);
  }
  std::cout << "--- throughput vs MTBF (elastic recovery, checkpoint every 2 iterations, "
               "seed 17) ---\n"
            << mtbf_table.ToString() << "\n";

  // ---- 1b. recovery cost per fail-stop ---------------------------------------------------
  // Deterministic fail-stop schedules: k GPUs amputated at fixed fractions of the clean
  // makespan. This isolates the elastic-recovery cost (rollback + rebind + re-stage) from
  // the bandwidth noise of random degradations.
  std::vector<MtbfPoint> failstop_points;
  TablePrinter failstop_table({"fail-stops", "gpus left", "iterations done",
                               "throughput (samples/s)", "vs clean", "lost work (s)",
                               "recovery latency (s)", "re-swap (GB)"});
  for (int kills : {0, 1, 2}) {
    SessionConfig config = base;
    if (kills >= 1) {
      config.faults.Add(FaultEvent{0.45 * clean_makespan, FaultKind::kGpuFailStop, 1});
    }
    if (kills >= 2) {
      config.faults.Add(FaultEvent{0.9 * clean_makespan, FaultKind::kGpuFailStop, 2});
    }
    const ElasticResult result = RunTrainingElastic(model, config);
    MtbfPoint p;
    p.plan_events = config.faults.size();
    p.failures = result.stats.failures;
    p.completed = result.completed_iterations;
    p.lost_work = result.stats.lost_work_sec;
    p.recovery_latency = result.stats.recovery_latency_sec;
    p.reswap_gb = static_cast<double>(result.stats.reswap_bytes) / kGB;
    if (result.status.ok()) {
      p.throughput = samples * base.iterations / result.total_makespan;
    }
    failstop_points.push_back(p);
    failstop_table.Row()
        .Cell(p.failures)
        .Cell(base.server.num_gpus - p.failures)
        .Cell(p.completed)
        .Cell(p.throughput, 2)
        .Cell(p.throughput / mtbf_points[0].throughput, 3)
        .Cell(p.lost_work, 3)
        .Cell(p.recovery_latency, 3)
        .Cell(p.reswap_gb, 3);
  }
  std::cout << "--- recovery cost per fail-stop (deterministic schedules) ---\n"
            << failstop_table.ToString() << "\n";

  // ---- 2. degraded-mode overhead ---------------------------------------------------------
  std::vector<OverheadPoint> degrade_points;
  TablePrinter degrade_table(
      {"host uplink scale", "makespan (s)", "overhead vs clean", "iterations done"});
  for (double scale : {1.0, 0.75, 0.5, 0.25}) {
    SessionConfig config = base;
    config.checkpoint_every = 0;
    if (scale < 1.0) {
      config.faults.Add(FaultEvent{0.0, FaultKind::kHostLinkDegrade, -1, scale, 0.0});
    }
    const SessionResult result = RunTraining(model, config);
    OverheadPoint p;
    p.label = "host-uplink-" + std::to_string(scale).substr(0, 4);
    p.value = scale;
    p.makespan = result.report.makespan;
    degrade_points.push_back(p);
    degrade_table.Row()
        .Cell(scale, 2)
        .Cell(p.makespan, 3)
        .Cell(p.makespan / degrade_points[0].makespan - 1.0, 3)
        .Cell(static_cast<int>(result.report.iterations.size()));
  }
  for (OverheadPoint& p : degrade_points) {
    p.overhead = p.makespan / degrade_points[0].makespan - 1.0;
  }
  std::cout << "--- degraded mode: permanent host-uplink degradation ---\n"
            << degrade_table.ToString() << "\n";

  // ---- 3. checkpoint overhead ------------------------------------------------------------
  std::vector<OverheadPoint> checkpoint_points;
  TablePrinter ckpt_table({"checkpoint every", "makespan (s)", "overhead vs none",
                           "checkpoints", "checkpoint GB"});
  for (int every : {0, 4, 2, 1}) {
    SessionConfig config = base;
    config.checkpoint_every = every;
    const SessionResult result = RunTraining(model, config);
    OverheadPoint p;
    p.label = every == 0 ? "none" : "every-" + std::to_string(every);
    p.value = every;
    p.makespan = result.report.makespan;
    checkpoint_points.push_back(p);
    ckpt_table.Row()
        .Cell(every == 0 ? "never" : std::to_string(every))
        .Cell(p.makespan, 3)
        .Cell(p.makespan / checkpoint_points[0].makespan - 1.0, 3)
        .Cell(result.report.checkpoints_committed)
        .Cell(static_cast<double>(result.report.checkpoint_bytes) / kGB, 3);
  }
  for (OverheadPoint& p : checkpoint_points) {
    p.overhead = p.makespan / checkpoint_points[0].makespan - 1.0;
  }
  std::cout << "--- checkpoint cadence overhead (failure free) ---\n"
            << ckpt_table.ToString() << "\n";

  // ---- JSON artifact ---------------------------------------------------------------------
  std::FILE* json = std::fopen("BENCH_fault_recovery.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"throughput_vs_mtbf\": [\n");
    for (std::size_t i = 0; i < mtbf_points.size(); ++i) {
      const MtbfPoint& p = mtbf_points[i];
      std::fprintf(json,
                   "    {\"mtbf_s\": %.6f, \"failures\": %d, \"iterations\": %d, "
                   "\"throughput_samples_per_s\": %.6f, \"lost_work_s\": %.6f, "
                   "\"recovery_latency_s\": %.6f, \"reswap_gb\": %.6f}%s\n",
                   p.mtbf, p.failures, p.completed, p.throughput, p.lost_work,
                   p.recovery_latency, p.reswap_gb,
                   i + 1 < mtbf_points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"failstop_recovery\": [\n");
    for (std::size_t i = 0; i < failstop_points.size(); ++i) {
      const MtbfPoint& p = failstop_points[i];
      std::fprintf(json,
                   "    {\"fail_stops\": %d, \"iterations\": %d, "
                   "\"throughput_samples_per_s\": %.6f, \"lost_work_s\": %.6f, "
                   "\"recovery_latency_s\": %.6f, \"reswap_gb\": %.6f}%s\n",
                   p.failures, p.completed, p.throughput, p.lost_work,
                   p.recovery_latency, p.reswap_gb,
                   i + 1 < failstop_points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"degraded_mode_overhead\": [\n");
    for (std::size_t i = 0; i < degrade_points.size(); ++i) {
      const OverheadPoint& p = degrade_points[i];
      std::fprintf(json,
                   "    {\"host_uplink_scale\": %.2f, \"makespan_s\": %.6f, "
                   "\"overhead\": %.6f}%s\n",
                   p.value, p.makespan, p.overhead,
                   i + 1 < degrade_points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n  \"checkpoint_overhead\": [\n");
    for (std::size_t i = 0; i < checkpoint_points.size(); ++i) {
      const OverheadPoint& p = checkpoint_points[i];
      std::fprintf(json,
                   "    {\"checkpoint_every\": %.0f, \"makespan_s\": %.6f, "
                   "\"overhead\": %.6f}%s\n",
                   p.value, p.makespan, p.overhead,
                   i + 1 < checkpoint_points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::cout << "wrote BENCH_fault_recovery.json\n";
  }
  return 0;
}
