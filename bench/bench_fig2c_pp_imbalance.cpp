// Fig. 2(c): pipeline parallelism with per-GPU tensor swapping. BERT over four 1F1B stages:
// the head stage keeps the most activation stashes in flight, so its memory demand exceeds
// capacity hardest ("Heavy Swap") while the tail stage fits ("No Swap") — the bottleneck-
// stage imbalance the paper plots per GPU index.
#include <cstdio>
#include <iostream>

#include "src/baseline/baseline_pp.h"
#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

#include "bench/bench_timer.h"

int main() {
  harmony::BenchWallClock wall_clock("bench_fig2c_pp_imbalance");
  using namespace harmony;
  std::cout << "=== Fig. 2(c): PP with per-GPU tensor swapping (BERT-large, 4 stages, "
               "1F1B) ===\n\n";

  const Model bert = MakeBertLarge();
  const int kMicrobatches = 8;  // 1F1B: head stage keeps 4 stashes in flight
  const auto bounds = BaselinePpStageBoundaries(bert, 4);

  SessionConfig config;
  config.server.num_gpus = 4;
  config.scheme = Scheme::kBaselinePp;
  config.microbatches = kMicrobatches;
  config.microbatch_size = 8;  // 8 seqs x 512 tokens per microbatch
  config.iterations = 3;
  const SessionResult result = RunTraining(bert, config);
  // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
  std::fprintf(stderr, "[explain] %s\n", Attribute(result.report).Summary().c_str());

  const double capacity_gb = static_cast<double>(11 * kGiB) / kGB;
  TablePrinter table({"GPU index", "layers", "mem demand (GB)", "capacity (GB)",
                      "swap volume (GB/iter)", "regime"});
  std::vector<double> swaps;
  for (int g = 0; g < 4; ++g) {
    const double demand_gb =
        static_cast<double>(result.memory_demand_per_device[static_cast<std::size_t>(g)]) / kGB;
    const auto& it = result.report.iterations[1];
    const double swap_gb = static_cast<double>(it.swap_in_per_device[static_cast<std::size_t>(g)] +
                                               it.swap_out_per_device[static_cast<std::size_t>(g)]) /
                           kGB;
    swaps.push_back(swap_gb);
    const char* regime =
        swap_gb > 1.0 ? "Heavy Swap" : (swap_gb > 0.05 ? "Light Swap" : "No Swap");
    table.Row()
        .Cell("gpu" + std::to_string(g))
        .Cell("L" + std::to_string(bounds[static_cast<std::size_t>(g)]) + "-L" +
              std::to_string(bounds[static_cast<std::size_t>(g + 1)] - 1))
        .Cell(demand_gb, 2)
        .Cell(capacity_gb, 2)
        .Cell(swap_gb, 2)
        .Cell(regime);
  }
  table.Print(std::cout);

  std::cout << "\nsteady iteration time " << result.report.steady_iteration_time()
            << " s; device busy seconds:";
  for (double busy : result.report.device_busy) {
    std::printf(" %.2f", busy / 3.0);
  }
  std::cout << " (per iteration)\n";

  const bool head_heavier = swaps.front() > 2.0 * swaps.back() + 0.5;
  std::printf(
      "\nShape check vs paper: memory demand and swap volume decrease monotonically from the "
      "head stage (gpu0, stashes %d microbatches) to the tail (gpu3, stashes 1); the head "
      "stage is the swap bottleneck. %s\n",
      4, head_heavier ? "REPRODUCED" : "NOT REPRODUCED");
  return 0;
}
