// Multi-tenant scheduling: goodput and p99 queueing delay vs offered load at 8 / 64 GPUs.
//
// The cluster scheduler (DESIGN.md §13) admits a mixed training + serving stream under
// per-tenant quotas. This bench sweeps the offered load (Poisson arrival rate) over two
// fleet sizes and reports what a capacity planner reads off the per-tenant SLO rollup:
// cluster goodput (completed samples/s), utilization, preemption count, and the worst
// tenant's p99 queueing delay. The qualitative shape is the classic queueing curve —
// goodput grows with load while delay stays flat, then delay grows once the fleet
// saturates — and the 64-GPU fleet absorbs the same stream with a fraction of the delay.
//
// Results go to stdout as a table and to BENCH_multitenant.json for tooling. Output is
// deterministic at any HARMONY_SIM_THREADS setting (the golden-stdout manifest hashes it
// at 1, 2 and 8).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/runtime/cluster_scheduler.h"
#include "src/util/check.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace {

struct LoadPoint {
  int gpus = 0;
  int nodes = 0;
  double rate = 0.0;  // offered load, jobs/s
  int jobs = 0;
  int completed = 0;
  int preemptions = 0;
  double utilization = 0.0;
  double goodput = 0.0;        // cluster-wide completed samples/s
  double q_delay_p99 = 0.0;    // worst tenant's p99 queueing delay
  double makespan = 0.0;
};

}  // namespace

int main() {
  using namespace harmony;
  std::cout << "=== Multi-tenant scheduling: goodput and p99 queueing delay vs offered "
               "load at 8 / 64 GPUs ===\n\n";

  struct Shape {
    int nodes;
    int nodes_per_rack;
  };
  const std::vector<Shape> shapes = {{2, 0}, {16, 8}};
  const std::vector<double> rates = {0.2, 0.5, 1.0};

  std::vector<LoadPoint> points;
  for (const Shape& shape : shapes) {
    for (const double rate : rates) {
      ClusterSchedulerConfig config;
      config.server.num_gpus = 4;
      config.num_nodes = shape.nodes;
      config.nodes_per_rack = shape.nodes_per_rack;
      config.policy = SchedPolicy::kPriority;
      config.sim_threads = 0;  // HARMONY_SIM_THREADS, so the manifest sweeps thread counts
      // A reserved-bandwidth tenant plus a memory-capped tenant keep both quota paths hot
      // in every sweep point.
      config.quotas.tenants["t0"].bw_fraction = 0.5;
      config.quotas.tenants["t1"].host_mem_bytes = 24 * kGiB;

      char trace[128];
      std::snprintf(trace, sizeof(trace),
                    "poisson:seed=42,rate=%.3f,horizon=30,serve_frac=0.3", rate);
      const StatusOr<std::vector<JobSpec>> jobs =
          GenerateTrace(trace, config.server.num_gpus, config.num_nodes, "toy");
      HCHECK(jobs.ok()) << jobs.status().ToString();
      const StatusOr<ClusterReport> run = RunJobStream(jobs.value(), config);
      HCHECK(run.ok()) << run.status().ToString();
      const ClusterReport& report = run.value();

      LoadPoint p;
      p.gpus = report.total_gpus;
      p.nodes = report.num_nodes;
      p.rate = rate;
      p.jobs = static_cast<int>(report.jobs.size());
      p.completed = report.completed_jobs;
      p.preemptions = report.preemptions;
      p.utilization = report.utilization;
      p.makespan = report.makespan;
      for (const TenantSlo& slo : report.tenants) {
        p.goodput += slo.goodput;
        p.q_delay_p99 = std::max(p.q_delay_p99, slo.queue_delay_p99);
      }
      points.push_back(p);

      // Hard gates (deterministic sim, so these are exact, not statistical):
      //   - the stream drains: every job completes and loses zero iterations;
      //   - work happened: positive goodput and a utilization that is a real fraction.
      HCHECK_EQ(p.completed, p.jobs) << "jobs stranded at rate " << rate;
      for (const JobOutcome& job : report.jobs) {
        HCHECK_EQ(job.iterations_done, job.spec.iterations)
            << "job " << job.spec.id << " lost iterations";
      }
      HCHECK(p.goodput > 0.0);
      HCHECK(p.utilization > 0.0 && p.utilization <= 1.0);

      std::printf("%3d GPUs, rate %.1f jobs/s: %2d jobs, %d preemption(s), goodput %.2f "
                  "samples/s, p99 queue delay %.3f s, utilization %.3f\n",
                  p.gpus, p.rate, p.jobs, p.preemptions, p.goodput, p.q_delay_p99,
                  p.utilization);
    }
  }

  // The scale story: at every offered load, the 64-GPU fleet's worst-tenant p99 queueing
  // delay is no worse than the 8-GPU fleet's for the identical arrival stream.
  const std::size_t per_shape = rates.size();
  for (std::size_t i = 0; i < per_shape; ++i) {
    HCHECK(points[per_shape + i].q_delay_p99 <= points[i].q_delay_p99 + 1e-9)
        << "scaling out worsened p99 queueing delay at rate " << points[i].rate;
  }

  std::cout << "\n";
  TablePrinter table({"GPUs", "nodes", "rate (jobs/s)", "jobs", "done", "preempt",
                      "goodput (samples/s)", "p99 q-delay (s)", "utilization",
                      "makespan (s)"});
  for (const LoadPoint& p : points) {
    table.Row()
        .Cell(p.gpus)
        .Cell(p.nodes)
        .Cell(p.rate, 1)
        .Cell(p.jobs)
        .Cell(p.completed)
        .Cell(p.preemptions)
        .Cell(p.goodput, 3)
        .Cell(p.q_delay_p99, 3)
        .Cell(p.utilization, 3)
        .Cell(p.makespan, 3);
  }
  std::cout << "--- offered-load sweep (4 GPUs per node, priority policy, t0 bw=0.5, "
               "t1 mem=24 GiB) ---\n"
            << table.ToString() << "\n";

  std::FILE* json = std::fopen("BENCH_multitenant.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const LoadPoint& p = points[i];
      std::fprintf(json,
                   "    {\"gpus\": %d, \"nodes\": %d, \"offered_rate_jobs_per_s\": %.3f, "
                   "\"jobs\": %d, \"completed\": %d, \"preemptions\": %d, "
                   "\"goodput_samples_per_s\": %.6f, \"p99_queue_delay_s\": %.6f, "
                   "\"utilization\": %.6f, \"makespan_s\": %.6f}%s\n",
                   p.gpus, p.nodes, p.rate, p.jobs, p.completed, p.preemptions, p.goodput,
                   p.q_delay_p99, p.utilization, p.makespan,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::cout << "wrote BENCH_multitenant.json\n";
  }
  return 0;
}
