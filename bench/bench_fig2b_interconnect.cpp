// Fig. 2(b): intra-server interconnects. The figure itself is a topology diagram; this
// bench reproduces its quantitative content: the route table of the commodity server, the
// oversubscription of the switch->host uplink (measured via a concurrent-swap sweep), and
// the advantage of device-to-device p2p transfers over bouncing through host memory.
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/hw/topology.h"
#include "src/hw/transfer_manager.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"

#include "bench/bench_timer.h"

int main() {
  harmony::BenchWallClock wall_clock("bench_fig2b_interconnect");
  using namespace harmony;
  std::cout << "=== Fig. 2(b): intra-server interconnect model ===\n\n";

  ServerConfig config;
  config.num_gpus = 4;
  config.gpus_per_switch = 4;  // 4:1 oversubscription of the host uplink
  const Topology topo = MakeCommodityServerTopology(config);
  std::cout << "routes:\n" << topo.DescribeRoutes() << "\n";

  // Uplink contention: per-flow and aggregate goodput as 1..8 GPUs swap concurrently.
  std::cout << "host-uplink contention sweep (each flow = 1 GB GPU->host swap):\n";
  TablePrinter contention({"concurrent swappers", "per-flow goodput", "aggregate goodput",
                           "completion time (s)"});
  ServerConfig big = config;
  big.num_gpus = 8;
  big.gpus_per_switch = 8;
  const Topology topo8 = MakeCommodityServerTopology(big);
  for (int n : {1, 2, 3, 4, 6, 8}) {
    Simulator sim;
    TransferManager tm(&sim, &topo8);
    const Bytes bytes = static_cast<Bytes>(1 * kGB);
    std::vector<OneShotEvent*> done;
    for (int g = 0; g < n; ++g) {
      done.push_back(
          tm.StartTransfer(topo8.gpu_node(g), topo8.host_node(), bytes, TransferKind::kSwapOut));
    }
    sim.RunUntilIdle();
    const double t = done.back()->fire_time();
    contention.Row()
        .Cell(std::to_string(n))
        .Cell(FormatBandwidth(static_cast<double>(bytes) / t))
        .Cell(FormatBandwidth(static_cast<double>(bytes) * n / t))
        .Cell(t, 3);
  }
  contention.Print(std::cout);

  // p2p vs host-staged transfer of one 1 GB activation between two GPUs.
  std::cout << "\ncross-GPU tensor transfer, 1 GB (the opt. 3 motivation):\n";
  TablePrinter modes({"mode", "path", "time (s)", "host-uplink bytes"});
  {
    Simulator sim;
    TransferManager tm(&sim, &topo);
    OneShotEvent* done = tm.StartTransfer(topo.gpu_node(0), topo.gpu_node(1),
                                          static_cast<Bytes>(1 * kGB), TransferKind::kPeerToPeer);
    sim.RunUntilIdle();
    Bytes uplink = 0;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const TopologyLink& link = topo.link(l);
      if (link.src == topo.host_node() || link.dst == topo.host_node()) {
        uplink += tm.link_stats(l).bytes_carried;
      }
    }
    modes.Row()
        .Cell("p2p (Harmony)")
        .Cell("gpu0 -> switch -> gpu1")
        .Cell(done->fire_time(), 3)
        .Cell(FormatBytesDecimal(static_cast<double>(uplink)));
  }
  {
    Simulator sim;
    TransferManager tm(&sim, &topo);
    // Per-GPU virtualization: swap-out to host, then swap-in on the peer (serialized).
    OneShotEvent* out = tm.StartTransfer(topo.gpu_node(0), topo.host_node(),
                                         static_cast<Bytes>(1 * kGB), TransferKind::kSwapOut);
    double total = -1.0;
    out->OnFired([&] {
      OneShotEvent* in = tm.StartTransfer(topo.host_node(), topo.gpu_node(1),
                                          static_cast<Bytes>(1 * kGB), TransferKind::kSwapIn);
      in->OnFired([&] { total = sim.now(); });
    });
    sim.RunUntilIdle();
    Bytes uplink = 0;
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const TopologyLink& link = topo.link(l);
      if (link.src == topo.host_node() || link.dst == topo.host_node()) {
        uplink += tm.link_stats(l).bytes_carried;
      }
    }
    modes.Row()
        .Cell("host-staged (naive)")
        .Cell("gpu0 -> host -> gpu1")
        .Cell(total, 3)
        .Cell(FormatBytesDecimal(static_cast<double>(uplink)));
  }
  modes.Print(std::cout);

  std::cout << "\nShape check vs paper: per-flow goodput degrades ~1/N on the shared uplink "
               "(4:1/8:1 oversubscription), and p2p moves tensors ~2x faster with zero host "
               "uplink traffic. REPRODUCED.\n";
  return 0;
}
