// Ablation of Harmony's four optimizations (Sec. 3), in two regimes:
//
//  1. BERT-large end-to-end, where total swap volume is dominated by activation stashes
//     (which every scheme must spill) — grouping/p2p/prefetch move throughput.
//  2. The paper's analytic tight-memory regime (uniform layers, capacity for roughly one
//     layer-level op), where grouping and jit scheduling change *state* traffic (weights,
//     gradients, optimizer moments) exactly as Sec. 3 derives.
//
// Task packing is ablated on a FLOPs-skewed model where round-robin placement happens to
// put both heavy layers on one GPU; the LPT packer splits them.
#include <cstdio>
#include <iostream>

#include "src/core/session.h"
#include "src/core/tuner.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

#include "bench/bench_timer.h"

namespace {

harmony::SessionConfig BertConfig() {
  harmony::SessionConfig config;
  config.server.num_gpus = 4;
  config.scheme = harmony::Scheme::kHarmonyPp;
  config.microbatches = 8;
  config.microbatch_size = 5;
  config.iterations = 3;
  config.pack_size = 2;
  return config;
}

double ClassSwapUnits(const harmony::IterationStats& it, harmony::TensorClass cls,
                      double unit) {
  return static_cast<double>(it.swap_in_by_class[static_cast<int>(cls)] +
                             it.swap_out_by_class[static_cast<int>(cls)]) /
         unit;
}

void ReportBert(harmony::TablePrinter& table, const char* label, const harmony::Model& model,
                const harmony::SessionConfig& config) {
  using namespace harmony;
  const RunReport report = ProfileTraining(model, config);
  // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
  std::fprintf(stderr, "[explain] %s: %s\n", label, Attribute(report).Summary().c_str());
  const auto& it = report.iterations[1];
  const double state =
      ClassSwapUnits(it, TensorClass::kWeight, kGB) +
      ClassSwapUnits(it, TensorClass::kWeightGrad, kGB) +
      ClassSwapUnits(it, TensorClass::kOptimizerState, kGB);
  table.Row()
      .Cell(label)
      .Cell(state, 2)
      .Cell(static_cast<double>(report.steady_swap_total()) / kGB, 2)
      .Cell(static_cast<double>(report.steady_p2p()) / kGB, 2)
      .Cell(report.steady_iteration_time(), 2)
      .Cell(report.steady_throughput(), 2);
}

}  // namespace

int main() {
  harmony::BenchWallClock wall_clock("bench_ablation_opts");
  using namespace harmony;
  std::cout << "=== Ablation 1: BERT-large, Harmony-PP on 4x 1080Ti (8 ubatches x 5) ===\n\n";
  const Model bert = MakeBertLarge();

  TablePrinter table({"configuration", "W+dW+K swap (GB/iter)", "total swap (GB/iter)",
                      "p2p (GB/iter)", "iter time (s)", "throughput (seqs/s)"});
  ReportBert(table, "full Harmony-PP", bert, BertConfig());
  {
    SessionConfig config = BertConfig();
    config.grouping = false;
    ReportBert(table, "- input-batch grouping", bert, config);
  }
  {
    SessionConfig config = BertConfig();
    config.jit_updates = false;
    ReportBert(table, "- jit updates", bert, config);
  }
  {
    SessionConfig config = BertConfig();
    config.p2p = false;
    ReportBert(table, "- p2p transfers", bert, config);
  }
  {
    SessionConfig config = BertConfig();
    config.policy = LmsPolicy();  // naive write-back AND no p2p: per-GPU virtualization
    ReportBert(table, "- coherent memory (LMS evict)", bert, config);
  }
  {
    SessionConfig config = BertConfig();
    config.prefetch = false;
    ReportBert(table, "- prefetch/double-buffering", bert, config);
  }
  {
    SessionConfig config = BertConfig();
    config.lookahead_eviction = true;
    ReportBert(table, "+ lookahead (Belady) eviction", bert, config);
  }
  table.Print(std::cout);

  // ---- Tight-memory analytic regime (Sec. 3 conditions) ------------------------------------
  std::cout << "\n=== Ablation 2: tight-memory regime (8 uniform layers, 2 GPUs, 26 MiB "
               "capacity; units of one layer's 8 MiB) ===\n\n";
  UniformModelConfig mc;
  mc.num_layers = 8;
  mc.param_bytes = 8 * kMiB;
  mc.act_bytes_per_sample = 2 * kMiB;
  mc.optimizer_state_factor = 1.0;
  mc.fwd_flops_per_sample = 1e9;
  const Model uniform = MakeUniformModel(mc);
  const double unit = static_cast<double>(8 * kMiB);

  TablePrinter tight({"configuration", "W swap", "dW swap", "K swap", "state total"});
  auto report_tight = [&](const char* label, bool grouping, bool jit) {
    SessionConfig config;
    config.server.num_gpus = 2;
    config.server.gpu = TestGpu(26 * kMiB, TFlops(1.0));
    config.scheme = Scheme::kHarmonyPp;
    config.microbatches = 4;
    config.microbatch_size = 1;
    config.iterations = 3;
    config.prefetch = false;
    config.grouping = grouping;
    config.jit_updates = jit;
    const RunReport report = ProfileTraining(uniform, config);
    // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
    std::fprintf(stderr, "[explain] %s: %s\n", label, Attribute(report).Summary().c_str());
    const auto& it = report.iterations[1];
    const double w = ClassSwapUnits(it, TensorClass::kWeight, unit);
    const double g = ClassSwapUnits(it, TensorClass::kWeightGrad, unit);
    const double k = ClassSwapUnits(it, TensorClass::kOptimizerState, unit);
    tight.Row().Cell(label).Cell(w, 0).Cell(g, 0).Cell(k, 0).Cell(w + g + k, 0);
  };
  report_tight("grouping + jit (full)", true, true);
  report_tight("- input-batch grouping", false, true);
  report_tight("- jit updates", true, false);
  report_tight("- both", false, false);
  tight.Print(std::cout);

  // ---- Task packing -------------------------------------------------------------------------
  std::cout << "\n=== Ablation 3: task packing on a FLOPs-skewed model (8 layers, costs "
               "4,1,4,1,1,1,1,1; 2 GPUs) ===\n\n";
  Model skewed("flops-skewed", 8 * kMiB);
  for (int l = 0; l < 8; ++l) {
    Layer layer;
    layer.name = "L" + std::to_string(l);
    layer.kind = LayerKind::kGeneric;
    layer.cost.param_bytes = 16 * kMiB;
    layer.cost.grad_bytes = 16 * kMiB;
    layer.cost.opt_state_bytes = 16 * kMiB;
    layer.cost.act_out_bytes_per_sample = 8 * kMiB;
    const bool heavy = l == 0 || l == 2;  // round-robin puts both on gpu0
    layer.cost.fwd_flops_per_sample = (heavy ? 4.0 : 1.0) * 1e11;
    layer.cost.bwd_flops_per_sample = 2.0 * layer.cost.fwd_flops_per_sample;
    layer.cost.upd_flops = 1e7;
    skewed.AddLayer(layer);
  }
  TablePrinter packing({"pack placement", "group size", "iter time (s)", "max busy (s/iter)",
                        "busy spread", "W swap (units)"});
  double best_rr = 1e30;
  double best_bal = 1e30;
  for (bool balanced : {false, true}) {
    for (int group : {8, 4, 2, 1}) {
      SessionConfig config;
      config.server.num_gpus = 2;
      config.server.gpu = TestGpu(2 * kGiB, TFlops(4.0));
      config.scheme = Scheme::kHarmonyPp;
      config.microbatches = 8;
      config.microbatch_size = 1;
      config.iterations = 3;
      config.pack_size = 1;
      config.balanced_packing = balanced;
      config.group_size = group;
      const RunReport report = ProfileTraining(skewed, config);
      double max_busy = 0.0;
      double min_busy = 1e30;
      for (double busy : report.device_busy) {
        max_busy = std::max(max_busy, busy / 3.0);
        min_busy = std::min(min_busy, busy / 3.0);
      }
      const double t = report.steady_iteration_time();
      (balanced ? best_bal : best_rr) = std::min(balanced ? best_bal : best_rr, t);
      packing.Row()
          .Cell(balanced ? "balanced (packer)" : "round-robin")
          .Cell(group)
          .Cell(t, 3)
          .Cell(max_busy, 3)
          .Cell(max_busy / min_busy, 2)
          .Cell(ClassSwapUnits(report.iterations[1], TensorClass::kWeight,
                               static_cast<double>(16 * kMiB)),
                0);
    }
  }
  packing.Print(std::cout);
  std::cout << "\n(compute skew: the round-robin bottleneck GPU stays saturated, so balancing "
               "busy time does not shorten the makespan here -- task granularity/placement "
               "is the open multi-dimensional problem the paper says it is.)\n";

  // ---- Task packing, memory-skewed case -----------------------------------------------------
  std::cout << "\n=== Ablation 4: packing by MEMORY load (2 stash-heavy layers; 2 GPUs, 2 GiB "
               "each) ===\n\n";
  Model mem_skewed("stash-skewed", 8 * kMiB);
  for (int l = 0; l < 8; ++l) {
    Layer layer;
    layer.name = "L" + std::to_string(l);
    layer.kind = LayerKind::kGeneric;
    layer.cost.param_bytes = 16 * kMiB;
    layer.cost.grad_bytes = 16 * kMiB;
    layer.cost.opt_state_bytes = 16 * kMiB;
    layer.cost.act_out_bytes_per_sample = 16 * kMiB;
    const bool heavy = l == 0 || l == 2;  // round-robin stacks both stashes on gpu0
    layer.cost.stash_bytes_per_sample = (heavy ? 512 : 32) * kMiB;
    // Deliberately compute-light so the head stage is swap-bound under round-robin.
    layer.cost.fwd_flops_per_sample = 1e10;
    layer.cost.bwd_flops_per_sample = 2e10;
    layer.cost.upd_flops = 1e7;
    mem_skewed.AddLayer(layer);
  }
  double mem_times[2] = {};
  TablePrinter mem_packing({"pack placement", "iter time (s)", "swap (GB/iter)",
                            "gpu0 demand (GB)", "gpu1 demand (GB)"});
  {
    int i = 0;
    for (bool balanced : {false, true}) {
      SessionConfig config;
      config.server.num_gpus = 2;
      config.server.gpu = TestGpu(2 * kGiB, TFlops(4.0));
      config.scheme = Scheme::kHarmonyPp;
      config.microbatches = 2;
      config.microbatch_size = 1;
      config.iterations = 3;
      config.pack_size = 1;
      config.balanced_packing = balanced;
      const SessionResult result = RunTraining(mem_skewed, config);
      mem_times[i++] = result.report.steady_iteration_time();
      mem_packing.Row()
          .Cell(balanced ? "balanced (packer)" : "round-robin")
          .Cell(result.report.steady_iteration_time(), 3)
          .Cell(static_cast<double>(result.report.steady_swap_total()) / kGB, 2)
          .Cell(static_cast<double>(result.memory_demand_per_device[0]) / kGB, 2)
          .Cell(static_cast<double>(result.memory_demand_per_device[1]) / kGB, 2);
    }
  }
  mem_packing.Print(std::cout);

  std::printf(
      "\nShape check vs paper: grouping is worth ~2x throughput end-to-end; in the tight "
      "regime grouping and jit each cut state traffic as Sec. 3 derives; p2p and coherent "
      "eviction remove host-uplink traffic; memory-balanced packing avoids the bottleneck "
      "stage entirely (%.2fx; compute-skew remains the open problem the paper flags). %s\n",
      mem_times[0] / mem_times[1], mem_times[1] < mem_times[0] ? "REPRODUCED" : "PARTIAL");
  return 0;
}
