// Fig. 2(a): the swap bottleneck of data-parallel training with per-GPU memory
// virtualization. BERT with per-GPU batch 5 on 1..4 simulated 1080Ti GPUs behind one PCIe
// switch (IBM-LMS-style naive write-back, no p2p). The paper's claims:
//   - global swap volume grows linearly with the number of GPUs (each replica swaps the
//     same state independently), and
//   - the shared switch->host uplink throttles global throughput, so scaling is far from
//     linear.
#include <cstdio>
#include <iostream>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

#include "bench/bench_timer.h"

int main() {
  harmony::BenchWallClock wall_clock("bench_fig2a_dp_swap");
  using namespace harmony;
  std::cout << "=== Fig. 2(a): DP with per-GPU tensor swapping (BERT-large, batch 5/GPU) "
               "===\n\n";

  const Model bert = MakeBertLarge();
  std::cout << bert.Summary() << "\n";
  std::cout << "single-replica training footprint (batch 5): "
            << FormatBytesDecimal(static_cast<double>(bert.SingleDeviceFootprint(5, 1)))
            << " vs 11 GiB GPU capacity -> per-GPU virtualization must swap\n\n";

  TablePrinter table({"# GPUs", "global throughput (seqs/s)", "global swap-out (GB/iter)",
                      "global swap-in (GB/iter)", "iter time (s)", "speedup vs 1 GPU",
                      "bottleneck link util"});
  double base_throughput = 0.0;
  double swap_out_1gpu = 0.0;
  std::vector<double> swap_outs;
  std::vector<double> throughputs;
  for (int n = 1; n <= 4; ++n) {
    SessionConfig config;
    config.server.num_gpus = n;
    config.server.gpus_per_switch = 4;
    config.scheme = Scheme::kBaselineDp;
    config.microbatches = 1;
    config.microbatch_size = 5;
    config.iterations = 3;
    const SessionResult result = RunTraining(bert, config);
    // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
    std::fprintf(stderr, "[explain] N=%d: %s\n", n,
                 Attribute(result.report).Summary().c_str());
    const double throughput = result.report.steady_throughput();
    const double out_gb = static_cast<double>(result.report.steady_swap_out()) / kGB;
    const double in_gb = static_cast<double>(result.report.steady_swap_in()) / kGB;
    if (n == 1) {
      base_throughput = throughput;
      swap_out_1gpu = out_gb;
    }
    swap_outs.push_back(out_gb);
    throughputs.push_back(throughput);
    const RunReport::LinkUsage* bottleneck = result.report.BottleneckLink();
    char util[64];
    std::snprintf(util, sizeof(util), "%s %.0f%%",
                  bottleneck != nullptr ? bottleneck->name.c_str() : "-",
                  bottleneck != nullptr ? bottleneck->utilization * 100.0 : 0.0);
    table.Row()
        .Cell("N=" + std::to_string(n))
        .Cell(throughput, 2)
        .Cell(out_gb, 2)
        .Cell(in_gb, 2)
        .Cell(result.report.steady_iteration_time(), 2)
        .Cell(throughput / base_throughput, 2)
        .Cell(util);
  }
  table.Print(std::cout);

  const double swap_growth = swap_outs.back() / swap_out_1gpu;
  const double speedup4 = throughputs.back() / base_throughput;
  std::printf(
      "\nShape check vs paper: swap volume grows ~linearly with N (measured %.1fx at N=4; "
      "paper: linear), while throughput scales only %.2fx at N=4 because all replicas "
      "share one swap uplink (paper: throughput throttled, far below 4x). %s\n",
      swap_growth, speedup4,
      (swap_growth > 3.0 && speedup4 < 3.0) ? "REPRODUCED" : "NOT REPRODUCED");
  return 0;
}
