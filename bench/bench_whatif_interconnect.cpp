// What-if study (Sec. 4: "runtime implementations will have to take into account
// heterogeneous and hierarchical interconnects"): the same Harmony-PP BERT job on
//   - the commodity 4-GPU server (single PCIe switch, 4:1 oversubscription),
//   - a split-switch server (2 GPUs per switch: cross-pair p2p crosses the root complex),
//   - an NVLink-class server (fast p2p tier),
//   - a 2-server x 2-GPU cluster over 25 GbE (each GPU swaps to its own host; boundary
//     activations that cross servers crawl over the network).
#include <cstdio>
#include <iostream>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/hw/transfer_manager.h"
#include "src/runtime/collective.h"
#include "src/runtime/demand.h"
#include "src/util/table.h"

namespace {

// RunTraining builds a single-server machine internally, so for arbitrary machines we wire
// the stack manually (this is also a living example of the library's lower-level API).
harmony::RunReport RunOnMachine(const harmony::Model& model, harmony::Machine machine,
                                const harmony::SessionConfig& config) {
  using namespace harmony;
  Simulator sim;
  TransferManager transfers(&sim, &machine.topology);
  TensorRegistry registry;
  Plan plan = BuildPlanForConfig(model, machine, &registry, config);
  std::vector<Bytes> capacities;
  for (const GpuSpec& gpu : machine.gpus) {
    capacities.push_back(gpu.memory_bytes);
  }
  MemorySystem memory(&sim, &transfers, &registry, &machine.topology, capacities,
                      DefaultPolicyFor(config.scheme, config.p2p));
  CollectiveEngine collective(&sim, &transfers);
  EngineOptions engine_options;
  engine_options.prefetch = config.prefetch;
  Engine engine(&sim, &machine, &memory, &transfers, &collective, &plan, engine_options);
  return engine.Run();
}

}  // namespace

int main() {
  using namespace harmony;
  std::cout << "=== What-if: interconnect tiers under Harmony-PP (BERT-large, 8 ubatches x 5) "
               "===\n\n";
  const Model bert = MakeBertLarge();

  SessionConfig config;
  config.scheme = Scheme::kHarmonyPp;
  config.microbatches = 8;
  config.microbatch_size = 5;
  config.iterations = 3;
  config.pack_size = 2;

  TablePrinter table({"machine", "iter time (s)", "throughput (seqs/s)", "swap (GB/iter)",
                      "p2p (GB/iter)"});
  auto report = [&](const char* label, Machine machine) {
    config.server.num_gpus = machine.num_gpus();
    const RunReport run = RunOnMachine(bert, std::move(machine), config);
    table.Row()
        .Cell(label)
        .Cell(run.steady_iteration_time(), 2)
        .Cell(run.steady_throughput(), 2)
        .Cell(static_cast<double>(run.steady_swap_total()) / kGB, 2)
        .Cell(static_cast<double>(run.steady_p2p()) / kGB, 2);
  };

  {
    ServerConfig server;
    server.num_gpus = 4;
    server.gpus_per_switch = 4;
    report("1 switch x 4 GPUs (paper testbed)", MakeCommodityServer(server));
  }
  {
    ServerConfig server;
    server.num_gpus = 4;
    server.gpus_per_switch = 2;  // cross-pair p2p crosses the root complex
    report("2 switches x 2 GPUs", MakeCommodityServer(server));
  }
  {
    ServerConfig server;
    server.num_gpus = 4;
    server.gpus_per_switch = 4;
    server.gpu_link = NvLink2();
    report("NVLink-class p2p tier", MakeCommodityServer(server));
  }
  {
    ClusterConfig cluster;
    cluster.num_servers = 2;
    cluster.server.num_gpus = 2;
    cluster.server.gpus_per_switch = 2;
    report("2 servers x 2 GPUs over 25GbE", MakeCluster(cluster));
  }
  table.Print(std::cout);

  std::cout << "\nfindings: BERT at batch 5 is *stash-swap bound*, so (a) splitting GPUs "
               "across switches/hosts doubles aggregate swap bandwidth and helps, (b) NVLink "
               "is wasted, (c) 25GbE between packs is tolerated because boundary tensors are "
               "small (~10 MB).\n";

  // The network tier bites once boundary activations are large relative to swaps: an
  // activation-heavy model (128 MiB boundary tensors, no stashes) flips the conclusion.
  std::cout << "\nactivation-heavy model (8 layers, 128 MiB boundary activations, "
               "4 ubatches):\n";
  UniformModelConfig mc;
  mc.name = "act-heavy";
  mc.num_layers = 8;
  mc.param_bytes = 64 * kMiB;
  mc.act_bytes_per_sample = 128 * kMiB;
  mc.optimizer_state_factor = 1.0;
  mc.fwd_flops_per_sample = 1e11;  // compute-light: boundary transfers dominate
  const Model act_heavy = MakeUniformModel(mc);

  SessionConfig heavy_config;
  heavy_config.scheme = Scheme::kHarmonyPp;
  heavy_config.microbatches = 4;
  heavy_config.microbatch_size = 1;
  heavy_config.iterations = 3;
  heavy_config.pack_size = 1;

  TablePrinter heavy({"machine", "iter time (s)", "p2p (GB/iter)", "slowdown"});
  double single_time = 0.0;
  {
    ServerConfig server;
    server.num_gpus = 4;
    server.gpus_per_switch = 4;
    server.gpu = TestGpu(4 * kGiB, TFlops(4.0));
    heavy_config.server = server;
    const RunReport run = RunOnMachine(act_heavy, MakeCommodityServer(server), heavy_config);
    single_time = run.steady_iteration_time();
    heavy.Row()
        .Cell("1 server, PCIe switch")
        .Cell(single_time, 2)
        .Cell(static_cast<double>(run.steady_p2p()) / kGB, 2)
        .Cell(1.0, 2);
  }
  {
    ClusterConfig cluster;
    cluster.num_servers = 2;
    cluster.server.num_gpus = 2;
    cluster.server.gpus_per_switch = 2;
    cluster.server.gpu = TestGpu(4 * kGiB, TFlops(4.0));
    heavy_config.server = cluster.server;
    const RunReport run = RunOnMachine(act_heavy, MakeCluster(cluster), heavy_config);
    heavy.Row()
        .Cell("2 servers over 25GbE")
        .Cell(run.steady_iteration_time(), 2)
        .Cell(static_cast<double>(run.steady_p2p()) / kGB, 2)
        .Cell(run.steady_iteration_time() / single_time, 2);
  }
  heavy.Print(std::cout);

  std::cout << "\nShape check vs paper (Sec. 4): interconnect hierarchy matters and is "
               "workload-dependent — a multi-server Harmony scheduler must place packs "
               "server-aware once boundary tensors grow. REPRODUCED (qualitative).\n";
  return 0;
}
