// End-to-end comparison: all four schemes training BERT-large (whose training state
// exceeds a single 11 GB GPU) on the simulated 4x1080Ti commodity server, at a fixed global
// minibatch of 32 sequences.
//
// The baselines run as stock scripts (the paper's point: their schedule is rigid). The
// Harmony rows use the system's Performance Tuner (Fig. 3): each scheme is profiled over a
// small configuration space (microbatch split, pack size, activation recomputation) and the
// best feasible point is reported — that freedom *is* the contribution being measured.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/core/tuner.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

#include "bench/bench_timer.h"

namespace {

struct Outcome {
  std::string label;
  harmony::RunReport report;
};

Outcome RunBest(const char* name, const harmony::Model& model,
                const std::vector<std::pair<std::string, harmony::SessionConfig>>& candidates) {
  using namespace harmony;
  const Outcome* best = nullptr;
  std::vector<Outcome> outcomes;
  outcomes.reserve(candidates.size());
  for (const auto& [suffix, config] : candidates) {
    const auto peaks = CachedProbePeakWorkingSet(model, config);
    if (*std::max_element(peaks.begin(), peaks.end()) > config.server.gpu.memory_bytes) {
      continue;  // infeasible point
    }
    outcomes.push_back(Outcome{std::string(name) + suffix, ProfileTraining(model, config)});
    // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
    std::fprintf(stderr, "[explain] %s: %s\n", outcomes.back().label.c_str(),
                 Attribute(outcomes.back().report).Summary().c_str());
    if (best == nullptr ||
        outcomes.back().report.steady_throughput() > best->report.steady_throughput()) {
      best = &outcomes.back();
    }
  }
  return *best;
}

}  // namespace

int main() {
  harmony::BenchWallClock wall_clock("bench_e2e_comparison");
  using namespace harmony;
  std::cout << "=== End-to-end: BERT-large on 4x 1080Ti (global minibatch 32 seqs) ===\n\n";
  const Model bert = MakeBertLarge();
  std::cout << bert.Summary() << "\n\n";

  SessionConfig base;
  base.server.num_gpus = 4;
  base.iterations = 3;

  std::vector<Outcome> rows;

  {  // Stock DDP script: per-GPU batch 8 as one microbatch, LMS virtualization.
    SessionConfig config = base;
    config.scheme = Scheme::kBaselineDp;
    config.microbatches = 1;
    config.microbatch_size = 8;
    rows.push_back(Outcome{"baseline-DP (DDP + LMS)", ProfileTraining(bert, config)});
    std::fprintf(stderr, "[explain] %s: %s\n", rows.back().label.c_str(),
                 Attribute(rows.back().report).Summary().c_str());
  }
  {  // Stock 1F1B script: 4 stages, 4 microbatches of 8.
    SessionConfig config = base;
    config.scheme = Scheme::kBaselinePp;
    config.microbatches = 4;
    config.microbatch_size = 8;
    rows.push_back(Outcome{"baseline-PP (1F1B + LMS)", ProfileTraining(bert, config)});
    std::fprintf(stderr, "[explain] %s: %s\n", rows.back().label.c_str(),
                 Attribute(rows.back().report).Summary().c_str());
  }
  {  // Harmony-DP, tuner over microbatch split x recompute.
    std::vector<std::pair<std::string, SessionConfig>> candidates;
    for (int m : {1, 2, 4}) {
      for (bool recompute : {false, true}) {
        SessionConfig config = base;
        config.scheme = Scheme::kHarmonyDp;
        config.microbatches = m;
        config.microbatch_size = 8 / m;
        config.recompute = recompute;
        candidates.emplace_back(" [m=" + std::to_string(m) +
                                    (recompute ? ",recompute]" : "]"),
                                config);
      }
    }
    rows.push_back(RunBest("Harmony-DP", bert, candidates));
  }
  {  // Harmony-PP, tuner over pack size x microbatch split x recompute.
    std::vector<std::pair<std::string, SessionConfig>> candidates;
    for (int pack : {2, 4, 8}) {
      for (int mbs : {4, 8}) {
        for (bool recompute : {false, true}) {
          SessionConfig config = base;
          config.scheme = Scheme::kHarmonyPp;
          config.microbatch_size = mbs;
          config.microbatches = 32 / mbs;
          config.pack_size = pack;
          config.recompute = recompute;
          candidates.emplace_back(" [pack=" + std::to_string(pack) + ",ub=" +
                                      std::to_string(mbs) +
                                      (recompute ? ",recompute]" : "]"),
                                  config);
        }
      }
    }
    rows.push_back(RunBest("Harmony-PP", bert, candidates));
  }

  TablePrinter table({"scheme", "throughput (seqs/s)", "iter (s)", "swap (GB/iter)",
                      "p2p (GB/iter)", "allreduce (GB/iter)", "speedup vs baseline-DP"});
  const double base_throughput = rows.front().report.steady_throughput();
  for (const Outcome& row : rows) {
    const auto& it = row.report.iterations[1];
    table.Row()
        .Cell(row.label)
        .Cell(row.report.steady_throughput(), 2)
        .Cell(row.report.steady_iteration_time(), 2)
        .Cell(static_cast<double>(row.report.steady_swap_total()) / kGB, 2)
        .Cell(static_cast<double>(row.report.steady_p2p()) / kGB, 2)
        .Cell(static_cast<double>(it.collective_bytes) / kGB, 2)
        .Cell(row.report.steady_throughput() / base_throughput, 2);
  }
  table.Print(std::cout);

  const double dp_gain =
      rows[2].report.steady_throughput() / rows[0].report.steady_throughput();
  const double pp_gain =
      rows[3].report.steady_throughput() / rows[1].report.steady_throughput();
  std::printf(
      "\nShape check vs paper: Harmony variants dominate their per-GPU-virtualization "
      "baselines (DP: %.2fx, PP: %.2fx), with Harmony-PP best overall. %s\n",
      dp_gain, pp_gain,
      (dp_gain > 1.0 && pp_gain > 1.0) ? "REPRODUCED" : "NOT REPRODUCED");
  return 0;
}
