// Cluster scale-out: swap volume and bottleneck attribution at 8 / 64 / 512 GPUs.
//
// Harmony's pitch survives scale-out only if (a) the per-GPU swap traffic the paper
// measures on one commodity box stays flat as data parallelism spans nodes — swaps are
// host-local by construction, so the PCIe tier should carry the same bytes per GPU at any
// fleet size — and (b) the added cost shows up where the hardware says it must: in the
// hierarchical all-reduce, on the NIC and rack tiers, shifting the bottleneck attribution
// from swap links toward collective stalls as nodes multiply.
//
// Three scale points on the same per-node shape (4 GPUs per server, DP across the fleet):
//   8 GPUs   =   2 nodes, one rack        (intra-node ring + 2-node exchange)
//   64 GPUs  =  16 nodes, 8 per rack      (ToR tier engaged)
//   512 GPUs = 128 nodes, 16 per rack     (8 racks behind the spine)
// Results go to stdout as a table and to BENCH_cluster.json for tooling. Output is
// deterministic at any HARMONY_SIM_THREADS setting (the golden-stdout manifest hashes it
// at 1, 2 and 8).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/runtime/metrics.h"
#include "src/util/check.h"
#include "src/util/table.h"

namespace {

struct ScalePoint {
  int nodes = 0;
  int nodes_per_rack = 0;
  int racks = 0;
  int gpus = 0;
  double steady_iter_s = 0.0;
  double throughput = 0.0;       // samples / s
  double swap_per_gpu = 0.0;     // steady swap bytes per iteration per GPU
  double pcie_bytes = 0.0;       // whole-run tier totals
  double nic_bytes = 0.0;
  double rack_bytes = 0.0;
  double nic_swap = 0.0;         // must stay zero: swaps never leave the host
  double rack_swap = 0.0;
  double collective_per_gpu = 0.0;  // whole-run collective bytes / GPU (all tiers)
  std::string worst_stall;       // dominant stall class on the worst device
  std::string hot_link;          // top contended link
  double hot_util = 0.0;
};

}  // namespace

int main() {
  using namespace harmony;
  std::cout << "=== Cluster scale-out: swap volume and bottleneck attribution at 8 / 64 / "
               "512 GPUs ===\n\n";

  // Swap-bound per node on purpose: full DP replicas that outsize the 1.5 GiB test GPU, so
  // the single-box swap churn the paper measures is present at every scale point and any
  // scale-dependent growth is attributable to the network tiers alone.
  UniformModelConfig mc;
  mc.name = "uniform-scaleout-bench";
  mc.num_layers = 8;
  mc.param_bytes = 128 * kMiB;
  mc.act_bytes_per_sample = 8 * kMiB;
  mc.optimizer_state_factor = 2.0;
  mc.fwd_flops_per_sample = 1e11;
  const Model model = MakeUniformModel(mc);
  std::cout << model.Summary() << "\n";

  SessionConfig base;
  base.server.num_gpus = 4;
  base.server.gpus_per_switch = 4;
  base.server.gpu = TestGpu(1536 * kMiB, TFlops(2.0));
  base.scheme = Scheme::kHarmonyDp;
  base.microbatches = 2;
  base.microbatch_size = 2;
  base.iterations = 3;

  struct Shape {
    int nodes;
    int nodes_per_rack;
  };
  const std::vector<Shape> shapes = {{2, 0}, {16, 8}, {128, 16}};

  std::vector<ScalePoint> points;
  for (const Shape& shape : shapes) {
    SessionConfig config = base;
    config.num_nodes = shape.nodes;
    config.nodes_per_rack = shape.nodes_per_rack;
    const Status valid = ValidateSessionConfig(model, config);
    HCHECK(valid.ok()) << valid.ToString();
    const SessionResult result = RunTraining(model, config);
    const RunReport& report = result.report;

    ScalePoint p;
    p.nodes = shape.nodes;
    p.nodes_per_rack = shape.nodes_per_rack == 0 ? shape.nodes : shape.nodes_per_rack;
    p.racks = (shape.nodes + p.nodes_per_rack - 1) / p.nodes_per_rack;
    p.gpus = config.total_gpus();
    p.steady_iter_s = report.steady_iteration_time();
    p.throughput = report.steady_throughput();
    p.swap_per_gpu =
        static_cast<double>(report.steady_swap_total()) / static_cast<double>(p.gpus);
    HCHECK(!report.tiers.empty()) << "multi-node run produced no tier rollup";
    for (const RunReport::TierUsage& tier : report.tiers) {
      const double swap = static_cast<double>(tier.of(TransferKind::kSwapIn) +
                                              tier.of(TransferKind::kSwapOut));
      if (tier.name == "pcie") {
        p.pcie_bytes = static_cast<double>(tier.bytes);
      } else if (tier.name == "nic") {
        p.nic_bytes = static_cast<double>(tier.bytes);
        p.nic_swap = swap;
      } else if (tier.name == "rack") {
        p.rack_bytes = static_cast<double>(tier.bytes);
        p.rack_swap = swap;
      }
    }
    p.collective_per_gpu =
        static_cast<double>(report.total_collective) / static_cast<double>(p.gpus);
    const AttributionReport attribution = Attribute(report);
    if (attribution.worst_device >= 0) {
      p.worst_stall = TimeClassName(
          attribution.devices[static_cast<std::size_t>(attribution.worst_device)].dominant);
    }
    p.hot_link = attribution.bottleneck_link;
    p.hot_util = attribution.bottleneck_utilization;
    points.push_back(p);

    // Hard trend gates (deterministic sim, so these are exact, not statistical):
    //   - swaps never leave the host: the NIC and rack tiers carry zero swap bytes;
    //   - the inter-node exchange actually ran: NIC tier carries collective traffic.
    HCHECK(p.nic_swap == 0.0 && p.rack_swap == 0.0)
        << "swap bytes escaped the PCIe tier at " << p.gpus << " GPUs";
    HCHECK(p.nic_bytes > 0.0) << "no inter-node collective traffic at " << p.gpus << " GPUs";
    if (p.racks > 1) {
      HCHECK(p.rack_bytes > 0.0) << "multi-rack run kept the spine idle at " << p.gpus
                                 << " GPUs";
    }
    std::printf("%4d GPUs (%3d nodes / %d racks): steady iter %.3f s, swap/GPU/iter %s, "
                "collective/GPU %s, hot link %s (%.0f%%)\n",
                p.gpus, p.nodes, p.racks, p.steady_iter_s,
                FormatBytes(static_cast<Bytes>(p.swap_per_gpu)).c_str(),
                FormatBytes(static_cast<Bytes>(p.collective_per_gpu)).c_str(),
                p.hot_link.c_str(), p.hot_util * 100.0);
  }

  // The paper's single-box story must survive the fleet: per-GPU swap volume is set by the
  // model-to-GPU-memory ratio, not the fleet size, so the three scale points agree within
  // 10% (boundary iterations differ slightly through collective-stall overlap).
  for (const ScalePoint& p : points) {
    HCHECK(p.swap_per_gpu > 0.9 * points[0].swap_per_gpu &&
           p.swap_per_gpu < 1.1 * points[0].swap_per_gpu)
        << "per-GPU swap volume drifted with scale: " << p.swap_per_gpu << " vs "
        << points[0].swap_per_gpu << " at " << p.gpus << " GPUs";
  }

  std::cout << "\n";
  TablePrinter table({"GPUs", "nodes", "racks", "steady iter (s)", "samples/s",
                      "swap/GPU/iter", "collective/GPU", "nic bytes", "rack bytes",
                      "worst stall", "hot link", "util"});
  for (const ScalePoint& p : points) {
    table.Row()
        .Cell(p.gpus)
        .Cell(p.nodes)
        .Cell(p.racks)
        .Cell(p.steady_iter_s, 3)
        .Cell(p.throughput, 2)
        .Cell(FormatBytes(static_cast<Bytes>(p.swap_per_gpu)))
        .Cell(FormatBytes(static_cast<Bytes>(p.collective_per_gpu)))
        .Cell(FormatBytes(static_cast<Bytes>(p.nic_bytes)))
        .Cell(FormatBytes(static_cast<Bytes>(p.rack_bytes)))
        .Cell(p.worst_stall)
        .Cell(p.hot_link)
        .Cell(p.hot_util, 2);
  }
  std::cout << "--- scale-out ladder (4 GPUs per node, Harmony-DP, 25 GbE NIC / 100 GbE "
               "rack) ---\n"
            << table.ToString() << "\n";

  std::FILE* json = std::fopen("BENCH_cluster.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"ladder\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ScalePoint& p = points[i];
      std::fprintf(json,
                   "    {\"gpus\": %d, \"nodes\": %d, \"racks\": %d, "
                   "\"steady_iter_s\": %.6f, \"throughput_samples_per_s\": %.6f, "
                   "\"swap_bytes_per_gpu_per_iter\": %.0f, "
                   "\"collective_bytes_per_gpu\": %.0f, \"pcie_bytes\": %.0f, "
                   "\"nic_bytes\": %.0f, \"rack_bytes\": %.0f, \"nic_swap_bytes\": %.0f, "
                   "\"rack_swap_bytes\": %.0f, \"worst_stall\": \"%s\", "
                   "\"hot_link\": \"%s\", \"hot_link_utilization\": %.6f}%s\n",
                   p.gpus, p.nodes, p.racks, p.steady_iter_s, p.throughput, p.swap_per_gpu,
                   p.collective_per_gpu, p.pcie_bytes, p.nic_bytes, p.rack_bytes,
                   p.nic_swap, p.rack_swap, p.worst_stall.c_str(), p.hot_link.c_str(),
                   p.hot_util,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::cout << "wrote BENCH_cluster.json\n";
  }
  return 0;
}
