// Substrate micro-benchmarks (google-benchmark): the cost of the pieces every experiment
// leans on — event queue throughput, allocator churn, fair-share rate recomputation, plan
// construction, and a full small training simulation.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/hw/transfer_manager.h"
#include "src/mem/allocator.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace harmony {
namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    sim.Reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAfter(static_cast<double>(i % 97), [] {});
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_AllocatorChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DeviceAllocator alloc(1 * kGiB);
    std::vector<std::pair<Bytes, Bytes>> blocks;
    for (int i = 0; i < n; ++i) {
      const Bytes size = 1 * kMiB + (i % 7) * 128 * kKiB;
      const Bytes offset = alloc.Allocate(size);
      if (offset >= 0) {
        blocks.emplace_back(offset, size);
      }
      if (i % 3 == 0 && !blocks.empty()) {
        alloc.Free(blocks.back().first, blocks.back().second);
        blocks.pop_back();
      }
    }
    for (const auto& [offset, size] : blocks) {
      alloc.Free(offset, size);
    }
    benchmark::DoNotOptimize(alloc.free_bytes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AllocatorChurn)->Arg(256)->Arg(1024);

void BM_FairShareFlows(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ServerConfig config;
    config.num_gpus = 8;
    config.gpus_per_switch = 8;
    Topology topo = MakeCommodityServerTopology(config);
    Simulator sim;
    TransferManager tm(&sim, &topo);
    for (int f = 0; f < flows; ++f) {
      tm.StartTransfer(topo.gpu_node(f % 8), topo.host_node(), 64 * kMiB,
                       TransferKind::kSwapOut);
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(tm.flows_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FairShareFlows)->Arg(16)->Arg(64)->Arg(256);

// Sustained arrival/departure churn with ~1k concurrent flows: random sizes and staggered
// deterministic arrivals keep the incremental re-rate and completion-heap paths hot, unlike
// BM_FairShareFlows' single synchronized wave.
void BM_FlowChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ServerConfig config;
    config.num_gpus = 8;
    config.gpus_per_switch = 4;
    Topology topo = MakeCommodityServerTopology(config);
    Simulator sim;
    TransferManager tm(&sim, &topo);
    Rng rng(0xC0FFEE);
    for (int f = 0; f < flows; ++f) {
      const NodeId src = topo.gpu_node(static_cast<int>(rng.NextBounded(8)));
      const bool to_host = rng.NextBounded(4) != 0;  // mostly swap traffic, some p2p
      const NodeId dst =
          to_host ? topo.host_node()
                  : topo.gpu_node(static_cast<int>(rng.NextBounded(8)));
      const Bytes bytes = static_cast<Bytes>(1 + rng.NextBounded(16)) * kMiB;
      const double start = rng.NextDouble(0.0, 0.05);
      const TransferKind kind = to_host ? TransferKind::kSwapOut : TransferKind::kPeerToPeer;
      sim.ScheduleAfter(start, [&tm, src, dst, bytes, kind] {
        tm.StartTransfer(src, dst, bytes, kind);
      });
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(tm.flows_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowChurn)->Arg(1000);

void BM_PlanConstructionBertLarge(benchmark::State& state) {
  const Model bert = MakeBertLarge();
  const Machine machine = MakeCommodityServer(ServerConfig{});
  for (auto _ : state) {
    TensorRegistry registry;
    SessionConfig config;
    config.scheme = Scheme::kHarmonyPp;
    config.microbatches = 8;
    config.microbatch_size = 5;
    config.iterations = 2;
    Plan plan = BuildPlanForConfig(bert, machine, &registry, config);
    benchmark::DoNotOptimize(plan.tasks.size());
  }
}
BENCHMARK(BM_PlanConstructionBertLarge);

void BM_FullTrainingSimulation(benchmark::State& state) {
  const Model bert = MakeBertBase();
  for (auto _ : state) {
    SessionConfig config;
    config.server.num_gpus = 4;
    config.scheme = Scheme::kHarmonyPp;
    config.microbatches = 4;
    config.microbatch_size = 4;
    config.iterations = 2;
    const SessionResult result = RunTraining(bert, config);
    benchmark::DoNotOptimize(result.report.makespan);
  }
}
BENCHMARK(BM_FullTrainingSimulation);

}  // namespace
}  // namespace harmony

// Like BENCHMARK_MAIN(), plus a default JSON report (BENCH_microbench.json in the working
// directory) so runs are machine-comparable without remembering the flags. Any explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_microbench.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool user_specified_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      user_specified_out = true;
    }
  }
  if (!user_specified_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
