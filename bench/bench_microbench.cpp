// Substrate micro-benchmarks (google-benchmark): the cost of the pieces every experiment
// leans on — event queue throughput, allocator churn, fair-share rate recomputation, plan
// construction, and a full small training simulation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/hw/transfer_manager.h"
#include "src/mem/allocator.h"
#include "src/mem/memory_manager.h"
#include "src/runtime/next_use.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace harmony {
namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    const int n = static_cast<int>(state.range(0));
    sim.Reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAfter(static_cast<double>(i % 97), [] {});
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Arg(10000000);

// Sharded-core variant (DESIGN.md §10): events spread round-robin over 64 lanes with a
// conservative lookahead window, at a given worker count. The executed event sequence is
// identical to the serial run — this measures the cost/benefit of windowed lane draining.
void BM_SimulatorShardedThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    Simulator sim;
    std::vector<SimLane> lanes;
    for (int l = 0; l < 64; ++l) {
      lanes.push_back(sim.CreateLane("lane" + std::to_string(l)));
    }
    sim.SetParallelism(threads);
    sim.SetLookahead(8.0);
    sim.Reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAfter(lanes[static_cast<std::size_t>(i % 64)], static_cast<double>(i % 97),
                        [] {});
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorShardedThroughput)
    ->Args({1000000, 1})
    ->Args({1000000, 2})
    ->Args({1000000, 4});

void BM_AllocatorChurn(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DeviceAllocator alloc(1 * kGiB);
    std::vector<std::pair<Bytes, Bytes>> blocks;
    for (int i = 0; i < n; ++i) {
      const Bytes size = 1 * kMiB + (i % 7) * 128 * kKiB;
      const Bytes offset = alloc.Allocate(size);
      if (offset >= 0) {
        blocks.emplace_back(offset, size);
      }
      if (i % 3 == 0 && !blocks.empty()) {
        alloc.Free(blocks.back().first, blocks.back().second);
        blocks.pop_back();
      }
    }
    for (const auto& [offset, size] : blocks) {
      alloc.Free(offset, size);
    }
    benchmark::DoNotOptimize(alloc.free_bytes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AllocatorChurn)->Arg(256)->Arg(1024);

void BM_FairShareFlows(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ServerConfig config;
    config.num_gpus = 8;
    config.gpus_per_switch = 8;
    Topology topo = MakeCommodityServerTopology(config);
    Simulator sim;
    TransferManager tm(&sim, &topo);
    for (int f = 0; f < flows; ++f) {
      tm.StartTransfer(topo.gpu_node(f % 8), topo.host_node(), 64 * kMiB,
                       TransferKind::kSwapOut);
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(tm.flows_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FairShareFlows)->Arg(16)->Arg(64)->Arg(256);

// Sustained arrival/departure churn with ~1k concurrent flows: random sizes and staggered
// deterministic arrivals keep the incremental re-rate and completion-heap paths hot, unlike
// BM_FairShareFlows' single synchronized wave.
void BM_FlowChurn(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ServerConfig config;
    config.num_gpus = 8;
    config.gpus_per_switch = 4;
    Topology topo = MakeCommodityServerTopology(config);
    Simulator sim;
    TransferManager tm(&sim, &topo);
    Rng rng(0xC0FFEE);
    for (int f = 0; f < flows; ++f) {
      const NodeId src = topo.gpu_node(static_cast<int>(rng.NextBounded(8)));
      const bool to_host = rng.NextBounded(4) != 0;  // mostly swap traffic, some p2p
      const NodeId dst =
          to_host ? topo.host_node()
                  : topo.gpu_node(static_cast<int>(rng.NextBounded(8)));
      const Bytes bytes = static_cast<Bytes>(1 + rng.NextBounded(16)) * kMiB;
      const double start = rng.NextDouble(0.0, 0.05);
      const TransferKind kind = to_host ? TransferKind::kSwapOut : TransferKind::kPeerToPeer;
      sim.ScheduleAfter(start, [&tm, src, dst, bytes, kind] {
        tm.StartTransfer(src, dst, bytes, kind);
      });
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(tm.flows_completed());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowChurn)->Arg(1000);

// ---- Eviction hot path: indexed victim selection vs the O(residents) reference scan ----
//
// Steady-state churn on one device: the population is twice what fits, so every acquisition
// of the round-robin next tensor evicts exactly one resident. args: {residents,
// reference_scan, lookahead}. The reference arm forces the retained full scan through
// MemorySystem::set_reference_scan_eviction (index maintenance still runs, so the delta is
// purely victim-selection cost).
class EvictionChurnHarness {
 public:
  EvictionChurnHarness(int residents, bool reference_scan, bool lookahead) {
    ServerConfig config;
    config.num_gpus = 1;
    topo_ = MakeCommodityServerTopology(config);
    tm_ = std::make_unique<TransferManager>(&sim_, &topo_);
    MemoryPolicy policy = HarmonyPolicy();  // clean evictions drop for free (no write-back)
    policy.allow_p2p = false;
    if (lookahead) {
      policy.eviction = EvictionPolicy::kLookahead;
    }
    const Bytes capacity = static_cast<Bytes>(residents) * 256;
    system_ = std::make_unique<MemorySystem>(&sim_, tm_.get(), &reg_, &topo_,
                                             std::vector<Bytes>{capacity}, policy);
    system_->set_reference_scan_eviction(reference_scan);
    if (lookahead) {
      // Static distances: a fixed pseudo-random next use per tensor (some "never"), so the
      // scan arm pays one oracle call per candidate — exactly the pre-index cost model.
      system_->SetNextUseOracle([](TensorId tensor, int device) -> std::uint64_t {
        std::uint64_t h = static_cast<std::uint64_t>(tensor) * 0x9E3779B97F4A7C15ull +
                          static_cast<std::uint64_t>(device + 1) * 0xBF58476D1CE4E5B9ull;
        h ^= h >> 31;
        h *= 0x94D049BB133111EBull;
        h ^= h >> 27;
        return h % 5 == 0 ? std::numeric_limits<std::uint64_t>::max() : h % 100000;
      });
    }
    const int population = residents * 2;
    ids_.reserve(static_cast<std::size_t>(population));
    for (int i = 0; i < population; ++i) {
      ids_.push_back(reg_.Create("t" + std::to_string(i), 256, TensorClass::kActivation,
                                 /*host_valid=*/true));
    }
    for (int i = 0; i < residents; ++i) {
      Step();  // warm until the device is full; churn steady-state begins at `residents`
    }
  }

  void Step() {
    WorkingSet set;
    set.fetch = {ids_[next_]};
    next_ = (next_ + 1) % ids_.size();
    auto acq = system_->manager(0).Acquire(std::move(set));
    sim_.RunUntilIdle();
    system_->manager(0).Release(acq.handle);
    sim_.RunUntilIdle();
  }

  std::int64_t evictions() const { return system_->manager(0).counters().evictions; }

 private:
  Simulator sim_;
  Topology topo_;
  TensorRegistry reg_;
  std::unique_ptr<TransferManager> tm_;
  std::unique_ptr<MemorySystem> system_;
  std::vector<TensorId> ids_;
  std::size_t next_ = 0;
};

void BM_EvictionChurn(benchmark::State& state) {
  EvictionChurnHarness harness(static_cast<int>(state.range(0)), state.range(1) != 0,
                               state.range(2) != 0);
  const std::int64_t warm_evictions = harness.evictions();
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      harness.Step();
    }
  }
  state.SetItemsProcessed(state.iterations() * 32);
  state.counters["evictions"] =
      static_cast<double>(harness.evictions() - warm_evictions);
}
BENCHMARK(BM_EvictionChurn)
    ->Args({1024, /*reference_scan=*/0, /*lookahead=*/0})
    ->Args({1024, /*reference_scan=*/1, /*lookahead=*/0})
    ->Args({1024, /*reference_scan=*/0, /*lookahead=*/1})
    ->Args({1024, /*reference_scan=*/1, /*lookahead=*/1})
    ->Args({4096, /*reference_scan=*/0, /*lookahead=*/1})
    ->Args({4096, /*reference_scan=*/1, /*lookahead=*/1});

// The engine's next-use oracle substrate: monotone per-tensor cursors (next_use.h) vs the
// pre-index map-of-use-lists with a binary search per query. Both arms build their structure
// and then sweep positions 0..N querying two tensors per position — the engine's access
// pattern (queries' positions never decrease). arg: 0 = cursors, 1 = map + lower_bound.
void BM_NextUseOracle(benchmark::State& state) {
  const bool reference = state.range(0) != 0;
  constexpr int kTensors = 512;
  constexpr std::uint64_t kPositions = 512 * 64;
  // Deterministic use lists, identical for both arms.
  Rng rng(0x5EED);
  std::vector<std::vector<std::uint64_t>> uses(kTensors);
  for (std::uint64_t pos = 0; pos < kPositions; ++pos) {
    uses[rng.NextBounded(kTensors)].push_back(pos);
  }
  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t sink = 0;
  for (auto _ : state) {
    if (reference) {
      std::map<TensorId, std::vector<std::uint64_t>> index;
      for (int t = 0; t < kTensors; ++t) {
        index.emplace(t, uses[static_cast<std::size_t>(t)]);
      }
      for (std::uint64_t pos = 0; pos < kPositions; ++pos) {
        for (int k = 0; k < 2; ++k) {
          const TensorId t = static_cast<TensorId>((pos * 7 + static_cast<std::uint64_t>(k) * 131) % kTensors);
          const auto it = index.find(t);
          const auto& list = it->second;
          const auto use = std::lower_bound(list.begin(), list.end(), pos);
          sink += use == list.end() ? kNever : *use;
        }
      }
    } else {
      NextUseIndex index;
      for (int t = 0; t < kTensors; ++t) {
        for (std::uint64_t pos : uses[static_cast<std::size_t>(t)]) {
          index.AddUse(t, pos);
        }
      }
      for (std::uint64_t pos = 0; pos < kPositions; ++pos) {
        for (int k = 0; k < 2; ++k) {
          const TensorId t = static_cast<TensorId>((pos * 7 + static_cast<std::uint64_t>(k) * 131) % kTensors);
          sink += index.NextUseAtOrAfter(t, pos);
        }
      }
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kPositions) * 2);
}
BENCHMARK(BM_NextUseOracle)->Arg(0)->Arg(1);

void BM_PlanConstructionBertLarge(benchmark::State& state) {
  const Model bert = MakeBertLarge();
  const Machine machine = MakeCommodityServer(ServerConfig{});
  for (auto _ : state) {
    TensorRegistry registry;
    SessionConfig config;
    config.scheme = Scheme::kHarmonyPp;
    config.microbatches = 8;
    config.microbatch_size = 5;
    config.iterations = 2;
    Plan plan = BuildPlanForConfig(bert, machine, &registry, config);
    benchmark::DoNotOptimize(plan.tasks.size());
  }
}
BENCHMARK(BM_PlanConstructionBertLarge);

void BM_FullTrainingSimulation(benchmark::State& state) {
  const Model bert = MakeBertBase();
  for (auto _ : state) {
    SessionConfig config;
    config.server.num_gpus = 4;
    config.scheme = Scheme::kHarmonyPp;
    config.microbatches = 4;
    config.microbatch_size = 4;
    config.iterations = 2;
    const SessionResult result = RunTraining(bert, config);
    benchmark::DoNotOptimize(result.report.makespan);
  }
}
BENCHMARK(BM_FullTrainingSimulation);

}  // namespace
}  // namespace harmony

// Like BENCHMARK_MAIN(), plus a default JSON report (BENCH_microbench.json in the working
// directory) so runs are machine-comparable without remembering the flags. Any explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_microbench.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool user_specified_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      user_specified_out = true;
    }
  }
  if (!user_specified_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
