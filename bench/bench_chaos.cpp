// Chaos ladder: goodput vs fault rate across absorb / degrade / recover (DESIGN.md §11).
//
// Three deterministic sweeps on the 4-GPU Harmony-PP fault-bench regime (~74 s clean):
//   1. absorb — transient flow flaps and short link brownouts at decreasing MTBF, with a
//      retry budget armed. At MTBF >= 10 s the retry tier must absorb everything: zero
//      checkpoint rollbacks and < 5% goodput loss vs the fault-free run (HCHECK-enforced
//      acceptance gate, see ISSUE 7).
//   2. degrade — a permanent straggler with the health monitor armed: one graceful
//      degradation, no rollback, goodput tracks the surviving devices.
//   3. recover — seeded random plans over the full extended grammar (fail-stops included)
//      at decreasing MTBF: the bottom rung, where goodput pays for rollbacks.
// Results go to stdout as tables and to BENCH_chaos.json for tooling. Output is
// deterministic at any HARMONY_SIM_THREADS setting (the golden-stdout manifest hashes it
// at 1, 2 and 8).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/recovery.h"
#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/sim/fault_plan.h"
#include "src/util/check.h"
#include "src/util/table.h"

namespace {

struct LadderPoint {
  std::string rung;
  double mtbf = 0.0;  // 0 = failure free / not rate-driven
  int plan_events = 0;
  std::int64_t flows_retried = 0;
  std::int64_t retry_exhausted = 0;
  int degradations = 0;
  int rollbacks = 0;
  int completed = 0;
  double goodput = 0.0;       // samples per second of global sim time
  double goodput_ratio = 0.0; // vs fault-free
};

}  // namespace

int main() {
  using namespace harmony;
  std::cout << "=== Chaos ladder: goodput vs fault rate across absorb / degrade / recover "
               "===\n\n";

  // Swap-bound on purpose (heavier weights, lighter compute than the fault bench): the
  // host uplink stays busy a large fraction of the run, so transient fabric faults
  // genuinely intersect in-flight flows — an idle fabric would make the absorb rung
  // vacuous.
  UniformModelConfig mc;
  mc.name = "uniform-chaos-bench";
  mc.num_layers = 12;
  mc.param_bytes = 256 * kMiB;
  mc.act_bytes_per_sample = 16 * kMiB;
  mc.optimizer_state_factor = 2.0;
  mc.fwd_flops_per_sample = 1e11;
  const Model model = MakeUniformModel(mc);
  std::cout << model.Summary() << "\n";

  SessionConfig base;
  base.server.num_gpus = 4;
  base.server.gpus_per_switch = 4;
  base.server.gpu = TestGpu(1536 * kMiB, TFlops(2.0));
  base.scheme = Scheme::kHarmonyPp;
  base.microbatches = 4;
  base.microbatch_size = 2;
  base.iterations = 8;
  base.checkpoint_every = 2;
  base.ckpt_keep = 2;
  base.retry_max = 3;
  base.retry_base = 0.001;

  const ElasticResult clean = RunTrainingElastic(model, base);
  HCHECK(clean.status.ok()) << clean.status.ToString();
  const double clean_makespan = clean.total_makespan;
  const double samples =
      static_cast<double>(clean.final_segment().result.report.samples_per_iteration);
  const double clean_goodput = samples * base.iterations / clean_makespan;
  std::printf("fault-free: %d iterations in %.3f s (%.3f samples/s)\n\n",
              clean.completed_iterations, clean_makespan, clean_goodput);
#ifdef CHAOS_DEBUG
  for (const auto& link : clean.final_segment().result.report.links) {
    std::printf("DEBUG link %s util %.3f flows %lld\n", link.name.c_str(), link.utilization,
                static_cast<long long>(link.flows));
  }
#endif

  std::vector<LadderPoint> points;
  const auto run_point = [&](const std::string& rung, double mtbf,
                             const SessionConfig& config) {
    const ElasticResult result = RunTrainingElastic(model, config);
    LadderPoint p;
    p.rung = rung;
    p.mtbf = mtbf;
    p.plan_events = config.faults.size();
    for (const RecoverySegment& segment : result.segments) {
      p.flows_retried += segment.result.report.flows_retried;
      p.retry_exhausted += segment.result.report.retry_exhausted;
    }
    p.degradations = result.stats.degradations;
    p.rollbacks = result.stats.rollbacks();
    p.completed = result.completed_iterations;
    if (result.status.ok() && result.total_makespan > 0.0) {
      p.goodput = samples * base.iterations / result.total_makespan;
    }
    p.goodput_ratio = p.goodput / clean_goodput;
    points.push_back(p);
    return p;
  };

  // ---- 1. absorb: transient flaps + short brownouts vs MTBF ------------------------------
  // Deterministic plans: a host-side flow flap every `mtbf` seconds, and on every second
  // strike a 0.5 s brownout (link at half rate, in-flight flows killed) instead — the
  // transient fabric weather a commodity cluster actually sees.
  for (const double mtbf : {20.0, 10.0, 5.0, 2.5}) {
    SessionConfig config = base;
    int strike = 0;
    for (double t = mtbf; t < clean_makespan; t += mtbf, ++strike) {
      if (strike % 2 == 1) {
        config.faults.Add(FaultEvent{t, FaultKind::kLinkBrownout, -1, 0.5, 0.5});
      } else {
        config.faults.Add(FaultEvent{t, FaultKind::kFlowFlap, -1});
      }
    }
    const LadderPoint p = run_point("absorb", mtbf, config);
    // Acceptance gate (ISSUE 7): at MTBF >= 10 s the retry tier absorbs every transient —
    // no checkpoint rollback, and the backoff + retransmit tax stays under 5%.
    if (mtbf >= 10.0) {
      HCHECK(p.rollbacks == 0) << "absorb rung rolled back at MTBF " << mtbf;
      HCHECK(p.goodput_ratio >= 0.95)
          << "absorb rung lost >5% goodput at MTBF " << mtbf << ": " << p.goodput_ratio;
    }
  }

  // ---- 2. degrade: permanent straggler, health monitor armed -----------------------------
  {
    SessionConfig config = base;
    config.straggler_threshold = 1.4;
    config.faults.Add(FaultEvent{0.2 * clean_makespan, FaultKind::kGpuSlow, 2, 0.6, 0.0});
    const LadderPoint p = run_point("degrade", 0.0, config);
    HCHECK(p.degradations >= 1) << "straggler was never classified";
    HCHECK(p.rollbacks == 0) << "the middle rung must not touch the checkpoint";
  }

  // ---- 3. recover: random extended-grammar plans with fail-stops -------------------------
  for (const double factor : {1.0, 0.5, 0.25}) {
    RandomFaultOptions options;
    options.seed = 26;
    options.mtbf = factor * clean_makespan;
    options.horizon = 2.0 * clean_makespan;
    options.num_gpus = base.server.num_gpus;
    options.transient = true;
    options.ckpt_faults = true;
    SessionConfig config = base;
    config.straggler_threshold = 1.4;
    config.faults = MakeRandomFaultPlan(options);
#ifdef CHAOS_DEBUG
    std::printf("DEBUG recover mtbf %.2f plan: %s\n", options.mtbf,
                config.faults.ToString().c_str());
#endif
    run_point("recover", options.mtbf, config);
  }

  TablePrinter table({"rung", "MTBF (s)", "plan events", "retried", "exhausted",
                      "degradations", "rollbacks", "iterations done",
                      "goodput (samples/s)", "vs clean"});
  table.Row()
      .Cell("clean")
      .Cell("inf")
      .Cell(0)
      .Cell(0)
      .Cell(0)
      .Cell(0)
      .Cell(0)
      .Cell(clean.completed_iterations)
      .Cell(clean_goodput, 3)
      .Cell(1.0, 3);
  for (const LadderPoint& p : points) {
    table.Row()
        .Cell(p.rung)
        .Cell(p.mtbf > 0.0 ? std::to_string(p.mtbf).substr(0, 5) : "-")
        .Cell(p.plan_events)
        .Cell(p.flows_retried)
        .Cell(p.retry_exhausted)
        .Cell(p.degradations)
        .Cell(p.rollbacks)
        .Cell(p.completed)
        .Cell(p.goodput, 3)
        .Cell(p.goodput_ratio, 3);
  }
  std::cout << "--- goodput across the resilience ladder (retry budget 3, checkpoint every "
               "2, keep 2) ---\n"
            << table.ToString() << "\n";

  std::FILE* json = std::fopen("BENCH_chaos.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"clean_goodput_samples_per_s\": %.6f,\n  \"ladder\": [\n",
                 clean_goodput);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const LadderPoint& p = points[i];
      std::fprintf(json,
                   "    {\"rung\": \"%s\", \"mtbf_s\": %.6f, \"plan_events\": %d, "
                   "\"flows_retried\": %lld, \"retry_exhausted\": %lld, "
                   "\"degradations\": %d, \"rollbacks\": %d, \"iterations\": %d, "
                   "\"goodput_samples_per_s\": %.6f, \"goodput_ratio\": %.6f}%s\n",
                   p.rung.c_str(), p.mtbf, p.plan_events,
                   static_cast<long long>(p.flows_retried),
                   static_cast<long long>(p.retry_exhausted), p.degradations, p.rollbacks,
                   p.completed, p.goodput, p.goodput_ratio,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::cout << "wrote BENCH_chaos.json\n";
  }
  return 0;
}
