// Fig. 5 + Sec. 3 analytical comparison: per-iteration *weight* swap volume under the
// paper's idealized setup (uniform layers, capacity for one layer-level op). For every
// (N, m) point we report the paper's closed form, our boundary-reuse-corrected form, and
// the simulator's measurement, for all three schemes:
//
//   DP + per-GPU virtualization : (4m+2) N |W|
//   Harmony-DP                  :       3 N |W|
//   Harmony-PP                  :           3 |W|
#include <cstdio>
#include <iostream>

#include "src/core/analytic.h"
#include "src/core/session.h"
#include "src/core/tuner.h"
#include "src/graph/model_zoo.h"
#include "src/util/table.h"

#include "bench/bench_timer.h"

namespace {

harmony::Model AnalyticModel() {
  harmony::UniformModelConfig config;
  config.name = "analytic-uniform";
  config.num_layers = 4;
  config.param_bytes = 8 * harmony::kMiB;
  config.act_bytes_per_sample = 2 * harmony::kMiB;
  config.optimizer_state_factor = 1.0;
  config.fwd_flops_per_sample = 1e9;
  return harmony::MakeUniformModel(config);
}

double MeasuredUnits(harmony::Scheme scheme, int n, int m) {
  using namespace harmony;
  const Model model = AnalyticModel();
  SessionConfig config;
  config.server.num_gpus = n;
  config.server.gpu = TestGpu(26 * kMiB, TFlops(1.0));
  config.scheme = scheme;
  config.microbatches = scheme == Scheme::kHarmonyPp ? m * n : m;
  config.microbatch_size = 1;
  config.iterations = 3;
  config.prefetch = false;  // the analytic model assumes no double buffering
  // Memoized: the headline-factor lines at the bottom re-measure sweep points.
  const RunReport report = ProfileTraining(model, config);
  // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
  std::fprintf(stderr, "[explain] %s n=%d m=%d: %s\n", SchemeName(scheme), n, m,
               Attribute(report).Summary().c_str());
  return static_cast<double>(report.iterations[1].weight_swap_volume()) /
         static_cast<double>(model.layer(0).cost.param_bytes);
}

}  // namespace

int main() {
  harmony::BenchWallClock wall_clock("bench_fig5_swap_volume");
  using namespace harmony;
  const Model model = AnalyticModel();
  const double P = static_cast<double>(model.layer(0).cost.param_bytes);
  const double W = static_cast<double>(model.total_param_bytes());
  const int R = model.num_layers();

  std::cout << "=== Fig. 5 / Sec. 3: weight swap volume per iteration (units of one layer's "
               "|W_l| = 8 MiB; |W| = "
            << R << " units) ===\n\n";

  TablePrinter table({"scheme", "N", "m", "paper formula", "corrected", "measured",
                      "match"});
  bool all_match = true;
  for (int n : {1, 2, 4}) {
    for (int m : {1, 2, 4, 8}) {
      {
        const double paper = AnalyticSwapModel::BaselineDpWeightVolume(W, m, n) / P;
        const double corrected =
            AnalyticSwapModel::BaselineDpWeightVolumeCorrected(P, R, m, n) / P;
        const double measured = MeasuredUnits(Scheme::kBaselineDp, n, m);
        const bool ok = std::abs(measured - corrected) < 1e-6;
        all_match = all_match && ok;
        table.Row().Cell("baseline-dp").Cell(n).Cell(m).Cell(paper, 0).Cell(corrected, 0)
            .Cell(measured, 0).Cell(ok ? "exact" : "MISMATCH");
      }
      {
        const double paper = AnalyticSwapModel::HarmonyDpWeightVolume(W, n) / P;
        const double corrected =
            AnalyticSwapModel::HarmonyDpWeightVolumeCorrected(P, R, n) / P;
        const double measured = MeasuredUnits(Scheme::kHarmonyDp, n, m);
        const bool ok = std::abs(measured - corrected) < 1e-6;
        all_match = all_match && ok;
        table.Row().Cell("harmony-dp").Cell(n).Cell(m).Cell(paper, 0).Cell(corrected, 0)
            .Cell(measured, 0).Cell(ok ? "exact" : "MISMATCH");
      }
      {
        const double paper = AnalyticSwapModel::HarmonyPpWeightVolume(W) / P;
        const double measured = MeasuredUnits(Scheme::kHarmonyPp, n, m);
        const bool ok = measured <= paper + 1e-6;
        all_match = all_match && ok;
        table.Row().Cell("harmony-pp").Cell(n).Cell(m).Cell(paper, 0).Cell("<= paper")
            .Cell(measured, 0).Cell(ok ? "bounded" : "MISMATCH");
      }
    }
  }
  table.Print(std::cout);

  std::cout << "\nnotes:\n"
               "  - 'corrected' subtracts the boundary-reuse units a real LRU memory manager\n"
               "    saves at pass boundaries (top layer fwd->bwd, bottom layer bwd->update);\n"
               "    the correction vanishes as O(1/R) and the paper's form is an upper bound.\n"
               "  - harmony-pp with N=4 holds the whole model in aggregate GPU memory, so its\n"
               "    weight traffic drops to ~0 (the paper's Sec. 4 observation).\n";

  const double b = MeasuredUnits(Scheme::kBaselineDp, 4, 4);
  const double hd = MeasuredUnits(Scheme::kHarmonyDp, 4, 4);
  const double hp = MeasuredUnits(Scheme::kHarmonyPp, 2, 4);
  std::printf(
      "\nheadline factors at N=4, m=4: baseline/harmony-dp = %.1fx (paper predicts "
      "(4m+2)/3 = %.1fx); harmony-pp is another ~Nx below harmony-dp.\n",
      b / hd, (4.0 * 4 + 2) / 3.0);
  std::printf("Shape check vs paper: ordering baseline-dp >> harmony-dp >> harmony-pp "
              "with the predicted factors. %s\n",
              (all_match && b > hd && hd > hp) ? "REPRODUCED" : "NOT REPRODUCED");
  return 0;
}
