// Sec. 4 "the memory-performance tango": pack size and microbatch size trade p2p/swap
// volume against accelerator utilization under a fixed memory capacity and a fixed
// minibatch. The Performance Tuner sweeps the feasible grid by profiling the simulator and
// picks the best throughput point; prefetch (double buffering) is the second tango knob.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "src/core/session.h"
#include "src/core/tuner.h"
#include "src/graph/model_zoo.h"
#include "src/util/flags.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace harmony;
  FlagParser flags;
  flags.Define("tuner_threads", "0",
               "worker threads for the tuner sweep (0 = one per hardware thread)");
  const Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.ToString() << "\n\n" << flags.Usage(argv[0]);
    return 2;
  }

  std::cout << "=== Sec. 4: memory-performance tango (Harmony-PP tuner) ===\n\n";

  const Model bert = MakeBertLarge();
  SessionConfig base;
  base.server.num_gpus = 4;
  base.scheme = Scheme::kHarmonyPp;
  base.iterations = 2;

  TunerOptions options;
  options.pack_sizes = {2, 4, 8};
  options.group_sizes = {0, 2};  // whole-minibatch grouping vs 2-microbatch wavefronts
  options.microbatch_sizes = {1, 2, 4, 8};
  options.minibatch_samples = 32;
  options.num_threads = flags.GetInt("tuner_threads");
  const auto sweep_start = std::chrono::steady_clock::now();
  const TunerResult result = TunePp(bert, base, options);
  const double sweep_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sweep_start).count();
  // Diagnostics go to stderr so the experiment tables on stdout stay byte-stable across
  // thread counts and hosts.
  const TunerCacheStats stats = GetTunerCacheStats();
  std::fprintf(stderr,
               "[tuner] %zu sweep points on %d threads in %.3fs; cache: %lld/%lld probe "
               "hits, %lld/%lld profile hits\n",
               result.points.size(), ResolveThreadCount(options.num_threads), sweep_seconds,
               static_cast<long long>(stats.probe_hits),
               static_cast<long long>(stats.probe_hits + stats.probe_misses),
               static_cast<long long>(stats.profile_hits),
               static_cast<long long>(stats.profile_hits + stats.profile_misses));
  std::cout << RenderTunerTable(result) << "\n";
  std::printf("tuner pick: pack=%d, microbatch=%d (%d microbatches) -> %.2f samples/s\n\n",
              result.best.pack_size, result.best.microbatch_size, result.best.microbatches,
              result.best.throughput);
  // Attribution goes to stderr: the golden-stdout gate pins this bench's stdout.
  if (!result.best.why.empty()) {
    std::fprintf(stderr, "[explain] tuner pick why: %s\n", result.best.why.c_str());
  }

  // Double buffering: prefetch on/off at the tuned point.
  TablePrinter prefetch({"prefetch", "iter time (s)", "swap (GB/iter)", "throughput"});
  for (bool on : {true, false}) {
    SessionConfig config = base;
    config.pack_size = result.best.pack_size;
    config.microbatch_size = result.best.microbatch_size;
    config.microbatches = result.best.microbatches;
    config.iterations = 3;
    config.prefetch = on;
    const RunReport report = ProfileTraining(bert, config);
    prefetch.Row()
        .Cell(on ? "on (double buffer)" : "off (copies on critical path)")
        .Cell(report.steady_iteration_time(), 2)
        .Cell(static_cast<double>(report.steady_swap_total()) / kGB, 2)
        .Cell(report.steady_throughput(), 2);
  }
  prefetch.Print(std::cout);

  // Recompute: trade stash memory for FLOPs, enabling bigger microbatches.
  std::cout << "\nactivation recomputation (frees stash memory for larger microbatches):\n";
  TablePrinter recompute({"mode", "peak task WS", "iter time (s)", "throughput"});
  for (bool rc : {false, true}) {
    SessionConfig config = base;
    config.pack_size = 2;
    config.microbatch_size = 8;
    config.microbatches = 4;
    config.iterations = 3;
    config.recompute = rc;
    const auto peaks = CachedProbePeakWorkingSet(bert, config);
    const Bytes peak = *std::max_element(peaks.begin(), peaks.end());
    if (peak > base.server.gpu.memory_bytes) {
      recompute.Row().Cell(rc ? "recompute" : "stash").Cell(FormatBytes(peak)).Cell("-").Cell(
          "infeasible");
      continue;
    }
    const RunReport report = ProfileTraining(bert, config);
    recompute.Row()
        .Cell(rc ? "recompute" : "stash")
        .Cell(FormatBytes(peak))
        .Cell(report.steady_iteration_time(), 2)
        .Cell(report.steady_throughput(), 2);
  }
  recompute.Print(std::cout);

  std::cout << "\nShape check vs paper: the (pack, microbatch) surface has an interior "
               "optimum — small packs waste reuse, big packs force tiny microbatches; "
               "prefetch trades memory headroom for critical-path copies. REPRODUCED "
               "(open problem demonstrated, not closed).\n";
  return 0;
}
