#include "src/baseline/baseline_pp.h"

#include <algorithm>

#include "src/graph/partition.h"
#include "src/util/check.h"

namespace harmony {

std::vector<int> BaselinePpStageBoundaries(const Model& model, int num_stages) {
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(model.num_layers()));
  for (int l = 0; l < model.num_layers(); ++l) {
    costs.push_back(model.layer(l).cost.fwd_flops_per_sample +
                    model.layer(l).cost.bwd_flops_per_sample);
  }
  return PartitionContiguousMinMax(costs, num_stages);
}

Plan BuildBaselinePpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                         const BaselinePpOptions& options) {
  const int S = machine.num_gpus();  // one stage per GPU
  const int M = options.microbatches;
  const std::vector<int> bounds = BaselinePpStageBoundaries(model, S);
  for (int s = 0; s < S; ++s) {
    HCHECK_LT(bounds[static_cast<std::size_t>(s)], bounds[static_cast<std::size_t>(s + 1)])
        << "empty pipeline stage " << s << " (more GPUs than layers?)";
  }

  DecomposerOptions decomp;
  decomp.num_replicas = 1;
  decomp.microbatches = M;
  decomp.microbatch_size = options.microbatch_size;
  decomp.iterations = options.iterations;
  decomp.recompute = options.recompute;
  PlanBuilder builder(&model, registry, S, decomp);

  for (int it = 0; it < options.iterations; ++it) {
    builder.BeginIteration(it);
    // fwd[s][mb] / bwd[s][mb] task ids for dependency wiring.
    std::vector<std::vector<TaskId>> fwd(static_cast<std::size_t>(S),
                                         std::vector<TaskId>(static_cast<std::size_t>(M),
                                                             kInvalidTask));
    std::vector<std::vector<TaskId>> bwd = fwd;
    std::vector<TaskId> loss(static_cast<std::size_t>(M), kInvalidTask);

    // 1F1B: each stage runs `warmup` forwards, then alternates 1 forward / 1 backward, then
    // drains backwards. Emitting tasks stage-by-stage in that queue order is valid because
    // cross-stage edges are explicit deps.
    for (int s = 0; s < S; ++s) {
      const int lb = bounds[static_cast<std::size_t>(s)];
      const int le = bounds[static_cast<std::size_t>(s + 1)];
      const int warmup = std::min(S - 1 - s, M);

      auto emit_fwd = [&](int mb) {
        std::vector<TaskId> deps;
        if (s > 0) {
          deps.push_back(fwd[static_cast<std::size_t>(s - 1)][static_cast<std::size_t>(mb)]);
        }
        fwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(mb)] =
            builder.AddForward(s, lb, le, mb, 0, std::move(deps));
        if (s == S - 1) {
          loss[static_cast<std::size_t>(mb)] = builder.AddLoss(
              s, mb, 0, {fwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(mb)]});
        }
      };
      auto emit_bwd = [&](int mb) {
        // Cross-stage edges to stage s+1 are wired after all stages exist (see below);
        // the last stage depends on its loss task, which is already in its queue.
        std::vector<TaskId> deps;
        if (s == S - 1) {
          deps.push_back(loss[static_cast<std::size_t>(mb)]);
        }
        bwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(mb)] =
            builder.AddBackward(s, lb, le, mb, 0, std::move(deps));
      };

      for (int mb = 0; mb < warmup; ++mb) {
        emit_fwd(mb);
      }
      for (int k = 0; k + warmup < M; ++k) {
        emit_fwd(warmup + k);
        emit_bwd(k);
      }
      for (int mb = std::max(0, M - warmup); mb < M; ++mb) {
        emit_bwd(mb);
      }
    }

    // Backward chains point downstream (stage s needs stage s+1's output gradient).
    for (int s = 0; s < S - 1; ++s) {
      for (int mb = 0; mb < M; ++mb) {
        builder.AddDep(bwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(mb)],
                       bwd[static_cast<std::size_t>(s + 1)][static_cast<std::size_t>(mb)]);
      }
    }

    // Rigid end-of-iteration optimizer step, one task per layer.
    for (int s = 0; s < S; ++s) {
      const TaskId last = bwd[static_cast<std::size_t>(s)][static_cast<std::size_t>(M - 1)];
      for (int l = bounds[static_cast<std::size_t>(s)];
           l < bounds[static_cast<std::size_t>(s + 1)]; ++l) {
        builder.AddUpdate(s, l, l + 1, 0, {last});
      }
    }
  }
  return builder.Finish("baseline-pp");
}

}  // namespace harmony
