// Baseline: pipeline parallelism (1F1B / PipeDream-style) with per-GPU virtualization.
//
// Layers are split into compute-balanced *contiguous* stages, one per GPU; microbatches flow
// through with the one-forward-one-backward schedule, so stage s keeps (num_stages - s)
// activation stashes in flight — the inherent memory imbalance the paper's Fig. 2(c) blames
// for bottleneck stages once per-GPU virtualization starts swapping. Stage-boundary
// activations are staged through host memory (per-GPU virtualization has no cross-device
// context), and the optimizer step happens rigidly at the end of the iteration.
#ifndef HARMONY_SRC_BASELINE_BASELINE_PP_H_
#define HARMONY_SRC_BASELINE_BASELINE_PP_H_

#include <vector>

#include "src/graph/model.h"
#include "src/graph/plan_builder.h"
#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/mem/tensor.h"

namespace harmony {

struct BaselinePpOptions {
  int microbatches = 4;  // whole-minibatch microbatch count
  int microbatch_size = 1;
  int iterations = 2;
  bool recompute = false;
};

Plan BuildBaselinePpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                         const BaselinePpOptions& options);

// The stage boundaries the baseline uses (compute-balanced contiguous partition); exposed
// so benches can report per-stage memory demand.
std::vector<int> BaselinePpStageBoundaries(const Model& model, int num_stages);

}  // namespace harmony

#endif  // HARMONY_SRC_BASELINE_BASELINE_PP_H_
