#include "src/baseline/baseline_dp.h"

#include <vector>

#include "src/util/check.h"

namespace harmony {

Plan BuildBaselineDpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                         const BaselineDpOptions& options) {
  const int N = machine.num_gpus();
  const int R = model.num_layers();
  const int m = options.microbatches_per_gpu;

  DecomposerOptions decomp;
  decomp.num_replicas = N;
  decomp.microbatches = m;
  decomp.microbatch_size = options.microbatch_size;
  decomp.iterations = options.iterations;
  decomp.recompute = options.recompute;
  PlanBuilder builder(&model, registry, N, decomp);

  int next_group = 0;
  for (int it = 0; it < options.iterations; ++it) {
    builder.BeginIteration(it);
    // last_bwd[g][l]: the final-microbatch backward task for layer l on replica g.
    std::vector<std::vector<TaskId>> last_bwd(
        static_cast<std::size_t>(N), std::vector<TaskId>(static_cast<std::size_t>(R)));

    for (int g = 0; g < N; ++g) {
      for (int mb = 0; mb < m; ++mb) {
        TaskId prev = kInvalidTask;
        for (int l = 0; l < R; ++l) {
          std::vector<TaskId> deps;
          if (prev != kInvalidTask) {
            deps.push_back(prev);
          }
          prev = builder.AddForward(g, l, l + 1, mb, g, std::move(deps));
        }
        prev = builder.AddLoss(g, mb, g, {prev});
        for (int l = R - 1; l >= 0; --l) {
          prev = builder.AddBackward(g, l, l + 1, mb, g, {prev});
          last_bwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)] = prev;
        }
      }
    }

    // Gradient reduction: one ring per layer once its gradient is final everywhere. Groups
    // are emitted in reverse layer order, matching DDP's bucket readiness order.
    std::vector<std::vector<TaskId>> allreduce(
        static_cast<std::size_t>(N), std::vector<TaskId>(static_cast<std::size_t>(R)));
    if (N > 1) {
      for (int l = R - 1; l >= 0; --l) {
        const int group = next_group++;
        for (int g = 0; g < N; ++g) {
          allreduce[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)] =
              builder.AddAllReduce(
                  g, l, l + 1, g, group,
                  {last_bwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)]});
        }
      }
    }

    // Rigid optimizer step: every layer, in order, after the whole backward pass.
    for (int g = 0; g < N; ++g) {
      for (int l = 0; l < R; ++l) {
        const TaskId dep =
            N > 1 ? allreduce[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)]
                  : last_bwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)];
        builder.AddUpdate(g, l, l + 1, g, {dep});
      }
    }
  }
  return builder.Finish("baseline-dp");
}

}  // namespace harmony
