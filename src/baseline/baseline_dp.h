// Baseline: PyTorch-DDP-style data parallelism with per-GPU memory virtualization.
//
// Each GPU holds a full model replica and processes its microbatches one at a time: full
// forward then full backward per microbatch (gradient accumulation), ring all-reduce per
// layer once gradients are final, and a rigid optimizer step for every layer *after* the
// entire backward pass — exactly the schedule a stock training script produces. Combined
// with LMS-style naive write-back eviction this exhibits all four inefficiencies of Sec. 2:
// repeated swaps (weights re-fetched per microbatch), unnecessary swaps (update-time
// re-fetch), CPU-GPU-only swaps, and the linear growth of swap volume with GPU count that
// Fig. 2(a) measures.
#ifndef HARMONY_SRC_BASELINE_BASELINE_DP_H_
#define HARMONY_SRC_BASELINE_BASELINE_DP_H_

#include "src/graph/model.h"
#include "src/graph/plan_builder.h"
#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/mem/tensor.h"

namespace harmony {

struct BaselineDpOptions {
  int microbatches_per_gpu = 1;
  int microbatch_size = 1;
  int iterations = 2;
  bool recompute = false;
};

Plan BuildBaselineDpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                         const BaselineDpOptions& options);

}  // namespace harmony

#endif  // HARMONY_SRC_BASELINE_BASELINE_DP_H_
