#include "src/hw/cluster_spec.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace harmony {
namespace {

// Shortest stable rendering for link speeds ("25", "12.5", "0.4").
std::string FormatG(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

struct Field {
  std::string text;
  std::size_t offset = 0;  // absolute byte offset in the spec string
};

Status MalformedSpec(std::size_t offset, const std::string& why) {
  return InvalidArgumentError("malformed cluster spec: " + why + " (at byte " +
                              std::to_string(offset) +
                              "; see --help for the --cluster grammar)");
}

std::vector<Field> Split(const std::string& s, char sep) {
  std::vector<Field> out;
  std::string::size_type start = 0;
  for (;;) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(Field{s.substr(start), start});
      return out;
    }
    out.push_back(Field{s.substr(start, pos - start), start});
    start = pos + 1;
  }
}

StatusOr<int> ParseCount(const Field& field, const std::string& key, int min_value) {
  char* end = nullptr;
  const long value = std::strtol(field.text.c_str(), &end, 10);
  if (field.text.empty() || end != field.text.c_str() + field.text.size() ||
      value < min_value || value > 1 << 20) {
    return MalformedSpec(field.offset, key + " must be an integer >= " +
                                           std::to_string(min_value) + ", got '" +
                                           field.text + "'");
  }
  return static_cast<int>(value);
}

StatusOr<double> ParseGbps(const Field& field, const std::string& key) {
  char* end = nullptr;
  const double value = std::strtod(field.text.c_str(), &end);
  if (field.text.empty() || end != field.text.c_str() + field.text.size() ||
      !std::isfinite(value) || value <= 0.0) {
    return MalformedSpec(field.offset, key + " must be a positive number of Gbit/s, got '" +
                                           field.text + "'");
  }
  return value;
}

}  // namespace

StatusOr<ClusterSpec> ParseClusterSpec(const std::string& spec) {
  ClusterSpec out;
  bool seen[5] = {false, false, false, false, false};
  for (const Field& kv : Split(spec, ',')) {
    if (kv.text.empty()) {
      continue;
    }
    const auto eq = kv.text.find('=');
    if (eq == std::string::npos) {
      return MalformedSpec(kv.offset, "expected key=value, got '" + kv.text + "'");
    }
    const std::string key = kv.text.substr(0, eq);
    const Field value{kv.text.substr(eq + 1), kv.offset + eq + 1};
    int slot;
    if (key == "nodes") {
      slot = 0;
    } else if (key == "gpus_per_node") {
      slot = 1;
    } else if (key == "nodes_per_rack") {
      slot = 2;
    } else if (key == "nic_gbps") {
      slot = 3;
    } else if (key == "rack_gbps") {
      slot = 4;
    } else {
      return MalformedSpec(kv.offset, "unknown cluster option '" + key + "'");
    }
    if (seen[slot]) {
      return MalformedSpec(kv.offset, "duplicate cluster option '" + key + "'");
    }
    seen[slot] = true;
    switch (slot) {
      case 0: {
        StatusOr<int> v = ParseCount(value, key, 1);
        if (!v.ok()) {
          return v.status();
        }
        out.nodes = v.value();
        break;
      }
      case 1: {
        StatusOr<int> v = ParseCount(value, key, 1);
        if (!v.ok()) {
          return v.status();
        }
        out.gpus_per_node = v.value();
        break;
      }
      case 2: {
        StatusOr<int> v = ParseCount(value, key, 0);
        if (!v.ok()) {
          return v.status();
        }
        out.nodes_per_rack = v.value();
        break;
      }
      case 3: {
        StatusOr<double> v = ParseGbps(value, key);
        if (!v.ok()) {
          return v.status();
        }
        out.nic_gbps = v.value();
        break;
      }
      default: {
        StatusOr<double> v = ParseGbps(value, key);
        if (!v.ok()) {
          return v.status();
        }
        out.rack_gbps = v.value();
        break;
      }
    }
  }
  // Each factor is individually bounded by 1 << 20, but the *product* is the machine size;
  // widen before multiplying (int would overflow at the limits) and bound the total.
  const std::int64_t total_gpus = std::int64_t{out.nodes} * out.gpus_per_node;
  if (total_gpus > kMaxClusterGpus) {
    return MalformedSpec(0, "nodes * gpus_per_node = " + std::to_string(total_gpus) +
                                " GPUs exceeds the supported maximum of " +
                                std::to_string(kMaxClusterGpus));
  }
  return out;
}

std::string RenderClusterSpec(const ClusterSpec& spec) {
  std::string out = "nodes=" + std::to_string(spec.nodes);
  out += ",gpus_per_node=" + std::to_string(spec.gpus_per_node);
  out += ",nodes_per_rack=" + std::to_string(spec.nodes_per_rack);
  out += ",nic_gbps=" + FormatG(spec.nic_gbps);
  out += ",rack_gbps=" + FormatG(spec.rack_gbps);
  return out;
}

LinkSpec NicLinkSpec(double gbps) {
  return LinkSpec{FormatG(gbps) + "GbE", gbps * 1e9 / 8.0, 20e-6};
}

LinkSpec RackLinkSpec(double gbps) {
  return LinkSpec{FormatG(gbps) + "GbE", gbps * 1e9 / 8.0, 25e-6};
}

ClusterConfig ToClusterConfig(const ClusterSpec& spec, ServerConfig server) {
  server.num_gpus = spec.gpus_per_node;
  ClusterConfig config;
  config.num_servers = spec.nodes;
  config.nodes_per_rack = spec.nodes_per_rack;
  config.server = server;
  config.nic = NicLinkSpec(spec.nic_gbps);
  config.rack = RackLinkSpec(spec.rack_gbps);
  return config;
}

}  // namespace harmony
