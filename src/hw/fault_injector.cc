#include "src/hw/fault_injector.h"

#include <algorithm>
#include <cstdio>

#include "src/util/check.h"

namespace harmony {
namespace {

std::string FormatFixed(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

}  // namespace

FaultInjector::FaultInjector(Simulator* sim, TransferManager* transfers)
    : sim_(sim), transfers_(transfers), topology_(&transfers->topology()) {
  HCHECK(topology_->finalized());
  link_scales_.resize(static_cast<std::size_t>(topology_->num_links()));
  gpu_compute_scales_.resize(static_cast<std::size_t>(topology_->num_gpus()));
}

void FaultInjector::Arm(const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events()) {
    sim_->ScheduleAfter(event.time, [this, event] { ApplyEvent(event); });
  }
}

std::vector<LinkId> FaultInjector::TargetLinks(const FaultEvent& event) const {
  std::vector<LinkId> links;
  const bool network_capable =
      event.kind == FaultKind::kFlowFlap || event.kind == FaultKind::kLinkBrownout;
  const bool gpu_scoped = event.kind == FaultKind::kGpuLinkDegrade ||
                          (network_capable && event.gpu >= 0 && event.nic < 0 &&
                           event.rack < 0);
  if (network_capable && (event.nic >= 0 || event.rack >= 0)) {
    // Node-scoped network target: every link incident to node i's NIC (nic<i>) or rack i's
    // top-of-rack switch (rack<i>) — the inter-node tier the event flaps or browns out.
    const NodeId center = event.nic >= 0 ? topology_->nic_node(event.nic)
                                         : topology_->tor_node(event.rack);
    for (LinkId lid = 0; lid < topology_->num_links(); ++lid) {
      const TopologyLink& link = topology_->link(lid);
      if (link.src == center || link.dst == center) {
        links.push_back(lid);
      }
    }
  } else if (gpu_scoped) {
    const NodeId gpu = topology_->gpu_node(event.gpu);
    for (LinkId lid = 0; lid < topology_->num_links(); ++lid) {
      const TopologyLink& link = topology_->link(lid);
      if (link.src == gpu || link.dst == gpu) {
        links.push_back(lid);
      }
    }
  } else {
    // Host-uplink degradation and host-memory pressure both throttle the swap tier: every
    // link with a host endpoint. They stay distinct fault kinds because they compose (and
    // report) independently.
    for (LinkId lid = 0; lid < topology_->num_links(); ++lid) {
      const TopologyLink& link = topology_->link(lid);
      if (topology_->node(link.src).kind == NodeKind::kHost ||
          topology_->node(link.dst).kind == NodeKind::kHost) {
        links.push_back(lid);
      }
    }
  }
  return links;
}

void FaultInjector::ApplyEvent(const FaultEvent& event) {
  const bool network_scoped =
      (event.kind == FaultKind::kFlowFlap || event.kind == FaultKind::kLinkBrownout) &&
      (event.nic >= 0 || event.rack >= 0);
  if (network_scoped) {
    if (event.nic >= topology_->num_nics()) {
      Trace("drop@" + FormatFixed(sim_->now()) + " " + event.ToString() +
            " (no such NIC on this machine)");
      return;
    }
    if (event.rack >= topology_->num_racks()) {
      Trace("drop@" + FormatFixed(sim_->now()) + " " + event.ToString() +
            " (no such rack on this machine)");
      return;
    }
  }
  const bool targets_gpu =
      event.kind == FaultKind::kGpuFailStop || event.kind == FaultKind::kGpuLinkDegrade ||
      event.kind == FaultKind::kGpuSlow ||
      ((event.kind == FaultKind::kFlowFlap || event.kind == FaultKind::kLinkBrownout) &&
       !network_scoped && event.gpu >= 0);
  if (targets_gpu && (event.gpu < 0 || event.gpu >= topology_->num_gpus())) {
    Trace("drop@" + FormatFixed(sim_->now()) + " " + event.ToString() +
          " (no such GPU on this machine)");
    return;
  }

  if (event.kind == FaultKind::kGpuFailStop) {
    const NodeId node = topology_->gpu_node(event.gpu);
    if (transfers_->NodeFailed(node)) {
      Trace("drop@" + FormatFixed(sim_->now()) + " " + event.ToString() +
            " (GPU already dead)");
      return;
    }
    Trace("apply@" + FormatFixed(sim_->now()) + " " + event.ToString());
    transfers_->FailNode(node);
    ++fail_stops_applied_;
    if (device_fail_handler_) {
      device_fail_handler_(event.gpu, sim_->now());
    }
    return;
  }

  if (event.kind == FaultKind::kCkptCorrupt) {
    Trace("apply@" + FormatFixed(sim_->now()) + " " + event.ToString());
    if (checkpoint_corrupt_handler_) {
      checkpoint_corrupt_handler_(sim_->now());
    }
    return;
  }

  if (event.kind == FaultKind::kGpuSlow) {
    const std::int64_t fault_id = next_fault_id_++;
    Trace("apply@" + FormatFixed(sim_->now()) + " " + event.ToString());
    gpu_compute_scales_[static_cast<std::size_t>(event.gpu)].push_back(
        {fault_id, event.scale});
    ReapplyGpu(event.gpu);
    if (event.duration > 0.0) {
      sim_->ScheduleAfter(event.duration, [this, fault_id, event] {
        Trace("expire@" + FormatFixed(sim_->now()) + " " + event.ToString());
        auto& active = gpu_compute_scales_[static_cast<std::size_t>(event.gpu)];
        active.erase(std::remove_if(active.begin(), active.end(),
                                    [fault_id](const ActiveScale& s) {
                                      return s.fault_id == fault_id;
                                    }),
                     active.end());
        ReapplyGpu(event.gpu);
      });
    }
    return;
  }

  if (event.kind == FaultKind::kFlowFlap) {
    // Instantaneous: abort (or retry, when the TransferManager carries a retry policy)
    // every in-flight flow crossing the target's links. No multiplier, no expiry.
    Trace("apply@" + FormatFixed(sim_->now()) + " " + event.ToString());
    transfers_->FlapLinkFlows(TargetLinks(event));
    return;
  }

  const std::vector<LinkId> links = TargetLinks(event);
  const std::int64_t fault_id = next_fault_id_++;
  Trace("apply@" + FormatFixed(sim_->now()) + " " + event.ToString());
  PushScale(links, fault_id, event.scale);
  if (event.kind == FaultKind::kLinkBrownout) {
    // A brownout is a degradation whose onset also drops everything in flight: the links
    // come back at `scale`, and the victims ride the retry tier (or abort without one).
    transfers_->FlapLinkFlows(links);
  }
  if (event.duration > 0.0) {
    sim_->ScheduleAfter(event.duration, [this, links, fault_id, event] {
      Trace("expire@" + FormatFixed(sim_->now()) + " " + event.ToString());
      PopScale(links, fault_id);
    });
  }
}

void FaultInjector::PushScale(const std::vector<LinkId>& links, std::int64_t fault_id,
                              double scale) {
  for (LinkId lid : links) {
    link_scales_[static_cast<std::size_t>(lid)].push_back({fault_id, scale});
    ReapplyLink(lid);
  }
}

void FaultInjector::PopScale(const std::vector<LinkId>& links, std::int64_t fault_id) {
  for (LinkId lid : links) {
    auto& active = link_scales_[static_cast<std::size_t>(lid)];
    active.erase(std::remove_if(active.begin(), active.end(),
                                [fault_id](const ActiveScale& s) {
                                  return s.fault_id == fault_id;
                                }),
                 active.end());
    ReapplyLink(lid);
  }
}

void FaultInjector::ReapplyLink(LinkId link) {
  // Multiply in fault-arrival order (the vector preserves it) so the composed scale is the
  // same bits no matter how the set was reached.
  double product = 1.0;
  for (const ActiveScale& s : link_scales_[static_cast<std::size_t>(link)]) {
    product *= s.scale;
  }
  transfers_->SetLinkBandwidthScale(link, product);
}

void FaultInjector::ReapplyGpu(int gpu) {
  double product = 1.0;
  for (const ActiveScale& s : gpu_compute_scales_[static_cast<std::size_t>(gpu)]) {
    product *= s.scale;
  }
  if (compute_scale_handler_) {
    compute_scale_handler_(gpu, product, sim_->now());
  }
}

void FaultInjector::Trace(const std::string& line) { trace_.push_back(line); }

std::string FaultInjector::TraceString() const {
  std::string out;
  for (const std::string& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace harmony
