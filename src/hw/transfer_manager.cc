#include "src/hw/transfer_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/util/check.h"

namespace harmony {
namespace {

// Flows with fewer remaining bytes than this are considered finished; guards against
// floating-point residue keeping a flow alive forever.
constexpr double kByteEpsilon = 1e-3;

}  // namespace

const char* TransferKindName(TransferKind kind) {
  switch (kind) {
    case TransferKind::kSwapIn:
      return "swap-in";
    case TransferKind::kSwapOut:
      return "swap-out";
    case TransferKind::kPeerToPeer:
      return "p2p";
    case TransferKind::kCollective:
      return "collective";
    case TransferKind::kInput:
      return "input";
    case TransferKind::kOther:
      return "other";
    case TransferKind::kCheckpoint:
      return "checkpoint";
  }
  return "unknown";
}

TransferManager::TransferManager(Simulator* sim, const Topology* topology)
    : sim_(sim), topology_(topology) {
  HCHECK(sim != nullptr);
  HCHECK(topology != nullptr);
  HCHECK(topology->finalized());
  dma_lane_ = sim->CreateLane("dma");
  link_lane_.reserve(static_cast<std::size_t>(topology->num_links()));
  for (LinkId lid = 0; lid < topology->num_links(); ++lid) {
    const TopologyLink& link = topology->link(lid);
    link_lane_.push_back(sim->CreateLane(topology->node(link.src).name + ">" +
                                         topology->node(link.dst).name));
  }
  link_active_.assign(static_cast<std::size_t>(topology->num_links()), 0);
  link_scale_.assign(static_cast<std::size_t>(topology->num_links()), 1.0);
  node_dead_.assign(static_cast<std::size_t>(topology->num_nodes()), false);
  link_flows_.assign(static_cast<std::size_t>(topology->num_links()), {});
  link_stats_.assign(static_cast<std::size_t>(topology->num_links()), LinkStats{});
  node_io_.assign(static_cast<std::size_t>(topology->num_nodes()), NodeIoStats{});
  queue_timeline_.assign(static_cast<std::size_t>(topology->num_links()), {});
}

OneShotEvent* TransferManager::StartTransfer(NodeId src, NodeId dst, Bytes bytes,
                                             TransferKind kind) {
  HCHECK_GE(bytes, 0);
  events_.push_back(std::make_unique<OneShotEvent>(sim_));
  OneShotEvent* done = events_.back().get();

  if (NodeFailed(src) || NodeFailed(dst)) {
    // Typed failure instead of a crash: the event fires now, flagged aborted, and the
    // caller decides what a dead endpoint means for it.
    aborted_events_.insert(done);
    ++flows_aborted_;
    sim_->ScheduleAfter(dma_lane_, 0.0, [done] { done->Fire(); });
    return done;
  }

  if (src == dst || bytes == 0) {
    double latency = 0.0;
    SimLane lane = dma_lane_;
    if (src != dst) {
      const std::vector<LinkId>& route = topology_->Route(src, dst);
      for (LinkId lid : route) {
        latency += topology_->link(lid).spec.latency_sec;
      }
      lane = link_lane_[static_cast<std::size_t>(route.front())];
    }
    sim_->ScheduleAfter(lane, latency, [done] { done->Fire(); });
    return done;
  }

  const std::vector<LinkId>& route = topology_->Route(src, dst);
  HCHECK(!route.empty());
  double latency = 0.0;
  for (LinkId lid : route) {
    latency += topology_->link(lid).spec.latency_sec;
  }

  const std::int64_t id = next_flow_id_++;
  bytes_by_kind_[static_cast<std::size_t>(kind)] += bytes;
  node_io_[static_cast<std::size_t>(src)].out_by_kind[static_cast<std::size_t>(kind)] += bytes;
  node_io_[static_cast<std::size_t>(dst)].in_by_kind[static_cast<std::size_t>(kind)] += bytes;

  Flow flow;
  flow.id = id;
  flow.route = &route;  // points into the topology's stable route table
  flow.src = src;
  flow.dst = dst;
  flow.bytes_remaining = static_cast<double>(bytes);
  flow.bytes_total = bytes;
  flow.kind = kind;
  flow.done = done;
  pending_.emplace(id, std::move(flow));

  // The flow joins the network after its route latency; that keeps latency out of the
  // bandwidth-sharing math while still delaying short transfers realistically. The flow
  // body lives in pending_ so the event closure carries two words, not the whole route.
  sim_->ScheduleAfter(link_lane_[static_cast<std::size_t>(route.front())], latency,
                      [this, id] { JoinFlow(id); });
  return done;
}

void TransferManager::JoinFlow(std::int64_t id) {
  const auto it = pending_.find(id);
  HCHECK(it != pending_.end());
  Flow flow = std::move(it->second);
  pending_.erase(it);
  if (NodeFailed(flow.src) || NodeFailed(flow.dst)) {
    // An endpoint died while the transfer was still in its latency window.
    aborted_events_.insert(flow.done);
    ++flows_aborted_;
    flow.done->Fire();
    return;
  }
  AdvanceToNow();
  Flow& attached = AttachFlow(std::move(flow));
  dirty_scratch_.assign(attached.route->begin(), attached.route->end());
  ReRateFlowsOnLinks(&dirty_scratch_);
  ScheduleNextCompletion();
}

Bytes TransferManager::total_bytes() const {
  Bytes total = 0;
  for (Bytes b : bytes_by_kind_) {
    total += b;
  }
  return total;
}

void TransferManager::AdvanceToNow() {
  const SimTime now = sim_->now();
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) {
    return;
  }
  for (auto& [id, flow] : flows_) {
    flow.bytes_remaining = std::max(0.0, flow.bytes_remaining - flow.rate * dt);
  }
  for (std::size_t lid = 0; lid < link_active_.size(); ++lid) {
    if (link_active_[lid] > 0) {
      link_stats_[lid].busy_time += dt;
      link_stats_[lid].flow_seconds += static_cast<double>(link_active_[lid]) * dt;
    }
  }
}

void TransferManager::RecordQueueDepth(LinkId link) {
  const auto slot = static_cast<std::size_t>(link);
  std::vector<LinkQueueSample>& timeline = queue_timeline_[slot];
  const SimTime now = sim_->now();
  if (!timeline.empty() && timeline.back().time == now) {
    timeline.back().depth = link_active_[slot];
    return;
  }
  timeline.push_back(LinkQueueSample{now, link_active_[slot]});
}

TransferManager::Flow& TransferManager::AttachFlow(Flow flow) {
  const std::int64_t id = flow.id;
  const auto [it, inserted] = flows_.emplace(id, std::move(flow));
  HCHECK(inserted);
  Flow& attached = it->second;  // stable address: unordered_map never moves elements
  for (LinkId lid : *attached.route) {
    const auto slot = static_cast<std::size_t>(lid);
    ++link_active_[slot];
    link_stats_[slot].max_queue_depth =
        std::max(link_stats_[slot].max_queue_depth, link_active_[slot]);
    link_flows_[slot].push_back(&attached);
    if (record_queue_timeline_) {
      RecordQueueDepth(lid);
    }
  }
  return attached;
}

void TransferManager::DetachFlow(Flow& flow, std::vector<LinkId>* dirty_links) {
  for (LinkId lid : *flow.route) {
    const auto slot = static_cast<std::size_t>(lid);
    --link_active_[slot];
    HCHECK_GE(link_active_[slot], 0);
    std::vector<Flow*>& on_link = link_flows_[slot];
    const auto it = std::find(on_link.begin(), on_link.end(), &flow);
    HCHECK(it != on_link.end());
    *it = on_link.back();  // order within a link list is irrelevant to the model
    on_link.pop_back();
    dirty_links->push_back(lid);
    if (record_queue_timeline_) {
      RecordQueueDepth(lid);
    }
  }
  HeapRemove(flow);
}

double TransferManager::ComputeRate(const Flow& flow) const {
  double rate = std::numeric_limits<double>::infinity();
  for (LinkId lid : *flow.route) {
    const auto slot = static_cast<std::size_t>(lid);
    const double share = topology_->link(lid).spec.bandwidth_bytes_per_sec *
                         link_scale_[slot] / static_cast<double>(link_active_[slot]);
    rate = std::min(rate, share);
  }
  return rate;
}

void TransferManager::ApplyUplinkBandwidthQuota(double fraction) {
  HCHECK_GT(fraction, 0.0);
  HCHECK_LE(fraction, 1.0);
  if (fraction == 1.0) {
    return;  // full share: keep the exact pre-quota link state (and event sequence)
  }
  HCHECK(flows_.empty()) << "quota must be applied before any flow starts";
  for (LinkId lid = 0; lid < topology_->num_links(); ++lid) {
    const TopologyLink& link = topology_->link(lid);
    const bool shared_uplink =
        link.tier != LinkTier::kPcie ||
        topology_->node(link.src).kind == NodeKind::kHost ||
        topology_->node(link.dst).kind == NodeKind::kHost;
    if (shared_uplink) {
      SetLinkBandwidthScale(lid, fraction);
    }
  }
}

void TransferManager::SetLinkBandwidthScale(LinkId link, double scale) {
  HCHECK_GE(link, 0);
  HCHECK_LT(static_cast<std::size_t>(link), link_scale_.size());
  HCHECK_GT(scale, 0.0) << "use FailNode for dead links, not a zero scale";
  const auto slot = static_cast<std::size_t>(link);
  if (link_scale_[slot] == scale) {
    return;
  }
  // A capacity change is a change point exactly like an arrival: integrate the old rates
  // forward, then re-rate every flow crossing the link and re-key its projection.
  AdvanceToNow();
  link_scale_[slot] = scale;
  dirty_scratch_.assign(1, link);
  ReRateFlowsOnLinks(&dirty_scratch_);
  ScheduleNextCompletion();
}

void TransferManager::FailNode(NodeId node) {
  HCHECK_GE(node, 0);
  HCHECK_LT(static_cast<std::size_t>(node), node_dead_.size());
  if (node_dead_[static_cast<std::size_t>(node)]) {
    return;
  }
  AdvanceToNow();
  node_dead_[static_cast<std::size_t>(node)] = true;

  // Every flow whose route crosses one of the node's links has a dead endpoint or a dead
  // forwarder; abort them all. Collect ids first — DetachFlow mutates the per-link lists.
  std::vector<std::int64_t> doomed;
  for (LinkId lid = 0; lid < topology_->num_links(); ++lid) {
    const TopologyLink& link = topology_->link(lid);
    if (link.src != node && link.dst != node) {
      continue;
    }
    for (const Flow* flow : link_flows_[static_cast<std::size_t>(lid)]) {
      doomed.push_back(flow->id);
    }
  }
  std::sort(doomed.begin(), doomed.end());
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());

  dirty_scratch_.clear();
  for (std::int64_t id : doomed) {
    Flow& flow = flows_.at(id);
    DetachFlow(flow, &dirty_scratch_);
    ++flows_aborted_;
    aborted_events_.insert(flow.done);
    flow.done->Fire();
    flows_.erase(id);
  }
  ReRateFlowsOnLinks(&dirty_scratch_);
  ScheduleNextCompletion();
}

int TransferManager::FlapLinkFlows(const std::vector<LinkId>& links) {
  AdvanceToNow();

  // Collect victims first — DetachFlow mutates the per-link lists — and sort/dedupe so a
  // flow crossing several flapped links aborts once, in flow-id order (determinism).
  std::vector<std::int64_t> doomed;
  for (LinkId lid : links) {
    HCHECK_GE(lid, 0);
    HCHECK_LT(static_cast<std::size_t>(lid), link_flows_.size());
    for (const Flow* flow : link_flows_[static_cast<std::size_t>(lid)]) {
      doomed.push_back(flow->id);
    }
  }
  std::sort(doomed.begin(), doomed.end());
  doomed.erase(std::unique(doomed.begin(), doomed.end()), doomed.end());
  if (doomed.empty()) {
    return 0;
  }

  dirty_scratch_.clear();
  for (std::int64_t id : doomed) {
    Flow& flow = flows_.at(id);
    DetachFlow(flow, &dirty_scratch_);
    ++flow.attempts;
    if (retry_policy_ != nullptr && !retry_policy_->Exhausted(flow.attempts)) {
      // Absorb: re-issue the whole transfer after a deterministic backoff plus the route
      // latency. Bytes were counted once at StartTransfer; the retransmit costs time and
      // link occupancy but is never double-counted against node_io / bytes_by_kind.
      const double backoff = retry_policy_->DelayFor(flow.id, flow.attempts);
      ++flows_retried_;
      retry_backoff_sec_ += backoff;
      flow.bytes_remaining = static_cast<double>(flow.bytes_total);
      flow.rate = 0.0;
      flow.completion_time = 0.0;
      double latency = 0.0;
      for (LinkId lid : *flow.route) {
        latency += topology_->link(lid).spec.latency_sec;
      }
      const SimLane lane = link_lane_[static_cast<std::size_t>(flow.route->front())];
      Flow moved = std::move(flow);
      flows_.erase(id);
      pending_.emplace(id, std::move(moved));
      sim_->ScheduleAfter(lane, backoff + latency, [this, id] { JoinFlow(id); });
    } else {
      // Budget exhausted (or no policy): surface the abort exactly like a node-failure
      // victim, plus the typed exhaustion escalation.
      ++flows_aborted_;
      ++retry_exhausted_;
      aborted_events_.insert(flow.done);
      flow.done->Fire();
      flows_.erase(id);
      if (retry_exhausted_handler_) {
        retry_exhausted_handler_(id, sim_->now());
      }
    }
  }
  ReRateFlowsOnLinks(&dirty_scratch_);
  ScheduleNextCompletion();
  return static_cast<int>(doomed.size());
}

// ---- indexed completion heap ------------------------------------------------------------
// A hand-rolled binary min-heap whose entries carry a pointer to their flow; every placement
// writes the flow's heap_index back, so a flow's entry can be re-keyed or removed in place.

void TransferManager::HeapSiftUp(std::size_t i) {
  Completion item = completion_heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!CompletionBefore(item, completion_heap_[parent])) {
      break;
    }
    completion_heap_[i] = completion_heap_[parent];
    completion_heap_[i].flow->heap_index = i;
    i = parent;
  }
  completion_heap_[i] = item;
  item.flow->heap_index = i;
}

void TransferManager::HeapSiftDown(std::size_t i) {
  const std::size_t n = completion_heap_.size();
  Completion item = completion_heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    const std::size_t right = child + 1;
    if (right < n && CompletionBefore(completion_heap_[right], completion_heap_[child])) {
      child = right;
    }
    if (!CompletionBefore(completion_heap_[child], item)) {
      break;
    }
    completion_heap_[i] = completion_heap_[child];
    completion_heap_[i].flow->heap_index = i;
    i = child;
  }
  completion_heap_[i] = item;
  item.flow->heap_index = i;
}

void TransferManager::HeapPush(Flow& flow) {
  completion_heap_.push_back(Completion{flow.completion_time, &flow});
  flow.heap_index = completion_heap_.size() - 1;
  HeapSiftUp(flow.heap_index);
}

void TransferManager::HeapUpdate(Flow& flow) {
  const std::size_t i = flow.heap_index;
  HCHECK_LT(i, completion_heap_.size());
  completion_heap_[i].when = flow.completion_time;
  HeapSiftUp(i);
  if (flow.heap_index == i) {
    HeapSiftDown(i);
  }
}

void TransferManager::HeapRemove(Flow& flow) {
  const std::size_t i = flow.heap_index;
  HCHECK_LT(i, completion_heap_.size());
  const std::size_t last = completion_heap_.size() - 1;
  if (i != last) {
    completion_heap_[i] = completion_heap_[last];
    completion_heap_[i].flow->heap_index = i;
  }
  completion_heap_.pop_back();
  flow.heap_index = kNoHeapIndex;
  if (i < completion_heap_.size()) {
    Flow* moved = completion_heap_[i].flow;
    HeapSiftUp(i);
    if (moved->heap_index == i) {  // did not move up; may need to go down
      HeapSiftDown(i);
    }
  }
}

void TransferManager::ReRateFlowsOnLinks(std::vector<LinkId>* dirty_links) {
  if (dirty_links->empty()) {
    return;
  }
  // A completion dirties every link on its route; dedupe links (tiny vector), then dedupe
  // flows reached via several dirty links with a visit stamp instead of sorting ids.
  std::sort(dirty_links->begin(), dirty_links->end());
  dirty_links->erase(std::unique(dirty_links->begin(), dirty_links->end()),
                     dirty_links->end());
  ++rerate_mark_;
  const SimTime now = sim_->now();

  // Strategy: when a change touches most of the heap (the paper's shared-uplink regime,
  // where one oversubscribed link carries every flow), k individual re-keys cost O(k log k)
  // sifts. Rewriting the keys in place and re-heapifying once (Floyd, O(k)) matches the old
  // full-rebuild's linear cost there, while sparse changes keep the O(log) in-place re-key.
  std::size_t touched_bound = 0;
  for (LinkId lid : *dirty_links) {
    touched_bound += link_flows_[static_cast<std::size_t>(lid)].size();
  }
  const bool bulk =
      completion_heap_.size() >= 16 && 2 * touched_bound >= completion_heap_.size();

  for (LinkId lid : *dirty_links) {
    // Only flows crossing a dirty link can see a changed active count; everyone else's rate
    // is a pure function of unchanged counts and stays bit-identical without a recompute.
    for (Flow* flow : link_flows_[static_cast<std::size_t>(lid)]) {
      if (flow->rerate_mark == rerate_mark_) {
        continue;
      }
      flow->rerate_mark = rerate_mark_;
      const double rate = ComputeRate(*flow);
      if (rate == flow->rate) {
        // Same share as before (bottlenecked on an untouched link): the projected
        // completion time is still valid and the heap entry stays where it is.
        continue;
      }
      flow->rate = rate;
      flow->completion_time = now + flow->bytes_remaining / rate;
      if (bulk) {
        if (flow->heap_index == kNoHeapIndex) {
          completion_heap_.push_back(Completion{flow->completion_time, flow});
          flow->heap_index = completion_heap_.size() - 1;  // provisional; reindexed below
        } else {
          completion_heap_[flow->heap_index].when = flow->completion_time;
        }
      } else if (flow->heap_index == kNoHeapIndex) {
        HeapPush(*flow);
      } else {
        HeapUpdate(*flow);
      }
    }
  }

  if (bulk) {
    // comp(a, b) = "a after b" makes std::make_heap's max-at-root a min-heap under
    // CompletionBefore, i.e. exactly the invariant the hand sifts maintain.
    std::make_heap(completion_heap_.begin(), completion_heap_.end(),
                   [](const Completion& a, const Completion& b) {
                     return CompletionBefore(b, a);
                   });
    for (std::size_t i = 0; i < completion_heap_.size(); ++i) {
      completion_heap_[i].flow->heap_index = i;
    }
  }
}

void TransferManager::ScheduleNextCompletion() {
  ++wakeup_generation_;
  if (completion_heap_.empty()) {
    HCHECK(flows_.empty()) << "active flows but no completion entry";
    return;
  }
  // A projection rated at an earlier change point can sit an ulp before now; clamp.
  const SimTime when = std::max(completion_heap_.front().when, sim_->now());
  const std::uint64_t generation = wakeup_generation_;
  sim_->ScheduleAt(dma_lane_, when, [this, generation] { OnWakeup(generation); });
}

void TransferManager::OnWakeup(std::uint64_t generation) {
  if (generation != wakeup_generation_) {
    return;  // a newer recompute superseded this wakeup
  }
  AdvanceToNow();

  const SimTime now = sim_->now();
  dirty_scratch_.clear();
  while (!completion_heap_.empty() && completion_heap_.front().when <= now) {
    Flow& flow = *completion_heap_.front().flow;
    if (flow.bytes_remaining > kByteEpsilon) {
      // FP residue left the flow a hair short of done; re-key to the corrected projection.
      flow.completion_time = now + flow.bytes_remaining / flow.rate;
      HeapUpdate(flow);
      if (completion_heap_.front().flow == &flow) {
        break;  // correction did not advance past now; retry from the rescheduled wakeup
      }
      continue;
    }
    for (LinkId lid : *flow.route) {
      LinkStats& stats = link_stats_[static_cast<std::size_t>(lid)];
      stats.bytes_carried += flow.bytes_total;
      stats.bytes_by_kind[static_cast<std::size_t>(flow.kind)] += flow.bytes_total;
      ++stats.flows;
    }
    DetachFlow(flow, &dirty_scratch_);
    ++flows_completed_;
    OneShotEvent* done = flow.done;
    const std::int64_t id = flow.id;
    done->Fire();
    flows_.erase(id);
  }
  ReRateFlowsOnLinks(&dirty_scratch_);
  ScheduleNextCompletion();
}

std::string TransferManager::DebugCheckConsistency() const {
  std::ostringstream os;
  // From-scratch link counts and flow lists.
  std::vector<int> want_active(link_active_.size(), 0);
  std::vector<std::vector<std::int64_t>> want_flows(link_flows_.size());
  for (const auto& [id, flow] : flows_) {
    for (LinkId lid : *flow.route) {
      ++want_active[static_cast<std::size_t>(lid)];
      want_flows[static_cast<std::size_t>(lid)].push_back(id);
    }
  }
  for (std::size_t lid = 0; lid < link_active_.size(); ++lid) {
    if (link_active_[lid] != want_active[lid]) {
      os << "link " << lid << ": incremental active count " << link_active_[lid]
         << " != from-scratch " << want_active[lid];
      return os.str();
    }
    std::vector<std::int64_t> have;
    have.reserve(link_flows_[lid].size());
    for (const Flow* flow : link_flows_[lid]) {
      have.push_back(flow->id);
    }
    std::sort(have.begin(), have.end());
    std::sort(want_flows[lid].begin(), want_flows[lid].end());
    if (have != want_flows[lid]) {
      os << "link " << lid << ": flow list diverged from from-scratch rebuild";
      return os.str();
    }
  }
  // From-scratch rates: pure function of the (verified) counts, so they must match bitwise.
  for (const auto& [id, flow] : flows_) {
    const double want_rate = ComputeRate(flow);
    if (flow.rate != want_rate) {
      os << "flow " << id << ": incremental rate " << flow.rate << " != from-scratch "
         << want_rate;
      return os.str();
    }
    // Completion projections are stamped at the flow's last rate change; algebra says they
    // equal last_advance_ + remaining/rate (bytes_remaining is integrated only up to
    // last_advance_, not to now()), FP says only to round-off.
    const double want_completion = last_advance_ + flow.bytes_remaining / flow.rate;
    const double tolerance = 1e-6 * (1.0 + std::abs(want_completion));
    if (std::abs(flow.completion_time - want_completion) > tolerance) {
      os << "flow " << id << ": completion time " << flow.completion_time
         << " drifted from projection " << want_completion;
      return os.str();
    }
  }
  // Indexed-heap invariants: one entry per flow, back-pointers and keys agree, heap order.
  if (completion_heap_.size() != flows_.size()) {
    os << "completion heap has " << completion_heap_.size() << " entries for "
       << flows_.size() << " flows";
    return os.str();
  }
  for (const auto& [id, flow] : flows_) {
    if (flow.heap_index >= completion_heap_.size() ||
        completion_heap_[flow.heap_index].flow != &flow) {
      os << "flow " << id << ": heap_index back-pointer is broken";
      return os.str();
    }
    if (completion_heap_[flow.heap_index].when != flow.completion_time) {
      os << "flow " << id << ": heap key != flow completion_time";
      return os.str();
    }
  }
  for (std::size_t i = 1; i < completion_heap_.size(); ++i) {
    if (CompletionBefore(completion_heap_[i], completion_heap_[(i - 1) / 2])) {
      os << "completion heap order violated at index " << i;
      return os.str();
    }
  }
  return std::string();
}

}  // namespace harmony
