#include "src/hw/transfer_manager.h"

#include <algorithm>
#include <limits>

#include "src/util/check.h"

namespace harmony {
namespace {

// Flows with fewer remaining bytes than this are considered finished; guards against
// floating-point residue keeping a flow alive forever.
constexpr double kByteEpsilon = 1e-3;

}  // namespace

const char* TransferKindName(TransferKind kind) {
  switch (kind) {
    case TransferKind::kSwapIn:
      return "swap-in";
    case TransferKind::kSwapOut:
      return "swap-out";
    case TransferKind::kPeerToPeer:
      return "p2p";
    case TransferKind::kCollective:
      return "collective";
    case TransferKind::kInput:
      return "input";
    case TransferKind::kOther:
      return "other";
  }
  return "unknown";
}

TransferManager::TransferManager(Simulator* sim, const Topology* topology)
    : sim_(sim), topology_(topology) {
  HCHECK(sim != nullptr);
  HCHECK(topology != nullptr);
  HCHECK(topology->finalized());
  link_active_.assign(static_cast<std::size_t>(topology->num_links()), 0);
  link_stats_.assign(static_cast<std::size_t>(topology->num_links()), LinkStats{});
}

OneShotEvent* TransferManager::StartTransfer(NodeId src, NodeId dst, Bytes bytes,
                                             TransferKind kind) {
  HCHECK_GE(bytes, 0);
  events_.push_back(std::make_unique<OneShotEvent>(sim_));
  OneShotEvent* done = events_.back().get();

  if (src == dst || bytes == 0) {
    double latency = 0.0;
    if (src != dst) {
      for (LinkId lid : topology_->Route(src, dst)) {
        latency += topology_->link(lid).spec.latency_sec;
      }
    }
    sim_->ScheduleAfter(latency, [done] { done->Fire(); });
    return done;
  }

  const std::vector<LinkId>& route = topology_->Route(src, dst);
  HCHECK(!route.empty());
  double latency = 0.0;
  for (LinkId lid : route) {
    latency += topology_->link(lid).spec.latency_sec;
  }

  const std::int64_t id = next_flow_id_++;
  bytes_by_kind_[static_cast<std::size_t>(kind)] += bytes;

  // The flow joins the network after its route latency; that keeps latency out of the
  // bandwidth-sharing math while still delaying short transfers realistically.
  sim_->ScheduleAfter(latency, [this, id, route, bytes, kind, done] {
    AdvanceToNow();
    Flow flow;
    flow.id = id;
    flow.route = route;
    flow.bytes_remaining = static_cast<double>(bytes);
    flow.bytes_total = bytes;
    flow.kind = kind;
    flow.done = done;
    flows_.emplace(id, std::move(flow));
    RecomputeRates();
  });
  return done;
}

Bytes TransferManager::total_bytes() const {
  Bytes total = 0;
  for (Bytes b : bytes_by_kind_) {
    total += b;
  }
  return total;
}

void TransferManager::AdvanceToNow() {
  const SimTime now = sim_->now();
  const double dt = now - last_advance_;
  last_advance_ = now;
  if (dt <= 0.0) {
    return;
  }
  for (auto& [id, flow] : flows_) {
    flow.bytes_remaining = std::max(0.0, flow.bytes_remaining - flow.rate * dt);
  }
  for (std::size_t lid = 0; lid < link_active_.size(); ++lid) {
    if (link_active_[lid] > 0) {
      link_stats_[lid].busy_time += dt;
    }
  }
}

void TransferManager::RecomputeRates() {
  CompleteFinishedFlows();

  std::fill(link_active_.begin(), link_active_.end(), 0);
  for (const auto& [id, flow] : flows_) {
    for (LinkId lid : flow.route) {
      ++link_active_[static_cast<std::size_t>(lid)];
    }
  }
  for (auto& [id, flow] : flows_) {
    double rate = std::numeric_limits<double>::infinity();
    for (LinkId lid : flow.route) {
      const double share = topology_->link(lid).spec.bandwidth_bytes_per_sec /
                           static_cast<double>(link_active_[static_cast<std::size_t>(lid)]);
      rate = std::min(rate, share);
    }
    flow.rate = rate;
  }
  ScheduleNextCompletion();
}

void TransferManager::ScheduleNextCompletion() {
  ++wakeup_generation_;
  if (flows_.empty()) {
    return;
  }
  double next = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    HCHECK_GT(flow.rate, 0.0);
    next = std::min(next, flow.bytes_remaining / flow.rate);
  }
  const std::uint64_t generation = wakeup_generation_;
  sim_->ScheduleAfter(next, [this, generation] { OnWakeup(generation); });
}

void TransferManager::OnWakeup(std::uint64_t generation) {
  if (generation != wakeup_generation_) {
    return;  // a newer recompute superseded this wakeup
  }
  AdvanceToNow();
  RecomputeRates();
}

void TransferManager::CompleteFinishedFlows() {
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.bytes_remaining <= kByteEpsilon) {
      for (LinkId lid : it->second.route) {
        link_stats_[static_cast<std::size_t>(lid)].bytes_carried += it->second.bytes_total;
      }
      ++flows_completed_;
      it->second.done->Fire();
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace harmony
