// Replays a FaultPlan against a live Simulator + TransferManager.
//
// The injector turns each FaultEvent into concrete topology actions at its scheduled sim
// time: a fail-stop becomes TransferManager::FailNode on the GPU's node (plus a callback so
// the engine can roll back); a degradation pushes a bandwidth multiplier onto the affected
// links and pops it when the duration expires. Overlapping degradations compose as the
// product of all active multipliers, recomputed in fault-arrival order so the effective
// scale is bit-identical across runs (no divide-to-undo drift).
//
// Every applied action is appended to a trace; TraceString() is the canonical artifact the
// fault determinism tests compare across runs and thread counts.
#ifndef HARMONY_SRC_HW_FAULT_INJECTOR_H_
#define HARMONY_SRC_HW_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/hw/topology.h"
#include "src/hw/transfer_manager.h"
#include "src/sim/fault_plan.h"
#include "src/sim/simulator.h"

namespace harmony {

class FaultInjector {
 public:
  FaultInjector(Simulator* sim, TransferManager* transfers);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Called when a GPU fail-stops, after its flows have been aborted. The engine uses this
  // to mark the device dead and trigger recovery.
  void SetDeviceFailHandler(std::function<void(int gpu, SimTime when)> handler) {
    device_fail_handler_ = std::move(handler);
  }

  // Called whenever a GPU's composed compute multiplier changes (kGpuSlow apply/expire).
  // `scale` is the product of every active slowdown on that GPU, recomputed in
  // fault-arrival order like the link multipliers. The engine scales the device's
  // effective flops for tasks dispatched from `when` on.
  void SetComputeScaleHandler(std::function<void(int gpu, double scale, SimTime when)> handler) {
    compute_scale_handler_ = std::move(handler);
  }

  // Called when a kCkptCorrupt event fires; the session wires this to
  // CheckpointStore::CorruptNewest. Without a handler the event is trace-only.
  void SetCheckpointCorruptHandler(std::function<void(SimTime when)> handler) {
    checkpoint_corrupt_handler_ = std::move(handler);
  }

  // Schedules every event in `plan` relative to the current sim time (Arm is normally
  // called at t=0; a recovery segment re-arms with a time-shifted plan). Events targeting
  // GPUs outside the machine are dropped with a trace note instead of crashing.
  void Arm(const FaultPlan& plan);

  // Number of fail-stops applied so far.
  int fail_stops_applied() const { return fail_stops_applied_; }

  // Newline-joined log of every applied/expired fault action with fixed-precision times —
  // byte-stable across runs with the same plan (the determinism-test artifact).
  std::string TraceString() const;
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  // One multiplier pushed onto a link by fault instance `fault_id`.
  struct ActiveScale {
    std::int64_t fault_id = 0;
    double scale = 1.0;
  };

  void ApplyEvent(const FaultEvent& event);
  // Links whose bandwidth the event touches: the GPU's incident links for GPU-targeted
  // kinds (kGpuLinkDegrade, and kFlowFlap / kLinkBrownout with gpu >= 0), every
  // host-incident link otherwise.
  std::vector<LinkId> TargetLinks(const FaultEvent& event) const;
  void PushScale(const std::vector<LinkId>& links, std::int64_t fault_id, double scale);
  void PopScale(const std::vector<LinkId>& links, std::int64_t fault_id);
  // Recomputes the link's effective scale as the product of active multipliers in
  // fault-arrival order and pushes it into the TransferManager.
  void ReapplyLink(LinkId link);
  // Same composition for per-GPU compute slowdowns; notifies the compute-scale handler.
  void ReapplyGpu(int gpu);
  void Trace(const std::string& line);

  Simulator* sim_;
  TransferManager* transfers_;
  const Topology* topology_;
  std::function<void(int gpu, SimTime when)> device_fail_handler_;
  std::function<void(int gpu, double scale, SimTime when)> compute_scale_handler_;
  std::function<void(SimTime when)> checkpoint_corrupt_handler_;

  std::int64_t next_fault_id_ = 0;
  std::vector<std::vector<ActiveScale>> link_scales_;  // active multipliers per link
  std::vector<std::vector<ActiveScale>> gpu_compute_scales_;  // active slowdowns per GPU
  int fail_stops_applied_ = 0;
  std::vector<std::string> trace_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_HW_FAULT_INJECTOR_H_
