// Flow-level DMA model over the topology.
//
// A transfer is a flow along the (precomputed) route between two nodes. At any instant a
// flow's rate is min over its route's links of (link bandwidth / number of active flows on
// that link) — the classic processor-sharing approximation of max-min fair bandwidth
// allocation. Rates are recomputed whenever a flow starts or finishes, so contention on the
// shared switch-to-host uplink (the paper's Fig. 2(a)/(b) bottleneck) emerges naturally.
//
// The implementation is *incremental*: per-link active-flow counts and per-link flow lists
// are maintained on every arrival/departure instead of being rebuilt from scratch, and only
// flows whose routes share a dirty link are re-rated (a flow's rate is a pure function of
// its links' counts, so untouched flows keep their rate bit-for-bit). The next completion
// comes from an indexed min-heap of projected completion times — each flow owns exactly one
// entry, re-keyed in place on re-rate, so peeking the next completion is O(1) and no stale
// entries ever accumulate. (A lazy heap with generation-tagged entries was tried first;
// profiling showed the dead entries it sheds on every re-rate dominating the hot path in
// the shared-uplink regime, where every arrival re-rates every flow.) Scheduled wakeups are
// generation-tagged and invalidated by any later re-rate. No O(flows x links) scan per
// event anywhere.
//
// The manager also keeps byte/busy-time accounting per link and per transfer kind, which the
// benches read back as "swap volume" and "link utilization".
#ifndef HARMONY_SRC_HW_TRANSFER_MANAGER_H_
#define HARMONY_SRC_HW_TRANSFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/hw/topology.h"
#include "src/runtime/retry_policy.h"
#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace harmony {

enum class TransferKind : int {
  kSwapIn = 0,    // host -> GPU
  kSwapOut = 1,   // GPU -> host
  kPeerToPeer = 2,  // GPU -> GPU direct
  kCollective = 3,  // allreduce chunks
  kInput = 4,       // training-data ingest
  kOther = 5,
  kCheckpoint = 6,  // periodic weight checkpoints to host (fault recovery)
};
inline constexpr int kNumTransferKinds = 7;

const char* TransferKindName(TransferKind kind);

struct LinkStats {
  Bytes bytes_carried = 0;
  double busy_time = 0.0;     // wall time with >= 1 active flow
  double flow_seconds = 0.0;  // time-integral of the active-flow count (avg queue depth
                              // over the run = flow_seconds / makespan)
  int max_queue_depth = 0;    // peak concurrent flows
  std::int64_t flows = 0;     // flows carried to completion
  Bytes bytes_by_kind[kNumTransferKinds] = {};  // completed-flow bytes per kind
};

// Per-node ingress/egress accounting, counted at flow start (same point as the global
// bytes_by_kind accounting, so the two views always agree). The endpoint-indexed
// counterpart of the MemoryManager's class-indexed counters — metrics_test equates them.
struct NodeIoStats {
  Bytes in_by_kind[kNumTransferKinds] = {};
  Bytes out_by_kind[kNumTransferKinds] = {};
};

// One queue-depth change point of a link's timeline (recorded only when enabled).
struct LinkQueueSample {
  SimTime time = 0.0;
  int depth = 0;
};

class TransferManager {
 public:
  TransferManager(Simulator* sim, const Topology* topology);
  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  // Starts a transfer of `bytes` from `src` to `dst`; the returned event (owned by the
  // manager) fires at completion. src == dst or bytes == 0 completes after route latency
  // only. The event pointer stays valid for the manager's lifetime.
  //
  // A transfer touching a failed node does not crash: its event fires immediately and
  // WasAborted(event) reports the failure, so callers can branch on a typed outcome.
  OneShotEvent* StartTransfer(NodeId src, NodeId dst, Bytes bytes, TransferKind kind);

  // ---- quota admission (multi-tenant scheduler, DESIGN.md §13) ----
  // Caps the bandwidth this session may draw from every shared uplink at `fraction` of
  // spec bandwidth: all host-adjacent links (the PCIe swap uplinks) and the NIC / rack
  // network tiers. GPU-side PCIe legs and p2p paths keep full speed — a tenant's quota
  // reserves the *shared* fabric, not its own lanes. fraction == 1.0 is a no-op (exact
  // pre-quota event sequence). Call once, before any flow starts; composes with the fault
  // model by simple overwrite (a later fault scale replaces the quota on that link), so
  // scheduler sessions do not arm faults.
  void ApplyUplinkBandwidthQuota(double fraction);

  // ---- fault model ----
  // Rescales `link`'s effective bandwidth to scale * spec bandwidth (scale in (0, 1]).
  // Active flows crossing the link are re-rated immediately; flows bottlenecked elsewhere
  // keep their rate bit-for-bit, exactly like any other arrival/departure change point.
  void SetLinkBandwidthScale(LinkId link, double scale);
  double link_bandwidth_scale(LinkId link) const {
    return link_scale_.at(static_cast<std::size_t>(link));
  }

  // Fail-stops `node`: every active flow whose route crosses one of the node's links is
  // aborted (its completion event fires, flagged aborted), and any future transfer with a
  // dead endpoint aborts at start. Surviving flows on shared links are re-rated — a dead
  // GPU frees its share of the uplink for everyone else.
  void FailNode(NodeId node);
  bool NodeFailed(NodeId node) const {
    return node < static_cast<NodeId>(node_dead_.size()) &&
           node_dead_[static_cast<std::size_t>(node)];
  }

  // True when `done` (a StartTransfer event) fired because its transfer was aborted by a
  // node failure rather than completing. Valid for the manager's lifetime.
  bool WasAborted(const OneShotEvent* done) const { return aborted_events_.count(done) > 0; }
  std::int64_t flows_aborted() const { return flows_aborted_; }

  // ---- retry tier (DESIGN.md §11) ----
  // Installs the transfer retry policy. With a policy set, transient aborts
  // (FlapLinkFlows) re-issue the flow from scratch on the simulator clock after a
  // deterministic backoff instead of firing the completion event aborted; only when the
  // attempt budget is exhausted does the abort surface. The policy must outlive the
  // manager's use of it; nullptr (the default) disables retries, preserving the
  // pre-retry behavior byte for byte.
  void SetRetryPolicy(const RetryPolicy* policy) { retry_policy_ = policy; }

  // Called (synchronously, at abort time) when a flow exhausts its retry budget. The
  // engine uses this to escalate to elastic recovery with a typed failure kind.
  void SetRetryExhaustedHandler(std::function<void(std::int64_t flow_id, SimTime when)> fn) {
    retry_exhausted_handler_ = std::move(fn);
  }

  // Transiently aborts every active flow crossing any of `links` (a flow_flap /
  // brownout fault). Each victim either re-enters the network after its backoff —
  // full retransmit: bytes already moved are lost, but the start-time byte accounting
  // is not re-counted — or, with the budget exhausted (or no policy installed), aborts
  // permanently like a node-failure victim. Flows still inside their route-latency
  // window have not entered the network and are not affected. Returns the number of
  // flows hit.
  int FlapLinkFlows(const std::vector<LinkId>& links);

  std::int64_t flows_retried() const { return flows_retried_; }
  std::int64_t retry_exhausted() const { return retry_exhausted_; }
  double retry_backoff_sec() const { return retry_backoff_sec_; }

  // ---- accounting ----
  Bytes bytes_by_kind(TransferKind kind) const {
    return bytes_by_kind_[static_cast<std::size_t>(kind)];
  }
  Bytes total_bytes() const;
  const LinkStats& link_stats(LinkId link) const {
    return link_stats_.at(static_cast<std::size_t>(link));
  }
  const NodeIoStats& node_io(NodeId node) const {
    return node_io_.at(static_cast<std::size_t>(node));
  }

  // Queue-depth timelines are off by default (they grow with flow count); the engine turns
  // them on for record_timeline runs so the chrome-trace export gets counter tracks.
  void set_record_queue_timeline(bool on) { record_queue_timeline_ = on; }
  const std::vector<LinkQueueSample>& queue_timeline(LinkId link) const {
    return queue_timeline_.at(static_cast<std::size_t>(link));
  }
  int num_active_flows() const { return static_cast<int>(flows_.size()); }
  std::int64_t flows_completed() const { return flows_completed_; }

  const Topology& topology() const { return *topology_; }

  // Test hook: rebuilds link counts, link flow lists and per-flow rates from scratch and
  // diffs them against the incrementally maintained state, then validates the completion
  // heap (one entry per flow, index back-pointers, heap order). Returns an empty string
  // when consistent, else a human-readable description of the first divergence. Counts and
  // rates must match exactly (rates are pure functions of integer counts); projected
  // completion times may drift by FP round-off and are checked to a relative tolerance.
  std::string DebugCheckConsistency() const;

 private:
  static constexpr std::size_t kNoHeapIndex = static_cast<std::size_t>(-1);

  struct Flow {
    std::int64_t id = 0;
    // Points into the finalized Topology's route table (stable for the topology's
    // lifetime) — flows are hot-path objects, so the route is never copied.
    const std::vector<LinkId>* route = nullptr;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    double bytes_remaining = 0.0;
    Bytes bytes_total = 0;
    double rate = 0.0;  // bytes/sec under the current allocation
    // Absolute sim time at which the flow drains at `rate` (stamped at the last re-rate).
    SimTime completion_time = 0.0;
    // Visit stamp for the current re-rate pass; dedupes flows reached via several dirty
    // links without sorting an id list.
    std::uint64_t rerate_mark = 0;
    // Position of this flow's entry in completion_heap_ (kNoHeapIndex before first rating).
    std::size_t heap_index = kNoHeapIndex;
    TransferKind kind = TransferKind::kOther;
    OneShotEvent* done = nullptr;
    int attempts = 0;  // transient aborts suffered so far (retry tier)
  };

  // Indexed-heap entry. `flow` stays valid while the flow is active: unordered_map never
  // moves its elements.
  struct Completion {
    SimTime when = 0.0;
    Flow* flow = nullptr;
  };

  // Min order. Ties break on flow id so simultaneous completions pop — and therefore fire —
  // in flow creation order, matching the old full scan's deterministic order.
  static bool CompletionBefore(const Completion& a, const Completion& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.flow->id < b.flow->id;
  }

  // Integrates all active flows (and per-link busy time) forward to sim_->now() using the
  // rates computed at the previous change point. Must run before the flow set changes.
  void AdvanceToNow();

  // Inserts the flow into the per-link indices (its heap entry appears at first re-rate).
  Flow& AttachFlow(Flow flow);
  // Removes the flow from the per-link indices and its heap entry, appending its route to
  // `dirty_links`.
  void DetachFlow(Flow& flow, std::vector<LinkId>* dirty_links);

  // Re-rates exactly the flows that cross any link in `dirty_links` and re-keys their heap
  // entries in place. Flows whose recomputed share is unchanged (bottlenecked on an
  // untouched link) keep their projection without touching the heap.
  void ReRateFlowsOnLinks(std::vector<LinkId>* dirty_links);
  double ComputeRate(const Flow& flow) const;

  // Indexed-heap primitives over completion_heap_; every placement writes the flow's
  // heap_index back-pointer.
  void HeapSiftUp(std::size_t i);
  void HeapSiftDown(std::size_t i);
  void HeapPush(Flow& flow);
  void HeapUpdate(Flow& flow);  // re-key after completion_time changed
  void HeapRemove(Flow& flow);

  // Peeks the heap root and schedules the wakeup for the next projected completion.
  void ScheduleNextCompletion();
  void OnWakeup(std::uint64_t generation);

  // Moves a pending flow (one that finished its route-latency window) into the active set
  // and re-rates the links it joins; aborts it instead if an endpoint died meanwhile.
  void JoinFlow(std::int64_t id);

  Simulator* sim_;
  const Topology* topology_;

  // Event lanes (DESIGN.md §10): completion wakeups and latency-only transfers ride the
  // DMA-engine lane; each flow's latency window rides its first link's lane.
  SimLane dma_lane_;
  std::vector<SimLane> link_lane_;  // one per topology link

  std::int64_t next_flow_id_ = 0;
  // Unordered is safe: no code depends on iteration order (completion order comes from the
  // heap comparator, rates are pure functions of counts), and lookups are on the hot path.
  std::unordered_map<std::int64_t, Flow> flows_;
  // Flows still inside their route-latency window (scheduled but not yet sharing
  // bandwidth); JoinFlow moves them into flows_.
  std::unordered_map<std::int64_t, Flow> pending_;
  std::vector<std::unique_ptr<OneShotEvent>> events_;  // owns completion events

  std::vector<int> link_active_;  // active flow count per link (maintained incrementally)
  std::vector<double> link_scale_;  // effective-bandwidth multiplier per link (fault model)
  std::vector<bool> node_dead_;     // fail-stopped nodes
  std::unordered_set<const OneShotEvent*> aborted_events_;
  std::int64_t flows_aborted_ = 0;

  const RetryPolicy* retry_policy_ = nullptr;  // not owned; nullptr = retries disabled
  std::function<void(std::int64_t, SimTime)> retry_exhausted_handler_;
  std::int64_t flows_retried_ = 0;      // transient aborts absorbed by a re-issue
  std::int64_t retry_exhausted_ = 0;    // flows that ran out of attempts
  double retry_backoff_sec_ = 0.0;      // total backoff delay injected by retries
  std::vector<std::vector<Flow*>> link_flows_;  // flows crossing each link
  std::vector<Completion> completion_heap_;     // indexed min-heap, one entry per flow
  std::vector<LinkStats> link_stats_;
  SimTime last_advance_ = 0.0;
  std::uint64_t wakeup_generation_ = 0;
  std::uint64_t rerate_mark_ = 0;
  std::vector<LinkId> dirty_scratch_;  // reused per wakeup to avoid per-event allocation

  Bytes bytes_by_kind_[kNumTransferKinds] = {};
  std::vector<NodeIoStats> node_io_;
  std::int64_t flows_completed_ = 0;

  bool record_queue_timeline_ = false;
  std::vector<std::vector<LinkQueueSample>> queue_timeline_;
  // Appends (now, link_active_[link]) to the link's timeline, coalescing same-timestamp
  // change points so each timestamp keeps only its final depth.
  void RecordQueueDepth(LinkId link);
};

}  // namespace harmony

#endif  // HARMONY_SRC_HW_TRANSFER_MANAGER_H_
