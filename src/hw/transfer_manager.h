// Flow-level DMA model over the topology.
//
// A transfer is a flow along the (precomputed) route between two nodes. At any instant a
// flow's rate is min over its route's links of (link bandwidth / number of active flows on
// that link) — the classic processor-sharing approximation of max-min fair bandwidth
// allocation. Rates are recomputed whenever a flow starts or finishes, so contention on the
// shared switch-to-host uplink (the paper's Fig. 2(a)/(b) bottleneck) emerges naturally.
//
// The manager also keeps byte/busy-time accounting per link and per transfer kind, which the
// benches read back as "swap volume" and "link utilization".
#ifndef HARMONY_SRC_HW_TRANSFER_MANAGER_H_
#define HARMONY_SRC_HW_TRANSFER_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/hw/topology.h"
#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace harmony {

enum class TransferKind : int {
  kSwapIn = 0,    // host -> GPU
  kSwapOut = 1,   // GPU -> host
  kPeerToPeer = 2,  // GPU -> GPU direct
  kCollective = 3,  // allreduce chunks
  kInput = 4,       // training-data ingest
  kOther = 5,
};
inline constexpr int kNumTransferKinds = 6;

const char* TransferKindName(TransferKind kind);

struct LinkStats {
  Bytes bytes_carried = 0;
  double busy_time = 0.0;  // wall time with >= 1 active flow
};

class TransferManager {
 public:
  TransferManager(Simulator* sim, const Topology* topology);
  TransferManager(const TransferManager&) = delete;
  TransferManager& operator=(const TransferManager&) = delete;

  // Starts a transfer of `bytes` from `src` to `dst`; the returned event (owned by the
  // manager) fires at completion. src == dst or bytes == 0 completes after route latency
  // only. The event pointer stays valid for the manager's lifetime.
  OneShotEvent* StartTransfer(NodeId src, NodeId dst, Bytes bytes, TransferKind kind);

  // ---- accounting ----
  Bytes bytes_by_kind(TransferKind kind) const {
    return bytes_by_kind_[static_cast<std::size_t>(kind)];
  }
  Bytes total_bytes() const;
  const LinkStats& link_stats(LinkId link) const {
    return link_stats_.at(static_cast<std::size_t>(link));
  }
  int num_active_flows() const { return static_cast<int>(flows_.size()); }
  std::int64_t flows_completed() const { return flows_completed_; }

  const Topology& topology() const { return *topology_; }

 private:
  struct Flow {
    std::int64_t id = 0;
    std::vector<LinkId> route;
    double bytes_remaining = 0.0;
    Bytes bytes_total = 0;
    double rate = 0.0;  // bytes/sec under the current allocation
    TransferKind kind = TransferKind::kOther;
    OneShotEvent* done = nullptr;
  };

  // Integrates all active flows (and per-link busy time) forward to sim_->now() using the
  // rates computed at the previous change point. Must run before the flow set changes.
  void AdvanceToNow();

  // Recomputes per-link active counts and per-flow rates, then schedules the next
  // completion wakeup.
  void RecomputeRates();
  void ScheduleNextCompletion();
  void OnWakeup(std::uint64_t generation);
  void CompleteFinishedFlows();

  Simulator* sim_;
  const Topology* topology_;

  std::int64_t next_flow_id_ = 0;
  std::map<std::int64_t, Flow> flows_;  // ordered -> deterministic iteration
  std::vector<std::unique_ptr<OneShotEvent>> events_;  // owns completion events

  std::vector<int> link_active_;  // active flow count per link (valid since last recompute)
  std::vector<LinkStats> link_stats_;
  SimTime last_advance_ = 0.0;
  std::uint64_t wakeup_generation_ = 0;

  Bytes bytes_by_kind_[kNumTransferKinds] = {};
  std::int64_t flows_completed_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_SRC_HW_TRANSFER_MANAGER_H_
