#include "src/hw/topology.h"

#include <algorithm>
#include <deque>
#include <sstream>

#include "src/util/check.h"

namespace harmony {

const char* LinkTierName(LinkTier tier) {
  switch (tier) {
    case LinkTier::kPcie:
      return "pcie";
    case LinkTier::kNic:
      return "nic";
    case LinkTier::kRack:
      return "rack";
  }
  return "unknown";
}

NodeId Topology::AddNode(NodeKind kind, std::string name) {
  HCHECK(!finalized_);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  TopologyNode node{kind, std::move(name), -1};
  if (kind == NodeKind::kHost) {
    if (host_node_ == kInvalidNode) {
      host_node_ = id;
    }
    host_nodes_.push_back(id);
  } else if (kind == NodeKind::kGpu) {
    node.gpu_index = static_cast<int>(gpu_nodes_.size());
    gpu_nodes_.push_back(id);
  } else if (kind == NodeKind::kNic) {
    nic_nodes_.push_back(id);
  } else if (kind == NodeKind::kTor) {
    tor_nodes_.push_back(id);
  }
  nodes_.push_back(std::move(node));
  out_links_.emplace_back();
  return id;
}

void Topology::AddDuplexLink(NodeId a, NodeId b, const LinkSpec& spec, LinkTier tier) {
  HCHECK(!finalized_);
  HCHECK_NE(a, b);
  HCHECK_GE(a, 0);
  HCHECK_GE(b, 0);
  HCHECK_LT(a, num_nodes());
  HCHECK_LT(b, num_nodes());
  const LinkId forward = static_cast<LinkId>(links_.size());
  links_.push_back(TopologyLink{a, b, spec, tier});
  out_links_[static_cast<std::size_t>(a)].push_back(forward);
  const LinkId backward = static_cast<LinkId>(links_.size());
  links_.push_back(TopologyLink{b, a, spec, tier});
  out_links_[static_cast<std::size_t>(b)].push_back(backward);
}

void Topology::Finalize() {
  HCHECK(!finalized_);
  HCHECK_NE(host_node_, kInvalidNode) << "topology needs a host node";
  // Catch bad link specs here with a clear message rather than deep inside the flow model,
  // where a zero bandwidth would only surface as an opaque rate-check failure mid-run.
  for (const TopologyLink& l : links_) {
    HCHECK_GT(l.spec.bandwidth_bytes_per_sec, 0.0)
        << "link '" << l.spec.name << "' (" << node(l.src).name << " -> " << node(l.dst).name
        << ") must have positive bandwidth";
    HCHECK_GE(l.spec.latency_sec, 0.0)
        << "link '" << l.spec.name << "' (" << node(l.src).name << " -> " << node(l.dst).name
        << ") must have non-negative latency";
  }
  const int n = num_nodes();
  routes_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), {});

  // BFS from each source. out_links_ entries are visited in insertion order, which makes the
  // tie-break deterministic.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<LinkId> in_link(static_cast<std::size_t>(n), -1);
    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    std::deque<NodeId> frontier;
    visited[static_cast<std::size_t>(src)] = true;
    frontier.push_back(src);
    while (!frontier.empty()) {
      const NodeId at = frontier.front();
      frontier.pop_front();
      for (LinkId lid : out_links_[static_cast<std::size_t>(at)]) {
        const NodeId next = links_[static_cast<std::size_t>(lid)].dst;
        if (!visited[static_cast<std::size_t>(next)]) {
          visited[static_cast<std::size_t>(next)] = true;
          in_link[static_cast<std::size_t>(next)] = lid;
          frontier.push_back(next);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src) {
        continue;
      }
      HCHECK(visited[static_cast<std::size_t>(dst)])
          << "topology is disconnected: no path " << src << " -> " << dst;
      std::vector<LinkId> path;
      for (NodeId at = dst; at != src;) {
        const LinkId lid = in_link[static_cast<std::size_t>(at)];
        path.push_back(lid);
        at = links_[static_cast<std::size_t>(lid)].src;
      }
      std::reverse(path.begin(), path.end());
      routes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
              static_cast<std::size_t>(dst)] = std::move(path);
    }
  }
  finalized_ = true;

  // Each GPU swaps to its nearest host (fewest hops; ties to the lowest host id). The dense
  // index of that host within host_nodes_ is the GPU's server — the node grouping the
  // hierarchical collective and the plan's two-level group structure use.
  gpu_swap_host_.clear();
  gpu_server_.clear();
  for (NodeId gpu : gpu_nodes_) {
    NodeId best = host_nodes_.front();
    int best_server = 0;
    std::size_t best_hops = Route(gpu, best).size();
    for (int h = 0; h < static_cast<int>(host_nodes_.size()); ++h) {
      const NodeId host = host_nodes_[static_cast<std::size_t>(h)];
      const std::size_t hops = Route(gpu, host).size();
      if (hops < best_hops) {
        best = host;
        best_server = h;
        best_hops = hops;
      }
    }
    gpu_swap_host_.push_back(best);
    gpu_server_.push_back(best_server);
  }
}

const std::vector<LinkId>& Topology::Route(NodeId src, NodeId dst) const {
  HCHECK(finalized_);
  HCHECK_GE(src, 0);
  HCHECK_GE(dst, 0);
  HCHECK_LT(src, num_nodes());
  HCHECK_LT(dst, num_nodes());
  return routes_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_nodes()) +
                 static_cast<std::size_t>(dst)];
}

double Topology::MinLinkLatency() const {
  HCHECK(finalized_);
  double min_latency = 0.0;
  bool first = true;
  for (const TopologyLink& l : links_) {
    if (first || l.spec.latency_sec < min_latency) {
      min_latency = l.spec.latency_sec;
      first = false;
    }
  }
  return min_latency;
}

bool Topology::RouteAvoidsHost(NodeId src, NodeId dst) const {
  if (src == dst) {
    return true;
  }
  for (LinkId lid : Route(src, dst)) {
    const TopologyLink& l = link(lid);
    if (node(l.src).kind == NodeKind::kHost || node(l.dst).kind == NodeKind::kHost) {
      return false;
    }
  }
  return true;
}

std::string Topology::DescribeRoutes() const {
  std::ostringstream os;
  auto describe = [&](NodeId src, NodeId dst) {
    os << node(src).name << " -> " << node(dst).name << ": ";
    const auto& route = Route(src, dst);
    for (std::size_t i = 0; i < route.size(); ++i) {
      const TopologyLink& l = link(route[i]);
      if (i == 0) {
        os << node(l.src).name;
      }
      os << " --[" << l.spec.name << "]--> " << node(l.dst).name;
    }
    os << "\n";
  };
  for (int g = 0; g < num_gpus(); ++g) {
    describe(gpu_node(g), host_node());
  }
  for (int a = 0; a < num_gpus(); ++a) {
    for (int b = 0; b < num_gpus(); ++b) {
      if (a != b) {
        describe(gpu_node(a), gpu_node(b));
      }
    }
  }
  return os.str();
}

Topology MakeCommodityServerTopology(const ServerConfig& config) {
  HCHECK_GT(config.num_gpus, 0);
  HCHECK_GT(config.gpus_per_switch, 0);
  Topology topo;
  const NodeId host = topo.AddNode(NodeKind::kHost, "host");
  const int num_switches =
      (config.num_gpus + config.gpus_per_switch - 1) / config.gpus_per_switch;
  std::vector<NodeId> switches;
  switches.reserve(static_cast<std::size_t>(num_switches));
  for (int s = 0; s < num_switches; ++s) {
    const NodeId sw = topo.AddNode(NodeKind::kSwitch, "pcie-sw" + std::to_string(s));
    topo.AddDuplexLink(sw, host, config.host_link);
    switches.push_back(sw);
  }
  for (int g = 0; g < config.num_gpus; ++g) {
    const NodeId gpu = topo.AddNode(NodeKind::kGpu, "gpu" + std::to_string(g));
    const NodeId sw = switches[static_cast<std::size_t>(g / config.gpus_per_switch)];
    topo.AddDuplexLink(gpu, sw, config.gpu_link);
  }
  topo.Finalize();
  return topo;
}

Machine MakeCommodityServer(const ServerConfig& config) {
  Machine machine;
  machine.topology = MakeCommodityServerTopology(config);
  machine.gpus.assign(static_cast<std::size_t>(config.num_gpus), config.gpu);
  machine.p2p_enabled = config.p2p_enabled;
  return machine;
}

Topology MakeClusterTopology(const ClusterConfig& config) {
  HCHECK_GT(config.num_servers, 0);
  HCHECK_GE(config.nodes_per_rack, 0);
  const ServerConfig& server = config.server;
  HCHECK_GT(server.num_gpus, 0);
  HCHECK_GT(server.gpus_per_switch, 0);
  // Widen before multiplying: both factors may be as large as 1 << 20 (the cluster-spec
  // limit), so the product overflows int. The bound itself is a typed error at the parse /
  // validation layer; reaching here past it is an internal invariant violation.
  HCHECK_LE(std::int64_t{config.num_servers} * server.num_gpus, kMaxClusterGpus)
      << "cluster topology of " << config.num_servers << " nodes x " << server.num_gpus
      << " GPUs exceeds kMaxClusterGpus";

  const int nodes_per_rack =
      config.nodes_per_rack == 0 ? config.num_servers : config.nodes_per_rack;
  const int num_racks = (config.num_servers + nodes_per_rack - 1) / nodes_per_rack;

  Topology topo;
  std::vector<NodeId> tors;
  tors.reserve(static_cast<std::size_t>(num_racks));
  for (int r = 0; r < num_racks; ++r) {
    tors.push_back(topo.AddNode(NodeKind::kTor, "rack" + std::to_string(r)));
  }
  // A single rack needs no aggregation tier; with several, the ToRs meet at a spine over the
  // (faster but shared) rack links.
  if (num_racks > 1) {
    const NodeId spine = topo.AddNode(NodeKind::kSwitch, "spine");
    for (NodeId tor : tors) {
      topo.AddDuplexLink(tor, spine, config.rack, LinkTier::kRack);
    }
  }
  for (int s = 0; s < config.num_servers; ++s) {
    const std::string prefix = "n" + std::to_string(s) + ".";
    const NodeId host = topo.AddNode(NodeKind::kHost, prefix + "host");
    const NodeId nic = topo.AddNode(NodeKind::kNic, prefix + "nic");
    topo.AddDuplexLink(host, nic, config.nic, LinkTier::kNic);
    topo.AddDuplexLink(nic, tors[static_cast<std::size_t>(s / nodes_per_rack)], config.nic,
                       LinkTier::kNic);
    const int num_switches =
        (server.num_gpus + server.gpus_per_switch - 1) / server.gpus_per_switch;
    std::vector<NodeId> switches;
    for (int sw = 0; sw < num_switches; ++sw) {
      const NodeId node = topo.AddNode(NodeKind::kSwitch, prefix + "pcie-sw" + std::to_string(sw));
      topo.AddDuplexLink(node, host, server.host_link);
      switches.push_back(node);
    }
    for (int g = 0; g < server.num_gpus; ++g) {
      const NodeId gpu =
          topo.AddNode(NodeKind::kGpu, prefix + "gpu" + std::to_string(g));
      topo.AddDuplexLink(gpu, switches[static_cast<std::size_t>(g / server.gpus_per_switch)],
                         server.gpu_link);
    }
  }
  topo.Finalize();
  return topo;
}

Machine MakeCluster(const ClusterConfig& config) {
  Machine machine;
  machine.topology = MakeClusterTopology(config);
  machine.gpus.assign(
      static_cast<std::size_t>(std::int64_t{config.num_servers} * config.server.num_gpus),
      config.server.gpu);
  machine.p2p_enabled = config.server.p2p_enabled;
  return machine;
}

}  // namespace harmony
