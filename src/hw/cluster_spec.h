// Textual cluster-shape grammar for the `--cluster=` flag and the cluster fuzz tests.
//
// A ClusterSpec is the plain-data description of a simulated fleet: how many nodes, GPUs
// per node, nodes per rack, and the NIC / rack link speeds in Gbit/s. The grammar is
// comma-separated key=value pairs, e.g.
//
//   nodes=8,gpus_per_node=4,nodes_per_rack=4,nic_gbps=25,rack_gbps=100
//
// Parse and Render round-trip: Render(Parse(Render(s))) == Render(s) for every valid spec,
// and malformed specs return a typed error carrying the byte offset of the offending field
// (same convention as sim/fault_plan.cc).
#ifndef HARMONY_SRC_HW_CLUSTER_SPEC_H_
#define HARMONY_SRC_HW_CLUSTER_SPEC_H_

#include <string>

#include "src/hw/topology.h"
#include "src/util/status.h"

namespace harmony {

struct ClusterSpec {
  int nodes = 1;
  int gpus_per_node = 4;
  int nodes_per_rack = 0;   // 0 = one rack holds every node
  double nic_gbps = 25.0;   // host <-> NIC <-> ToR speed, Gbit/s
  double rack_gbps = 100.0; // ToR <-> spine speed, Gbit/s
};

// Parses a `--cluster=` spec. Keys may appear in any order; each at most once; unknown keys,
// duplicates and malformed values reject with the byte offset of the offending field.
StatusOr<ClusterSpec> ParseClusterSpec(const std::string& spec);

// Canonical rendering (fixed key order, %g numbers). Rendered specs re-parse to an
// identical spec — the round-trip contract the fuzz tests pin down.
std::string RenderClusterSpec(const ClusterSpec& spec);

// Link presets from a speed in Gbit/s (25 -> 3.125 GB/s). NIC links model commodity
// Ethernet NICs (20us), rack links the ToR<->spine aggregation tier (25us).
LinkSpec NicLinkSpec(double gbps);
LinkSpec RackLinkSpec(double gbps);

// The hardware config a spec describes, with per-node shape taken from `server`
// (server.num_gpus is overridden by spec.gpus_per_node).
ClusterConfig ToClusterConfig(const ClusterSpec& spec, ServerConfig server);

}  // namespace harmony

#endif  // HARMONY_SRC_HW_CLUSTER_SPEC_H_
