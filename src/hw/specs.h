// Hardware specifications for the simulated commodity server.
//
// The numbers model the paper's testbed: NVIDIA GTX 1080Ti GPUs (11 GB, ~11.3 fp32 TFLOP/s)
// behind PCIe 3.0 switches with an oversubscribed x16 uplink to host memory. Specs are plain
// data; the behavioural model lives in topology.h / transfer_manager.h.
#ifndef HARMONY_SRC_HW_SPECS_H_
#define HARMONY_SRC_HW_SPECS_H_

#include <string>

#include "src/util/units.h"

namespace harmony {

struct GpuSpec {
  std::string name;
  Bytes memory_bytes = 0;
  // Peak fp32 rate and an achieved-efficiency derate (DNN kernels rarely exceed ~45% of
  // peak on Pascal-class parts).
  double peak_flops = 0.0;
  double efficiency = 1.0;

  double effective_flops() const { return peak_flops * efficiency; }
};

struct LinkSpec {
  std::string name;
  double bandwidth_bytes_per_sec = 0.0;
  double latency_sec = 0.0;
};

// ---- Presets ------------------------------------------------------------------------------

// GTX 1080Ti: 11 GB GDDR5X, 11.3 TFLOP/s fp32 peak.
inline GpuSpec Gtx1080Ti() {
  return GpuSpec{"GTX1080Ti", 11 * kGiB, TFlops(11.3), 0.40};
}

// V100-class part, used by capacity what-if experiments.
inline GpuSpec TeslaV100() {
  return GpuSpec{"V100-16GB", 16 * kGiB, TFlops(15.7), 0.50};
}

// A deliberately tiny GPU for unit tests and the Fig. 4 toy example (capacities are set per
// test; this just provides sane compute numbers).
inline GpuSpec TestGpu(Bytes memory_bytes, double flops = TFlops(1.0)) {
  return GpuSpec{"TestGPU", memory_bytes, flops, 1.0};
}

// PCIe 3.0 x16: 15.75 GB/s raw, ~12.8 GB/s achievable for large DMA transfers.
inline LinkSpec PcieGen3x16() {
  return LinkSpec{"PCIe3-x16", GBps(12.8), 5e-6};
}

inline LinkSpec PcieGen3x8() {
  return LinkSpec{"PCIe3-x8", GBps(6.4), 5e-6};
}

// NVLink-class link, for what-if topologies (the paper's commodity server has none).
inline LinkSpec NvLink2() {
  return LinkSpec{"NVLink2", GBps(25.0), 2e-6};
}

// Ethernet-class link for multi-server topologies (Sec. 4 of the paper): the per-node NIC
// tier (host <-> NIC <-> top-of-rack switch).
inline LinkSpec Ethernet25G() {
  return LinkSpec{"25GbE", GBps(3.1), 20e-6};
}

// Datacenter aggregation link: the rack tier (top-of-rack switch <-> spine).
inline LinkSpec Ethernet100G() {
  return LinkSpec{"100GbE", GBps(12.5), 25e-6};
}

}  // namespace harmony

#endif  // HARMONY_SRC_HW_SPECS_H_
