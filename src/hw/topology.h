// Intra-server interconnect topology: nodes (host, PCIe switches, GPUs) and full-duplex
// links between them, with shortest-path routing.
//
// The canonical instance is MakeCommodityServer(): N GPUs behind PCIe switches whose single
// x16 uplink to the host root complex is shared — the 4:1/8:1 oversubscription the paper
// blames for the data-parallel swap bottleneck (Fig. 2(b)).
#ifndef HARMONY_SRC_HW_TOPOLOGY_H_
#define HARMONY_SRC_HW_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/specs.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace harmony {

using NodeId = int;
using LinkId = int;

inline constexpr NodeId kInvalidNode = -1;

enum class NodeKind {
  kHost,    // CPU + host DRAM (swap target)
  kSwitch,  // PCIe switch (no memory, just forwarding)
  kGpu,
  kNic,     // per-node network interface (host uplink onto the fabric)
  kTor,     // top-of-rack / spine switch (network tier forwarding)
};

// Which contention tier a link belongs to. The TransferManager applies the same fair-share
// flow model to every tier; the tier only labels the link for per-tier byte attribution
// (RunReport::tiers) and for the cluster conservation tests.
enum class LinkTier : int {
  kPcie = 0,  // intra-server: GPU <-> switch <-> host
  kNic = 1,   // host <-> NIC and NIC <-> top-of-rack
  kRack = 2,  // top-of-rack <-> spine
};
inline constexpr int kNumLinkTiers = 3;

const char* LinkTierName(LinkTier tier);

struct TopologyNode {
  NodeKind kind;
  std::string name;
  int gpu_index = -1;  // dense GPU index for kGpu nodes, -1 otherwise
};

// Directed link (full-duplex physical links are two TopologyLink entries).
struct TopologyLink {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  LinkSpec spec;
  LinkTier tier = LinkTier::kPcie;
};

class Topology {
 public:
  Topology() = default;

  NodeId AddNode(NodeKind kind, std::string name);
  // Adds a full-duplex link (two directed links) between a and b.
  void AddDuplexLink(NodeId a, NodeId b, const LinkSpec& spec,
                     LinkTier tier = LinkTier::kPcie);

  // Must be called once all nodes/links are added; computes BFS routes between every node
  // pair (fewest hops; ties broken by smaller next-hop link id, deterministically).
  void Finalize();
  bool finalized() const { return finalized_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }
  int num_gpus() const { return static_cast<int>(gpu_nodes_.size()); }

  const TopologyNode& node(NodeId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  const TopologyLink& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }

  // The first host node (single-server topologies have exactly one).
  NodeId host_node() const { return host_node_; }
  int num_hosts() const { return static_cast<int>(host_nodes_.size()); }
  NodeId gpu_node(int gpu_index) const {
    return gpu_nodes_.at(static_cast<std::size_t>(gpu_index));
  }
  // The nearest host to a GPU — its swap target. In a multi-server cluster each GPU swaps
  // to its own server's DRAM, never across the network.
  NodeId HostNodeForGpu(int gpu_index) const {
    return gpu_swap_host_.at(static_cast<std::size_t>(gpu_index));
  }

  // Server (compute-node) structure, filled by Finalize. A "server" is one host node plus
  // everything that swaps to it; single-server topologies report one server holding every
  // GPU. ServerOfGpu is the dense index of the GPU's swap host — the node index the
  // hierarchical collective and the plan's two-level group structure use.
  int num_servers() const { return num_hosts(); }
  int ServerOfGpu(int gpu_index) const {
    return gpu_server_.at(static_cast<std::size_t>(gpu_index));
  }

  // Network-tier entities for fault targeting (`nic0`, `rack0` in the fault grammar):
  // per-server NIC nodes and top-of-rack switch nodes, in creation order. Both empty on
  // single-server topologies.
  int num_nics() const { return static_cast<int>(nic_nodes_.size()); }
  NodeId nic_node(int nic_index) const {
    return nic_nodes_.at(static_cast<std::size_t>(nic_index));
  }
  int num_racks() const { return static_cast<int>(tor_nodes_.size()); }
  NodeId tor_node(int rack_index) const {
    return tor_nodes_.at(static_cast<std::size_t>(rack_index));
  }

  // Ordered link ids along the route src -> dst. Empty when src == dst. Fatal if unreachable.
  const std::vector<LinkId>& Route(NodeId src, NodeId dst) const;

  // Smallest latency over all links; 0 for a linkless topology. No event scheduled on one
  // component can affect another sooner than this, so it is the safe conservative lookahead
  // for the simulator's windowed execution (DESIGN.md §10).
  double MinLinkLatency() const;

  // True when src and dst are GPUs whose route avoids every host node — i.e. a p2p transfer
  // that does not consume host-uplink bandwidth beyond the switch tier.
  bool RouteAvoidsHost(NodeId src, NodeId dst) const;

  // Human-readable route table for all GPU<->GPU and GPU<->host pairs (Fig. 2(b) companion).
  std::string DescribeRoutes() const;

 private:
  std::vector<TopologyNode> nodes_;
  std::vector<TopologyLink> links_;
  std::vector<std::vector<LinkId>> out_links_;  // per node
  NodeId host_node_ = kInvalidNode;
  std::vector<NodeId> host_nodes_;
  std::vector<NodeId> gpu_nodes_;
  std::vector<NodeId> nic_nodes_;
  std::vector<NodeId> tor_nodes_;
  std::vector<NodeId> gpu_swap_host_;  // per GPU, filled by Finalize
  std::vector<int> gpu_server_;        // per GPU: index of its swap host in host_nodes_
  bool finalized_ = false;
  // routes_[src * num_nodes + dst]
  std::vector<std::vector<LinkId>> routes_;
};

struct ServerConfig {
  int num_gpus = 4;
  GpuSpec gpu = Gtx1080Ti();
  // GPUs per PCIe switch; the switch uplink is one host_link regardless of how many GPUs sit
  // below it, which is exactly the oversubscription in commodity 4U GPU servers.
  int gpus_per_switch = 4;
  LinkSpec gpu_link = PcieGen3x16();   // GPU <-> switch
  LinkSpec host_link = PcieGen3x16();  // switch <-> host root complex
  bool p2p_enabled = true;             // GPU<->GPU DMA through the switch tier
};

// Builds the commodity-server topology from `config`. GPU specs are carried alongside in the
// returned Machine (see machine.h).
Topology MakeCommodityServerTopology(const ServerConfig& config);

// A machine = topology + per-GPU specs + config knobs the runtime needs.
struct Machine {
  Topology topology;
  std::vector<GpuSpec> gpus;
  bool p2p_enabled = true;

  int num_gpus() const { return static_cast<int>(gpus.size()); }
};

Machine MakeCommodityServer(const ServerConfig& config);

// Upper bound on nodes * gpus_per_node for any simulated cluster. The cluster-spec grammar
// caps each factor at 1 << 20, so the *product* can reach 1 << 40 — far past what an `int`
// holds and far past anything the simulator can build. Sizing math must widen to 64 bits
// before multiplying and check against this bound; ParseClusterSpec and
// ValidateSessionConfig surface the violation as a typed error before any topology is
// constructed.
inline constexpr std::int64_t kMaxClusterGpus = std::int64_t{1} << 20;

// Multi-server cluster (Sec. 4 of the paper): `num_servers` commodity servers ("nodes"),
// each with its own NIC behind the host root complex, attached to a top-of-rack switch; with
// more than one rack the ToRs connect through a spine over `rack` links. GPUs are indexed
// globally (node-major); each GPU swaps to its own node's host memory, and cross-node tensor
// traffic crosses the (much slower) NIC and rack tiers.
struct ClusterConfig {
  int num_servers = 2;
  int nodes_per_rack = 0;  // 0 = one rack holds every node
  ServerConfig server;     // per-node shape
  LinkSpec nic = Ethernet25G();    // host <-> NIC <-> ToR (tier kNic)
  LinkSpec rack = Ethernet100G();  // ToR <-> spine (tier kRack)
};

Topology MakeClusterTopology(const ClusterConfig& config);
Machine MakeCluster(const ClusterConfig& config);

}  // namespace harmony

#endif  // HARMONY_SRC_HW_TOPOLOGY_H_
