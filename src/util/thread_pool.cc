#include "src/util/thread_pool.h"

#include <algorithm>
#include <exception>

namespace harmony {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

int ResolveThreadCount(int requested) {
  if (requested >= 1) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.Submit([&fn, i] { fn(i); }));
  }
  // Join every task before rethrowing: tasks capture `fn` by reference, so bailing out on
  // the first error would unwind it (and the futures) while queued tasks still use it.
  std::exception_ptr first;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

}  // namespace harmony
