// Fixed-size worker thread pool plus ParallelFor/ParallelMap helpers.
//
// The pool exists so that embarrassingly parallel *host-side* work — notably the
// Performance Tuner profiling many independent single-threaded Simulators — can use every
// core. Determinism is preserved by construction: tasks return results by index (never by
// completion order), and each task runs a self-contained simulation, so the assembled
// output is bit-identical to a serial run regardless of scheduling.
#ifndef HARMONY_SRC_UTIL_THREAD_POOL_H_
#define HARMONY_SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace harmony {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1). A 1-thread pool is still a real pool:
  // tasks run on the worker, which keeps the execution path identical across sizes.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` and returns a future for its result. Exceptions propagate through the
  // future (HCHECK failures abort the process as always).
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      HCHECK(!stopping_) << "ThreadPool::Submit after shutdown";
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

// Resolves a thread-count knob: n >= 1 is taken literally; n <= 0 means "one per hardware
// thread" (at least 1).
int ResolveThreadCount(int requested);

// Runs fn(i) for every i in [0, n) across the pool and waits for all of them. Any exception
// from a task is rethrown (the first one, in index order).
void ParallelFor(ThreadPool& pool, std::size_t n, const std::function<void(std::size_t)>& fn);

// Maps [0, n) through `fn` across the pool; results are collected by index, so the output
// vector is identical to the serial `for` loop no matter how tasks interleave. Any task
// exception is rethrown (the first one, in index order) after every task has been joined.
template <typename F>
auto ParallelMap(ThreadPool& pool, std::size_t n, F fn)
    -> std::vector<std::invoke_result_t<F, std::size_t>> {
  using R = std::invoke_result_t<F, std::size_t>;
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.Submit([fn, i] { return fn(i); }));
  }
  // Join everything before rethrowing so no task is left running behind the caller's back
  // (and so the rethrown exception is deterministically the lowest-index one).
  std::vector<R> results;
  results.reserve(n);
  std::exception_ptr first;
  for (std::future<R>& future : futures) {
    try {
      results.push_back(future.get());
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
  return results;
}

}  // namespace harmony

#endif  // HARMONY_SRC_UTIL_THREAD_POOL_H_
