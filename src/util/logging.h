// Minimal severity-based logging for the Harmony libraries.
//
// Usage:
//   HLOG(kInfo) << "scheduled " << n << " tasks";
//
// The global threshold defaults to kWarning so that library code is quiet in tests and
// benchmarks; examples raise it to kInfo. Logging is line-buffered to stderr.
#ifndef HARMONY_SRC_UTIL_LOGGING_H_
#define HARMONY_SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace harmony {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets / reads the global minimum severity that is actually emitted.
void SetLogThreshold(LogSeverity severity);
LogSeverity LogThreshold();

// One log statement; flushes its accumulated line on destruction.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace harmony

#define HLOG(severity) \
  ::harmony::LogMessage(::harmony::LogSeverity::severity, __FILE__, __LINE__)

#endif  // HARMONY_SRC_UTIL_LOGGING_H_
