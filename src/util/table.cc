#include "src/util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/util/check.h"

namespace harmony {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  HCHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HCHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(const char* value) {
  cells_.emplace_back(value);
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  cells_.emplace_back(buffer);
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TablePrinter::RowBuilder& TablePrinter::RowBuilder::Cell(int value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

TablePrinter::RowBuilder::~RowBuilder() { table_->AddRow(std::move(cells_)); }

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) {
        os << "  ";
      }
      // Right-align numeric-looking cells, left-align the first (label) column.
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      const bool left = (c == 0);
      if (left) {
        os << cell << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cell;
      }
    }
    os << "\n";
  };

  emit_row(headers_);
  std::vector<std::string> rule;
  rule.reserve(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.emplace_back(widths[c], '-');
  }
  emit_row(rule);
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) {
      os_ << ",";
    }
    const std::string& cell = cells[c];
    if (cell.find(',') != std::string::npos || cell.find('"') != std::string::npos) {
      os_ << '"';
      for (char ch : cell) {
        if (ch == '"') {
          os_ << '"';
        }
        os_ << ch;
      }
      os_ << '"';
    } else {
      os_ << cell;
    }
  }
  os_ << "\n";
}

}  // namespace harmony
