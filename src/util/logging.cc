#include "src/util/logging.h"

#include <cstring>
#include <iostream>

namespace harmony {
namespace {

LogSeverity g_threshold = LogSeverity::kWarning;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

// Strips the leading directories so log lines show "runtime/engine.cc" style paths.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogThreshold(LogSeverity severity) { g_threshold = severity; }

LogSeverity LogThreshold() { return g_threshold; }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : enabled_(static_cast<int>(severity) >= static_cast<int>(g_threshold)) {
  if (enabled_) {
    stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << "\n";
  }
}

}  // namespace harmony
