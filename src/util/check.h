// Invariant-checking macros for the Harmony libraries.
//
// These are used for programmer errors and internal invariants: they log the failing
// condition with its source location and abort. Recoverable errors (bad user configuration,
// infeasible schedules) are reported through Status/StatusOr instead; see status.h.
#ifndef HARMONY_SRC_UTIL_CHECK_H_
#define HARMONY_SRC_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace harmony {

// Helper that accumulates a failure message and aborts on destruction. Using a class (rather
// than a naked macro) lets callers stream extra context: HCHECK(ok) << "while doing X".
class CheckFailure {
 public:
  CheckFailure(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: " << condition << " ";
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace harmony

#define HCHECK(condition)                                        \
  if (condition) {                                               \
  } else /* NOLINT */                                            \
    ::harmony::CheckFailure(#condition, __FILE__, __LINE__)

#define HCHECK_OP(lhs, op, rhs)                                                             \
  if ((lhs)op(rhs)) {                                                                       \
  } else /* NOLINT */                                                                       \
    ::harmony::CheckFailure(#lhs " " #op " " #rhs, __FILE__, __LINE__)                      \
        << "(" << (lhs) << " vs " << (rhs) << ") "

#define HCHECK_EQ(lhs, rhs) HCHECK_OP(lhs, ==, rhs)
#define HCHECK_NE(lhs, rhs) HCHECK_OP(lhs, !=, rhs)
#define HCHECK_LT(lhs, rhs) HCHECK_OP(lhs, <, rhs)
#define HCHECK_LE(lhs, rhs) HCHECK_OP(lhs, <=, rhs)
#define HCHECK_GT(lhs, rhs) HCHECK_OP(lhs, >, rhs)
#define HCHECK_GE(lhs, rhs) HCHECK_OP(lhs, >=, rhs)

#endif  // HARMONY_SRC_UTIL_CHECK_H_
