#include "src/util/flags.h"

#include <climits>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "src/util/check.h"

namespace harmony {

FlagParser& FlagParser::Define(const std::string& name, const std::string& default_value,
                               const std::string& help) {
  HCHECK(flags_.find(name) == flags_.end()) << "duplicate flag --" << name;
  flags_[name] = Flag{default_value, default_value, help};
  order_.push_back(name);
  return *this;
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return InvalidArgumentError("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + name);
    }
    if (!has_value) {
      // "--flag value" when the next token is not a flag; bare "--flag" means true.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return Status::Ok();
}

const std::string& FlagParser::Get(const std::string& name) const {
  auto it = flags_.find(name);
  HCHECK(it != flags_.end()) << "undeclared flag --" << name;
  return it->second.value;
}

int FlagParser::GetInt(const std::string& name) const {
  return static_cast<int>(std::strtol(Get(name).c_str(), nullptr, 10));
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::strtod(Get(name).c_str(), nullptr);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = Get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

StatusOr<int> FlagParser::GetCheckedInt(const std::string& name) const {
  const std::string& v = Get(name);
  char* end = nullptr;
  const long value = std::strtol(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size()) {
    return InvalidArgumentError("--" + name + " expects an integer, got '" + v + "'");
  }
  if (value < INT_MIN || value > INT_MAX) {
    return InvalidArgumentError("--" + name + " value '" + v + "' is out of range");
  }
  return static_cast<int>(value);
}

StatusOr<double> FlagParser::GetCheckedDouble(const std::string& name) const {
  const std::string& v = Get(name);
  char* end = nullptr;
  const double value = std::strtod(v.c_str(), &end);
  if (v.empty() || end != v.c_str() + v.size() || !std::isfinite(value)) {
    return InvalidArgumentError("--" + name + " expects a finite number, got '" + v + "'");
  }
  return value;
}

StatusOr<bool> FlagParser::GetCheckedBool(const std::string& name) const {
  const std::string& v = Get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  return InvalidArgumentError("--" + name + " expects true/false, got '" + v + "'");
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    os << "  --" << name << " (default: " << flag.default_value << ")  " << flag.help << "\n";
  }
  return os.str();
}

}  // namespace harmony
