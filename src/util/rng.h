// Deterministic pseudo-random number generation.
//
// All stochastic pieces of Harmony (weight initialization in the numeric substrate, workload
// jitter in benches) draw from this SplitMix64-based generator so every run is reproducible
// from a single seed, independent of the standard library implementation.
#ifndef HARMONY_SRC_UTIL_RNG_H_
#define HARMONY_SRC_UTIL_RNG_H_

#include <cstdint>

namespace harmony {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  // Next raw 64-bit value (SplitMix64).
  std::uint64_t NextU64() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) { return NextU64() % bound; }

  // Standard normal via Box-Muller (one value per call; the pair's second half is dropped
  // for simplicity — determinism matters more than throughput here).
  double NextGaussian();

 private:
  std::uint64_t state_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_UTIL_RNG_H_
