// Lightweight Status / StatusOr for recoverable errors.
//
// The Harmony libraries do not throw exceptions. APIs that can fail due to user input (bad
// configuration, infeasible schedules, out-of-range parameters) return Status or
// StatusOr<T>; internal invariants use HCHECK (check.h).
#ifndef HARMONY_SRC_UTIL_STATUS_H_
#define HARMONY_SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/util/check.h"

namespace harmony {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
};

// Returns a stable human-readable name for `code`, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Full rendering, e.g. "INVALID_ARGUMENT: microbatch size must be positive".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

// Minimal StatusOr: either an error Status or a value of type T.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    HCHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    HCHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    HCHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    HCHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace harmony

// Propagates an error Status from an expression that yields a Status.
#define HARMONY_RETURN_IF_ERROR(expr)       \
  do {                                      \
    ::harmony::Status _status = (expr);     \
    if (!_status.ok()) {                    \
      return _status;                       \
    }                                       \
  } while (false)

#endif  // HARMONY_SRC_UTIL_STATUS_H_
