// Minimal command-line flag parsing for the tools: --key=value / --key value / --bool.
//
// Not a general-purpose library — just enough for harmony_sim's options without external
// dependencies. Unknown flags are errors (catches typos in experiment scripts).
#ifndef HARMONY_SRC_UTIL_FLAGS_H_
#define HARMONY_SRC_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace harmony {

class FlagParser {
 public:
  // Declares a flag with a default and a help line; returns *this for chaining.
  FlagParser& Define(const std::string& name, const std::string& default_value,
                     const std::string& help);

  // Parses argv; flags are "--name=value", "--name value", or bare "--name" (-> "true").
  // Positional arguments are rejected.
  Status Parse(int argc, const char* const* argv);

  const std::string& Get(const std::string& name) const;
  // Permissive getters: garbage silently parses as 0/0.0/false (strtol semantics). Prefer
  // the checked variants below in anything user-facing.
  int GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // Checked getters: the whole value must parse, otherwise an actionable error naming the
  // flag and the offending text (instead of a silent zero).
  StatusOr<int> GetCheckedInt(const std::string& name) const;
  StatusOr<double> GetCheckedDouble(const std::string& name) const;
  StatusOr<bool> GetCheckedBool(const std::string& name) const;

  std::string Usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_UTIL_FLAGS_H_
