// Minimal JSON document model + parser for the observability layer (DESIGN.md §8).
//
// The simulator *emits* JSON with hand-formatted writers (deterministic field order and
// number formatting, see runtime/report_io.h); this parser exists so tests can round-trip
// and schema-check that output without an external dependency. It supports the whole JSON
// grammar (objects, arrays, strings with escapes, numbers, booleans, null) but is tuned for
// trust-the-producer inputs: recursion depth is bounded and errors carry byte offsets.
#ifndef HARMONY_SRC_UTIL_JSON_H_
#define HARMONY_SRC_UTIL_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace harmony {

class JsonValue;

// Object members keep insertion order (the writers emit a deterministic order and the
// golden test wants to see it), with a map index for O(log n) lookup.
class JsonObject {
 public:
  void Set(std::string key, JsonValue value);
  const JsonValue* Find(std::string_view key) const;  // nullptr when absent
  bool Has(std::string_view key) const { return Find(key) != nullptr; }

  const std::vector<std::pair<std::string, JsonValue>>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }

 private:
  std::vector<std::pair<std::string, JsonValue>> members_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(JsonObject object);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors HCHECK the kind; call the is_*() predicates first on untrusted input.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const JsonObject& as_object() const;

  // Convenience lookups returning nullptr on kind mismatch or missing key/index.
  const JsonValue* Find(std::string_view key) const;
  const JsonValue* At(std::size_t index) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::shared_ptr<const JsonObject> object_;  // shared: JsonValue stays copyable
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage is an error).
// Errors are INVALID_ARGUMENT with a byte offset, e.g. "json: offset 17: expected ':'".
StatusOr<JsonValue> ParseJson(std::string_view text);

}  // namespace harmony

#endif  // HARMONY_SRC_UTIL_JSON_H_
