#include "src/util/units.h"

#include <cmath>
#include <cstdio>

namespace harmony {
namespace {

std::string FormatWithSuffix(double value, const char* suffix) {
  char buffer[64];
  if (value >= 100.0 || value == std::floor(value)) {
    std::snprintf(buffer, sizeof(buffer), "%.0f %s", value, suffix);
  } else if (value >= 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, suffix);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, suffix);
  }
  return buffer;
}

}  // namespace

std::string FormatBytes(Bytes bytes) {
  const double v = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    return FormatWithSuffix(v / static_cast<double>(kGiB), "GiB");
  }
  if (bytes >= kMiB) {
    return FormatWithSuffix(v / static_cast<double>(kMiB), "MiB");
  }
  if (bytes >= kKiB) {
    return FormatWithSuffix(v / static_cast<double>(kKiB), "KiB");
  }
  return FormatWithSuffix(v, "B");
}

std::string FormatBytesDecimal(double bytes) {
  if (bytes >= kGB) {
    return FormatWithSuffix(bytes / kGB, "GB");
  }
  if (bytes >= kMB) {
    return FormatWithSuffix(bytes / kMB, "MB");
  }
  if (bytes >= kKB) {
    return FormatWithSuffix(bytes / kKB, "KB");
  }
  return FormatWithSuffix(bytes, "B");
}

std::string FormatSeconds(double seconds) {
  if (seconds >= 1.0) {
    return FormatWithSuffix(seconds, "s");
  }
  if (seconds >= 1e-3) {
    return FormatWithSuffix(seconds * 1e3, "ms");
  }
  if (seconds >= 1e-6) {
    return FormatWithSuffix(seconds * 1e6, "us");
  }
  return FormatWithSuffix(seconds * 1e9, "ns");
}

std::string FormatBandwidth(double bytes_per_second) {
  return FormatBytesDecimal(bytes_per_second) + "/s";
}

std::string FormatCount(std::int64_t value) {
  std::string digits = std::to_string(value);
  std::string result;
  const bool negative = !digits.empty() && digits[0] == '-';
  const std::size_t start = negative ? 1 : 0;
  const std::size_t n = digits.size() - start;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) {
      result += ',';
    }
    result += digits[start + i];
  }
  return (negative ? "-" : "") + result;
}

}  // namespace harmony
