#include "src/util/json.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "src/util/check.h"

namespace harmony {

void JsonObject::Set(std::string key, JsonValue value) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    members_[it->second].second = std::move(value);
    return;
  }
  index_.emplace(key, members_.size());
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonObject::Find(std::string_view key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &members_[it->second].second;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(JsonObject object) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::make_shared<const JsonObject>(std::move(object));
  return v;
}

bool JsonValue::as_bool() const {
  HCHECK(is_bool()) << "json: as_bool on non-bool";
  return bool_;
}

double JsonValue::as_number() const {
  HCHECK(is_number()) << "json: as_number on non-number";
  return number_;
}

const std::string& JsonValue::as_string() const {
  HCHECK(is_string()) << "json: as_string on non-string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  HCHECK(is_array()) << "json: as_array on non-array";
  return array_;
}

const JsonObject& JsonValue::as_object() const {
  HCHECK(is_object()) << "json: as_object on non-object";
  HCHECK(object_ != nullptr);
  return *object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  return is_object() ? as_object().Find(key) : nullptr;
}

const JsonValue* JsonValue::At(std::size_t index) const {
  if (!is_array() || index >= array_.size()) {
    return nullptr;
  }
  return &array_[index];
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    HARMONY_RETURN_IF_ERROR(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    std::ostringstream oss;
    oss << "json: offset " << pos_ << ": " << what;
    return InvalidArgumentError(oss.str());
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (AtEnd() || Peek() != expected) {
      return false;
    }
    ++pos_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) {
      return Error("nesting deeper than 64 levels");
    }
    if (AtEnd()) {
      return Error("unexpected end of input");
    }
    switch (Peek()) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        HARMONY_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (!ConsumeLiteral("true")) {
          return Error("expected 'true'");
        }
        *out = JsonValue::Bool(true);
        return Status::Ok();
      case 'f':
        if (!ConsumeLiteral("false")) {
          return Error("expected 'false'");
        }
        *out = JsonValue::Bool(false);
        return Status::Ok();
      case 'n':
        if (!ConsumeLiteral("null")) {
          return Error("expected 'null'");
        }
        *out = JsonValue::Null();
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    HCHECK(Consume('{'));
    JsonObject object;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::Object(std::move(object));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') {
        return Error("expected object key string");
      }
      std::string key;
      HARMONY_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      SkipWhitespace();
      JsonValue value;
      HARMONY_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        break;
      }
      return Error("expected ',' or '}' in object");
    }
    *out = JsonValue::Object(std::move(object));
    return Status::Ok();
  }

  Status ParseArray(int depth, JsonValue* out) {
    HCHECK(Consume('['));
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::Array(std::move(items));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      HARMONY_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        break;
      }
      return Error("expected ',' or ']' in array");
    }
    *out = JsonValue::Array(std::move(items));
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    HCHECK(Consume('"'));
    std::string result;
    while (true) {
      if (AtEnd()) {
        return Error("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        break;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        result.push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Error("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': result.push_back('"'); break;
        case '\\': result.push_back('\\'); break;
        case '/': result.push_back('/'); break;
        case 'b': result.push_back('\b'); break;
        case 'f': result.push_back('\f'); break;
        case 'n': result.push_back('\n'); break;
        case 'r': result.push_back('\r'); break;
        case 't': result.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          HARMONY_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("lone low surrogate \\u escape (no preceding high surrogate)");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // UTF-16 surrogate pair: the high surrogate must be immediately followed by an
            // escaped low surrogate; together they select one supplementary-plane code
            // point (e.g. 😀 -> U+1F600), emitted as 4-byte UTF-8.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              return Error("lone high surrogate \\u escape (expected \\u low surrogate)");
            }
            pos_ += 2;
            unsigned low = 0;
            HARMONY_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid surrogate pair: second \\u escape is not a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(code, &result);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    *out = std::move(result);
    return Status::Ok();
  }

  Status ParseHex4(unsigned* out) {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) {
        return Error("truncated \\u escape");
      }
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = code;
    return Status::Ok();
  }

  // Encodes any scalar code point up to U+10FFFF (ParseString combines surrogate pairs
  // before calling this, so supplementary-plane characters take the 4-byte branch).
  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (!AtEnd() && Peek() == '-') {
      ++pos_;
    }
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error("invalid number");
    }
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      ++pos_;
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required after decimal point");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        ++pos_;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
        ++pos_;
      }
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("digit required in exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      return Error("number out of double range");
    }
    *out = JsonValue::Number(value);
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace harmony
