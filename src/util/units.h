// Units and formatting helpers shared across the Harmony libraries.
//
// Conventions:
//   - byte counts are int64_t (Bytes alias)
//   - simulated time is double seconds (sim/time.h wraps this)
//   - bandwidths are double bytes/second, compute rates double FLOP/s
#ifndef HARMONY_SRC_UTIL_UNITS_H_
#define HARMONY_SRC_UTIL_UNITS_H_

#include <cstdint>
#include <string>

namespace harmony {

using Bytes = std::int64_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

// Decimal units, used for link bandwidths (PCIe marketing numbers are decimal).
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

inline constexpr double kGFLOPs = 1e9;
inline constexpr double kTFLOPs = 1e12;

// "11.3 TFLOP/s" etc.
inline constexpr double TFlops(double v) { return v * kTFLOPs; }
// "12.8 GB/s" etc.
inline constexpr double GBps(double v) { return v * kGB; }

// Renders a byte count with a binary suffix, e.g. "1.36 GiB" or "512 B".
std::string FormatBytes(Bytes bytes);

// Renders a byte count with a decimal suffix, e.g. "1.4 GB" (used when matching the paper's
// figures, which report decimal GB).
std::string FormatBytesDecimal(double bytes);

// Renders seconds with an adaptive unit, e.g. "1.25 s", "380 ms", "12 us".
std::string FormatSeconds(double seconds);

// Renders a bandwidth, e.g. "12.8 GB/s".
std::string FormatBandwidth(double bytes_per_second);

// Renders a count with thousands separators, e.g. "1,234,567".
std::string FormatCount(std::int64_t value);

}  // namespace harmony

#endif  // HARMONY_SRC_UTIL_UNITS_H_
