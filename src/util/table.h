// ASCII table rendering for bench/example output.
//
// The benches reproduce the paper's tables and figure series as text tables; TablePrinter
// handles column alignment so every bench prints in a uniform style.
#ifndef HARMONY_SRC_UTIL_TABLE_H_
#define HARMONY_SRC_UTIL_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace harmony {

class TablePrinter {
 public:
  // `headers` fixes the column count; every AddRow must match it.
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience for mixed-type rows: formats doubles with `precision` digits.
  class RowBuilder {
   public:
    explicit RowBuilder(TablePrinter* table) : table_(table) {}
    RowBuilder& Cell(const std::string& value);
    RowBuilder& Cell(const char* value);
    RowBuilder& Cell(double value, int precision = 2);
    RowBuilder& Cell(std::int64_t value);
    RowBuilder& Cell(int value);
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    TablePrinter* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder Row() { return RowBuilder(this); }

  // Renders with a header rule, e.g.:
  //   scheme        swap (GB)  throughput
  //   ------------  ---------  ----------
  //   baseline-DP       45.20        1.31
  std::string ToString() const;
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Writes rows as CSV (quotes cells containing commas); used to dump bench series for
// external plotting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_UTIL_TABLE_H_
