#include "src/util/rng.h"

#include <cmath>

namespace harmony {

double Rng::NextGaussian() {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace harmony
