// Move-only `void()` callable with small-buffer inline storage.
//
// The simulator schedules hundreds of millions of events per run, and nearly every event
// closure is tiny — a `this` pointer plus two or three scalars. std::function heap-allocates
// once its (implementation-defined, typically 16-byte) inline buffer overflows, which makes
// the event hot path malloc-bound. InlineFunction stores any nothrow-movable callable of up
// to kInlineBytes bytes directly in the object; larger callables fall back to a single heap
// allocation, exactly like std::function, so correctness never depends on the capture size.
//
// Unlike std::function it is move-only (no copy, so captures can own resources) and
// supports only the `void()` signature — all the event loop needs.
#ifndef HARMONY_SRC_UTIL_INLINE_FUNCTION_H_
#define HARMONY_SRC_UTIL_INLINE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace harmony {

template <std::size_t kInlineBytes>
class InlineFunction {
  static_assert(kInlineBytes >= sizeof(void*), "buffer must at least hold a pointer");

 public:
  // True when a callable of type F is stored in the inline buffer (no allocation). Exposed
  // so tests — and size-sensitive callers — can assert their captures stay inline.
  template <typename F>
  static constexpr bool kStoredInline = sizeof(std::decay_t<F>) <= kInlineBytes &&
                                        alignof(std::decay_t<F>) <= alignof(void*) &&
                                        std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  InlineFunction() = default;

  // Implicit by design, mirroring std::function: call sites pass lambdas directly.
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFunction> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (kStoredInline<F>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* buf) { (*Stored<D>(buf))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            Stored<D>(self)->~D();
            break;
          case Op::kMoveFrom: {
            D* source = Stored<D>(other);
            ::new (self) D(std::move(*source));
            source->~D();
            break;
          }
        }
      };
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      invoke_ = [](void* buf) { (**Stored<D*>(buf))(); };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            delete *Stored<D*>(self);
            break;
          case Op::kMoveFrom:
            // Ownership transfers with the pointer; nothing to destroy in `other`.
            ::new (self) D*(*Stored<D*>(other));
            break;
        }
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept
      : invoke_(other.invoke_), manage_(other.manage_) {
    if (manage_ != nullptr) {
      manage_(Op::kMoveFrom, buf_, other.buf_);
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      if (manage_ != nullptr) {
        manage_(Op::kMoveFrom, buf_, other.buf_);
      }
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  void Reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  // Calling an empty InlineFunction is undefined, like std::function without the throw.
  void operator()() { invoke_(buf_); }

 private:
  enum class Op { kDestroy, kMoveFrom };

  template <typename T>
  static T* Stored(void* buf) {
    return std::launder(reinterpret_cast<T*>(buf));
  }

  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
  alignas(void*) unsigned char buf_[kInlineBytes];
};

}  // namespace harmony

#endif  // HARMONY_SRC_UTIL_INLINE_FUNCTION_H_
