// Per-device virtual memory managers with a machine-wide coordinator.
//
// MemorySystem owns one MemoryManager per GPU plus the shared tensor registry. The execution
// engine asks a device to Acquire a task's working set (inputs to fetch, accumulators to
// fetch-or-init, outputs to allocate, transient scratch); the manager pins the set, evicts
// LRU victims under pressure, and issues DMA flows through the TransferManager. The returned
// event fires when the whole set is resident.
//
// Two policy bits differentiate the paper's schemes:
//   - write_back_clean: evicting an unmodified tensor still copies it to host (IBM-LMS-style
//     per-GPU virtualization). Harmony's coherent memory drops clean tensors for free.
//   - allow_p2p: a tensor resident on a peer GPU is fetched with one device-to-device DMA.
//     Without it the fetch is staged through host memory as a swap-out + swap-in pair —
//     the "Only CPU-GPU Swaps" inefficiency of Sec. 2.
#ifndef HARMONY_SRC_MEM_MEMORY_MANAGER_H_
#define HARMONY_SRC_MEM_MEMORY_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/hw/transfer_manager.h"
#include "src/mem/allocator.h"
#include "src/mem/tensor.h"
#include "src/util/status.h"
#include "src/sim/simulator.h"

namespace harmony {

enum class EvictionPolicy {
  kLru,        // least-recently-used (what per-GPU virtualization can do on its own)
  kLookahead,  // Belady-style: evict the tensor whose next use is farthest in the future,
               // using the schedule the Task & Swap Scheduler already knows ("the scheduler
               // and swapping algorithms inform each other's decisions")
};

struct MemoryPolicy {
  bool write_back_clean = true;  // LMS-style naive eviction (baseline schemes)
  bool allow_p2p = false;        // coherent cross-device fetch (Harmony)
  EvictionPolicy eviction = EvictionPolicy::kLru;
};

inline MemoryPolicy LmsPolicy() { return MemoryPolicy{true, false}; }
inline MemoryPolicy HarmonyPolicy() { return MemoryPolicy{false, true}; }

struct MemoryCounters {
  Bytes swap_in[kNumTensorClasses] = {};   // host -> this device
  Bytes swap_out[kNumTensorClasses] = {};  // this device -> host
  Bytes p2p_in[kNumTensorClasses] = {};    // peer -> this device
  Bytes clean_drops[kNumTensorClasses] = {};
  std::int64_t evictions = 0;
  // Virtual-address compactions (CUDA-VMM-style remap when free bytes suffice but no
  // contiguous block does). Zero-cost in simulated time; counted for observability.
  std::int64_t defrags = 0;
  Bytes high_water = 0;  // max allocator usage observed

  Bytes total_swap_in() const;
  Bytes total_swap_out() const;
  Bytes total_p2p_in() const;
  Bytes total_clean_drops() const;
  Bytes swap_in_of(TensorClass cls) const { return swap_in[static_cast<int>(cls)]; }
  Bytes swap_out_of(TensorClass cls) const { return swap_out[static_cast<int>(cls)]; }
};

// Per-tensor swap churn, maintained machine-wide by the MemorySystem. Every counter is
// bumped at the exact site its per-device MemoryCounters counterpart is bumped, so sums
// over tensors equal sums over devices by construction (metrics_test asserts it, and
// fuzz_test recounts these from the churn audit log under SessionConfig::audit_eviction).
struct TensorChurnCounters {
  std::int64_t evictions = 0;    // EvictOne victims (clean drops + eviction write-backs)
  std::int64_t clean_drops = 0;
  std::int64_t write_backs = 0;  // eviction write-backs + staged peer write-backs
  std::int64_t swap_ins = 0;
  std::int64_t p2p_ins = 0;
  Bytes swap_in_bytes = 0;
  Bytes swap_out_bytes = 0;
  Bytes p2p_in_bytes = 0;
  Bytes clean_drop_bytes = 0;

  bool any() const {
    return evictions != 0 || clean_drops != 0 || write_backs != 0 || swap_ins != 0 ||
           p2p_ins != 0;
  }
};

// One churn event, appended to the audit log when audit_eviction is on. The kinds split
// write-backs by origin so a recount can reproduce the eviction counter exactly
// (evictions = kEvictCleanDrop + kEvictWriteBack events).
enum class ChurnKind : int {
  kSwapIn = 0,            // host -> device upload (first touch or re-fetch)
  kEvictCleanDrop = 1,    // EvictOne dropped a clean replica for free
  kEvictWriteBack = 2,    // EvictOne paid a device -> host copy
  kPeerStageWriteBack = 3,  // staged fetch forced the owner to write back (no-p2p path)
  kP2pIn = 4,             // direct peer -> peer fetch
};

struct ChurnEvent {
  TensorId tensor = kInvalidTensor;
  int device = -1;  // device whose counters the event hit
  ChurnKind kind = ChurnKind::kSwapIn;
  Bytes bytes = 0;
};

// One task's working-set request against a specific device.
struct WorkingSet {
  std::vector<TensorId> fetch;       // must arrive with valid contents
  std::vector<TensorId> accumulate;  // fetch if a copy exists anywhere, else zero-init here
  std::vector<TensorId> allocate;    // outputs: fresh device allocation
  Bytes scratch_bytes = 0;           // transient workspace, freed on Release
};

class MemorySystem;

// Next-use oracle for lookahead eviction: returns the position (monotone per device) of the
// next task on `device` that touches `tensor`, or a huge sentinel when it is never used
// again. Installed by the engine, which knows the plan. The indexed eviction fast path
// assumes a distance only changes while the tensor is pinned or off-device (true for any
// plan-derived oracle: a device advances past a use only while the using task holds its
// pins, and the release tick-bump refreshes the key). Oracles that drift outside that
// contract stay correct but pay a heap rebuild per drifting victim pick.
using NextUseFn = std::function<std::uint64_t(TensorId tensor, int device)>;

class MemoryManager {
 public:
  MemoryManager(MemorySystem* system, int device_index, NodeId device_node, NodeId host_node,
                Bytes capacity);
  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  using AcquireHandle = std::int64_t;

  struct Acquisition {
    AcquireHandle handle;
    OneShotEvent* ready;  // owned by the manager; fires when the set is resident+pinned
  };

  // Queues a working-set acquisition. Requests are granted FIFO per device. A best-effort
  // request (used for prefetch / double buffering) is *cancelled* instead of waiting when it
  // can make no progress without evicting pinned tensors: its pins are dropped, `ready`
  // fires, and WasCancelled(handle) returns true. Transfers already in flight still land.
  Acquisition Acquire(WorkingSet set, bool best_effort = false);

  // True when `handle` belonged to a best-effort request that was cancelled. Release() on a
  // cancelled handle is a no-op.
  bool WasCancelled(AcquireHandle handle) const { return cancelled_.count(handle) > 0; }

  // Unpins the set and frees its scratch. Tensors stay resident until evicted or freed.
  void Release(AcquireHandle handle);

  // Marks a resident tensor's device copy as diverged from host (output written).
  void MarkDirty(TensorId id);

  // End of life: drops any device copy instantly and invalidates the host copy. The tensor
  // must not be pinned or mid-transfer.
  void FreeTensor(TensorId id);

  int device_index() const { return device_index_; }
  NodeId device_node() const { return device_node_; }
  Bytes capacity() const { return allocator_.capacity(); }
  Bytes used_bytes() const { return allocator_.used_bytes(); }
  const MemoryCounters& counters() const { return counters_; }
  MemoryCounters& mutable_counters() { return counters_; }
  bool IsResidentHere(TensorId id) const;

  // Bytes of `cls` tensors resident on this device whose copy diverges from host — exactly
  // what a lightweight checkpoint must copy out (clean tensors already have a host copy).
  Bytes ResidentDirtyBytesOf(TensorClass cls) const;

 private:
  friend class MemorySystem;

  struct Pending {
    AcquireHandle handle;
    WorkingSet set;
    OneShotEvent* ready;
    std::set<TensorId> issued;  // bring-actions already in flight for this request
    bool scratch_allocated = false;
    Bytes scratch_offset = -1;
    bool best_effort = false;
  };

  enum class Progress {
    kOk,       // tensor satisfied or a transfer is in flight
    kBlocked,  // allocation must wait for in-flight evictions
    kStuck,    // no progress possible without external change (release / free)
  };

  struct Held {
    WorkingSet set;
    Bytes scratch_offset = -1;
  };

  // Tries to make progress on the head pending request; returns true if it was granted.
  bool PumpHead();
  // Checks whether every tensor of `p` is resident here and scratch is allocated.
  bool Satisfied(const Pending& p) const;
  // Issues whatever actions tensor `id` needs; on kBlocked/kStuck callers stop issuing to
  // preserve FIFO memory fairness.
  Progress EnsureTensor(Pending& p, TensorId id, bool is_accumulate, bool is_allocate);
  // Allocates `bytes`, evicting LRU victims as needed. Returns the offset, or -1 when
  // blocked behind an in-flight eviction, or -2 when stuck (everything evictable is gone
  // and nothing is in flight). Fatal only when `bytes` exceeds raw device capacity.
  Bytes AllocateWithEviction(Bytes bytes, const char* what);
  // Drops a best-effort head request: unpins, marks cancelled, fires ready.
  void CancelHead();
  // Compacts all live allocations to low offsets (simulating a virtual-memory remap),
  // leaving one contiguous free block. Updates every stored offset.
  void Defragment();
  // Starts eviction of the least-recently-used unpinned resident tensor. Returns true if a
  // victim was processed (sync drop or async write-back started); false if none exists.
  bool EvictOne();
  void BeginSwapIn(TensorId id, Bytes offset);
  void BeginPeerFetch(TensorId id, Bytes offset, MemoryManager* peer);
  void BeginStagedFetchFromPeer(TensorId id, MemoryManager* peer);
  void NoteUsage();

  // ---- Indexed victim selection (DESIGN.md §5, "Indexed eviction") ----
  // Heap entry for the lookahead policy, keyed by the reference scan's exact tie-break
  // tuple. Entries are never updated in place: every key change pushes a fresh entry and
  // the stale one is discarded when it surfaces (lazy invalidation).
  struct LookaheadEntry {
    bool free_drop;  // clean && never used again: evicting costs nothing
    std::uint64_t next_use;
    bool clean;
    std::uint64_t lru_tick;
    TensorId id;
  };
  // "Worse-than" order so the priority queue's top is the scan's unique winner (lru_tick is
  // unique across kResident tensors, so there are no cross-tensor key ties).
  struct LookaheadWorse {
    bool operator()(const LookaheadEntry& a, const LookaheadEntry& b) const {
      if (a.free_drop != b.free_drop) {
        return b.free_drop;
      }
      if (a.next_use != b.next_use) {
        return a.next_use < b.next_use;
      }
      if (a.clean != b.clean) {
        return b.clean;
      }
      return a.lru_tick > b.lru_tick;
    }
  };

  // Index maintenance. Every resident_ insert/erase and every lru_tick change of a member
  // must go through these, or indexed victim selection diverges from the reference scan.
  void IndexAdd(TensorId id);
  void IndexRemove(TensorId id);
  void IndexTickChange(TensorId id);
  // Intrusive-list primitives: O(1), allocation-free (tick bumps are the hot path — the
  // tuner sweep does ~14 of them per eviction).
  void LruLink(TensorId id);    // append at the tail (the fresh-tick end)
  void LruUnlink(TensorId id);
  // Pushes a fresh lookahead key for `id` (no-op unless the policy is kLookahead, an oracle
  // is installed, and `id` is kResident here). Duplicates are harmless.
  void LookaheadPush(TensorId id);
  // Drops and re-derives the lookahead heap from resident_ (oracle install / replacement).
  void RebuildLookaheadIndex();
  TensorId PickVictimLru() const;
  TensorId PickVictimLookahead(const NextUseFn& oracle, bool drop_is_free);
  // The original O(residents) scan, kept as the audit / benchmark baseline.
  TensorId PickVictimByScan(const NextUseFn& oracle, bool lookahead) const;

 public:
  // Returns "" when the LRU list exactly mirrors resident_ (size, membership, ascending
  // ticks among kResident members), else a description of the first divergence. Test hook.
  std::string DebugCheckIndexConsistency() const;

 private:

  MemorySystem* system_;
  int device_index_;
  NodeId device_node_;
  NodeId host_node_;  // this GPU's swap target (its own server's DRAM)
  DeviceAllocator allocator_;
  MemoryCounters counters_;

  std::deque<Pending> pending_;
  std::map<AcquireHandle, Held> held_;
  std::set<AcquireHandle> cancelled_;
  std::set<TensorId> resident_;  // tensors whose allocation lives on this device
  int evictions_in_flight_ = 0;
  AcquireHandle next_handle_ = 1;

  // Intrusive doubly-linked LRU list over exactly the members of resident_. Every lru_tick
  // bump assigns a fresh global maximum (NextLruTick is a global monotone counter) and
  // moves the tensor to the tail, so kResident members always sit in ascending-tick order
  // and the head-side walk in PickVictimLru finds the reference scan's min-tick pick.
  // kSwappingIn members may be linked out of tick order (they join with a pre-assigned
  // tick), but they are never candidates and land with a tick bump that repositions them.
  std::vector<TensorId> lru_prev_;   // indexed by tensor id; kInvalidTensor = list end
  std::vector<TensorId> lru_next_;
  std::vector<char> lru_linked_;     // membership guard for the index invariants
  TensorId lru_head_ = kInvalidTensor;
  TensorId lru_tail_ = kInvalidTensor;
  std::size_t lru_size_ = 0;
  std::priority_queue<LookaheadEntry, std::vector<LookaheadEntry>, LookaheadWorse>
      lookahead_heap_;
  std::vector<LookaheadEntry> lookahead_stash_;  // current-but-pinned entries parked mid-pop
};

class MemorySystem {
 public:
  MemorySystem(Simulator* sim, TransferManager* transfers, TensorRegistry* registry,
               const Topology* topology, const std::vector<Bytes>& gpu_capacities,
               MemoryPolicy policy);
  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  int num_devices() const { return static_cast<int>(managers_.size()); }
  MemoryManager& manager(int device) { return *managers_.at(static_cast<std::size_t>(device)); }
  const MemoryManager& manager(int device) const {
    return *managers_.at(static_cast<std::size_t>(device));
  }

  TensorRegistry& registry() { return *registry_; }
  const MemoryPolicy& policy() const { return policy_; }
  Simulator& sim() { return *sim_; }
  TransferManager& transfers() { return *transfers_; }
  const Topology& topology() const { return *topology_; }

  // See the namespace-scope NextUseFn above. Installing (or replacing) the oracle rebuilds
  // every manager's lookahead index, since heap keys embed oracle answers.
  using NextUseFn = harmony::NextUseFn;
  void SetNextUseOracle(NextUseFn oracle);
  const NextUseFn& next_use_oracle() const { return next_use_; }

  // Coalesced "something changed, re-examine pending requests on every device" signal.
  // Internally the system tracks a per-device dirty set, so only managers whose state
  // actually changed get pumped; this entry point conservatively marks all of them.
  void SchedulePumpAll();

  // Victim-selection audit: cross-check every indexed pick against the reference scan
  // (fatal on divergence). For randomized churn tests; too slow for benches.
  void set_audit_eviction(bool on) { audit_eviction_ = on; }
  bool audit_eviction() const { return audit_eviction_; }
  // Forces the O(residents) reference scan for victim selection — the baseline arm of
  // BM_EvictionChurn. Index maintenance still runs so the comparison is honest.
  void set_reference_scan_eviction(bool on) { reference_scan_eviction_ = on; }
  bool reference_scan_eviction() const { return reference_scan_eviction_; }

  // Allocates a completion event owned by the system (for staged multi-hop fetches).
  OneShotEvent* NewEvent();

  // Post-run hygiene check: no pending acquisitions, no held pins, no in-flight
  // transfers anywhere. Returns an error describing the first violation (leaked pins and
  // stuck requests are scheduler/engine bugs that would otherwise go unnoticed).
  Status CheckQuiescent() const;

  // ---- pin accounting (the dynamic side of the linter's static pin-balance check) ----
  // Tensors currently holding pins, with their counts. Empty at quiescence after a clean
  // run; a working set that pins a tensor twice (see runtime/plan_lint.h, kPinBalance)
  // shows up here as a residual count after release.
  std::vector<std::pair<TensorId, int>> PinnedTensors() const;
  // Unevictable bytes right now: sum of sizes of pinned tensors across all devices.
  Bytes PinnedBytes() const;

  // Sums a counter across devices.
  Bytes TotalSwapIn() const;
  Bytes TotalSwapOut() const;
  Bytes TotalSwapOutOf(TensorClass cls) const;
  Bytes TotalSwapInOf(TensorClass cls) const;
  Bytes TotalP2pIn() const;

  // ---- observability (DESIGN.md §8) ----
  // Wall time device `device` has had at least one inbound DMA (swap-in / p2p-in) in
  // flight, integrated lazily up to now. The engine samples this at acquire-start and
  // acquire-grant to split the wait exactly into stall-on-transfer vs stall-on-memory.
  double InboundBusySeconds(int device) const;

  // Machine-wide per-tensor churn; indexed by TensorId, sized lazily (ids past the end
  // have all-zero counters).
  const std::vector<TensorChurnCounters>& tensor_churn() const { return churn_; }
  // Event-granular churn log; appended only while audit_eviction is on (the recount arm
  // of the fuzz cross-check — unbounded growth otherwise).
  const std::vector<ChurnEvent>& churn_audit_log() const { return churn_log_; }

 private:
  friend class MemoryManager;
  // Dirty-device pump. SchedulePump marks one device and guarantees a zero-delay pump
  // event; MarkDeviceDirty only sets the bit, for state changes whose wakeup rode an
  // already-guaranteed future pump in the pre-indexed code (keeping the event schedule —
  // and therefore every bench's stdout — byte-identical).
  void SchedulePump(int device);
  void MarkDeviceDirty(int device);
  // Devices that saw a tensor in flight while pumping record themselves as waiters; the
  // transfer's completion wakes exactly those devices (all of them past 64 GPUs).
  void MarkTensorWaiter(TensorId id, int device);
  void WakeTensorWaiters(TensorId id);
  // Routes an lru_tick change to the owning manager's indexes and marks it dirty.
  void NoteTickChanged(TensorId id);
  void EnsurePumpScheduled();
  void PumpDirty();

  // Inbound-DMA busy integrator: pure accounting, never schedules events, so enabling the
  // observability layer cannot perturb the simulated schedule.
  void NoteInboundStart(int device);
  void NoteInboundEnd(int device);
  // Per-tensor churn bump + audit-log append; called at the same sites as the per-device
  // MemoryCounters bumps.
  void NoteChurn(TensorId id, int device, ChurnKind kind, Bytes bytes);
  void NoteEviction(TensorId id);

  Simulator* sim_;
  TransferManager* transfers_;
  TensorRegistry* registry_;
  const Topology* topology_;
  MemoryPolicy policy_;
  std::vector<std::unique_ptr<MemoryManager>> managers_;
  NextUseFn next_use_;
  std::vector<std::unique_ptr<OneShotEvent>> events_;
  bool pump_scheduled_ = false;
  std::vector<char> dirty_;                     // per-device "pump me" bits
  std::vector<std::uint64_t> tensor_waiters_;   // per-tensor bitmask of waiting devices
  bool audit_eviction_ = false;
  bool reference_scan_eviction_ = false;

  struct InboundBusy {
    int active = 0;
    double seconds = 0.0;
    SimTime last_change = 0.0;
  };
  std::vector<InboundBusy> inbound_;
  std::vector<TensorChurnCounters> churn_;
  std::vector<ChurnEvent> churn_log_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_MEM_MEMORY_MANAGER_H_
