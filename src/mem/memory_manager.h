// Per-device virtual memory managers with a machine-wide coordinator.
//
// MemorySystem owns one MemoryManager per GPU plus the shared tensor registry. The execution
// engine asks a device to Acquire a task's working set (inputs to fetch, accumulators to
// fetch-or-init, outputs to allocate, transient scratch); the manager pins the set, evicts
// LRU victims under pressure, and issues DMA flows through the TransferManager. The returned
// event fires when the whole set is resident.
//
// Two policy bits differentiate the paper's schemes:
//   - write_back_clean: evicting an unmodified tensor still copies it to host (IBM-LMS-style
//     per-GPU virtualization). Harmony's coherent memory drops clean tensors for free.
//   - allow_p2p: a tensor resident on a peer GPU is fetched with one device-to-device DMA.
//     Without it the fetch is staged through host memory as a swap-out + swap-in pair —
//     the "Only CPU-GPU Swaps" inefficiency of Sec. 2.
#ifndef HARMONY_SRC_MEM_MEMORY_MANAGER_H_
#define HARMONY_SRC_MEM_MEMORY_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/hw/transfer_manager.h"
#include "src/mem/allocator.h"
#include "src/mem/tensor.h"
#include "src/util/status.h"
#include "src/sim/simulator.h"

namespace harmony {

enum class EvictionPolicy {
  kLru,        // least-recently-used (what per-GPU virtualization can do on its own)
  kLookahead,  // Belady-style: evict the tensor whose next use is farthest in the future,
               // using the schedule the Task & Swap Scheduler already knows ("the scheduler
               // and swapping algorithms inform each other's decisions")
};

struct MemoryPolicy {
  bool write_back_clean = true;  // LMS-style naive eviction (baseline schemes)
  bool allow_p2p = false;        // coherent cross-device fetch (Harmony)
  EvictionPolicy eviction = EvictionPolicy::kLru;
};

inline MemoryPolicy LmsPolicy() { return MemoryPolicy{true, false}; }
inline MemoryPolicy HarmonyPolicy() { return MemoryPolicy{false, true}; }

struct MemoryCounters {
  Bytes swap_in[kNumTensorClasses] = {};   // host -> this device
  Bytes swap_out[kNumTensorClasses] = {};  // this device -> host
  Bytes p2p_in[kNumTensorClasses] = {};    // peer -> this device
  Bytes clean_drops[kNumTensorClasses] = {};
  std::int64_t evictions = 0;
  // Virtual-address compactions (CUDA-VMM-style remap when free bytes suffice but no
  // contiguous block does). Zero-cost in simulated time; counted for observability.
  std::int64_t defrags = 0;
  Bytes high_water = 0;  // max allocator usage observed

  Bytes total_swap_in() const;
  Bytes total_swap_out() const;
  Bytes total_p2p_in() const;
  Bytes swap_in_of(TensorClass cls) const { return swap_in[static_cast<int>(cls)]; }
  Bytes swap_out_of(TensorClass cls) const { return swap_out[static_cast<int>(cls)]; }
};

// One task's working-set request against a specific device.
struct WorkingSet {
  std::vector<TensorId> fetch;       // must arrive with valid contents
  std::vector<TensorId> accumulate;  // fetch if a copy exists anywhere, else zero-init here
  std::vector<TensorId> allocate;    // outputs: fresh device allocation
  Bytes scratch_bytes = 0;           // transient workspace, freed on Release
};

class MemorySystem;

class MemoryManager {
 public:
  MemoryManager(MemorySystem* system, int device_index, NodeId device_node, NodeId host_node,
                Bytes capacity);
  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  using AcquireHandle = std::int64_t;

  struct Acquisition {
    AcquireHandle handle;
    OneShotEvent* ready;  // owned by the manager; fires when the set is resident+pinned
  };

  // Queues a working-set acquisition. Requests are granted FIFO per device. A best-effort
  // request (used for prefetch / double buffering) is *cancelled* instead of waiting when it
  // can make no progress without evicting pinned tensors: its pins are dropped, `ready`
  // fires, and WasCancelled(handle) returns true. Transfers already in flight still land.
  Acquisition Acquire(WorkingSet set, bool best_effort = false);

  // True when `handle` belonged to a best-effort request that was cancelled. Release() on a
  // cancelled handle is a no-op.
  bool WasCancelled(AcquireHandle handle) const { return cancelled_.count(handle) > 0; }

  // Unpins the set and frees its scratch. Tensors stay resident until evicted or freed.
  void Release(AcquireHandle handle);

  // Marks a resident tensor's device copy as diverged from host (output written).
  void MarkDirty(TensorId id);

  // End of life: drops any device copy instantly and invalidates the host copy. The tensor
  // must not be pinned or mid-transfer.
  void FreeTensor(TensorId id);

  int device_index() const { return device_index_; }
  NodeId device_node() const { return device_node_; }
  Bytes capacity() const { return allocator_.capacity(); }
  Bytes used_bytes() const { return allocator_.used_bytes(); }
  const MemoryCounters& counters() const { return counters_; }
  MemoryCounters& mutable_counters() { return counters_; }
  bool IsResidentHere(TensorId id) const;

  // Bytes of `cls` tensors resident on this device whose copy diverges from host — exactly
  // what a lightweight checkpoint must copy out (clean tensors already have a host copy).
  Bytes ResidentDirtyBytesOf(TensorClass cls) const;

 private:
  friend class MemorySystem;

  struct Pending {
    AcquireHandle handle;
    WorkingSet set;
    OneShotEvent* ready;
    std::set<TensorId> issued;  // bring-actions already in flight for this request
    bool scratch_allocated = false;
    Bytes scratch_offset = -1;
    bool best_effort = false;
  };

  enum class Progress {
    kOk,       // tensor satisfied or a transfer is in flight
    kBlocked,  // allocation must wait for in-flight evictions
    kStuck,    // no progress possible without external change (release / free)
  };

  struct Held {
    WorkingSet set;
    Bytes scratch_offset = -1;
  };

  // Tries to make progress on the head pending request; returns true if it was granted.
  bool PumpHead();
  // Checks whether every tensor of `p` is resident here and scratch is allocated.
  bool Satisfied(const Pending& p) const;
  // Issues whatever actions tensor `id` needs; on kBlocked/kStuck callers stop issuing to
  // preserve FIFO memory fairness.
  Progress EnsureTensor(Pending& p, TensorId id, bool is_accumulate, bool is_allocate);
  // Allocates `bytes`, evicting LRU victims as needed. Returns the offset, or -1 when
  // blocked behind an in-flight eviction, or -2 when stuck (everything evictable is gone
  // and nothing is in flight). Fatal only when `bytes` exceeds raw device capacity.
  Bytes AllocateWithEviction(Bytes bytes, const char* what);
  // Drops a best-effort head request: unpins, marks cancelled, fires ready.
  void CancelHead();
  // Compacts all live allocations to low offsets (simulating a virtual-memory remap),
  // leaving one contiguous free block. Updates every stored offset.
  void Defragment();
  // Starts eviction of the least-recently-used unpinned resident tensor. Returns true if a
  // victim was processed (sync drop or async write-back started); false if none exists.
  bool EvictOne();
  void BeginSwapIn(TensorId id, Bytes offset);
  void BeginPeerFetch(TensorId id, Bytes offset, MemoryManager* peer);
  void BeginStagedFetchFromPeer(TensorId id, MemoryManager* peer);
  void NoteUsage();

  MemorySystem* system_;
  int device_index_;
  NodeId device_node_;
  NodeId host_node_;  // this GPU's swap target (its own server's DRAM)
  DeviceAllocator allocator_;
  MemoryCounters counters_;

  std::deque<Pending> pending_;
  std::map<AcquireHandle, Held> held_;
  std::set<AcquireHandle> cancelled_;
  std::set<TensorId> resident_;  // tensors whose allocation lives on this device
  int evictions_in_flight_ = 0;
  AcquireHandle next_handle_ = 1;
};

class MemorySystem {
 public:
  MemorySystem(Simulator* sim, TransferManager* transfers, TensorRegistry* registry,
               const Topology* topology, const std::vector<Bytes>& gpu_capacities,
               MemoryPolicy policy);
  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  int num_devices() const { return static_cast<int>(managers_.size()); }
  MemoryManager& manager(int device) { return *managers_.at(static_cast<std::size_t>(device)); }
  const MemoryManager& manager(int device) const {
    return *managers_.at(static_cast<std::size_t>(device));
  }

  TensorRegistry& registry() { return *registry_; }
  const MemoryPolicy& policy() const { return policy_; }
  Simulator& sim() { return *sim_; }
  TransferManager& transfers() { return *transfers_; }
  const Topology& topology() const { return *topology_; }

  // Next-use oracle for lookahead eviction: returns the position (monotone per device) of
  // the next task on `device` that touches `tensor`, or a huge sentinel when it is never
  // used again. Installed by the engine, which knows the plan.
  using NextUseFn = std::function<std::uint64_t(TensorId tensor, int device)>;
  void SetNextUseOracle(NextUseFn oracle) { next_use_ = std::move(oracle); }
  const NextUseFn& next_use_oracle() const { return next_use_; }

  // Coalesced "something changed, re-examine pending requests on every device" signal.
  void SchedulePumpAll();

  // Allocates a completion event owned by the system (for staged multi-hop fetches).
  OneShotEvent* NewEvent();

  // Post-run hygiene check: no pending acquisitions, no held pins, no in-flight
  // transfers anywhere. Returns an error describing the first violation (leaked pins and
  // stuck requests are scheduler/engine bugs that would otherwise go unnoticed).
  Status CheckQuiescent() const;

  // Sums a counter across devices.
  Bytes TotalSwapIn() const;
  Bytes TotalSwapOut() const;
  Bytes TotalSwapOutOf(TensorClass cls) const;
  Bytes TotalSwapInOf(TensorClass cls) const;
  Bytes TotalP2pIn() const;

 private:
  friend class MemoryManager;
  void PumpAll();

  Simulator* sim_;
  TransferManager* transfers_;
  TensorRegistry* registry_;
  const Topology* topology_;
  MemoryPolicy policy_;
  std::vector<std::unique_ptr<MemoryManager>> managers_;
  NextUseFn next_use_;
  std::vector<std::unique_ptr<OneShotEvent>> events_;
  bool pump_scheduled_ = false;
};

}  // namespace harmony

#endif  // HARMONY_SRC_MEM_MEMORY_MANAGER_H_
