// First-fit device memory allocator with free-list coalescing.
//
// Models a GPU memory pool: offset-addressed, no compaction (a real allocator cannot move
// live cudaMalloc'd blocks). Fragmentation is therefore observable: Allocate can fail even
// when free_bytes() >= size, and the memory manager responds by evicting more tensors.
#ifndef HARMONY_SRC_MEM_ALLOCATOR_H_
#define HARMONY_SRC_MEM_ALLOCATOR_H_

#include <cstdint>
#include <map>

#include "src/util/units.h"

namespace harmony {

class DeviceAllocator {
 public:
  explicit DeviceAllocator(Bytes capacity, Bytes alignment = 256);

  // Returns the offset of a block of `size` bytes, or -1 when no free block fits.
  Bytes Allocate(Bytes size);

  // Frees a block previously returned by Allocate (with its original size).
  void Free(Bytes offset, Bytes size);

  Bytes capacity() const { return capacity_; }
  Bytes used_bytes() const { return used_; }
  Bytes free_bytes() const { return capacity_ - used_; }
  // Size of the largest free block — the quantity that actually gates allocation.
  Bytes largest_free_block() const;
  int num_free_blocks() const { return static_cast<int>(free_.size()); }

 private:
  Bytes Align(Bytes v) const { return (v + alignment_ - 1) / alignment_ * alignment_; }

  Bytes capacity_;
  Bytes alignment_;
  Bytes used_ = 0;
  std::map<Bytes, Bytes> free_;  // offset -> length, disjoint, coalesced
};

}  // namespace harmony

#endif  // HARMONY_SRC_MEM_ALLOCATOR_H_
