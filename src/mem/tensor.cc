#include "src/mem/tensor.h"

namespace harmony {

const char* TensorClassName(TensorClass cls) {
  switch (cls) {
    case TensorClass::kInput:
      return "input";
    case TensorClass::kWeight:
      return "weight";
    case TensorClass::kWeightGrad:
      return "weight-grad";
    case TensorClass::kActivation:
      return "activation";
    case TensorClass::kActivationGrad:
      return "activation-grad";
    case TensorClass::kOptimizerState:
      return "optimizer-state";
    case TensorClass::kWorkspace:
      return "workspace";
  }
  return "unknown";
}

TensorId TensorRegistry::Create(std::string name, Bytes bytes, TensorClass cls, bool host_valid,
                                int layer, int microbatch, int replica_gpu) {
  HCHECK_GE(bytes, 0);
  const TensorId id = static_cast<TensorId>(metas_.size());
  metas_.push_back(TensorMeta{id, std::move(name), bytes, cls, layer, microbatch, replica_gpu});
  TensorState state;
  state.host_valid = host_valid;
  states_.push_back(state);
  return id;
}

Bytes TensorRegistry::TotalBytes(TensorClass cls) const {
  Bytes total = 0;
  for (const auto& meta : metas_) {
    if (meta.cls == cls) {
      total += meta.bytes;
    }
  }
  return total;
}

}  // namespace harmony
