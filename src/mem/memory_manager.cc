#include "src/mem/memory_manager.h"

#include <algorithm>
#include <limits>

#include "src/util/logging.h"

namespace harmony {

Bytes MemoryCounters::total_swap_in() const {
  Bytes total = 0;
  for (Bytes b : swap_in) {
    total += b;
  }
  return total;
}

Bytes MemoryCounters::total_swap_out() const {
  Bytes total = 0;
  for (Bytes b : swap_out) {
    total += b;
  }
  return total;
}

Bytes MemoryCounters::total_p2p_in() const {
  Bytes total = 0;
  for (Bytes b : p2p_in) {
    total += b;
  }
  return total;
}

Bytes MemoryCounters::total_clean_drops() const {
  Bytes total = 0;
  for (Bytes b : clean_drops) {
    total += b;
  }
  return total;
}

// ---- MemoryManager -------------------------------------------------------------------------

MemoryManager::MemoryManager(MemorySystem* system, int device_index, NodeId device_node,
                             NodeId host_node, Bytes capacity)
    : system_(system),
      device_index_(device_index),
      device_node_(device_node),
      host_node_(host_node),
      allocator_(capacity) {}

MemoryManager::Acquisition MemoryManager::Acquire(WorkingSet set, bool best_effort) {
  TensorRegistry& reg = system_->registry();
  auto pin_all = [&](const std::vector<TensorId>& ids) {
    for (TensorId id : ids) {
      TensorState& s = reg.mutable_state(id);
      HCHECK(s.residency != Residency::kDead)
          << "acquire of dead tensor " << reg.meta(id).name;
      ++s.pin_count;
    }
  };
  pin_all(set.fetch);
  pin_all(set.accumulate);
  pin_all(set.allocate);

  Pending pending;
  pending.handle = next_handle_++;
  pending.ready = system_->NewEvent();
  pending.set = std::move(set);
  pending.best_effort = best_effort;
  const Acquisition result{pending.handle, pending.ready};
  pending_.push_back(std::move(pending));
  system_->SchedulePump(device_index_);
  return result;
}

void MemoryManager::Release(AcquireHandle handle) {
  if (cancelled_.erase(handle) > 0) {
    return;  // best-effort request that never materialized
  }
  auto it = held_.find(handle);
  HCHECK(it != held_.end()) << "release of unknown acquisition " << handle;
  TensorRegistry& reg = system_->registry();
  auto unpin_all = [&](const std::vector<TensorId>& ids) {
    for (TensorId id : ids) {
      TensorState& s = reg.mutable_state(id);
      HCHECK_GT(s.pin_count, 0);
      --s.pin_count;
      s.lru_tick = reg.NextLruTick();
      // The tensor may have been stolen by a peer while pinned; route the index update to
      // whichever manager tracks it now.
      system_->NoteTickChanged(id);
    }
  };
  unpin_all(it->second.set.fetch);
  unpin_all(it->second.set.accumulate);
  unpin_all(it->second.set.allocate);
  if (it->second.scratch_offset >= 0) {
    allocator_.Free(it->second.scratch_offset, it->second.set.scratch_bytes);
  }
  held_.erase(it);
  system_->SchedulePump(device_index_);
}

void MemoryManager::MarkDirty(TensorId id) {
  TensorState& s = system_->registry().mutable_state(id);
  HCHECK(s.residency == Residency::kResident && s.device == device_index_)
      << "MarkDirty on non-resident tensor " << system_->registry().meta(id).name;
  if (!s.dirty) {
    s.dirty = true;
    LookaheadPush(id);  // the clean bit is part of the lookahead eviction key
  }
}

bool MemoryManager::IsResidentHere(TensorId id) const {
  const TensorState& s = system_->registry().state(id);
  return s.residency == Residency::kResident && s.device == device_index_;
}

Bytes MemoryManager::ResidentDirtyBytesOf(TensorClass cls) const {
  const TensorRegistry& reg = system_->registry();
  Bytes total = 0;
  for (TensorId id : resident_) {
    if (reg.meta(id).cls != cls) {
      continue;
    }
    const TensorState& s = reg.state(id);
    if (s.residency == Residency::kResident && s.dirty) {
      total += reg.meta(id).bytes;
    }
  }
  return total;
}

void MemoryManager::FreeTensor(TensorId id) {
  TensorRegistry& reg = system_->registry();
  TensorState& s = reg.mutable_state(id);
  HCHECK_EQ(s.pin_count, 0) << "FreeTensor on pinned tensor " << reg.meta(id).name;
  HCHECK(s.residency == Residency::kResident || s.residency == Residency::kNone)
      << "FreeTensor on in-flight tensor " << reg.meta(id).name
      << " (callers must free synchronously after Release, before the next pump)";
  if (s.residency == Residency::kResident) {
    HCHECK_EQ(s.device, device_index_);
    allocator_.Free(s.alloc_offset, reg.meta(id).bytes);
    resident_.erase(id);
    IndexRemove(id);
  }
  s.residency = Residency::kDead;
  s.device = -1;
  s.host_valid = false;
  s.dirty = false;
  s.alloc_offset = -1;
  system_->SchedulePump(device_index_);
}

bool MemoryManager::Satisfied(const Pending& p) const {
  const TensorRegistry& reg = system_->registry();
  auto all_resident = [&](const std::vector<TensorId>& ids) {
    for (TensorId id : ids) {
      const TensorState& s = reg.state(id);
      if (!(s.residency == Residency::kResident && s.device == device_index_)) {
        return false;
      }
    }
    return true;
  };
  if (!all_resident(p.set.fetch) || !all_resident(p.set.accumulate) ||
      !all_resident(p.set.allocate)) {
    return false;
  }
  return p.set.scratch_bytes == 0 || p.scratch_allocated;
}

bool MemoryManager::PumpHead() {
  if (pending_.empty()) {
    return false;
  }
  Pending& head = pending_.front();

  Progress worst = Progress::kOk;
  auto ensure_all = [&](const std::vector<TensorId>& ids, bool accumulate, bool allocate) {
    for (TensorId id : ids) {
      const Progress p = EnsureTensor(head, id, accumulate, allocate);
      if (p != Progress::kOk) {
        worst = p;
        return;
      }
    }
  };
  ensure_all(head.set.fetch, /*accumulate=*/false, /*allocate=*/false);
  if (worst == Progress::kOk) {
    ensure_all(head.set.accumulate, /*accumulate=*/true, /*allocate=*/false);
  }
  if (worst == Progress::kOk) {
    ensure_all(head.set.allocate, /*accumulate=*/false, /*allocate=*/true);
  }
  if (worst == Progress::kOk && !head.scratch_allocated && head.set.scratch_bytes > 0) {
    const Bytes offset = AllocateWithEviction(head.set.scratch_bytes, "scratch");
    if (offset == -2) {
      worst = Progress::kStuck;
    } else if (offset == -1) {
      worst = Progress::kBlocked;
    } else {
      head.scratch_allocated = true;
      head.scratch_offset = offset;
    }
  }
  if (worst == Progress::kStuck && head.best_effort) {
    CancelHead();
    return true;
  }
  if (worst != Progress::kOk || !Satisfied(head)) {
    return false;
  }

  // Grant: bump recency so freshly-acquired tensors are the last eviction candidates.
  TensorRegistry& reg = system_->registry();
  auto touch_all = [&](const std::vector<TensorId>& ids) {
    for (TensorId id : ids) {
      TensorState& s = reg.mutable_state(id);
      s.lru_tick = reg.NextLruTick();
      IndexTickChange(id);  // Satisfied() guarantees residency on this device
    }
  };
  touch_all(head.set.fetch);
  touch_all(head.set.accumulate);
  touch_all(head.set.allocate);

  Held held;
  held.set = std::move(head.set);
  held.scratch_offset = head.scratch_allocated ? head.scratch_offset : -1;
  OneShotEvent* ready = head.ready;
  held_.emplace(head.handle, std::move(held));
  pending_.pop_front();
  ready->Fire();
  return true;
}

MemoryManager::Progress MemoryManager::EnsureTensor(Pending& p, TensorId id,
                                                    bool is_accumulate, bool is_allocate) {
  TensorRegistry& reg = system_->registry();
  TensorState& s = reg.mutable_state(id);
  const TensorMeta& meta = reg.meta(id);

  if (s.residency == Residency::kResident && s.device == device_index_) {
    return Progress::kOk;
  }
  if (s.residency == Residency::kSwappingIn && s.device == device_index_) {
    return Progress::kOk;  // arrival will re-pump
  }
  if (p.issued.count(id) > 0) {
    return Progress::kOk;  // a multi-stage bring is in flight
  }
  if (s.residency == Residency::kSwappingOut ||
      (s.residency == Residency::kSwappingIn && s.device != device_index_)) {
    system_->MarkTensorWaiter(id, device_index_);
    return Progress::kOk;  // the transfer's completion wakes this device to re-evaluate
  }
  HCHECK(s.residency != Residency::kDead) << "use of dead tensor " << meta.name;

  auto progress_of = [](Bytes offset) {
    return offset == -2 ? Progress::kStuck : Progress::kBlocked;
  };

  if (s.residency == Residency::kNone) {
    if (s.host_valid) {
      const Bytes offset = AllocateWithEviction(meta.bytes, meta.name.c_str());
      if (offset < 0) {
        return progress_of(offset);
      }
      BeginSwapIn(id, offset);
      return Progress::kOk;
    }
    HCHECK(is_accumulate || is_allocate)
        << "fetch of tensor " << meta.name << " which has no valid copy anywhere";
    const Bytes offset = AllocateWithEviction(meta.bytes, meta.name.c_str());
    if (offset < 0) {
      return progress_of(offset);
    }
    s.residency = Residency::kResident;
    s.device = device_index_;
    s.alloc_offset = offset;
    s.dirty = true;  // device copy is the only copy
    s.lru_tick = reg.NextLruTick();
    resident_.insert(id);
    IndexAdd(id);
    NoteUsage();
    return Progress::kOk;
  }

  // Resident on a peer device.
  HCHECK(s.residency == Residency::kResident);
  HCHECK_NE(s.device, device_index_);
  HCHECK(!is_allocate) << "fresh output " << meta.name << " already resident on device "
                       << s.device;
  MemoryManager* peer = &system_->manager(s.device);
  if (system_->policy().allow_p2p) {
    const Bytes offset = AllocateWithEviction(meta.bytes, meta.name.c_str());
    if (offset < 0) {
      return progress_of(offset);
    }
    BeginPeerFetch(id, offset, peer);
    return Progress::kOk;
  }
  // Per-GPU virtualization: no cross-device context. Stage through host memory: the owner
  // writes the tensor back, then the regular kNone+host_valid path swaps it in here.
  p.issued.insert(id);
  BeginStagedFetchFromPeer(id, peer);
  return Progress::kOk;
}

void MemoryManager::CancelHead() {
  Pending head = std::move(pending_.front());
  pending_.pop_front();
  TensorRegistry& reg = system_->registry();
  auto unpin_all = [&](const std::vector<TensorId>& ids) {
    for (TensorId id : ids) {
      TensorState& s = reg.mutable_state(id);
      HCHECK_GT(s.pin_count, 0);
      --s.pin_count;
      if (s.device >= 0) {
        // The unpin may create an eviction candidate; the owner is re-pumped on the
        // pump pass that follows this cancellation. Unlike Release there is no tick bump
        // here, so the owner's heap needs an explicit push for the new candidate.
        system_->MarkDeviceDirty(s.device);
        if (s.pin_count == 0) {
          system_->manager(s.device).LookaheadPush(id);
        }
      }
    }
  };
  unpin_all(head.set.fetch);
  unpin_all(head.set.accumulate);
  unpin_all(head.set.allocate);
  if (head.scratch_allocated) {
    allocator_.Free(head.scratch_offset, head.set.scratch_bytes);
  }
  cancelled_.insert(head.handle);
  head.ready->Fire();
}

Bytes MemoryManager::AllocateWithEviction(Bytes bytes, const char* what) {
  HCHECK_LE(bytes, allocator_.capacity())
      << "tensor " << what << " (" << FormatBytes(bytes) << ") exceeds device " << device_index_
      << " capacity " << FormatBytes(allocator_.capacity());
  for (;;) {
    const Bytes offset = allocator_.Allocate(bytes);
    if (offset >= 0) {
      NoteUsage();
      return offset;
    }
    if (EvictOne()) {
      continue;  // a victim was dropped (retry now) or a write-back started (retry too,
                 // there may be further victims to overlap)
    }
    if (evictions_in_flight_ > 0) {
      return -1;  // wait for write-backs to land
    }
    if (allocator_.free_bytes() >= bytes && allocator_.largest_free_block() < bytes) {
      // Enough bytes, no contiguous block: remap (CUDA-VMM-style) and retry. This always
      // makes progress, so the loop cannot spin here.
      Defragment();
      continue;
    }
    // Everything evictable is gone and nothing is in flight: only an external change
    // (Release / FreeTensor, often on another request) can unblock this. The engine's
    // deadlock detector reports schedules where that never happens.
    HLOG(kDebug) << "device " << device_index_ << " stuck allocating " << what << " ("
                 << FormatBytes(bytes) << "): used " << FormatBytes(allocator_.used_bytes())
                 << " of " << FormatBytes(allocator_.capacity());
    return -2;
  }
}

void MemoryManager::Defragment() {
  struct Item {
    Bytes offset;
    Bytes size;
    Bytes* slot;  // where the new offset must be written
  };
  std::vector<Item> items;
  TensorRegistry& reg = system_->registry();
  for (TensorId id : resident_) {
    TensorState& s = reg.mutable_state(id);
    HCHECK_GE(s.alloc_offset, 0);
    items.push_back(Item{s.alloc_offset, reg.meta(id).bytes, &s.alloc_offset});
  }
  for (auto& [handle, held] : held_) {
    if (held.scratch_offset >= 0) {
      items.push_back(Item{held.scratch_offset, held.set.scratch_bytes, &held.scratch_offset});
    }
  }
  for (auto& pending : pending_) {
    if (pending.scratch_allocated) {
      items.push_back(
          Item{pending.scratch_offset, pending.set.scratch_bytes, &pending.scratch_offset});
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.offset < b.offset; });

  DeviceAllocator fresh(allocator_.capacity());
  for (Item& item : items) {
    const Bytes new_offset = fresh.Allocate(item.size);
    HCHECK_GE(new_offset, 0) << "defragmentation failed to repack";
    *item.slot = new_offset;
  }
  allocator_ = std::move(fresh);
  ++counters_.defrags;
}

TensorId MemoryManager::PickVictimByScan(const NextUseFn& oracle, bool lookahead) const {
  const TensorRegistry& reg = system_->registry();
  TensorId victim = kInvalidTensor;
  if (lookahead) {
    // Belady with a write-back-cost tiebreak: among candidates, prefer (1) dead-and-clean
    // (a free drop), then (2) farthest next use, preferring clean over dirty on equal
    // distance, then oldest LRU tick. Pure farthest-next-use can lose to LRU by evicting
    // dirty tensors (paid write-back) while clean never-used-again ones sit idle.
    constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
    const bool drop_is_free = !system_->policy().write_back_clean;
    std::uint64_t best_next = 0;
    bool best_clean = false;
    std::uint64_t best_tick = std::numeric_limits<std::uint64_t>::max();
    for (TensorId id : resident_) {
      const TensorState& s = reg.state(id);
      if (s.residency != Residency::kResident || s.pin_count > 0) {
        continue;
      }
      const std::uint64_t next = oracle(id, device_index_);
      const bool clean = !s.dirty && s.host_valid && drop_is_free;
      const bool better = [&] {
        if (victim == kInvalidTensor) {
          return true;
        }
        // Free drops of dead tensors beat everything.
        const bool cand_free = clean && next == kNever;
        const bool best_free = best_clean && best_next == kNever;
        if (cand_free != best_free) {
          return cand_free;
        }
        if (next != best_next) {
          return next > best_next;
        }
        if (clean != best_clean) {
          return clean;
        }
        return s.lru_tick < best_tick;
      }();
      if (better) {
        best_next = next;
        best_clean = clean;
        best_tick = s.lru_tick;
        victim = id;
      }
    }
  } else {
    std::uint64_t best_tick = std::numeric_limits<std::uint64_t>::max();
    for (TensorId id : resident_) {
      const TensorState& s = reg.state(id);
      if (s.residency != Residency::kResident || s.pin_count > 0) {
        continue;
      }
      if (s.lru_tick < best_tick) {
        best_tick = s.lru_tick;
        victim = id;
      }
    }
  }
  return victim;
}

TensorId MemoryManager::PickVictimLru() const {
  // Every tick bump moves the member to the tail with a fresh global-maximum tick, so the
  // list holds kResident members in ascending lru_tick order and the first unpinned one is
  // exactly the scan's min-tick pick. kSwappingIn members may sit out of order (they link
  // at allocation with their pre-swap tick) but are skipped here and reposition on the
  // landing tick bump.
  const TensorRegistry& reg = system_->registry();
  for (TensorId id = lru_head_; id != kInvalidTensor;
       id = lru_next_[static_cast<std::size_t>(id)]) {
    const TensorState& s = reg.state(id);
    if (s.residency == Residency::kResident && s.pin_count == 0) {
      return id;
    }
  }
  return kInvalidTensor;
}

TensorId MemoryManager::PickVictimLookahead(const NextUseFn& oracle, bool drop_is_free) {
  const TensorRegistry& reg = system_->registry();
  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  lookahead_stash_.clear();
  TensorId victim = kInvalidTensor;
  bool rebuilt = false;
  while (!lookahead_heap_.empty()) {
    const LookaheadEntry top = lookahead_heap_.top();
    lookahead_heap_.pop();
    const TensorState& s = reg.state(top.id);
    if (s.residency != Residency::kResident || s.device != device_index_ ||
        s.lru_tick != top.lru_tick) {
      continue;  // stale: the tensor left, or a tick bump pushed a newer key
    }
    const bool clean = !s.dirty && s.host_valid && drop_is_free;
    if (clean != top.clean || top.free_drop != (clean && top.next_use == kNever)) {
      continue;  // stale: MarkDirty pushed a newer key
    }
    if (oracle(top.id, device_index_) != top.next_use) {
      // A distance changed without a tick bump: this oracle violates the push-on-change
      // contract the lazy heap relies on (plan-derived oracles can't — a device only moves
      // past a use while the used tensor is pinned, and the release tick-bump pushes a
      // fresh key — but hand-rolled oracles may drift freely). Self-heal by re-deriving
      // every key; after the rebuild all keys are current, so one pass suffices and the
      // pick is exact for any oracle, at reference-scan cost.
      HCHECK(!rebuilt) << "lookahead oracle drifted twice during one victim pick";
      RebuildLookaheadIndex();
      lookahead_stash_.clear();
      rebuilt = true;
      continue;
    }
    if (s.pin_count > 0) {
      lookahead_stash_.push_back(top);  // key is current, just not evictable right now
      continue;
    }
    victim = top.id;
    break;
  }
  for (const LookaheadEntry& entry : lookahead_stash_) {
    lookahead_heap_.push(entry);
  }
  lookahead_stash_.clear();
  return victim;
}

bool MemoryManager::EvictOne() {
  TensorRegistry& reg = system_->registry();
  const MemoryPolicy& policy = system_->policy();
  const NextUseFn& oracle = system_->next_use_oracle();
  const bool lookahead = policy.eviction == EvictionPolicy::kLookahead && oracle != nullptr;
  TensorId victim;
  if (system_->reference_scan_eviction()) {
    victim = PickVictimByScan(oracle, lookahead);
  } else {
    victim = lookahead ? PickVictimLookahead(oracle, !policy.write_back_clean)
                       : PickVictimLru();
    if (system_->audit_eviction()) {
      const TensorId reference = PickVictimByScan(oracle, lookahead);
      HCHECK_EQ(victim, reference)
          << "indexed victim selection diverged from the reference scan on device "
          << device_index_;
    }
  }
  if (victim == kInvalidTensor) {
    return false;
  }

  TensorState& s = reg.mutable_state(victim);
  const TensorMeta& meta = reg.meta(victim);
  ++counters_.evictions;
  system_->NoteEviction(victim);

  const bool can_drop = !s.dirty && s.host_valid && !policy.write_back_clean;
  if (can_drop) {
    allocator_.Free(s.alloc_offset, meta.bytes);
    resident_.erase(victim);
    IndexRemove(victim);
    s.residency = Residency::kNone;
    s.device = -1;
    s.alloc_offset = -1;
    counters_.clean_drops[static_cast<int>(meta.cls)] += meta.bytes;
    system_->NoteChurn(victim, device_index_, ChurnKind::kEvictCleanDrop, meta.bytes);
    return true;
  }

  // Write-back (LMS-style always, or a dirty tensor under any policy).
  s.residency = Residency::kSwappingOut;
  ++evictions_in_flight_;
  counters_.swap_out[static_cast<int>(meta.cls)] += meta.bytes;
  system_->NoteChurn(victim, device_index_, ChurnKind::kEvictWriteBack, meta.bytes);
  OneShotEvent* done = system_->transfers().StartTransfer(device_node_, host_node_,
                                                          meta.bytes, TransferKind::kSwapOut);
  done->OnFired([this, victim] {
    TensorRegistry& registry = system_->registry();
    TensorState& state = registry.mutable_state(victim);
    const TensorMeta& m = registry.meta(victim);
    HCHECK(state.residency == Residency::kSwappingOut);
    allocator_.Free(state.alloc_offset, m.bytes);
    resident_.erase(victim);
    IndexRemove(victim);
    state.residency = Residency::kNone;
    state.device = -1;
    state.alloc_offset = -1;
    state.host_valid = true;
    state.dirty = false;
    --evictions_in_flight_;
    system_->SchedulePump(device_index_);
    system_->WakeTensorWaiters(victim);
  });
  return true;
}

void MemoryManager::BeginSwapIn(TensorId id, Bytes offset) {
  TensorRegistry& reg = system_->registry();
  TensorState& s = reg.mutable_state(id);
  const TensorMeta& meta = reg.meta(id);
  s.residency = Residency::kSwappingIn;
  s.device = device_index_;
  s.alloc_offset = offset;
  resident_.insert(id);
  IndexAdd(id);
  counters_.swap_in[static_cast<int>(meta.cls)] += meta.bytes;
  system_->NoteChurn(id, device_index_, ChurnKind::kSwapIn, meta.bytes);
  NoteUsage();
  system_->NoteInboundStart(device_index_);
  OneShotEvent* done = system_->transfers().StartTransfer(host_node_, device_node_, meta.bytes,
                                                          TransferKind::kSwapIn);
  done->OnFired([this, id] {
    system_->NoteInboundEnd(device_index_);
    TensorRegistry& registry = system_->registry();
    TensorState& state = registry.mutable_state(id);
    HCHECK(state.residency == Residency::kSwappingIn);
    state.residency = Residency::kResident;
    state.dirty = false;
    state.lru_tick = registry.NextLruTick();
    IndexTickChange(id);
    system_->SchedulePump(device_index_);
    system_->WakeTensorWaiters(id);
  });
}

void MemoryManager::BeginPeerFetch(TensorId id, Bytes offset, MemoryManager* peer) {
  TensorRegistry& reg = system_->registry();
  TensorState& s = reg.mutable_state(id);
  const TensorMeta& meta = reg.meta(id);
  const Bytes peer_offset = s.alloc_offset;
  const int peer_device = s.device;
  HCHECK_EQ(peer_device, peer->device_index_);

  // The tensor now logically belongs to this device. The source allocation is released at
  // transfer start: a relocation-safe simplification (the peer may not reuse-and-corrupt it
  // in the simulation, since data never physically exists) that keeps no raw offsets alive
  // across defragmentation.
  peer->resident_.erase(id);
  peer->IndexRemove(id);
  peer->allocator_.Free(peer_offset, meta.bytes);
  // The peer just gained free memory; its wakeup rides the pump pass already in progress
  // (peer fetches only start from inside a pump), exactly like the pre-indexed full sweep.
  system_->MarkDeviceDirty(peer->device_index_);
  s.residency = Residency::kSwappingIn;
  s.device = device_index_;
  s.alloc_offset = offset;
  resident_.insert(id);
  IndexAdd(id);
  counters_.p2p_in[static_cast<int>(meta.cls)] += meta.bytes;
  system_->NoteChurn(id, device_index_, ChurnKind::kP2pIn, meta.bytes);
  NoteUsage();

  system_->NoteInboundStart(device_index_);
  OneShotEvent* done = system_->transfers().StartTransfer(peer->device_node_, device_node_,
                                                          meta.bytes, TransferKind::kPeerToPeer);
  done->OnFired([this, id] {
    system_->NoteInboundEnd(device_index_);
    TensorRegistry& registry = system_->registry();
    TensorState& state = registry.mutable_state(id);
    HCHECK(state.residency == Residency::kSwappingIn);
    state.residency = Residency::kResident;
    state.lru_tick = registry.NextLruTick();
    IndexTickChange(id);
    system_->SchedulePump(device_index_);
    system_->WakeTensorWaiters(id);
  });
}

void MemoryManager::BeginStagedFetchFromPeer(TensorId id, MemoryManager* peer) {
  TensorRegistry& reg = system_->registry();
  TensorState& s = reg.mutable_state(id);
  const TensorMeta& meta = reg.meta(id);
  const AcquireHandle handle = pending_.front().handle;

  auto release_issue = [this, handle, id] {
    for (Pending& pending : pending_) {
      if (pending.handle == handle) {
        pending.issued.erase(id);
      }
    }
    system_->SchedulePump(device_index_);
  };

  if (!s.dirty && s.host_valid) {
    // Host already has a valid copy; the owner just drops its replica (no DMA). Note this
    // still differs from p2p: the data must be *re-uploaded* from host over the uplink.
    peer->allocator_.Free(s.alloc_offset, meta.bytes);
    peer->resident_.erase(id);
    peer->IndexRemove(id);
    s.residency = Residency::kNone;
    s.device = -1;
    s.alloc_offset = -1;
    system_->MarkDeviceDirty(peer->device_index_);  // freed memory; rides release_issue's pump
    release_issue();
    return;
  }

  s.residency = Residency::kSwappingOut;
  ++peer->evictions_in_flight_;
  peer->counters_.swap_out[static_cast<int>(meta.cls)] += meta.bytes;
  system_->NoteChurn(id, peer->device_index_, ChurnKind::kPeerStageWriteBack, meta.bytes);
  OneShotEvent* done = system_->transfers().StartTransfer(
      peer->device_node_, peer->host_node_, meta.bytes, TransferKind::kSwapOut);
  done->OnFired([this, id, peer, release_issue] {
    TensorRegistry& registry = system_->registry();
    TensorState& state = registry.mutable_state(id);
    const TensorMeta& m = registry.meta(id);
    HCHECK(state.residency == Residency::kSwappingOut);
    peer->allocator_.Free(state.alloc_offset, m.bytes);
    peer->resident_.erase(id);
    peer->IndexRemove(id);
    state.residency = Residency::kNone;
    state.device = -1;
    state.alloc_offset = -1;
    state.host_valid = true;
    state.dirty = false;
    --peer->evictions_in_flight_;
    system_->SchedulePump(peer->device_index_);
    system_->WakeTensorWaiters(id);
    release_issue();
  });
}

void MemoryManager::NoteUsage() {
  counters_.high_water = std::max(counters_.high_water, allocator_.used_bytes());
}

// ---- Indexed victim selection maintenance --------------------------------------------------

void MemoryManager::LruLink(TensorId id) {
  const std::size_t idx = static_cast<std::size_t>(id);
  if (idx >= lru_linked_.size()) {
    lru_prev_.resize(idx + 1, kInvalidTensor);
    lru_next_.resize(idx + 1, kInvalidTensor);
    lru_linked_.resize(idx + 1, 0);
  }
  HCHECK(lru_linked_[idx] == 0) << "tensor " << id << " double-linked on device "
                                << device_index_;
  lru_linked_[idx] = 1;
  ++lru_size_;
  lru_prev_[idx] = lru_tail_;
  lru_next_[idx] = kInvalidTensor;
  if (lru_tail_ != kInvalidTensor) {
    lru_next_[static_cast<std::size_t>(lru_tail_)] = id;
  } else {
    lru_head_ = id;
  }
  lru_tail_ = id;
}

void MemoryManager::LruUnlink(TensorId id) {
  const std::size_t idx = static_cast<std::size_t>(id);
  HCHECK(idx < lru_linked_.size() && lru_linked_[idx] != 0)
      << "eviction index out of sync: tensor " << id << " not linked on device "
      << device_index_;
  lru_linked_[idx] = 0;
  --lru_size_;
  const TensorId prev = lru_prev_[idx];
  const TensorId next = lru_next_[idx];
  if (prev != kInvalidTensor) {
    lru_next_[static_cast<std::size_t>(prev)] = next;
  } else {
    lru_head_ = next;
  }
  if (next != kInvalidTensor) {
    lru_prev_[static_cast<std::size_t>(next)] = prev;
  } else {
    lru_tail_ = prev;
  }
}

void MemoryManager::IndexAdd(TensorId id) {
  LruLink(id);
  LookaheadPush(id);  // no-op for kSwappingIn members; their landing tick-bump pushes
}

void MemoryManager::IndexRemove(TensorId id) {
  LruUnlink(id);
  // Any heap entries for `id` are now stale and get discarded when they surface.
}

void MemoryManager::IndexTickChange(TensorId id) {
  // The new tick is a fresh global maximum, so move-to-back keeps ascending-tick order.
  LruUnlink(id);
  LruLink(id);
  LookaheadPush(id);
}

void MemoryManager::LookaheadPush(TensorId id) {
  if (system_->policy().eviction != EvictionPolicy::kLookahead) {
    return;
  }
  const NextUseFn& oracle = system_->next_use_oracle();
  if (oracle == nullptr) {
    return;  // SetNextUseOracle rebuilds the heap when one arrives
  }
  const TensorState& s = system_->registry().state(id);
  if (s.residency != Residency::kResident) {
    return;  // only kResident tensors are candidates; in-flight ones push on landing
  }
  if (s.pin_count > 0) {
    // Not a candidate, and the unpin that makes it one bumps the tick (Release) or pushes
    // explicitly (CancelHead), so a current key will exist the moment it matters. Grant
    // touches in particular would otherwise flood the heap with born-stale entries.
    return;
  }
  const bool drop_is_free = !system_->policy().write_back_clean;
  const bool clean = !s.dirty && s.host_valid && drop_is_free;
  const std::uint64_t next = oracle(id, device_index_);
  constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
  lookahead_heap_.push(LookaheadEntry{clean && next == kNever, next, clean, s.lru_tick, id});
}

void MemoryManager::RebuildLookaheadIndex() {
  lookahead_heap_ = decltype(lookahead_heap_){};
  for (TensorId id : resident_) {
    LookaheadPush(id);
  }
}

std::string MemoryManager::DebugCheckIndexConsistency() const {
  const TensorRegistry& reg = system_->registry();
  if (lru_size_ != resident_.size()) {
    return "device " + std::to_string(device_index_) + ": LRU list size " +
           std::to_string(lru_size_) + " != resident_ size " +
           std::to_string(resident_.size());
  }
  // Walk the list: every member must be tracked in resident_, and kResident members must
  // appear in strictly ascending lru_tick order (the PickVictimLru correctness invariant).
  std::size_t walked = 0;
  std::uint64_t last_resident_tick = 0;
  TensorId prev = kInvalidTensor;
  for (TensorId id = lru_head_; id != kInvalidTensor;
       id = lru_next_[static_cast<std::size_t>(id)]) {
    if (++walked > lru_size_) {
      return "device " + std::to_string(device_index_) + ": LRU list is cyclic";
    }
    if (lru_prev_[static_cast<std::size_t>(id)] != prev) {
      return "device " + std::to_string(device_index_) + ": LRU back-link of tensor " +
             std::to_string(id) + " is broken";
    }
    if (resident_.count(id) == 0) {
      return "device " + std::to_string(device_index_) + ": LRU member " +
             std::to_string(id) + " is not tracked as resident";
    }
    const TensorState& s = reg.state(id);
    if (s.residency == Residency::kResident) {
      if (s.lru_tick <= last_resident_tick && last_resident_tick != 0) {
        return "device " + std::to_string(device_index_) + ": LRU order violated at tensor " +
               std::to_string(id) + " (tick " + std::to_string(s.lru_tick) +
               " after tick " + std::to_string(last_resident_tick) + ")";
      }
      last_resident_tick = s.lru_tick;
    }
    prev = id;
  }
  if (walked != lru_size_) {
    return "device " + std::to_string(device_index_) + ": LRU list walk saw " +
           std::to_string(walked) + " members, expected " + std::to_string(lru_size_);
  }
  for (TensorId id : resident_) {
    const TensorState& s = reg.state(id);
    if (s.device != device_index_) {
      return "device " + std::to_string(device_index_) + ": resident tensor " +
             std::to_string(id) + " claims device " + std::to_string(s.device);
    }
    const std::size_t idx = static_cast<std::size_t>(id);
    if (idx >= lru_linked_.size() || lru_linked_[idx] == 0) {
      return "device " + std::to_string(device_index_) + ": resident tensor " +
             std::to_string(id) + " missing from the LRU list";
    }
  }
  return "";
}

// ---- MemorySystem --------------------------------------------------------------------------

MemorySystem::MemorySystem(Simulator* sim, TransferManager* transfers, TensorRegistry* registry,
                           const Topology* topology, const std::vector<Bytes>& gpu_capacities,
                           MemoryPolicy policy)
    : sim_(sim),
      transfers_(transfers),
      registry_(registry),
      topology_(topology),
      policy_(policy) {
  HCHECK_EQ(static_cast<int>(gpu_capacities.size()), topology->num_gpus());
  for (int g = 0; g < topology->num_gpus(); ++g) {
    managers_.push_back(std::make_unique<MemoryManager>(
        this, g, topology->gpu_node(g), topology->HostNodeForGpu(g),
        gpu_capacities[static_cast<std::size_t>(g)]));
  }
  dirty_.assign(gpu_capacities.size(), 0);
  inbound_.assign(gpu_capacities.size(), InboundBusy{});
}

void MemorySystem::NoteInboundStart(int device) {
  InboundBusy& busy = inbound_[static_cast<std::size_t>(device)];
  const SimTime now = sim_->now();
  if (busy.active > 0) {
    busy.seconds += now - busy.last_change;
  }
  ++busy.active;
  busy.last_change = now;
}

void MemorySystem::NoteInboundEnd(int device) {
  InboundBusy& busy = inbound_[static_cast<std::size_t>(device)];
  const SimTime now = sim_->now();
  HCHECK_GT(busy.active, 0);
  busy.seconds += now - busy.last_change;
  --busy.active;
  busy.last_change = now;
}

double MemorySystem::InboundBusySeconds(int device) const {
  const InboundBusy& busy = inbound_.at(static_cast<std::size_t>(device));
  if (busy.active > 0) {
    return busy.seconds + (sim_->now() - busy.last_change);
  }
  return busy.seconds;
}

void MemorySystem::NoteChurn(TensorId id, int device, ChurnKind kind, Bytes bytes) {
  const std::size_t idx = static_cast<std::size_t>(id);
  if (idx >= churn_.size()) {
    churn_.resize(idx + 1);
  }
  TensorChurnCounters& churn = churn_[idx];
  switch (kind) {
    case ChurnKind::kSwapIn:
      ++churn.swap_ins;
      churn.swap_in_bytes += bytes;
      break;
    case ChurnKind::kEvictCleanDrop:
      ++churn.clean_drops;
      churn.clean_drop_bytes += bytes;
      break;
    case ChurnKind::kEvictWriteBack:
    case ChurnKind::kPeerStageWriteBack:
      ++churn.write_backs;
      churn.swap_out_bytes += bytes;
      break;
    case ChurnKind::kP2pIn:
      ++churn.p2p_ins;
      churn.p2p_in_bytes += bytes;
      break;
  }
  if (audit_eviction_) {
    churn_log_.push_back(ChurnEvent{id, device, kind, bytes});
  }
}

void MemorySystem::NoteEviction(TensorId id) {
  const std::size_t idx = static_cast<std::size_t>(id);
  if (idx >= churn_.size()) {
    churn_.resize(idx + 1);
  }
  ++churn_[idx].evictions;
}

void MemorySystem::SetNextUseOracle(NextUseFn oracle) {
  next_use_ = std::move(oracle);
  // Heap keys embed oracle answers, so a new oracle invalidates every entry wholesale.
  for (auto& manager : managers_) {
    manager->RebuildLookaheadIndex();
  }
}

void MemorySystem::SchedulePumpAll() {
  for (char& d : dirty_) {
    d = 1;
  }
  EnsurePumpScheduled();
}

void MemorySystem::SchedulePump(int device) {
  MarkDeviceDirty(device);
  EnsurePumpScheduled();
}

void MemorySystem::MarkDeviceDirty(int device) {
  dirty_[static_cast<std::size_t>(device)] = 1;
}

void MemorySystem::MarkTensorWaiter(TensorId id, int device) {
  if (num_devices() > 64) {
    return;  // bitmask overflow: WakeTensorWaiters falls back to waking everyone
  }
  const std::size_t idx = static_cast<std::size_t>(id);
  if (idx >= tensor_waiters_.size()) {
    tensor_waiters_.resize(idx + 1, 0);
  }
  tensor_waiters_[idx] |= std::uint64_t{1} << static_cast<unsigned>(device);
}

void MemorySystem::WakeTensorWaiters(TensorId id) {
  if (num_devices() > 64) {
    SchedulePumpAll();
    return;
  }
  const std::size_t idx = static_cast<std::size_t>(id);
  if (idx >= tensor_waiters_.size() || tensor_waiters_[idx] == 0) {
    return;
  }
  std::uint64_t mask = tensor_waiters_[idx];
  tensor_waiters_[idx] = 0;
  for (int d = 0; mask != 0; ++d, mask >>= 1) {
    if ((mask & 1) != 0) {
      SchedulePump(d);
    }
  }
}

void MemorySystem::NoteTickChanged(TensorId id) {
  const TensorState& s = registry_->state(id);
  if (s.device < 0) {
    return;  // kNone/kDead: no device index tracks it
  }
  managers_[static_cast<std::size_t>(s.device)]->IndexTickChange(id);
  MarkDeviceDirty(s.device);
}

void MemorySystem::EnsurePumpScheduled() {
  if (pump_scheduled_) {
    return;
  }
  pump_scheduled_ = true;
  sim_->ScheduleAfter(0.0, [this] {
    pump_scheduled_ = false;
    PumpDirty();
  });
}

void MemorySystem::PumpDirty() {
  // Keep pumping until no device makes progress; a grant on one device can unblock another
  // (e.g. a p2p source became free). Only devices whose state changed since their last pump
  // are examined: PumpHead on unchanged state is a side-effect-free no-op, so skipping
  // clean devices preserves the exact grant order of the original full sweep. Bits set
  // without a pass of progress persist to the next scheduled pump, which is exactly when
  // the full sweep would next have examined those devices anyway.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& manager : managers_) {
      const std::size_t d = static_cast<std::size_t>(manager->device_index_);
      if (dirty_[d] == 0) {
        continue;
      }
      dirty_[d] = 0;
      while (manager->PumpHead()) {
        progress = true;
      }
    }
  }
}

std::vector<std::pair<TensorId, int>> MemorySystem::PinnedTensors() const {
  std::vector<std::pair<TensorId, int>> pinned;
  for (TensorId id = 0; id < registry_->size(); ++id) {
    const int pins = registry_->state(id).pin_count;
    if (pins != 0) {
      pinned.emplace_back(id, pins);
    }
  }
  return pinned;
}

Bytes MemorySystem::PinnedBytes() const {
  Bytes total = 0;
  for (TensorId id = 0; id < registry_->size(); ++id) {
    if (registry_->state(id).pin_count > 0) {
      total += registry_->meta(id).bytes;
    }
  }
  return total;
}

Status MemorySystem::CheckQuiescent() const {
  for (const auto& manager : managers_) {
    if (!manager->pending_.empty()) {
      return InternalError("device " + std::to_string(manager->device_index_) + " has " +
                           std::to_string(manager->pending_.size()) +
                           " pending acquisitions after the run");
    }
    if (!manager->held_.empty()) {
      return InternalError("device " + std::to_string(manager->device_index_) + " has " +
                           std::to_string(manager->held_.size()) +
                           " unreleased acquisitions after the run");
    }
    if (manager->evictions_in_flight_ != 0) {
      return InternalError("device " + std::to_string(manager->device_index_) +
                           " has write-backs in flight after the run");
    }
    if (!manager->cancelled_.empty()) {
      return InternalError("device " + std::to_string(manager->device_index_) + " has " +
                           std::to_string(manager->cancelled_.size()) +
                           " unreleased cancelled acquisitions after the run (best-effort "
                           "handles must still be Release()d, or the set grows forever)");
    }
    const std::string index_drift = manager->DebugCheckIndexConsistency();
    if (!index_drift.empty()) {
      return InternalError("eviction index out of sync after the run: " + index_drift);
    }
  }
  for (TensorId id = 0; id < registry_->size(); ++id) {
    const TensorState& state = registry_->state(id);
    if (state.pin_count != 0) {
      return InternalError("tensor " + registry_->meta(id).name + " leaked " +
                           std::to_string(state.pin_count) + " pins");
    }
    if (state.residency == Residency::kSwappingIn ||
        state.residency == Residency::kSwappingOut) {
      return InternalError("tensor " + registry_->meta(id).name +
                           " still in flight after the run");
    }
  }
  return Status::Ok();
}

OneShotEvent* MemorySystem::NewEvent() {
  events_.push_back(std::make_unique<OneShotEvent>(sim_));
  return events_.back().get();
}

Bytes MemorySystem::TotalSwapIn() const {
  Bytes total = 0;
  for (const auto& m : managers_) {
    total += m->counters().total_swap_in();
  }
  return total;
}

Bytes MemorySystem::TotalSwapOut() const {
  Bytes total = 0;
  for (const auto& m : managers_) {
    total += m->counters().total_swap_out();
  }
  return total;
}

Bytes MemorySystem::TotalSwapOutOf(TensorClass cls) const {
  Bytes total = 0;
  for (const auto& m : managers_) {
    total += m->counters().swap_out_of(cls);
  }
  return total;
}

Bytes MemorySystem::TotalSwapInOf(TensorClass cls) const {
  Bytes total = 0;
  for (const auto& m : managers_) {
    total += m->counters().swap_in_of(cls);
  }
  return total;
}

Bytes MemorySystem::TotalP2pIn() const {
  Bytes total = 0;
  for (const auto& m : managers_) {
    total += m->counters().total_p2p_in();
  }
  return total;
}

}  // namespace harmony
