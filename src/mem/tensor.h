// Tensor metadata and residency state machine.
//
// Tensors here are *descriptors* (name, size, class, lineage) — the timing engine never
// materializes payloads. The paper's Fig. 5(a) tensor classes are modelled explicitly so
// swap volume can be accounted per class (that is how bench_fig5 verifies the analytic
// model for weights while other tensors keep flowing).
//
// Residency: at any time a tensor has at most one device copy (moves, not replicas — DP
// weight replicas are distinct tensors) plus an optional valid host copy. The state machine:
//
//        kNone  --swap-in-->  kSwappingIn  -->  kResident
//        kResident --evict--> kSwappingOut -->  kNone (host_valid=true)
//        kResident --drop (clean, host_valid)--> kNone
//        kResident --p2p----> kSwappingIn on the destination device
//
#ifndef HARMONY_SRC_MEM_TENSOR_H_
#define HARMONY_SRC_MEM_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/units.h"

namespace harmony {

using TensorId = int;
inline constexpr TensorId kInvalidTensor = -1;

// Fig. 5(a) tensor classes. "Stashed" activations are kActivation tensors whose lifetime
// spans forward to backward.
enum class TensorClass : int {
  kInput = 0,           // training-data microbatch
  kWeight = 1,          // W
  kWeightGrad = 2,      // dW (accumulated across microbatches)
  kActivation = 3,      // X / Y, including stashes
  kActivationGrad = 4,  // dX / dY
  kOptimizerState = 5,  // K (momentum / Adam moments)
  kWorkspace = 6,       // framework scratch
};
inline constexpr int kNumTensorClasses = 7;

const char* TensorClassName(TensorClass cls);

enum class Residency : int {
  kNone = 0,        // no device copy (host copy iff host_valid)
  kSwappingIn = 1,  // transfer toward a device in flight
  kResident = 2,    // device copy valid
  kSwappingOut = 3, // eviction write-back in flight
  kDead = 4,        // freed; any use is a bug
};

struct TensorMeta {
  TensorId id = kInvalidTensor;
  std::string name;
  Bytes bytes = 0;
  TensorClass cls = TensorClass::kWorkspace;
  int layer = -1;       // producing layer, if any
  int microbatch = -1;  // owning microbatch, -1 for per-model state
  int replica_gpu = -1; // DP replica owner, -1 for unreplicated tensors
};

struct TensorState {
  Residency residency = Residency::kNone;
  int device = -1;           // device holding/receiving the copy, -1 iff kNone/kDead
  bool host_valid = false;   // a valid copy exists in host DRAM
  bool dirty = false;        // device copy diverges from host copy
  int pin_count = 0;         // pinned tensors cannot be evicted
  std::uint64_t lru_tick = 0;
  Bytes alloc_offset = -1;   // device allocator handle, -1 when unallocated
};

// Global id -> metadata/state store, shared by every MemoryManager in a machine.
class TensorRegistry {
 public:
  TensorRegistry() = default;
  TensorRegistry(const TensorRegistry&) = delete;
  TensorRegistry& operator=(const TensorRegistry&) = delete;

  // Creates a tensor; `host_valid` marks pre-existing host state (weights loaded from a
  // checkpoint, input batches staged by the data loader).
  TensorId Create(std::string name, Bytes bytes, TensorClass cls, bool host_valid,
                  int layer = -1, int microbatch = -1, int replica_gpu = -1);

  int size() const { return static_cast<int>(metas_.size()); }
  const TensorMeta& meta(TensorId id) const { return metas_.at(static_cast<std::size_t>(id)); }
  const TensorState& state(TensorId id) const {
    return states_.at(static_cast<std::size_t>(id));
  }
  TensorState& mutable_state(TensorId id) { return states_.at(static_cast<std::size_t>(id)); }

  std::uint64_t NextLruTick() { return ++lru_clock_; }

  // Total bytes across all tensors of `cls` (capacity planning / reports).
  Bytes TotalBytes(TensorClass cls) const;

 private:
  std::vector<TensorMeta> metas_;
  std::vector<TensorState> states_;
  std::uint64_t lru_clock_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_SRC_MEM_TENSOR_H_
