#include "src/mem/allocator.h"

#include "src/util/check.h"

namespace harmony {

DeviceAllocator::DeviceAllocator(Bytes capacity, Bytes alignment)
    : capacity_(capacity), alignment_(alignment) {
  HCHECK_GT(capacity, 0);
  HCHECK_GT(alignment, 0);
  free_[0] = capacity;
}

Bytes DeviceAllocator::Allocate(Bytes size) {
  HCHECK_GT(size, 0);
  const Bytes need = Align(size);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= need) {
      const Bytes offset = it->first;
      const Bytes length = it->second;
      free_.erase(it);
      if (length > need) {
        free_[offset + need] = length - need;
      }
      used_ += need;
      return offset;
    }
  }
  return -1;
}

void DeviceAllocator::Free(Bytes offset, Bytes size) {
  HCHECK_GE(offset, 0);
  const Bytes length = Align(size);
  auto [it, inserted] = free_.emplace(offset, length);
  HCHECK(inserted) << "double free at offset " << offset;
  used_ -= length;
  HCHECK_GE(used_, 0);

  // Coalesce with successor.
  auto next = std::next(it);
  if (next != free_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_.erase(it);
    }
  }
}

Bytes DeviceAllocator::largest_free_block() const {
  Bytes best = 0;
  for (const auto& [offset, length] : free_) {
    if (length > best) {
      best = length;
    }
  }
  return best;
}

}  // namespace harmony
