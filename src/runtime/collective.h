// Ring all-reduce on simulated links.
//
// Gradient reduction for data-parallel training. Participants rendezvous per group; once the
// last member arrives, the engine runs the standard ring algorithm: 2*(n-1) rounds in which
// every device simultaneously sends a 1/n chunk to its ring successor. Chunk transfers are
// real flows through the TransferManager, so all-reduce traffic contends with swap traffic
// on shared PCIe links exactly as NCCL does on the paper's testbed.
#ifndef HARMONY_SRC_RUNTIME_COLLECTIVE_H_
#define HARMONY_SRC_RUNTIME_COLLECTIVE_H_

#include <functional>
#include <map>
#include <vector>

#include "src/hw/transfer_manager.h"
#include "src/sim/simulator.h"

namespace harmony {

class CollectiveEngine {
 public:
  CollectiveEngine(Simulator* sim, TransferManager* transfers);

  // Registers that `device` reached the all-reduce for `group`, contributing `bytes` of
  // gradients, with `expected` total participants. `on_done` runs when the collective
  // completes on every member. All members must agree on `bytes` and `expected`.
  void Arrive(int group, int device_index, Bytes bytes, int expected,
              std::function<void()> on_done);

  Bytes total_bytes_moved() const { return total_bytes_moved_; }

 private:
  struct Group {
    int expected = 0;
    Bytes bytes = 0;
    std::vector<int> devices;
    std::vector<std::function<void()>> callbacks;
  };

  void RunRound(Group group_state, int round);

  Simulator* sim_;
  TransferManager* transfers_;
  std::map<int, Group> groups_;
  Bytes total_bytes_moved_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_COLLECTIVE_H_
