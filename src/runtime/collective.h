// Ring / hierarchical all-reduce on simulated links.
//
// Gradient reduction for data-parallel training. Participants rendezvous per group; once the
// last member arrives, the engine runs the standard ring algorithm: 2*(n-1) rounds in which
// every device simultaneously sends a 1/n chunk to its ring successor. Chunk transfers are
// real flows through the TransferManager, so all-reduce traffic contends with swap traffic
// on shared PCIe links exactly as NCCL does on the paper's testbed.
//
// When the replica set spans servers (DESIGN.md §12) and every server contributes the same
// member count, the engine switches to the hierarchical algorithm automatically:
//   1. intra-node ring reduce-scatter (k-1 rounds over the p2p/PCIe tier),
//   2. inter-node recursive-halving reduce-scatter + recursive-doubling all-gather across
//      node representatives (one tree per shard owner, crossing the NIC/rack tiers), and
//   3. intra-node ring all-gather (k-1 rounds).
// Uneven node membership falls back to the flat ring, byte-identical to the legacy path.
#ifndef HARMONY_SRC_RUNTIME_COLLECTIVE_H_
#define HARMONY_SRC_RUNTIME_COLLECTIVE_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/hw/transfer_manager.h"
#include "src/sim/simulator.h"

namespace harmony {

class CollectiveEngine {
 public:
  CollectiveEngine(Simulator* sim, TransferManager* transfers);

  // Registers that `device` reached the all-reduce for `group`, contributing `bytes` of
  // gradients, with `expected` total participants. `on_done` runs when the collective
  // completes on every member. All members must agree on `bytes` and `expected`.
  void Arrive(int group, int device_index, Bytes bytes, int expected,
              std::function<void()> on_done);

  Bytes total_bytes_moved() const { return total_bytes_moved_; }
  // Byte split of the hierarchical path: hops whose endpoints share a server vs. hops that
  // cross the NIC/rack fabric. Both zero when every group ran the flat ring.
  Bytes intra_node_bytes_moved() const { return intra_node_bytes_moved_; }
  Bytes inter_node_bytes_moved() const { return inter_node_bytes_moved_; }
  int hierarchical_groups_run() const { return hierarchical_groups_run_; }

 private:
  struct Group {
    int expected = 0;
    Bytes bytes = 0;
    std::vector<int> devices;
    std::vector<std::function<void()>> callbacks;
  };
  // One scripted transfer: devices are global GPU indices.
  struct Hop {
    int src_device = -1;
    int dst_device = -1;
    Bytes bytes = 0;
  };
  // A fully pre-planned collective: rounds run in order with a global barrier between them;
  // all hops within a round fly concurrently.
  struct Script {
    std::vector<std::vector<Hop>> rounds;
    std::vector<std::function<void()>> callbacks;
  };

  void RunRound(Group group_state, int round);
  // Builds and launches the two-level script when the group spans servers with equal
  // membership; returns false (leaving `group_state` intact) when not eligible.
  bool TryRunHierarchical(Group& group_state);
  void RunScriptedRound(std::shared_ptr<Script> script, std::size_t round);

  Simulator* sim_;
  TransferManager* transfers_;
  std::map<int, Group> groups_;
  Bytes total_bytes_moved_ = 0;
  Bytes intra_node_bytes_moved_ = 0;
  Bytes inter_node_bytes_moved_ = 0;
  int hierarchical_groups_run_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_COLLECTIVE_H_
