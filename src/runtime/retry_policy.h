#ifndef HARMONY_RUNTIME_RETRY_POLICY_H_
#define HARMONY_RUNTIME_RETRY_POLICY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "src/util/check.h"

namespace harmony {

// Configuration for the transfer retry policy (DESIGN.md §11). A transfer may be
// issued at most `max_attempts` times in total; the delay before re-issuing attempt
// n (1-based count of failures so far) is
//
//   min(base_delay_sec * 2^(n-1), max_delay_sec) * (1 - jitter_frac * u)
//
// where u in [0, 1) is a deterministic hash of (seed, stream id, n). Jitter shrinks
// the delay (never grows it) so the cap is a true upper bound, and because it is a
// pure function of the flow identity the whole backoff schedule is reproducible on
// the simulator clock at any --sim_threads.
struct RetryPolicyConfig {
  int max_attempts = 3;          // total attempts per transfer, including the first; >= 1
  double base_delay_sec = 1e-3;  // first backoff; > 0 and finite
  double max_delay_sec = 64e-3;  // cap on the exponential; >= base_delay_sec
  double jitter_frac = 0.5;      // fraction of the delay randomized away; in [0, 1)
  std::uint64_t seed = 0x5eed;   // jitter stream seed
};

class RetryPolicy {
 public:
  explicit RetryPolicy(const RetryPolicyConfig& config) : config_(config) {
    HCHECK(config.max_attempts >= 1)
        << "retry policy: max_attempts must be >= 1, got " << config.max_attempts;
    HCHECK(config.base_delay_sec > 0.0 && std::isfinite(config.base_delay_sec))
        << "retry policy: base_delay_sec must be finite and > 0, got "
        << config.base_delay_sec;
    HCHECK(config.max_delay_sec >= config.base_delay_sec &&
           std::isfinite(config.max_delay_sec))
        << "retry policy: max_delay_sec must be finite and >= base_delay_sec";
    HCHECK(config.jitter_frac >= 0.0 && config.jitter_frac < 1.0)
        << "retry policy: jitter_frac must be in [0, 1), got " << config.jitter_frac;
  }

  const RetryPolicyConfig& config() const { return config_; }

  // True once `failed_attempts` issues of the transfer have failed and the budget
  // allows no further re-issue.
  bool Exhausted(int failed_attempts) const {
    return failed_attempts >= config_.max_attempts;
  }

  // Backoff before re-issuing a transfer whose `attempt`-th issue just failed
  // (attempt is 1-based). Deterministic in (config, stream_id, attempt).
  double DelayFor(std::int64_t stream_id, int attempt) const {
    HCHECK(attempt >= 1) << "retry policy: attempt must be >= 1, got " << attempt;
    double delay = config_.base_delay_sec * std::ldexp(1.0, attempt - 1);
    delay = std::min(delay, config_.max_delay_sec);
    if (config_.jitter_frac > 0.0) {
      const double u = JitterU(stream_id, attempt);
      delay *= 1.0 - config_.jitter_frac * u;
    }
    return delay;
  }

 private:
  // SplitMix64 finalizer over (seed, stream, attempt) mapped to [0, 1).
  double JitterU(std::int64_t stream_id, int attempt) const {
    constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15;
    constexpr std::uint64_t kMix1 = 0xbf58476d1ce4e5b9;
    constexpr std::uint64_t kMix2 = 0x94d049bb133111eb;
    std::uint64_t x = config_.seed;
    x += kGamma * (static_cast<std::uint64_t>(stream_id) + 1);
    x += kMix1 * static_cast<std::uint64_t>(attempt);
    x ^= x >> 30;
    x *= kMix1;
    x ^= x >> 27;
    x *= kMix2;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
  }

  RetryPolicyConfig config_;
};

}  // namespace harmony

#endif  // HARMONY_RUNTIME_RETRY_POLICY_H_
