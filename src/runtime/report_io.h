// Report serialization: CSV (for plotting pipelines) and a markdown summary (for pasting
// into issues / EXPERIMENTS.md-style records).
#ifndef HARMONY_SRC_RUNTIME_REPORT_IO_H_
#define HARMONY_SRC_RUNTIME_REPORT_IO_H_

#include <string>

#include "src/runtime/metrics.h"
#include "src/util/status.h"

namespace harmony {

// One CSV row per iteration: iteration, start, end, duration, swap_in, swap_out, p2p,
// collective, plus per-class swap-in/out columns.
std::string ReportToCsv(const RunReport& report);

// Compact markdown: a header line, the steady-state summary, and a per-device table.
std::string ReportToMarkdown(const RunReport& report);

Status WriteReportCsv(const RunReport& report, const std::string& path);

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_REPORT_IO_H_
