// Report serialization: CSV (for plotting pipelines), a markdown summary (for pasting
// into issues / EXPERIMENTS.md-style records), and structured JSON (the observability
// export behind `harmony_sim --json`, schema in DESIGN.md §8).
#ifndef HARMONY_SRC_RUNTIME_REPORT_IO_H_
#define HARMONY_SRC_RUNTIME_REPORT_IO_H_

#include <string>

#include "src/runtime/metrics.h"
#include "src/util/status.h"

namespace harmony {

// One CSV row per iteration: iteration, start, end, duration, swap_in, swap_out, p2p,
// collective, plus per-class swap-in/out columns.
std::string ReportToCsv(const RunReport& report);

// Compact markdown: a header line, the steady-state summary, and a per-device table.
std::string ReportToMarkdown(const RunReport& report);

// Full structured export: run header, per-device wall-clock decomposition, per-link and
// per-node byte accounting, per-tensor churn, per-iteration stats, and the distilled
// bottleneck attribution. Deterministic byte-for-byte: fixed key order, integers as
// integers, doubles as shortest round-trip (%.17g trimmed) — the explain golden test
// byte-compares this output. Parse it back with util/json.h.
std::string ReportToJson(const RunReport& report);

Status WriteReportCsv(const RunReport& report, const std::string& path);
Status WriteReportJson(const RunReport& report, const std::string& path);

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_REPORT_IO_H_
