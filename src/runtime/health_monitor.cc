#include "src/runtime/health_monitor.h"

#include "src/util/check.h"

namespace harmony {

HealthMonitor::HealthMonitor(int num_devices, const HealthMonitorOptions& options)
    : options_(options),
      ewma_(static_cast<std::size_t>(num_devices), 1.0),
      observations_(static_cast<std::size_t>(num_devices), 0) {
  HCHECK(num_devices >= 1) << "health monitor: need at least one device";
  HCHECK(options.alpha > 0.0 && options.alpha <= 1.0)
      << "health monitor: alpha must be in (0, 1], got " << options.alpha;
  HCHECK(options.min_observations >= 1)
      << "health monitor: min_observations must be >= 1";
  HCHECK(options.threshold >= 0.0) << "health monitor: threshold must be >= 0";
}

void HealthMonitor::Observe(int device, double expected_sec, double actual_sec) {
  HCHECK(device >= 0 && device < static_cast<int>(ewma_.size()))
      << "health monitor: device " << device << " out of range";
  HCHECK(expected_sec > 0.0 && actual_sec > 0.0)
      << "health monitor: service times must be positive";
  const double ratio = actual_sec / expected_sec;
  const auto slot = static_cast<std::size_t>(device);
  auto& e = ewma_[slot];
  if (observations_[slot] == 0) {
    e = ratio;  // seed the EWMA with the first sample instead of the 1.0 prior
  } else {
    e += options_.alpha * (ratio - e);
  }
  ++observations_[slot];
}

bool HealthMonitor::IsStraggler(int device) const {
  if (options_.threshold <= 0.0) {
    return false;
  }
  const auto slot = static_cast<std::size_t>(device);
  return observations_[slot] >= options_.min_observations &&
         ewma_[slot] > options_.threshold;
}

}  // namespace harmony
