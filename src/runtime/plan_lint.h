// Static plan linter ("harmony_lint"): validates a schedule before it runs.
//
// Harmony's bet is that aggressive schedule rewriting (input-batch grouping, JIT updates,
// p2p routing, task packing) transparently preserves training semantics. Plan::Validate()
// only checks raw structure; everything else used to be enforced dynamically — a broken
// schedule surfaced only if a seeded test happened to execute the broken path. LintPlan()
// closes that gap with a whole-plan static analysis that returns typed findings with task
// and tensor provenance, split into two tiers:
//
// Cheap (O(tasks + edges), run by Session::Run on every plan unless opted out):
//   - structure: ids consistent, every task queued exactly once on its own device, dep
//     references in range, dependency graph + per-device order acyclic;
//   - dangling references: every TensorId a task touches exists in the registry;
//   - pin balance: no tensor appears twice in one task's working set (the engine pins per
//     list entry and releases per list entry, so a duplicate double-pins and the release
//     leaves a pin behind — a guaranteed CheckQuiescent failure later), and free_after
//     entries are unique and belong to the freeing task's working set;
//   - collective rank matching: every all-reduce member names a group, members sit on
//     distinct devices with equal byte counts and payload kinds, member replica/shard
//     indices are dense {0..k-1}, groups reducing the same payload kind have equal
//     cardinality (a dropped participant leaves a hole in one of these), and the
//     rendezvous graph is deadlock-free (no two groups crossed in device orders — the
//     "some rank waits forever" class);
//   - feasibility: the largest single-task working set per device fits in that device's
//     capacity — otherwise the plan is infeasible even with perfect eviction.
//
// Deep (adds all-pairs reachability over the happens-before relation; harmony_sim --lint
// and plan_lint_test):
//   - cross-device WAR/WAW hazards: two tasks on different devices touch the same tensor,
//     at least one writes or frees it, and neither is ordered before the other — exactly
//     the race class JIT reordering can introduce (residency is move-not-copy, so even the
//     bytes moved depend on who wins);
//   - lifetime: a task uses a tensor after (or unordered with) the task that frees it, or
//     two tasks free the same tensor;
//   - uninitialized reads: a task fetches a tensor that no ordered predecessor ever wrote
//     and that had no initial host copy (the signature of a deleted producer edge);
//   - JIT-update legality: no reader sees a weight version older than the latest update
//     ordered before it — for every weight reader in iteration i, the newest update of
//     that weight from an earlier iteration must be ordered before the reader.
//
// plan_lint_test proves detection power by mutation: deleting a load-bearing ordering
// edge, swapping a device binding, or dropping an all-reduce participant from a valid plan
// must be flagged (>= 95% over 100 seeded mutations per class).
#ifndef HARMONY_SRC_RUNTIME_PLAN_LINT_H_
#define HARMONY_SRC_RUNTIME_PLAN_LINT_H_

#include <string>
#include <vector>

#include "src/graph/task.h"
#include "src/mem/tensor.h"
#include "src/util/units.h"

namespace harmony {

enum class LintSeverity { kError, kWarning };

enum class LintCheck {
  kStructure,          // ids, queue membership, dep ranges, acyclicity
  kDanglingReference,  // tensor ids outside the registry
  kPinBalance,         // duplicate pins in a working set / free-pairing violations
  kCollective,         // rank matching, group consistency, rendezvous deadlock
  kHierarchical,       // two-level (node) group structure: annotation consistency,
                       // per-node membership/byte balance, dense node coverage
  kFeasibility,        // single-task working set exceeds device capacity
  kCrossDeviceHazard,  // unordered cross-device write/write or read/write on one tensor
  kLifetime,           // use-after-free, double free, racy free
  kStaleWeightRead,    // reader sees an outdated weight version (JIT-update legality)
};

const char* LintCheckName(LintCheck check);
const char* LintSeverityName(LintSeverity severity);

// One finding, with provenance: the tasks involved (in the roles the message describes),
// the tensor at stake (kInvalidTensor when the finding is not about a tensor), and the
// device (-1 when not device-specific).
struct LintFinding {
  LintCheck check = LintCheck::kStructure;
  LintSeverity severity = LintSeverity::kError;
  std::string message;
  std::vector<TaskId> tasks;
  TensorId tensor = kInvalidTensor;
  int device = -1;
};

struct LintOptions {
  // Run the reachability-based checks (hazards, lifetime, uninitialized reads, weight
  // versions). Costs O(tasks^2 / 64) bits of memory and time; the cheap tier alone is
  // linear in the plan.
  bool deep = true;
  // Per-device capacities for the feasibility check; empty skips it.
  std::vector<Bytes> device_capacities;
  // Findings are capped (first-found wins) so a badly broken plan cannot produce a
  // quadratic report; the report records whether truncation happened.
  int max_findings = 256;
  // Deep checks are skipped (and the report marked) above this many tasks — the
  // reachability bitset would need tasks^2/8 bytes.
  int max_deep_tasks = 20000;
};

struct LintReport {
  std::vector<LintFinding> findings;
  std::string scheme;
  int num_tasks = 0;
  int num_devices = 0;
  bool deep_ran = false;    // deep tier executed (requested and under the size cap)
  bool truncated = false;   // max_findings hit; counts below are lower bounds

  int num_errors() const;
  int num_warnings() const;
  bool clean() const { return findings.empty(); }

  // Human-readable rendering: one line per finding ("ERROR [cross-device-hazard] ...")
  // plus a summary line; "clean" plans render as a single summary line.
  std::string Render() const;

  // Deterministic JSON export, schema "harmony-lint-report" v1:
  //   {"schema": "harmony-lint-report", "version": 1, "scheme": ..., "tasks": N,
  //    "devices": D, "deep": bool, "truncated": bool, "errors": E, "warnings": W,
  //    "findings": [{"check": ..., "severity": ..., "message": ..., "tasks": [...],
  //                  "tensor": id-or-null, "device": id-or-null}, ...]}
  // Parse it back with util/json.h.
  std::string ToJson() const;
};

// Lints `plan` against `registry`. Never fatal: structurally broken plans come back as
// findings (deep checks that need a sane structure are skipped once structure errors are
// present, since reachability over a cyclic graph is meaningless).
LintReport LintPlan(const Plan& plan, const TensorRegistry& registry,
                    const LintOptions& options = {});

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_PLAN_LINT_H_
