// Per-device memory *demand* analysis: the peak live-tensor footprint a plan would use on
// each device if memory were unbounded. Demand above physical capacity is what forces
// swapping; Fig. 2(c) plots exactly this quantity per pipeline stage against the 11 GB line.
#ifndef HARMONY_SRC_RUNTIME_DEMAND_H_
#define HARMONY_SRC_RUNTIME_DEMAND_H_

#include <vector>

#include "src/graph/task.h"
#include "src/mem/tensor.h"
#include "src/util/units.h"

namespace harmony {

// Walks the plan in a dependency-respecting order, tracking tensor liveness: a tensor
// becomes live on the device of the first task that touches it, migrates when a task on
// another device touches it, and dies at its free_after point. Returns per-device peaks.
std::vector<Bytes> ComputeMemoryDemand(const Plan& plan, const TensorRegistry& registry);

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_DEMAND_H_
