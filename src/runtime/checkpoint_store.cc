#include "src/runtime/checkpoint_store.h"

#include <cstring>

#include "src/util/check.h"

namespace harmony {

CheckpointStore::CheckpointStore(int keep) : keep_(keep) {
  HCHECK(keep >= 1) << "checkpoint store: keep must be >= 1, got " << keep;
}

void CheckpointStore::SetBases(int iteration_base, double time_base) {
  iteration_base_ = iteration_base;
  time_base_ = time_base;
}

void CheckpointStore::Commit(int local_iteration, double local_time, Bytes bytes) {
  CheckpointGeneration gen;
  gen.iteration = iteration_base_ + local_iteration;
  gen.time = time_base_ + local_time;
  gen.bytes = bytes;
  gen.digest = ComputeDigest(gen);
  ring_.push_back(gen);
  ++committed_;
  while (static_cast<int>(ring_.size()) > keep_) {
    ring_.pop_front();
  }
}

bool CheckpointStore::CorruptNewest() {
  if (ring_.empty()) {
    return false;
  }
  // Flip bits in the stored digest so re-derivation no longer matches.
  ring_.back().digest ^= 0xdeadbeefdeadbeefULL;
  return true;
}

const CheckpointGeneration* CheckpointStore::NewestValid() {
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->digest == ComputeDigest(*it)) {
      ++verified_ok_;
      return &*it;
    }
    ++corrupt_detected_;
  }
  return nullptr;
}

std::uint64_t CheckpointStore::ComputeDigest(const CheckpointGeneration& gen) {
  // FNV-1a over the generation identity; stands in for a payload checksum.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(gen.iteration));
  std::uint64_t time_bits = 0;
  static_assert(sizeof(time_bits) == sizeof(gen.time), "double must be 64-bit");
  std::memcpy(&time_bits, &gen.time, sizeof(time_bits));
  mix(time_bits);
  mix(static_cast<std::uint64_t>(gen.bytes));
  return h;
}

}  // namespace harmony
