#include "src/runtime/engine.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "src/util/logging.h"

namespace harmony {

Engine::Engine(Simulator* sim, const Machine* machine, MemorySystem* memory,
               TransferManager* transfers, CollectiveEngine* collective, const Plan* plan,
               EngineOptions options)
    : sim_(sim),
      machine_(machine),
      memory_(memory),
      transfers_(transfers),
      collective_(collective),
      plan_(plan),
      options_(options) {
  HCHECK_EQ(plan->num_devices(), machine->num_gpus());
  const Status valid = plan->Validate();
  HCHECK(valid.ok()) << valid.ToString();

  completion_.reserve(plan->tasks.size());
  for (std::size_t i = 0; i < plan->tasks.size(); ++i) {
    completion_.push_back(std::make_unique<OneShotEvent>(sim));
  }
  devices_.resize(static_cast<std::size_t>(plan->num_devices()));
  compute_lane_.reserve(static_cast<std::size_t>(plan->num_devices()));
  for (int d = 0; d < plan->num_devices(); ++d) {
    compute_lane_.push_back(sim->CreateLane("gpu" + std::to_string(d) + ".compute"));
  }
  device_busy_.assign(static_cast<std::size_t>(plan->num_devices()), 0.0);
  device_time_.assign(static_cast<std::size_t>(plan->num_devices()), DeviceTimeBreakdown{});
  dep_wait_start_.assign(static_cast<std::size_t>(plan->num_devices()), 0.0);
  acquire_start_.assign(static_cast<std::size_t>(plan->num_devices()), 0.0);
  inbound_mark_.assign(static_cast<std::size_t>(plan->num_devices()), 0.0);
  last_finish_.assign(static_cast<std::size_t>(plan->num_devices()), 0.0);
  if (options_.record_timeline) {
    transfers_->set_record_queue_timeline(true);
  }
  iteration_remaining_.assign(static_cast<std::size_t>(plan->num_iterations), 0);
  iteration_end_.assign(static_cast<std::size_t>(plan->num_iterations), 0.0);
  for (const Task& task : plan->tasks) {
    ++iteration_remaining_[static_cast<std::size_t>(task.iteration)];
    if (task.kind == TaskKind::kAllReduce) {
      ++collective_group_size_[task.collective_group];
    }
  }
  last_snapshot_ = TakeSnapshot();
  compute_scale_.assign(static_cast<std::size_t>(plan->num_devices()), 1.0);
  degraded_since_.assign(static_cast<std::size_t>(plan->num_devices()), 0.0);
  degraded_sec_.assign(static_cast<std::size_t>(plan->num_devices()), 0.0);
  if (options_.straggler_threshold > 0.0) {
    HealthMonitorOptions monitor_options;
    monitor_options.threshold = options_.straggler_threshold;
    monitor_ = std::make_unique<HealthMonitor>(plan->num_devices(), monitor_options);
  }

  // Build the next-use index and hand the memory system its lookahead oracle. The oracle is
  // harmless under LRU policies (never consulted).
  next_use_index_.resize(static_cast<std::size_t>(plan->num_devices()));
  for (int d = 0; d < plan->num_devices(); ++d) {
    const auto& order = plan->per_device_order[static_cast<std::size_t>(d)];
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const Task& task = plan->tasks[static_cast<std::size_t>(order[pos])];
      auto note = [&](const std::vector<TensorId>& ids) {
        for (TensorId id : ids) {
          next_use_index_[static_cast<std::size_t>(d)].AddUse(id, pos);
        }
      };
      note(task.working_set.fetch);
      note(task.working_set.accumulate);
      note(task.working_set.allocate);
    }
  }
  memory->SetNextUseOracle([this](TensorId tensor, int device) -> std::uint64_t {
    return next_use_index_[static_cast<std::size_t>(device)].NextUseAtOrAfter(
        tensor, devices_[static_cast<std::size_t>(device)].next_index);
  });
}

Engine::Snapshot Engine::TakeSnapshot() const {
  Snapshot snap;
  snap.swap_in_per_device.resize(static_cast<std::size_t>(plan_->num_devices()));
  snap.swap_out_per_device.resize(static_cast<std::size_t>(plan_->num_devices()));
  for (int d = 0; d < plan_->num_devices(); ++d) {
    const MemoryCounters& counters = memory_->manager(d).counters();
    for (int c = 0; c < kNumTensorClasses; ++c) {
      snap.swap_in_by_class[c] += counters.swap_in[c];
      snap.swap_out_by_class[c] += counters.swap_out[c];
    }
    snap.swap_in_per_device[static_cast<std::size_t>(d)] = counters.total_swap_in();
    snap.swap_out_per_device[static_cast<std::size_t>(d)] = counters.total_swap_out();
    snap.p2p += counters.total_p2p_in();
  }
  snap.collective = transfers_->bytes_by_kind(TransferKind::kCollective);
  return snap;
}

RunReport Engine::Run() {
  for (int d = 0; d < plan_->num_devices(); ++d) {
    StartNextTask(d);
  }
  if (options_.watchdog_timeout > 0.0) {
    watchdog_anchor_ = sim_->now();
    ArmWatchdog(0);
  }
  sim_->RunUntilIdle();
  if (!aborting_) {
    if (completed_tasks_ != static_cast<int>(plan_->tasks.size())) {
      ReportDeadlock();
    }
    const Status quiescent = memory_->CheckQuiescent();
    HCHECK(quiescent.ok()) << quiescent.ToString();
  }

  RunReport report;
  report.scheme = plan_->scheme;
  // Fault expiries and watchdog ticks can leave the sim clock past the last productive
  // event; failure-free runs keep the historical sim-idle makespan bit-for-bit.
  report.makespan = fault_mode() ? finish_time_ : sim_->now();
  report.failed = failed_;
  report.failure_kind = failure_kind_;
  report.failed_device = failed_device_;
  report.failure_time = failure_time_;
  report.checkpoints_committed = checkpoints_committed_;
  report.checkpoint_bytes = checkpoint_bytes_;
  report.last_checkpoint_iteration = last_checkpoint_iteration_;
  report.last_checkpoint_time = last_checkpoint_time_;
  report.flows_retried = transfers_->flows_retried();
  report.retry_exhausted = transfers_->retry_exhausted();
  report.retry_backoff_sec = transfers_->retry_backoff_sec();
  report.straggler_device = failure_kind_ == "gpu-straggler" ? failed_device_ : -1;
  for (int d = 0; d < plan_->num_devices(); ++d) {
    const std::size_t slot = static_cast<std::size_t>(d);
    double degraded = degraded_sec_[slot];
    if (compute_scale_[slot] < 1.0) {
      // Window still open at the end of the run: close it at the reported makespan.
      degraded += std::max(report.makespan - degraded_since_[slot], 0.0);
    }
    degraded = std::min(std::max(degraded, 0.0), std::max(report.makespan, 0.0));
    report.device_degraded_sec.push_back(degraded);
    report.degraded_sec += degraded;
  }
  if (options_.checkpoint_store != nullptr) {
    report.ckpt_generations = options_.checkpoint_store->resident();
    report.ckpt_verified_ok = options_.checkpoint_store->verified_ok();
    report.ckpt_corrupt_detected = options_.checkpoint_store->corrupt_detected();
  }
  report.samples_per_iteration = plan_->samples_per_iteration;
  report.iterations = iteration_stats_;
  report.device_busy = device_busy_;
  // Close each device's breakdown with its idle tail. On failure-free runs every other
  // bucket was accumulated between consecutive lifecycle points since t = 0, so the six
  // buckets now sum to makespan (metrics_test holds this for every scheduler); aborted
  // runs leave windows open and make no conservation claim.
  report.device_time = device_time_;
  for (int d = 0; d < plan_->num_devices(); ++d) {
    const double idle = report.makespan - last_finish_[static_cast<std::size_t>(d)];
    report.device_time[static_cast<std::size_t>(d)].of(TimeClass::kIdle) =
        std::max(idle, 0.0);
  }
  for (int d = 0; d < plan_->num_devices(); ++d) {
    const MemoryCounters& counters = memory_->manager(d).counters();
    report.device_swap_in.push_back(counters.total_swap_in());
    report.device_swap_out.push_back(counters.total_swap_out());
    report.device_high_water.push_back(counters.high_water);
    report.device_evictions.push_back(counters.evictions);
    report.device_defrags.push_back(counters.defrags);
    report.total_swap_in += counters.total_swap_in();
    report.total_swap_out += counters.total_swap_out();
    report.total_p2p += counters.total_p2p_in();
  }
  report.total_collective = transfers_->bytes_by_kind(TransferKind::kCollective);
  const Topology& topo = transfers_->topology();
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const LinkStats& stats = transfers_->link_stats(l);
    RunReport::LinkUsage usage;
    usage.name = topo.node(topo.link(l).src).name + " -> " + topo.node(topo.link(l).dst).name;
    usage.bytes = stats.bytes_carried;
    usage.busy_time = stats.busy_time;
    usage.utilization = report.makespan > 0.0 ? stats.busy_time / report.makespan : 0.0;
    usage.avg_queue_depth = report.makespan > 0.0 ? stats.flow_seconds / report.makespan : 0.0;
    usage.max_queue_depth = stats.max_queue_depth;
    usage.flows = stats.flows;
    for (int k = 0; k < kNumTransferKinds; ++k) {
      usage.bytes_by_kind[k] = stats.bytes_by_kind[k];
    }
    report.links.push_back(std::move(usage));
  }
  // Per-tier aggregation, only for machines that actually have a network tier: single-server
  // topologies (every link kPcie) report no tiers, keeping legacy output byte-identical.
  bool has_network_tier = false;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).tier != LinkTier::kPcie) {
      has_network_tier = true;
      break;
    }
  }
  if (has_network_tier) {
    report.tiers.resize(static_cast<std::size_t>(kNumLinkTiers));
    for (int t = 0; t < kNumLinkTiers; ++t) {
      report.tiers[static_cast<std::size_t>(t)].name =
          LinkTierName(static_cast<LinkTier>(t));
    }
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      const LinkStats& stats = transfers_->link_stats(l);
      RunReport::TierUsage& tier =
          report.tiers[static_cast<std::size_t>(topo.link(l).tier)];
      tier.bytes += stats.bytes_carried;
      tier.busy_time += stats.busy_time;
      tier.flows += stats.flows;
      for (int k = 0; k < kNumTransferKinds; ++k) {
        tier.bytes_by_kind[k] += stats.bytes_by_kind[k];
      }
    }
  }
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    const NodeIoStats& io = transfers_->node_io(n);
    RunReport::NodeIo node;
    node.node = topo.node(n).name;
    for (int k = 0; k < kNumTransferKinds; ++k) {
      node.in_by_kind[k] = io.in_by_kind[k];
      node.out_by_kind[k] = io.out_by_kind[k];
    }
    report.node_io.push_back(std::move(node));
  }
  const TensorRegistry& registry = memory_->registry();
  const std::vector<TensorChurnCounters>& churn = memory_->tensor_churn();
  for (std::size_t t = 0; t < churn.size(); ++t) {
    const TensorChurnCounters& c = churn[t];
    if (!c.any()) {
      continue;
    }
    const TensorMeta& meta = registry.meta(static_cast<TensorId>(t));
    RunReport::TensorChurn entry;
    entry.tensor = meta.id;
    entry.name = meta.name;
    entry.cls = TensorClassName(meta.cls);
    entry.bytes = meta.bytes;
    entry.evictions = c.evictions;
    entry.clean_drops = c.clean_drops;
    entry.write_backs = c.write_backs;
    entry.swap_ins = c.swap_ins;
    entry.p2p_ins = c.p2p_ins;
    entry.swap_in_bytes = c.swap_in_bytes;
    entry.swap_out_bytes = c.swap_out_bytes;
    entry.p2p_in_bytes = c.p2p_in_bytes;
    entry.clean_drop_bytes = c.clean_drop_bytes;
    report.tensor_churn.push_back(std::move(entry));
  }
  if (options_.record_timeline) {
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      std::vector<RunReport::LinkQueuePoint> points;
      for (const LinkQueueSample& sample : transfers_->queue_timeline(l)) {
        points.push_back({sample.time, sample.depth});
      }
      report.link_queue_timeline.push_back(std::move(points));
    }
  }
  return report;
}

void Engine::StartNextTask(int device) {
  if (aborting_) {
    return;  // recovery restarts from the last checkpoint; this segment is done
  }
  DeviceState& state = devices_[static_cast<std::size_t>(device)];
  const auto& order = plan_->per_device_order[static_cast<std::size_t>(device)];
  if (state.next_index >= order.size()) {
    return;  // device drained
  }
  const TaskId task_id = order[state.next_index];
  const Task& task = plan_->tasks[static_cast<std::size_t>(task_id)];
  dep_wait_start_[static_cast<std::size_t>(device)] = sim_->now();

  auto deps_done = std::make_shared<CountdownEvent>(sim_, static_cast<int>(task.deps.size()));
  for (TaskId dep : task.deps) {
    completion_[static_cast<std::size_t>(dep)]->OnFired([deps_done] { deps_done->Arrive(); });
  }
  deps_done->OnFired([this, device, task_id] { AcquireAndRun(device, task_id); });
}

void Engine::AcquireAndRun(int device, TaskId task_id) {
  if (aborting_) {
    return;  // deps fired during the abort drain; don't pin new working sets
  }
  const Task& task = plan_->tasks[static_cast<std::size_t>(task_id)];
  MemoryManager& manager = memory_->manager(device);

  // Dependency wait ends, acquire wait begins. The inbound-busy sample taken here is
  // differenced at grant time to split the wait into transfer vs memory stall.
  const std::size_t slot = static_cast<std::size_t>(device);
  const double now = sim_->now();
  device_time_[slot].of(TimeClass::kStallDependency) += now - dep_wait_start_[slot];
  acquire_start_[slot] = now;
  inbound_mark_[slot] = memory_->InboundBusySeconds(device);

  auto it = prefetched_.find(task_id);
  if (it != prefetched_.end()) {
    const MemoryManager::Acquisition acq = it->second;
    prefetched_.erase(it);
    acq.ready->OnFired([this, device, task_id, acq] {
      MemoryManager& mgr = memory_->manager(device);
      if (mgr.WasCancelled(acq.handle)) {
        mgr.Release(acq.handle);  // clears the cancellation record
        const MemoryManager::Acquisition fresh =
            mgr.Acquire(plan_->tasks[static_cast<std::size_t>(task_id)].working_set);
        fresh.ready->OnFired(
            [this, device, task_id, fresh] { RunWithHandle(device, task_id, fresh.handle); });
      } else {
        RunWithHandle(device, task_id, acq.handle);
      }
    });
    return;
  }

  const MemoryManager::Acquisition acq = manager.Acquire(task.working_set);
  acq.ready->OnFired(
      [this, device, task_id, acq] { RunWithHandle(device, task_id, acq.handle); });
}

void Engine::RunWithHandle(int device, TaskId task_id,
                           MemoryManager::AcquireHandle handle) {
  const Task& task = plan_->tasks[static_cast<std::size_t>(task_id)];
  const std::size_t slot = static_cast<std::size_t>(device);
  // Acquire wait ends: split [acquire_start, now) into the part with inbound DMA in flight
  // (stall-on-transfer) and the remainder (stall-on-memory-acquire). The split is exact by
  // construction — the integral difference is the in-window inbound busy time — with a
  // clamp only against FP round-off.
  {
    const double now = sim_->now();
    const double window = now - acquire_start_[slot];
    double transfer = memory_->InboundBusySeconds(device) - inbound_mark_[slot];
    transfer = std::min(std::max(transfer, 0.0), window);
    device_time_[slot].of(TimeClass::kStallTransfer) += transfer;
    device_time_[slot].of(TimeClass::kStallMemory) += window - transfer;
  }
  // The working set is resident; overlap the next task's swap-ins with this compute.
  ++devices_[slot].next_index;
  MaybePrefetch(device);

  const double start = sim_->now();
  if (task.kind == TaskKind::kAllReduce) {
    collective_->Arrive(task.collective_group, device, task.collective_bytes,
                        collective_group_size_.at(task.collective_group),
                        [this, device, task_id, handle, start] {
                          device_time_[static_cast<std::size_t>(device)].of(
                              TimeClass::kStallCollective) += sim_->now() - start;
                          if (options_.record_timeline) {
                            timeline_.push_back(TaskTrace{task_id, start, sim_->now()});
                          }
                          FinishTask(device, task_id, handle);
                        });
    return;
  }

  // A healthy device multiplies by exactly 1.0, which is bitwise identity — the
  // failure-free path stays byte-identical to the pre-resilience engine.
  const double rate = machine_->gpus[static_cast<std::size_t>(device)].effective_flops() *
                      compute_scale_[slot];
  HCHECK_GT(rate, 0.0);
  const double duration = task.flops / rate;
  if (monitor_ != nullptr && duration > 0.0) {
    const double expected =
        task.flops / machine_->gpus[static_cast<std::size_t>(device)].effective_flops();
    monitor_->Observe(device, expected, duration);
    if (!straggler_pending_ && plan_->num_devices() > 1 && monitor_->IsStraggler(device)) {
      // Defer the graceful degradation to the next iteration boundary so the segment
      // closes on complete iterations (no rollback needed).
      straggler_pending_ = true;
      straggler_device_ = device;
    }
  }
  device_busy_[static_cast<std::size_t>(device)] += duration;
  device_time_[slot].of(TimeClass::kCompute) += duration;
  sim_->ScheduleAfter(compute_lane_[static_cast<std::size_t>(device)], duration,
                      [this, device, task_id, handle, start] {
    if (options_.record_timeline) {
      timeline_.push_back(TaskTrace{task_id, start, sim_->now()});
    }
    FinishTask(device, task_id, handle);
  });
}

void Engine::FinishTask(int device, TaskId task_id, MemoryManager::AcquireHandle handle) {
  const Task& task = plan_->tasks[static_cast<std::size_t>(task_id)];
  MemoryManager& manager = memory_->manager(device);
  for (TensorId id : task.dirty_outputs) {
    manager.MarkDirty(id);
  }
  manager.Release(handle);
  // Free end-of-life tensors synchronously, before any pump can start evicting them.
  for (TensorId id : task.free_after) {
    manager.FreeTensor(id);
  }
  ++completed_tasks_;
  finish_time_ = sim_->now();
  last_finish_[static_cast<std::size_t>(device)] = sim_->now();
  completion_[static_cast<std::size_t>(task_id)]->Fire();

  auto& remaining = iteration_remaining_[static_cast<std::size_t>(task.iteration)];
  HCHECK_GT(remaining, 0);
  if (--remaining == 0) {
    OnIterationComplete(task.iteration);
  }
  StartNextTask(device);
}

void Engine::MaybePrefetch(int device) {
  if (!options_.prefetch) {
    return;
  }
  const DeviceState& state = devices_[static_cast<std::size_t>(device)];
  const auto& order = plan_->per_device_order[static_cast<std::size_t>(device)];
  if (state.next_index >= order.size()) {
    return;
  }
  const TaskId next_id = order[state.next_index];
  if (prefetched_.count(next_id) > 0) {
    return;
  }
  const Task& next = plan_->tasks[static_cast<std::size_t>(next_id)];
  for (TaskId dep : next.deps) {
    if (!completion_[static_cast<std::size_t>(dep)]->fired()) {
      return;  // inputs not produced yet; prefetching would fetch stale/absent data
    }
  }
  // Size heuristic: only prefetch when the bytes we would bring fit in currently-free
  // memory. The acquisition is best-effort anyway, so this is purely to avoid useless churn.
  MemoryManager& manager = memory_->manager(device);
  const TensorRegistry& registry = memory_->registry();
  Bytes needed = next.working_set.scratch_bytes;
  auto add_missing = [&](const std::vector<TensorId>& ids) {
    for (TensorId id : ids) {
      if (!manager.IsResidentHere(id)) {
        needed += registry.meta(id).bytes;
      }
    }
  };
  add_missing(next.working_set.fetch);
  add_missing(next.working_set.accumulate);
  add_missing(next.working_set.allocate);
  if (needed > manager.capacity() - manager.used_bytes()) {
    return;
  }
  prefetched_.emplace(next_id, manager.Acquire(next.working_set, /*best_effort=*/true));
}

void Engine::OnIterationComplete(int iteration) {
  const Snapshot snap = TakeSnapshot();
  IterationStats stats;
  stats.iteration = iteration;
  stats.start_time = last_iteration_end_;
  stats.end_time = sim_->now();
  for (int c = 0; c < kNumTensorClasses; ++c) {
    stats.swap_in_by_class[c] = snap.swap_in_by_class[c] - last_snapshot_.swap_in_by_class[c];
    stats.swap_out_by_class[c] =
        snap.swap_out_by_class[c] - last_snapshot_.swap_out_by_class[c];
    stats.swap_in += stats.swap_in_by_class[c];
    stats.swap_out += stats.swap_out_by_class[c];
  }
  stats.swap_in_per_device.resize(snap.swap_in_per_device.size());
  stats.swap_out_per_device.resize(snap.swap_out_per_device.size());
  for (std::size_t d = 0; d < snap.swap_in_per_device.size(); ++d) {
    stats.swap_in_per_device[d] =
        snap.swap_in_per_device[d] - last_snapshot_.swap_in_per_device[d];
    stats.swap_out_per_device[d] =
        snap.swap_out_per_device[d] - last_snapshot_.swap_out_per_device[d];
  }
  stats.p2p_in = snap.p2p - last_snapshot_.p2p;
  stats.collective_bytes = snap.collective - last_snapshot_.collective;
  iteration_stats_.push_back(std::move(stats));
  last_snapshot_ = snap;
  last_iteration_end_ = sim_->now();
  MaybeCheckpoint(iteration);
  if (straggler_pending_ && !aborting_ && iteration + 1 < plan_->num_iterations) {
    // Graceful degradation: end the segment on this complete iteration boundary. The
    // recovery coordinator resumes from iteration + 1 without touching the checkpoint.
    // On the final iteration (or a single-device plan) the run just completes degraded.
    aborting_ = true;
    failed_ = true;
    failure_kind_ = "gpu-straggler";
    failed_device_ = straggler_device_;
    failure_time_ = sim_->now();
    finish_time_ = std::max(finish_time_, sim_->now());
  }
}

void Engine::MaybeCheckpoint(int iteration) {
  if (options_.checkpoint_every <= 0 || aborting_) {
    return;
  }
  if ((iteration + 1) % options_.checkpoint_every != 0 ||
      (iteration + 1 >= plan_->num_iterations && !options_.checkpoint_final)) {
    return;  // no checkpoint after the final iteration — the run is the checkpoint
            // (unless checkpoint_final: a preemption drain ends *with* the commit)
  }
  // Copy out every device's diverged weight/optimizer bytes. Tensors already swapped out
  // (or never touched) have a valid host copy and cost nothing — that is what makes the
  // checkpoint "lightweight" relative to a full model dump.
  const Topology& topo = transfers_->topology();
  std::vector<std::pair<int, Bytes>> per_device;
  Bytes total = 0;
  for (int d = 0; d < plan_->num_devices(); ++d) {
    if (transfers_->NodeFailed(topo.gpu_node(d))) {
      continue;
    }
    const MemoryManager& manager = memory_->manager(d);
    const Bytes bytes = manager.ResidentDirtyBytesOf(TensorClass::kWeight) +
                        manager.ResidentDirtyBytesOf(TensorClass::kOptimizerState);
    per_device.emplace_back(d, bytes);
    total += bytes;
  }
  auto committed =
      std::make_shared<CountdownEvent>(sim_, static_cast<int>(per_device.size()));
  auto lost = std::make_shared<bool>(false);
  for (const auto& [device, bytes] : per_device) {
    OneShotEvent* done = transfers_->StartTransfer(
        topo.gpu_node(device), topo.HostNodeForGpu(device), bytes, TransferKind::kCheckpoint);
    done->OnFired([this, done, committed, lost] {
      if (transfers_->WasAborted(done)) {
        *lost = true;  // a device died mid-checkpoint: this checkpoint never commits
      }
      committed->Arrive();
    });
  }
  committed->OnFired([this, iteration, total, lost] {
    if (*lost || aborting_) {
      return;
    }
    ++checkpoints_committed_;
    checkpoint_bytes_ += total;
    if (iteration > last_checkpoint_iteration_) {
      last_checkpoint_iteration_ = iteration;
      last_checkpoint_time_ = sim_->now();
      if (options_.checkpoint_store != nullptr) {
        options_.checkpoint_store->Commit(iteration, sim_->now(), total);
      }
    }
    finish_time_ = std::max(finish_time_, sim_->now());
  });
}

void Engine::NotifyDeviceFailed(int gpu, SimTime when) {
  if (aborting_) {
    return;
  }
  aborting_ = true;
  failed_ = true;
  failure_kind_ = "gpu-fail-stop";
  failed_device_ = gpu;
  failure_time_ = when;
  finish_time_ = std::max(finish_time_, when);
}

void Engine::NotifyTransferRetryExhausted(SimTime when) {
  if (aborting_) {
    return;
  }
  aborting_ = true;
  failed_ = true;
  failure_kind_ = "transfer-retry-exhausted";
  failed_device_ = -1;
  failure_time_ = when;
  finish_time_ = std::max(finish_time_, when);
}

void Engine::SetComputeScale(int gpu, double scale, SimTime when) {
  if (gpu < 0 || gpu >= plan_->num_devices()) {
    return;
  }
  const std::size_t slot = static_cast<std::size_t>(gpu);
  if (compute_scale_[slot] < 1.0) {
    // Close the open degraded window before the scale changes.
    degraded_sec_[slot] += std::max(when - degraded_since_[slot], 0.0);
  }
  degraded_since_[slot] = when;
  compute_scale_[slot] = scale;
}

void Engine::WatchdogCheck(int last_completed) {
  if (aborting_ || completed_tasks_ == static_cast<int>(plan_->tasks.size())) {
    return;  // stop re-arming so the sim can go idle
  }
  if (completed_tasks_ == last_completed) {
    // A whole period with zero task completions: the schedule is stuck (circular memory
    // wait, lost collective partner) or livelocked (event churn without progress).
    aborting_ = true;
    failed_ = true;
    failure_kind_ = "watchdog-stall";
    failure_time_ = sim_->now();
    finish_time_ = std::max(finish_time_, sim_->now());
    return;
  }
  ArmWatchdog(completed_tasks_);
}

void Engine::ArmWatchdog(int last_completed) {
  // Deadline k lands at exactly anchor + k * timeout (one multiply, not k accumulated
  // adds), so a stall detected in period k reports failure_time == k * timeout bitwise.
  const double deadline =
      watchdog_anchor_ + static_cast<double>(++watchdog_periods_) * options_.watchdog_timeout;
  sim_->ScheduleAt(deadline, [this, last_completed] { WatchdogCheck(last_completed); });
}

void Engine::ReportDeadlock() const {
  std::ostringstream os;
  os << "engine deadlock: " << completed_tasks_ << "/" << plan_->tasks.size()
     << " tasks completed in plan '" << plan_->scheme << "'\n";
  for (int d = 0; d < plan_->num_devices(); ++d) {
    const DeviceState& state = devices_[static_cast<std::size_t>(d)];
    const auto& order = plan_->per_device_order[static_cast<std::size_t>(d)];
    os << "  gpu" << d << ": ";
    if (state.next_index >= order.size()) {
      os << "drained";
    } else {
      const Task& task =
          plan_->tasks[static_cast<std::size_t>(order[state.next_index - 0])];
      os << "stalled before " << task.DebugName() << " (used "
         << FormatBytes(memory_->manager(d).used_bytes()) << " of "
         << FormatBytes(memory_->manager(d).capacity()) << ")";
    }
    os << "\n";
  }
  HCHECK(false) << os.str();
}

}  // namespace harmony
