#ifndef HARMONY_RUNTIME_HEALTH_MONITOR_H_
#define HARMONY_RUNTIME_HEALTH_MONITOR_H_

#include <vector>

namespace harmony {

struct HealthMonitorOptions {
  // EWMA(actual / expected service time) above which a device is classified a
  // straggler. 0 disables classification (the monitor still tracks EWMAs);
  // meaningful values are > 1 (e.g. 1.5 flags devices running ~1.5x slower than
  // the plan estimate).
  double threshold = 0.0;
  double alpha = 0.25;       // EWMA smoothing factor, in (0, 1]
  int min_observations = 3;  // tasks observed before a device may be classified
};

// Per-device service-time tracker (DESIGN.md §11). The engine feeds it one
// observation per compute task — the plan's estimated duration vs. the duration
// the device actually took — and it maintains an EWMA of the slowdown ratio.
// A device whose EWMA exceeds the threshold after enough observations is a
// straggler; the engine then ends the segment gracefully at the next iteration
// boundary so the recovery coordinator can shift its work onto healthy devices
// without rolling back to a checkpoint.
class HealthMonitor {
 public:
  HealthMonitor(int num_devices, const HealthMonitorOptions& options);

  // Records one completed task's service time on `device`. Both durations must be
  // positive; the observation updates the device's EWMA of actual/expected.
  void Observe(int device, double expected_sec, double actual_sec);

  // True when `device` has enough observations and its EWMA exceeds the threshold.
  bool IsStraggler(int device) const;

  double ewma(int device) const { return ewma_[static_cast<std::size_t>(device)]; }
  int observations(int device) const {
    return observations_[static_cast<std::size_t>(device)];
  }
  const HealthMonitorOptions& options() const { return options_; }

 private:
  HealthMonitorOptions options_;
  std::vector<double> ewma_;
  std::vector<int> observations_;
};

}  // namespace harmony

#endif  // HARMONY_RUNTIME_HEALTH_MONITOR_H_
