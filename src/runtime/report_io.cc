#include "src/runtime/report_io.h"

#include <fstream>
#include <sstream>

#include "src/util/table.h"

namespace harmony {

std::string ReportToCsv(const RunReport& report) {
  std::ostringstream os;
  CsvWriter csv(os);
  std::vector<std::string> header = {"iteration", "start_s",   "end_s",      "duration_s",
                                     "swap_in",   "swap_out",  "p2p_in",     "collective"};
  for (int c = 0; c < kNumTensorClasses; ++c) {
    header.push_back(std::string("in_") + TensorClassName(static_cast<TensorClass>(c)));
    header.push_back(std::string("out_") + TensorClassName(static_cast<TensorClass>(c)));
  }
  csv.WriteRow(header);
  for (const IterationStats& it : report.iterations) {
    std::vector<std::string> row = {
        std::to_string(it.iteration),        std::to_string(it.start_time),
        std::to_string(it.end_time),         std::to_string(it.duration()),
        std::to_string(it.swap_in),          std::to_string(it.swap_out),
        std::to_string(it.p2p_in),           std::to_string(it.collective_bytes)};
    for (int c = 0; c < kNumTensorClasses; ++c) {
      row.push_back(std::to_string(it.swap_in_by_class[c]));
      row.push_back(std::to_string(it.swap_out_by_class[c]));
    }
    csv.WriteRow(row);
  }
  return os.str();
}

std::string ReportToMarkdown(const RunReport& report) {
  std::ostringstream os;
  os << "### " << report.scheme << "\n\n" << report.Summary() << "\n\n";
  os << "| device | busy (s) | swap-in | swap-out | high water | evictions | defrags |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (int d = 0; d < report.num_devices(); ++d) {
    const auto i = static_cast<std::size_t>(d);
    os << "| gpu" << d << " | ";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", report.device_busy[i]);
    os << buffer << " | " << FormatBytes(report.device_swap_in[i]) << " | "
       << FormatBytes(report.device_swap_out[i]) << " | "
       << FormatBytes(report.device_high_water[i]) << " | " << report.device_evictions[i]
       << " | " << report.device_defrags[i] << " |\n";
  }
  return os.str();
}

Status WriteReportCsv(const RunReport& report, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return InternalError("cannot open report file " + path);
  }
  file << ReportToCsv(report);
  if (!file.good()) {
    return InternalError("failed writing report file " + path);
  }
  return Status::Ok();
}

}  // namespace harmony
