#include "src/runtime/report_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/util/table.h"

namespace harmony {

namespace {

// Shortest decimal that round-trips to the same double: try %.15g..%.17g and take the
// first exact match. Deterministic, so the JSON export is byte-stable across runs.
std::string JsonNumber(double value) {
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) {
      break;
    }
  }
  return buffer;
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

// `{"kSwapIn": 123, ...}` with zero-valued kinds omitted (keeps tensor-heavy exports
// readable); emits `{}` when nothing flowed.
std::string BytesByKindObject(const Bytes by_kind[kNumTransferKinds]) {
  std::string out = "{";
  bool first = true;
  for (int k = 0; k < kNumTransferKinds; ++k) {
    if (by_kind[k] == 0) {
      continue;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    out += JsonString(TransferKindName(static_cast<TransferKind>(k)));
    out += ": ";
    out += std::to_string(by_kind[k]);
  }
  out += "}";
  return out;
}

}  // namespace

std::string ReportToCsv(const RunReport& report) {
  std::ostringstream os;
  CsvWriter csv(os);
  std::vector<std::string> header = {"iteration", "start_s",   "end_s",      "duration_s",
                                     "swap_in",   "swap_out",  "p2p_in",     "collective"};
  for (int c = 0; c < kNumTensorClasses; ++c) {
    header.push_back(std::string("in_") + TensorClassName(static_cast<TensorClass>(c)));
    header.push_back(std::string("out_") + TensorClassName(static_cast<TensorClass>(c)));
  }
  csv.WriteRow(header);
  for (const IterationStats& it : report.iterations) {
    std::vector<std::string> row = {
        std::to_string(it.iteration),        std::to_string(it.start_time),
        std::to_string(it.end_time),         std::to_string(it.duration()),
        std::to_string(it.swap_in),          std::to_string(it.swap_out),
        std::to_string(it.p2p_in),           std::to_string(it.collective_bytes)};
    for (int c = 0; c < kNumTensorClasses; ++c) {
      row.push_back(std::to_string(it.swap_in_by_class[c]));
      row.push_back(std::to_string(it.swap_out_by_class[c]));
    }
    csv.WriteRow(row);
  }
  return os.str();
}

std::string ReportToMarkdown(const RunReport& report) {
  std::ostringstream os;
  os << "### " << report.scheme << "\n\n" << report.Summary() << "\n\n";
  os << "| device | busy (s) | swap-in | swap-out | high water | evictions | defrags |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (int d = 0; d < report.num_devices(); ++d) {
    const auto i = static_cast<std::size_t>(d);
    os << "| gpu" << d << " | ";
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f", report.device_busy[i]);
    os << buffer << " | " << FormatBytes(report.device_swap_in[i]) << " | "
       << FormatBytes(report.device_swap_out[i]) << " | "
       << FormatBytes(report.device_high_water[i]) << " | " << report.device_evictions[i]
       << " | " << report.device_defrags[i] << " |\n";
  }
  return os.str();
}

std::string ReportToJson(const RunReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"harmony-run-report\",\n";
  os << "  \"version\": 2,\n";
  os << "  \"scheme\": " << JsonString(report.scheme) << ",\n";
  os << "  \"makespan_s\": " << JsonNumber(report.makespan) << ",\n";
  os << "  \"samples_per_iteration\": " << report.samples_per_iteration << ",\n";
  os << "  \"failed\": " << (report.failed ? "true" : "false") << ",\n";
  if (report.failed) {
    os << "  \"failure\": {\"kind\": " << JsonString(report.failure_kind)
       << ", \"device\": " << report.failed_device
       << ", \"time_s\": " << JsonNumber(report.failure_time) << "},\n";
  }
  // Schema v2: always present (zeros on a failure-free run) so consumers can key on the
  // fields without probing. Field order is fixed for byte-stable exports.
  os << "  \"resilience\": {\"flows_retried\": " << report.flows_retried
     << ", \"retry_exhausted\": " << report.retry_exhausted
     << ", \"retry_backoff_s\": " << JsonNumber(report.retry_backoff_sec)
     << ", \"straggler_device\": " << report.straggler_device
     << ", \"degraded_s\": " << JsonNumber(report.degraded_sec)
     << ", \"device_degraded_s\": [";
  for (std::size_t d = 0; d < report.device_degraded_sec.size(); ++d) {
    os << (d > 0 ? ", " : "") << JsonNumber(report.device_degraded_sec[d]);
  }
  os << "], \"ckpt_generations\": " << report.ckpt_generations
     << ", \"ckpt_verified_ok\": " << report.ckpt_verified_ok
     << ", \"ckpt_corrupt_detected\": " << report.ckpt_corrupt_detected << "},\n";
  os << "  \"totals\": {\"swap_in_bytes\": " << report.total_swap_in
     << ", \"swap_out_bytes\": " << report.total_swap_out
     << ", \"p2p_bytes\": " << report.total_p2p
     << ", \"collective_bytes\": " << report.total_collective << "},\n";

  os << "  \"devices\": [\n";
  for (int d = 0; d < report.num_devices(); ++d) {
    const auto i = static_cast<std::size_t>(d);
    os << "    {\"device\": " << d
       << ", \"busy_s\": " << JsonNumber(report.device_busy[i])
       << ", \"swap_in_bytes\": " << report.device_swap_in[i]
       << ", \"swap_out_bytes\": " << report.device_swap_out[i]
       << ", \"high_water_bytes\": " << report.device_high_water[i]
       << ", \"evictions\": " << report.device_evictions[i]
       << ", \"defrags\": " << report.device_defrags[i];
    if (i < report.device_time.size()) {
      const DeviceTimeBreakdown& time = report.device_time[i];
      os << ",\n     \"time_breakdown_s\": {";
      for (int c = 0; c < kNumTimeClasses; ++c) {
        if (c > 0) {
          os << ", ";
        }
        os << JsonString(TimeClassName(static_cast<TimeClass>(c))) << ": "
           << JsonNumber(time.seconds[c]);
      }
      os << "},\n     \"dominant_stall\": " << JsonString(TimeClassName(time.DominantStall()));
    }
    os << "}" << (d + 1 < report.num_devices() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"links\": [\n";
  for (std::size_t l = 0; l < report.links.size(); ++l) {
    const RunReport::LinkUsage& link = report.links[l];
    os << "    {\"name\": " << JsonString(link.name) << ", \"bytes\": " << link.bytes
       << ", \"busy_s\": " << JsonNumber(link.busy_time)
       << ", \"utilization\": " << JsonNumber(link.utilization)
       << ", \"avg_queue_depth\": " << JsonNumber(link.avg_queue_depth)
       << ", \"max_queue_depth\": " << link.max_queue_depth
       << ", \"flows\": " << link.flows
       << ", \"bytes_by_kind\": " << BytesByKindObject(link.bytes_by_kind) << "}"
       << (l + 1 < report.links.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  // Tier split only for multi-node machines: the key is absent on single-server reports,
  // so every pre-cluster JSON (and its golden copies) stays byte-identical.
  if (!report.tiers.empty()) {
    os << "  \"tiers\": [\n";
    for (std::size_t t = 0; t < report.tiers.size(); ++t) {
      const RunReport::TierUsage& tier = report.tiers[t];
      os << "    {\"name\": " << JsonString(tier.name) << ", \"bytes\": " << tier.bytes
         << ", \"busy_s\": " << JsonNumber(tier.busy_time) << ", \"flows\": " << tier.flows
         << ", \"bytes_by_kind\": " << BytesByKindObject(tier.bytes_by_kind) << "}"
         << (t + 1 < report.tiers.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
  }

  os << "  \"node_io\": [\n";
  for (std::size_t n = 0; n < report.node_io.size(); ++n) {
    const RunReport::NodeIo& node = report.node_io[n];
    os << "    {\"node\": " << JsonString(node.node)
       << ", \"in_by_kind\": " << BytesByKindObject(node.in_by_kind)
       << ", \"out_by_kind\": " << BytesByKindObject(node.out_by_kind) << "}"
       << (n + 1 < report.node_io.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"tensor_churn\": [\n";
  for (std::size_t t = 0; t < report.tensor_churn.size(); ++t) {
    const RunReport::TensorChurn& churn = report.tensor_churn[t];
    os << "    {\"tensor\": " << churn.tensor << ", \"name\": " << JsonString(churn.name)
       << ", \"class\": " << JsonString(churn.cls) << ", \"bytes\": " << churn.bytes
       << ", \"evictions\": " << churn.evictions
       << ", \"clean_drops\": " << churn.clean_drops
       << ", \"write_backs\": " << churn.write_backs
       << ", \"swap_ins\": " << churn.swap_ins << ", \"p2p_ins\": " << churn.p2p_ins
       << ", \"refetches\": " << churn.refetches()
       << ", \"swap_in_bytes\": " << churn.swap_in_bytes
       << ", \"swap_out_bytes\": " << churn.swap_out_bytes
       << ", \"p2p_in_bytes\": " << churn.p2p_in_bytes
       << ", \"clean_drop_bytes\": " << churn.clean_drop_bytes << "}"
       << (t + 1 < report.tensor_churn.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  os << "  \"iterations\": [\n";
  for (std::size_t it = 0; it < report.iterations.size(); ++it) {
    const IterationStats& stats = report.iterations[it];
    os << "    {\"iteration\": " << stats.iteration
       << ", \"start_s\": " << JsonNumber(stats.start_time)
       << ", \"end_s\": " << JsonNumber(stats.end_time)
       << ", \"swap_in_bytes\": " << stats.swap_in
       << ", \"swap_out_bytes\": " << stats.swap_out
       << ", \"p2p_bytes\": " << stats.p2p_in
       << ", \"collective_bytes\": " << stats.collective_bytes << "}"
       << (it + 1 < report.iterations.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  const AttributionReport attribution = Attribute(report);
  os << "  \"attribution\": {\n";
  os << "    \"summary\": " << JsonString(attribution.Summary()) << ",\n";
  os << "    \"worst_device\": " << attribution.worst_device << ",\n";
  os << "    \"devices\": [";
  for (std::size_t d = 0; d < attribution.devices.size(); ++d) {
    const AttributionReport::DeviceStall& stall = attribution.devices[d];
    os << (d > 0 ? ", " : "") << "{\"device\": " << stall.device
       << ", \"dominant_stall\": " << JsonString(TimeClassName(stall.dominant))
       << ", \"seconds\": " << JsonNumber(stall.seconds)
       << ", \"fraction\": " << JsonNumber(stall.fraction) << "}";
  }
  os << "],\n";
  os << "    \"bottleneck_link\": {\"name\": " << JsonString(attribution.bottleneck_link)
     << ", \"utilization\": " << JsonNumber(attribution.bottleneck_utilization)
     << ", \"avg_queue_depth\": " << JsonNumber(attribution.bottleneck_queue_depth)
     << ", \"bytes\": " << attribution.bottleneck_bytes << "},\n";
  os << "    \"top_churn\": [";
  for (std::size_t t = 0; t < attribution.top_churn.size(); ++t) {
    const RunReport::TensorChurn& churn = attribution.top_churn[t];
    os << (t > 0 ? ", " : "") << "{\"tensor\": " << churn.tensor
       << ", \"name\": " << JsonString(churn.name)
       << ", \"moved_bytes\": " << churn.moved_bytes()
       << ", \"refetches\": " << churn.refetches() << "}";
  }
  os << "]\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

Status WriteReportCsv(const RunReport& report, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return InternalError("cannot open report file " + path);
  }
  file << ReportToCsv(report);
  if (!file.good()) {
    return InternalError("failed writing report file " + path);
  }
  return Status::Ok();
}

Status WriteReportJson(const RunReport& report, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return InternalError("cannot open report file " + path);
  }
  file << ReportToJson(report);
  if (!file.good()) {
    return InternalError("failed writing report file " + path);
  }
  return Status::Ok();
}

}  // namespace harmony
