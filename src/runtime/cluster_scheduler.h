// Multi-tenant cluster scheduler (DESIGN.md §13).
//
// A deterministic job-stream layer over the cluster topology: tenants submit training and
// Computron-style inference-serving jobs (explicit --jobs lists or seeded arrival traces),
// the scheduler gang-schedules them onto free GPU sets under per-tenant host-memory and
// uplink-bandwidth quotas, and preempts lower-priority tenants through the checkpoint
// machinery — checkpoint → release → re-admit → restore, losing zero iterations.
//
// Composition model: every granted segment runs as its own inner session (RunTraining),
// exactly the per-segment structure RunTrainingElastic uses for fail-stop recovery. The
// outer simulator carries only the stream events (arrivals, completions, preemption
// releases) on a dedicated event lane, so --sim_threads determinism carries over: inner
// sessions are byte-identical at any thread count (DESIGN.md §10) and the stream layer is
// a pure function of their results. Co-located tenants are isolated by *reservation*, not
// modeled contention: a tenant's bandwidth quota is applied inside its own sessions
// (TransferManager::ApplyUplinkBandwidthQuota) and admission keeps the sum of reserved
// shares per node <= 1; tenants without a reservation are best-effort and their mutual
// interference is deliberately unmodeled (the idealization that keeps per-tenant runs
// composable and deterministic).
#ifndef HARMONY_SRC_RUNTIME_CLUSTER_SCHEDULER_H_
#define HARMONY_SRC_RUNTIME_CLUSTER_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace harmony {

enum class JobKind { kTraining, kServing };

// One job in the arrival stream. `iterations` counts training iterations for training
// jobs and request windows (pipeline wavefronts of `microbatches` request batches) for
// serving jobs.
struct JobSpec {
  int id = 0;  // dense index in (arrival, submission) order; assigned by the scheduler
  JobKind kind = JobKind::kTraining;
  double arrival = 0.0;  // sim seconds
  std::string tenant = "t0";
  std::string model = "toy";  // model-zoo name
  Scheme scheme = Scheme::kHarmonyPp;  // forced to kServing for serving jobs
  int gpus = 1;        // gang size; > gpus_per_node must be a whole-node multiple
  int iterations = 2;  // training iterations / serving request windows
  int microbatches = 4;
  int microbatch_size = 2;
  int priority = 0;  // larger = more important (only the priority policy reads it)

  // Canonical --jobs rendering of this job (without the id).
  std::string ToString() const;
};

// ---- grammars (fault_plan-style: typed errors carrying the byte offset) ----

// --jobs: semicolon-separated explicit submissions,
//   (train|serve)@<arrival>:key=value,...
// with keys tenant=<name>, model=<zoo name>, gpus=<n>, iters=<n>, mb=<n>, mbs=<n>,
// prio=<n>, and (train only) scheme=<harmony-pp|harmony-dp|harmony-tp|baseline-dp|
// baseline-pp>. Every key is optional (JobSpec defaults apply); duplicates reject.
StatusOr<std::vector<JobSpec>> ParseJobsSpec(const std::string& spec);

// --trace: seeded arrival-trace generators,
//   poisson:seed=<s>,rate=<jobs/s>,horizon=<sec>[,serve_frac=<0..1>]
//   bursty:seed=<s>,rate=<jobs/s>,horizon=<sec>,burst=<n>,period=<sec>[,serve_frac=..]
//   diurnal:seed=<s>,rate=<jobs/s>,horizon=<sec>,period=<sec>[,serve_frac=..]
// poisson draws exponential inter-arrivals at `rate`; bursty adds a synchronized burst of
// `burst` submissions every `period` seconds on top of the Poisson base; diurnal thins a
// 2x-rate Poisson stream against a sinusoidal day curve of the given period. Job shapes
// (tenant, kind, scheme, gang size, length) are drawn from the same seeded stream, so a
// trace spec is a complete, reproducible workload. `serve_frac` is the probability a job
// is a serving job (default 0.25). Generated jobs use `default_model`; gang sizes respect
// `gpus_per_node` (multi-node gangs are only drawn for data-parallel jobs when the
// cluster has several nodes).
StatusOr<std::vector<JobSpec>> GenerateTrace(const std::string& spec, int gpus_per_node,
                                             int num_nodes,
                                             const std::string& default_model);

// --quota: semicolon-separated per-tenant quotas,
//   <tenant|*>:mem_gib=<g>,bw=<frac>
// mem_gib caps the tenant's aggregate host-memory footprint across *running* jobs
// (weights + gradients + optimizer state per replica; the model state a job stages in
// host memory). bw reserves a fraction (0, 1] of the host-uplink / NIC / rack bandwidth
// for each of the tenant's sessions. `*` sets the default for tenants not listed. Either
// key may be omitted (unlimited memory / full bandwidth).
struct TenantQuota {
  Bytes host_mem_bytes = -1;  // < 0 = unlimited
  double bw_fraction = 1.0;   // (0, 1]; < 1 is a reservation counted by admission
};

struct QuotaMap {
  TenantQuota fallback;                        // the '*' entry
  std::map<std::string, TenantQuota> tenants;  // explicit entries, sorted by name
  const TenantQuota& For(const std::string& tenant) const;
};

StatusOr<QuotaMap> ParseQuotaSpec(const std::string& spec);

// ---- scheduling policies ----
//   fifo:     strict arrival order; the head job waits for enough free GPUs, nothing
//             overtakes it, running jobs are never disturbed.
//   priority: strict (priority desc, arrival, id) order; when the head job cannot be
//             placed it preempts strictly-lower-priority running jobs (checkpoint →
//             release → re-admit), choosing victims lowest-priority-first and
//             most-recently-started-first to minimize disturbed work.
enum class SchedPolicy { kFifo, kPriority };

const char* SchedPolicyName(SchedPolicy policy);
StatusOr<SchedPolicy> SchedPolicyByName(const std::string& name);

struct ClusterSchedulerConfig {
  ServerConfig server;  // per-node shape; server.num_gpus = GPUs per node
  int num_nodes = 1;
  int nodes_per_rack = 0;
  LinkSpec nic_link = Ethernet25G();
  LinkSpec rack_link = Ethernet100G();
  SchedPolicy policy = SchedPolicy::kFifo;
  QuotaMap quotas;
  int sim_threads = 0;  // forwarded to every inner session (0 = HARMONY_SIM_THREADS)
  bool lint_plans = true;
};

// ---- outcomes ----

// One contiguous occupancy of a gang by a job: grant to completion, or grant to
// preemption release (in which case the segment ends with a committed checkpoint and
// `duration` includes the drain up to the release point).
struct SegmentOutcome {
  double start = 0.0;
  double duration = 0.0;  // gang held for [start, start + duration)
  int start_iteration = 0;
  int iterations = 0;  // iterations (or request windows) completed in this segment
  bool preempted = false;
  Bytes swap_in = 0;
  Bytes swap_out = 0;
  Bytes collective = 0;
  Bytes checkpoint = 0;  // checkpoint commit traffic (preempted training segments)
  Bytes restore = 0;     // first-iteration weight/optimizer re-staging (re-admissions)
};

struct JobOutcome {
  JobSpec spec;
  bool completed = false;
  bool quota_deferred = false;  // ever passed over by the memory-quota admission check
  double first_start = -1.0;    // first grant time (-1 = never granted)
  double finish = -1.0;         // completion time (-1 = still queued/running at the end)
  double queue_wait = 0.0;      // total queued time (arrival→grant and release→re-grant)
  double service = 0.0;         // total gang occupancy (sum of segment durations)
  int preemptions = 0;
  int iterations_done = 0;
  int samples_done = 0;  // from the inner plans' samples_per_iteration
  std::vector<SegmentOutcome> segments;
  std::vector<double> iteration_sec;  // per-iteration durations across all segments
};

// Per-tenant SLO rollup: the quantities a capacity planner holds tenants to.
struct TenantSlo {
  std::string tenant;
  int jobs = 0;
  int completed = 0;
  int preemptions = 0;
  int quota_deferred = 0;        // jobs the memory quota ever held back
  double queue_delay_mean = 0.0; // over this tenant's granted jobs
  double queue_delay_p99 = 0.0;  // nearest-rank p99
  double iteration_p99 = 0.0;    // nearest-rank p99 over all completed iterations
  double goodput = 0.0;          // completed samples / cluster makespan
  Bytes swap_bytes = 0;          // swap in + out across the tenant's segments
  Bytes checkpoint_bytes = 0;
  Bytes restore_bytes = 0;
  double gpu_seconds = 0.0;  // sum of segment duration x gang size
};

struct ClusterReport {
  int total_gpus = 0;
  int num_nodes = 0;
  SchedPolicy policy = SchedPolicy::kFifo;
  double makespan = 0.0;  // last completion / release across the stream
  int completed_jobs = 0;
  int preemptions = 0;
  double gpu_seconds_busy = 0.0;
  double utilization = 0.0;  // gpu_seconds_busy / (total_gpus * makespan)
  std::vector<JobOutcome> jobs;     // indexed by job id
  std::vector<TenantSlo> tenants;   // sorted by tenant name

  // One-line rollup, the per-tenant SLO table (the --explain view), and the full
  // deterministic rendering (rollup + table + per-job lines) whose bytes the determinism
  // grid compares across sim_threads.
  std::string Summary() const;
  std::string RenderTenantTable() const;
  std::string Render() const;
};

// Structured JSON export for cluster runs: schema "harmony-cluster-report" version 1
// (DESIGN.md §13) — run header, per-tenant SLO rollup, and per-job outcomes with their
// segments. Deterministic byte-for-byte under the same formatting rules as ReportToJson
// (fixed key order, integers as integers, doubles as shortest round-trip). Lives here
// rather than report_io because report_io sits below the session layer this depends on.
std::string ClusterReportToJson(const ClusterReport& report);
Status WriteClusterReportJson(const ClusterReport& report, const std::string& path);

// Validates a job list against the cluster shape and quota map with typed messages
// (model resolves, gang size placeable, the per-job session config valid). Run before
// RunJobStream to surface bad specs as a Status instead of a crash.
Status ValidateJobs(const std::vector<JobSpec>& jobs, const ClusterSchedulerConfig& config);

// Runs the job stream to completion and returns the per-tenant / per-job report.
// Deterministic: byte-identical reports at any sim_threads setting. Jobs are re-indexed
// in (arrival, submission) order; ids in the report refer to that order.
StatusOr<ClusterReport> RunJobStream(std::vector<JobSpec> jobs,
                                     const ClusterSchedulerConfig& config);

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_CLUSTER_SCHEDULER_H_
