// Chrome-trace (chrome://tracing / Perfetto) export of an executed schedule.
//
// Each device renders as a track; compute tasks become duration events with the task's
// debug name, colored by kind via category. Open the emitted JSON in chrome://tracing or
// https://ui.perfetto.dev to inspect pipeline overlap, bubbles, and swap stalls visually.
#ifndef HARMONY_SRC_RUNTIME_TRACE_EXPORT_H_
#define HARMONY_SRC_RUNTIME_TRACE_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/graph/task.h"
#include "src/runtime/engine.h"
#include "src/util/status.h"

namespace harmony {

// Renders the timeline as a Chrome trace JSON document (trace-event format, "X" events,
// microsecond timestamps).
std::string TimelineToChromeTrace(const Plan& plan, const std::vector<TaskTrace>& timeline);

// Same, plus one counter track ("ph":"C") per link showing active-flow queue depth over
// time, sourced from report->link_queue_timeline (present when the run had record_timeline
// set). Passing nullptr — or a report without timelines — degrades to the plain export.
std::string TimelineToChromeTrace(const Plan& plan, const std::vector<TaskTrace>& timeline,
                                  const RunReport* report);

// Writes TimelineToChromeTrace output to `path`; include `report` for the counter tracks.
Status WriteChromeTrace(const Plan& plan, const std::vector<TaskTrace>& timeline,
                        const std::string& path, const RunReport* report = nullptr);

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_TRACE_EXPORT_H_
