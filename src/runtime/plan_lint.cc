#include "src/runtime/plan_lint.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <sstream>
#include <utility>

namespace harmony {

const char* LintCheckName(LintCheck check) {
  switch (check) {
    case LintCheck::kStructure:
      return "structure";
    case LintCheck::kDanglingReference:
      return "dangling-reference";
    case LintCheck::kPinBalance:
      return "pin-balance";
    case LintCheck::kCollective:
      return "collective";
    case LintCheck::kHierarchical:
      return "hierarchical";
    case LintCheck::kFeasibility:
      return "feasibility";
    case LintCheck::kCrossDeviceHazard:
      return "cross-device-hazard";
    case LintCheck::kLifetime:
      return "lifetime";
    case LintCheck::kStaleWeightRead:
      return "stale-weight-read";
  }
  return "?";
}

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
  }
  return "?";
}

int LintReport::num_errors() const {
  int n = 0;
  for (const LintFinding& f : findings) {
    n += f.severity == LintSeverity::kError ? 1 : 0;
  }
  return n;
}

int LintReport::num_warnings() const {
  int n = 0;
  for (const LintFinding& f : findings) {
    n += f.severity == LintSeverity::kWarning ? 1 : 0;
  }
  return n;
}

std::string LintReport::Render() const {
  std::ostringstream os;
  os << "plan lint [" << scheme << "]: " << num_tasks << " tasks, " << num_devices
     << " devices (" << (deep_ran ? "cheap+deep" : "cheap only") << ")";
  if (clean()) {
    os << " — clean\n";
    return os.str();
  }
  os << " — " << num_errors() << " error(s), " << num_warnings() << " warning(s)"
     << (truncated ? " [truncated]" : "") << "\n";
  for (const LintFinding& f : findings) {
    os << (f.severity == LintSeverity::kError ? "ERROR" : "WARN ") << " ["
       << LintCheckName(f.check) << "] " << f.message << "\n";
  }
  return os.str();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string LintReport::ToJson() const {
  std::ostringstream os;
  os << "{\"schema\": \"harmony-lint-report\", \"version\": 1";
  os << ", \"scheme\": " << JsonEscape(scheme);
  os << ", \"tasks\": " << num_tasks << ", \"devices\": " << num_devices;
  os << ", \"deep\": " << (deep_ran ? "true" : "false");
  os << ", \"truncated\": " << (truncated ? "true" : "false");
  os << ", \"errors\": " << num_errors() << ", \"warnings\": " << num_warnings();
  os << ", \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    if (i > 0) {
      os << ", ";
    }
    os << "{\"check\": " << JsonEscape(LintCheckName(f.check));
    os << ", \"severity\": " << JsonEscape(LintSeverityName(f.severity));
    os << ", \"message\": " << JsonEscape(f.message);
    os << ", \"tasks\": [";
    for (std::size_t t = 0; t < f.tasks.size(); ++t) {
      os << (t > 0 ? ", " : "") << f.tasks[t];
    }
    os << "]";
    os << ", \"tensor\": ";
    if (f.tensor == kInvalidTensor) {
      os << "null";
    } else {
      os << f.tensor;
    }
    os << ", \"device\": ";
    if (f.device < 0) {
      os << "null";
    } else {
      os << f.device;
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

namespace {

// How one task touches one tensor (bitmask; a task can both read and write, e.g. an
// accumulating backward or an in-place all-reduce).
struct Access {
  TaskId task;
  bool read = false;
  bool write = false;
  bool free = false;
};

class Linter {
 public:
  Linter(const Plan& plan, const TensorRegistry& registry, const LintOptions& options)
      : plan_(plan), registry_(registry), options_(options) {
    report_.scheme = plan.scheme;
    report_.num_tasks = static_cast<int>(plan.tasks.size());
    report_.num_devices = plan.num_devices();
  }

  LintReport Run() {
    CheckStructure();
    CheckTensorReferences();
    if (!structure_ok_) {
      // Without a sane task graph the remaining checks would chase garbage ids.
      return std::move(report_);
    }
    CheckPinBalance();
    CheckCollectives();
    CheckFeasibility();
    if (options_.deep && !tensor_refs_broken_) {
      if (report_.num_tasks > options_.max_deep_tasks) {
        report_.deep_ran = false;
      } else {
        report_.deep_ran = true;
        BuildHappensBefore();
        BuildAccessMap();
        CheckCrossDeviceHazards();
        CheckLifetimes();
        CheckUninitializedReads();
        CheckWeightVersions();
      }
    }
    return std::move(report_);
  }

 private:
  std::size_t st(int v) const { return static_cast<std::size_t>(v); }
  int n() const { return static_cast<int>(plan_.tasks.size()); }

  const Task& task(TaskId id) const { return plan_.tasks[st(id)]; }

  bool Emit(LintFinding finding) {
    if (static_cast<int>(report_.findings.size()) >= options_.max_findings) {
      report_.truncated = true;
      return false;
    }
    report_.findings.push_back(std::move(finding));
    return true;
  }

  bool Error(LintCheck check, std::string message, std::vector<TaskId> tasks = {},
             TensorId tensor = kInvalidTensor, int device = -1) {
    LintFinding f;
    f.check = check;
    f.severity = LintSeverity::kError;
    f.message = std::move(message);
    f.tasks = std::move(tasks);
    f.tensor = tensor;
    f.device = device;
    return Emit(std::move(f));
  }

  bool Warn(LintCheck check, std::string message, std::vector<TaskId> tasks = {},
            TensorId tensor = kInvalidTensor, int device = -1) {
    LintFinding f;
    f.check = check;
    f.severity = LintSeverity::kWarning;
    f.message = std::move(message);
    f.tasks = std::move(tasks);
    f.tensor = tensor;
    f.device = device;
    return Emit(std::move(f));
  }

  std::string TaskName(TaskId id) const {
    return "task " + std::to_string(id) + " (" + task(id).DebugName() + ")";
  }

  std::string TensorName(TensorId id) const {
    return "tensor " + std::to_string(id) + " (" + registry_.meta(id).name + ")";
  }

  // ---- cheap tier ---------------------------------------------------------------------------

  void CheckStructure() {
    structure_ok_ = true;
    for (int i = 0; i < n(); ++i) {
      if (plan_.tasks[st(i)].id != i) {
        structure_ok_ = false;
        Error(LintCheck::kStructure,
              "task id mismatch at index " + std::to_string(i) + ": id is " +
                  std::to_string(plan_.tasks[st(i)].id),
              {});
      }
    }
    if (!structure_ok_) {
      return;  // ids are the addressing scheme for everything below
    }

    std::vector<int> seen(st(n()), 0);
    for (int d = 0; d < plan_.num_devices(); ++d) {
      for (TaskId t : plan_.per_device_order[st(d)]) {
        if (t < 0 || t >= n()) {
          structure_ok_ = false;
          Error(LintCheck::kStructure,
                "device " + std::to_string(d) + " order references unknown task " +
                    std::to_string(t),
                {}, kInvalidTensor, d);
          continue;
        }
        if (task(t).device != d) {
          structure_ok_ = false;
          Error(LintCheck::kStructure,
                TaskName(t) + " is bound to device " + std::to_string(task(t).device) +
                    " but queued on device " + std::to_string(d),
                {t}, kInvalidTensor, d);
        }
        if (++seen[st(t)] > 1) {
          structure_ok_ = false;
          Error(LintCheck::kStructure, TaskName(t) + " queued more than once", {t});
        }
      }
    }
    for (int i = 0; i < n(); ++i) {
      if (seen[st(i)] == 0) {
        structure_ok_ = false;
        Error(LintCheck::kStructure, TaskName(i) + " not queued on any device", {i});
      }
    }
    for (const Task& t : plan_.tasks) {
      if (t.device < 0 || t.device >= plan_.num_devices()) {
        structure_ok_ = false;
        Error(LintCheck::kStructure,
              TaskName(t.id) + " bound to nonexistent device " + std::to_string(t.device),
              {t.id}, kInvalidTensor, t.device);
      }
      for (TaskId dep : t.deps) {
        if (dep < 0 || dep >= n()) {
          structure_ok_ = false;
          Error(LintCheck::kStructure,
                TaskName(t.id) + " depends on unknown task " + std::to_string(dep), {t.id});
        }
      }
    }
    if (!structure_ok_) {
      return;
    }

    // Acyclicity of deps + per-device order (Kahn). The topological order doubles as the
    // processing order for the deep tier's reachability pass.
    std::vector<std::vector<TaskId>> out(st(n()));
    std::vector<int> indegree(st(n()), 0);
    auto add_edge = [&](TaskId from, TaskId to) {
      out[st(from)].push_back(to);
      ++indegree[st(to)];
    };
    for (const Task& t : plan_.tasks) {
      for (TaskId dep : t.deps) {
        add_edge(dep, t.id);
      }
    }
    for (const auto& order : plan_.per_device_order) {
      for (std::size_t i = 1; i < order.size(); ++i) {
        add_edge(order[i - 1], order[i]);
      }
    }
    std::queue<TaskId> ready;
    for (int i = 0; i < n(); ++i) {
      if (indegree[st(i)] == 0) {
        ready.push(i);
      }
    }
    topo_.clear();
    topo_.reserve(st(n()));
    while (!ready.empty()) {
      const TaskId t = ready.front();
      ready.pop();
      topo_.push_back(t);
      for (TaskId next : out[st(t)]) {
        if (--indegree[st(next)] == 0) {
          ready.push(next);
        }
      }
    }
    if (static_cast<int>(topo_.size()) != n()) {
      structure_ok_ = false;
      std::vector<TaskId> stuck;
      for (int i = 0; i < n() && stuck.size() < 8; ++i) {
        if (indegree[st(i)] > 0) {
          stuck.push_back(i);
        }
      }
      Error(LintCheck::kStructure,
            "dependency graph plus per-device order has a cycle (" +
                std::to_string(n() - static_cast<int>(topo_.size())) +
                " tasks unreachable, first stuck: " +
                (stuck.empty() ? std::string("?") : TaskName(stuck.front())) + ")",
            std::move(stuck));
    }
    successors_ = std::move(out);
  }

  // Every tensor id a task mentions must exist. Walks all five id lists per task.
  void CheckTensorReferences() {
    tensor_refs_broken_ = false;
    auto check_list = [&](const Task& t, const std::vector<TensorId>& ids, const char* what) {
      for (TensorId id : ids) {
        if (id < 0 || id >= registry_.size()) {
          tensor_refs_broken_ = true;
          if (!Error(LintCheck::kDanglingReference,
                     TaskName(t.id) + " " + what + " references tensor " +
                         std::to_string(id) + " outside the registry (size " +
                         std::to_string(registry_.size()) + ")",
                     {t.id}, id, t.device)) {
            return;
          }
        }
      }
    };
    for (const Task& t : plan_.tasks) {
      check_list(t, t.working_set.fetch, "fetch list");
      check_list(t, t.working_set.accumulate, "accumulate list");
      check_list(t, t.working_set.allocate, "allocate list");
      check_list(t, t.dirty_outputs, "dirty-output list");
      check_list(t, t.free_after, "free-after list");
    }
  }

  // The engine pins once per working-set entry on Acquire and unpins once per entry on
  // Release; a duplicate entry double-pins and the release leaves a dangling pin — a
  // guaranteed quiescence failure after the run. free_after must name distinct tensors
  // from the task's own working set (FreeTensor on a pinned or in-flight tensor aborts).
  void CheckPinBalance() {
    std::vector<TensorId> ws;
    for (const Task& t : plan_.tasks) {
      ws.clear();
      ws.insert(ws.end(), t.working_set.fetch.begin(), t.working_set.fetch.end());
      ws.insert(ws.end(), t.working_set.accumulate.begin(), t.working_set.accumulate.end());
      ws.insert(ws.end(), t.working_set.allocate.begin(), t.working_set.allocate.end());
      std::vector<TensorId> sorted = ws;
      std::sort(sorted.begin(), sorted.end());
      const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
      if (dup != sorted.end()) {
        Error(LintCheck::kPinBalance,
              TaskName(t.id) + " pins " + TensorName(*dup) +
                  " more than once in one working set — acquire/release pairing leaks a pin",
              {t.id}, *dup, t.device);
      }
      std::vector<TensorId> frees = t.free_after;
      std::sort(frees.begin(), frees.end());
      const auto dup_free = std::adjacent_find(frees.begin(), frees.end());
      if (dup_free != frees.end()) {
        Error(LintCheck::kPinBalance,
              TaskName(t.id) + " frees " + TensorName(*dup_free) + " twice in free_after",
              {t.id}, *dup_free, t.device);
      }
      for (TensorId id : t.free_after) {
        if (std::find(ws.begin(), ws.end(), id) == ws.end()) {
          Error(LintCheck::kPinBalance,
                TaskName(t.id) + " frees " + TensorName(id) +
                    " that is not in its own working set — the free is unordered with the "
                    "tensor's last use",
                {t.id}, id, t.device);
        }
      }
    }
  }

  void CheckCollectives() {
    std::map<int, std::vector<const Task*>> groups;
    for (const Task& t : plan_.tasks) {
      if (t.kind != TaskKind::kAllReduce) {
        continue;
      }
      if (t.collective_group < 0) {
        Error(LintCheck::kCollective, TaskName(t.id) + " has no collective group", {t.id},
              kInvalidTensor, t.device);
        continue;
      }
      groups[t.collective_group].push_back(&t);
    }

    // Cardinality consensus per payload kind: every group reducing the same kind of data
    // must have the same member count (a dropped participant shrinks exactly one group).
    std::map<int, std::map<std::size_t, int>> size_votes;  // payload kind -> size -> count
    for (const auto& [group, members] : groups) {
      size_votes[static_cast<int>(members.front()->collective_data)][members.size()]++;
    }
    std::map<int, std::size_t> modal_size;
    for (const auto& [kind, votes] : size_votes) {
      std::size_t best = 0;
      int best_count = 0;
      for (const auto& [size, count] : votes) {
        if (count > best_count) {
          best = size;
          best_count = count;
        }
      }
      modal_size[kind] = best;
    }

    for (const auto& [group, members] : groups) {
      std::vector<TaskId> ids;
      for (const Task* m : members) {
        ids.push_back(m->id);
      }
      // Distinct devices (two members on one device would rendezvous with themselves and
      // starve the real peer).
      std::vector<int> devices;
      std::vector<int> replicas;
      for (const Task* m : members) {
        devices.push_back(m->device);
        replicas.push_back(m->replica);
        if (m->collective_bytes != members.front()->collective_bytes) {
          Error(LintCheck::kCollective,
                "collective group " + std::to_string(group) + ": " + TaskName(m->id) +
                    " moves " + std::to_string(m->collective_bytes) + " bytes but " +
                    TaskName(members.front()->id) + " moves " +
                    std::to_string(members.front()->collective_bytes),
                ids);
          break;
        }
      }
      for (const Task* m : members) {
        if (m->collective_data != members.front()->collective_data) {
          Error(LintCheck::kCollective,
                "collective group " + std::to_string(group) +
                    " mixes payload kinds across members",
                ids);
          break;
        }
      }
      std::sort(devices.begin(), devices.end());
      if (std::adjacent_find(devices.begin(), devices.end()) != devices.end()) {
        Error(LintCheck::kCollective,
              "collective group " + std::to_string(group) + " has two members on device " +
                  std::to_string(*std::adjacent_find(devices.begin(), devices.end())),
              ids);
      }
      // Rank matching: member replica/shard indices must be dense {0..k-1} — exactly one
      // participant per replica. A dropped participant leaves a hole or shifts the count.
      std::sort(replicas.begin(), replicas.end());
      for (std::size_t r = 0; r < replicas.size(); ++r) {
        if (replicas[r] != static_cast<int>(r)) {
          Error(LintCheck::kCollective,
                "collective group " + std::to_string(group) + " expects one member per " +
                    "replica 0.." + std::to_string(replicas.size() - 1) + " but rank " +
                    std::to_string(r) + " is " +
                    (replicas[r] > static_cast<int>(r) ? "missing" : "duplicated") +
                    " (replica " + std::to_string(replicas[r]) + " found)",
                ids);
          break;
        }
      }
      const std::size_t expected = modal_size[static_cast<int>(members.front()->collective_data)];
      if (members.size() != expected) {
        Error(LintCheck::kCollective,
              "collective group " + std::to_string(group) + " has " +
                  std::to_string(members.size()) + " participant(s) but sibling groups " +
                  "reducing the same payload have " + std::to_string(expected) +
                  " — a rank would wait forever or reduce partial data",
              ids);
      }
    }

    CheckHierarchical(groups);
    CheckRendezvousDeadlock(groups);
  }

  // Two-level group structure (DESIGN.md §12): on multi-node plans (device_node stamped by
  // AnnotateClusterStructure with > 1 distinct node) every collective's members must (a)
  // carry the node annotation of their own device — a crossed intra/inter rendezvous would
  // make the hierarchical engine build the wrong tree, (b) balance membership and bytes
  // across the nodes they span — the inter-node reduce-scatter assumes equal shards, and
  // (c) cover the same number of nodes as sibling groups reducing the same payload — a
  // node dropped from the inter-node tree leaves dense replica ranks (node-major indexing)
  // and survives the flat-rank check above, so coverage is voted on separately.
  void CheckHierarchical(const std::map<int, std::vector<const Task*>>& groups) {
    const std::vector<int>& node_of = plan_.device_node;
    if (node_of.empty()) {
      return;  // single-node plan: no annotation, no hierarchical structure to check
    }
    bool multi_node = false;
    for (int node : node_of) {
      if (node != node_of.front()) {
        multi_node = true;
        break;
      }
    }
    if (!multi_node) {
      return;
    }

    // Node-coverage consensus per payload kind, mirroring the member-count consensus in
    // CheckCollectives: sibling groups reducing the same payload must span the same number
    // of nodes.
    std::map<int, std::map<std::size_t, int>> coverage_votes;  // payload -> nodes -> count
    std::map<int, std::map<int, std::vector<const Task*>>> by_node_per_group;
    for (const auto& [group, members] : groups) {
      std::map<int, std::vector<const Task*>>& by_node = by_node_per_group[group];
      for (const Task* m : members) {
        if (m->device < 0 || m->device >= static_cast<int>(node_of.size())) {
          continue;  // structural checks already flagged the bad device
        }
        by_node[node_of[st(m->device)]].push_back(m);
      }
      coverage_votes[static_cast<int>(members.front()->collective_data)][by_node.size()]++;
    }
    std::map<int, std::size_t> modal_coverage;
    for (const auto& [kind, votes] : coverage_votes) {
      std::size_t best = 0;
      int best_count = 0;
      for (const auto& [nodes, count] : votes) {
        if (count > best_count) {
          best = nodes;
          best_count = count;
        }
      }
      modal_coverage[kind] = best;
    }

    for (const auto& [group, members] : groups) {
      std::vector<TaskId> ids;
      for (const Task* m : members) {
        ids.push_back(m->id);
      }
      // (a) annotation consistency: a member whose collective_node disagrees with its
      // device's node would rendezvous in the wrong tier of the two-level structure.
      for (const Task* m : members) {
        if (m->device < 0 || m->device >= static_cast<int>(node_of.size())) {
          continue;
        }
        const int expected_node = node_of[st(m->device)];
        if (m->collective_node != expected_node) {
          Error(LintCheck::kHierarchical,
                "collective group " + std::to_string(group) + ": " + TaskName(m->id) +
                    " is annotated node " + std::to_string(m->collective_node) +
                    " but runs on device " + std::to_string(m->device) + " (node " +
                    std::to_string(expected_node) +
                    ") — crossed intra/inter rendezvous",
                ids, kInvalidTensor, m->device);
        }
      }
      const std::map<int, std::vector<const Task*>>& by_node = by_node_per_group[group];
      // (c) dense node coverage vs. the sibling consensus. Checked before the single-node
      // early-out: a group whose siblings span the fleet but which itself collapsed onto
      // one node is precisely a dropped inter-node tree.
      const std::size_t expected_nodes =
          modal_coverage[static_cast<int>(members.front()->collective_data)];
      if (by_node.size() != expected_nodes) {
        Error(LintCheck::kHierarchical,
              "collective group " + std::to_string(group) + " spans " +
                  std::to_string(by_node.size()) + " node(s) but sibling groups reducing " +
                  "the same payload span " + std::to_string(expected_nodes) +
                  " — a node was dropped from the inter-node tree",
              ids);
      }
      if (by_node.size() <= 1) {
        continue;  // intra-node group: the flat checks fully cover the rest
      }
      // (b) per-node membership and byte balance: the hierarchical engine reduces equal
      // sub-group shards, so a node with more members or different byte sums desyncs the
      // inter-node tree.
      const std::size_t first_count = by_node.begin()->second.size();
      Bytes first_bytes = 0;
      for (const Task* m : by_node.begin()->second) {
        first_bytes += m->collective_bytes;
      }
      for (const auto& [node, node_members] : by_node) {
        Bytes node_bytes = 0;
        for (const Task* m : node_members) {
          node_bytes += m->collective_bytes;
        }
        if (node_members.size() != first_count) {
          Error(LintCheck::kHierarchical,
                "collective group " + std::to_string(group) + " has " +
                    std::to_string(node_members.size()) + " member(s) on node " +
                    std::to_string(node) + " but " + std::to_string(first_count) +
                    " on node " + std::to_string(by_node.begin()->first) +
                    " — uneven sub-groups break the inter-node reduce-scatter",
                ids);
          break;
        }
        if (node_bytes != first_bytes) {
          Error(LintCheck::kHierarchical,
                "collective group " + std::to_string(group) + " moves " +
                    std::to_string(node_bytes) + " bytes on node " + std::to_string(node) +
                    " but " + std::to_string(first_bytes) + " on node " +
                    std::to_string(by_node.begin()->first) +
                    " — sub-group byte skew desyncs the shard exchange",
                ids);
          break;
        }
      }
    }
  }

  // "No rank waits forever": collapse each collective group into one rendezvous node (all
  // members must be schedulable together) and re-check acyclicity. Two groups crossed in
  // two device orders collapse into a 2-cycle here while the plain task graph stays
  // acyclic — the classic all-reduce deadlock.
  void CheckRendezvousDeadlock(const std::map<int, std::vector<const Task*>>& groups) {
    if (groups.empty()) {
      return;
    }
    // node id: merged group nodes first, then singleton tasks.
    std::vector<int> node_of(st(n()), -1);
    int next = 0;
    std::vector<int> group_ids;
    for (const auto& [group, members] : groups) {
      for (const Task* m : members) {
        node_of[st(m->id)] = next;
      }
      group_ids.push_back(group);
      ++next;
    }
    const int num_groups = next;
    for (int i = 0; i < n(); ++i) {
      if (node_of[st(i)] < 0) {
        node_of[st(i)] = next++;
      }
    }
    std::vector<std::set<int>> out(st(next));
    std::vector<int> indegree(st(next), 0);
    auto add_edge = [&](TaskId from, TaskId to) {
      const int a = node_of[st(from)];
      const int b = node_of[st(to)];
      if (a != b && out[st(a)].insert(b).second) {
        ++indegree[st(b)];
      }
    };
    for (const Task& t : plan_.tasks) {
      for (TaskId dep : t.deps) {
        add_edge(dep, t.id);
      }
    }
    for (const auto& order : plan_.per_device_order) {
      for (std::size_t i = 1; i < order.size(); ++i) {
        add_edge(order[i - 1], order[i]);
      }
    }
    std::queue<int> ready;
    for (int i = 0; i < next; ++i) {
      if (indegree[st(i)] == 0) {
        ready.push(i);
      }
    }
    int processed = 0;
    while (!ready.empty()) {
      const int v = ready.front();
      ready.pop();
      ++processed;
      for (int succ : out[st(v)]) {
        if (--indegree[st(succ)] == 0) {
          ready.push(succ);
        }
      }
    }
    if (processed != next) {
      std::vector<int> stuck_groups;
      for (int g = 0; g < num_groups; ++g) {
        if (indegree[st(g)] > 0) {
          stuck_groups.push_back(group_ids[st(g)]);
        }
      }
      std::ostringstream os;
      os << "collective rendezvous deadlock: group(s)";
      for (std::size_t i = 0; i < stuck_groups.size() && i < 8; ++i) {
        os << " " << stuck_groups[i];
      }
      os << " are crossed in the device orders — some rank waits forever";
      Error(LintCheck::kCollective, os.str());
    }
  }

  // A single task's working set must fit in raw device capacity; no eviction policy can
  // save a plan that violates this.
  void CheckFeasibility() {
    if (options_.device_capacities.empty()) {
      return;
    }
    for (const Task& t : plan_.tasks) {
      if (t.device < 0 || st(t.device) >= options_.device_capacities.size()) {
        continue;  // structure checks already flagged out-of-range devices
      }
      Bytes total = t.working_set.scratch_bytes;
      auto add = [&](const std::vector<TensorId>& ids) {
        for (TensorId id : ids) {
          total += registry_.meta(id).bytes;
        }
      };
      add(t.working_set.fetch);
      add(t.working_set.accumulate);
      add(t.working_set.allocate);
      const Bytes capacity = options_.device_capacities[st(t.device)];
      if (total > capacity) {
        Error(LintCheck::kFeasibility,
              TaskName(t.id) + " needs " + FormatBytes(total) + " resident at once but gpu" +
                  std::to_string(t.device) + " holds " + FormatBytes(capacity) +
                  " — infeasible even with perfect eviction",
              {t.id}, kInvalidTensor, t.device);
      }
    }
  }

  // ---- deep tier ----------------------------------------------------------------------------

  // Reachability over the happens-before relation (deps + per-device order), one bitset row
  // per task, filled in reverse topological order.
  void BuildHappensBefore() {
    blocks_ = (st(n()) + 63) / 64;
    reach_.assign(st(n()) * blocks_, 0);
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const TaskId u = *it;
      std::uint64_t* row = &reach_[st(u) * blocks_];
      for (TaskId v : successors_[st(u)]) {
        row[st(v) / 64] |= std::uint64_t{1} << (st(v) % 64);
        const std::uint64_t* succ = &reach_[st(v) * blocks_];
        for (std::size_t b = 0; b < blocks_; ++b) {
          row[b] |= succ[b];
        }
      }
    }
  }

  bool Reaches(TaskId from, TaskId to) const {
    return (reach_[st(from) * blocks_ + st(to) / 64] >> (st(to) % 64)) & 1;
  }

  bool Ordered(TaskId a, TaskId b) const { return Reaches(a, b) || Reaches(b, a); }

  void BuildAccessMap() {
    accesses_.assign(st(registry_.size()), {});
    auto note = [&](TensorId id, TaskId t, bool read, bool write, bool free) {
      auto& list = accesses_[st(id)];
      if (!list.empty() && list.back().task == t) {
        list.back().read |= read;
        list.back().write |= write;
        list.back().free |= free;
        return;
      }
      list.push_back(Access{t, read, write, free});
    };
    for (const Task& t : plan_.tasks) {
      for (TensorId id : t.working_set.fetch) {
        note(id, t.id, /*read=*/true, /*write=*/false, /*free=*/false);
      }
      // Accumulate entries are read-modify-write and double as definitions (zero-init when
      // no copy exists); allocate entries are definitions of fresh contents.
      for (TensorId id : t.working_set.accumulate) {
        note(id, t.id, /*read=*/true, /*write=*/true, /*free=*/false);
      }
      for (TensorId id : t.working_set.allocate) {
        note(id, t.id, /*read=*/false, /*write=*/true, /*free=*/false);
      }
      for (TensorId id : t.dirty_outputs) {
        note(id, t.id, /*read=*/false, /*write=*/true, /*free=*/false);
      }
      for (TensorId id : t.free_after) {
        note(id, t.id, /*read=*/false, /*write=*/false, /*free=*/true);
      }
    }
  }

  // Two tasks on different devices touching the same tensor with at least one writer and no
  // ordering path is a data race: residency is move-not-copy, so who computes on which
  // bytes depends on event timing. Unordered cross-device read/read is legal but thrashy
  // (the tensor ping-pongs) — reported as a warning.
  void CheckCrossDeviceHazards() {
    for (TensorId id = 0; id < registry_.size(); ++id) {
      const auto& list = accesses_[st(id)];
      if (list.size() < 2) {
        continue;
      }
      bool multi_device = false;
      for (std::size_t i = 1; i < list.size(); ++i) {
        if (task(list[i].task).device != task(list[0].task).device) {
          multi_device = true;
          break;
        }
      }
      if (!multi_device) {
        continue;  // same-device accesses are always queue-ordered
      }
      bool reported_error = false;
      bool reported_warn = false;
      for (std::size_t i = 0; i < list.size() && !(reported_error && reported_warn); ++i) {
        for (std::size_t j = i + 1; j < list.size(); ++j) {
          const Access& a = list[i];
          const Access& b = list[j];
          if (task(a.task).device == task(b.task).device) {
            continue;
          }
          if (Ordered(a.task, b.task)) {
            continue;
          }
          const bool writes = a.write || b.write || a.free || b.free;
          if (writes && !reported_error) {
            reported_error = true;
            Error(LintCheck::kCrossDeviceHazard,
                  TensorName(id) + ": " + TaskName(a.task) + " on gpu" +
                      std::to_string(task(a.task).device) + " and " + TaskName(b.task) +
                      " on gpu" + std::to_string(task(b.task).device) +
                      " are unordered and at least one writes — cross-device WAR/WAW race",
                  {a.task, b.task}, id);
          } else if (!writes && !reported_warn) {
            reported_warn = true;
            Warn(LintCheck::kCrossDeviceHazard,
                 TensorName(id) + ": unordered cross-device readers " + TaskName(a.task) +
                     " and " + TaskName(b.task) +
                     " — legal but the single copy will ping-pong between devices",
                 {a.task, b.task}, id);
          }
          if (reported_error && reported_warn) {
            break;
          }
        }
      }
    }
  }

  void CheckLifetimes() {
    for (TensorId id = 0; id < registry_.size(); ++id) {
      const auto& list = accesses_[st(id)];
      TaskId freer = kInvalidTask;
      for (const Access& a : list) {
        if (!a.free) {
          continue;
        }
        if (freer != kInvalidTask) {
          Error(LintCheck::kLifetime,
                TensorName(id) + " freed twice: by " + TaskName(freer) + " and " +
                    TaskName(a.task),
                {freer, a.task}, id);
          break;
        }
        freer = a.task;
      }
      if (freer == kInvalidTask) {
        continue;
      }
      for (const Access& a : list) {
        if (a.task == freer || (!a.read && !a.write)) {
          continue;
        }
        if (Reaches(freer, a.task)) {
          Error(LintCheck::kLifetime,
                TensorName(id) + ": " + TaskName(a.task) + " uses it after " +
                    TaskName(freer) + " frees it",
                {freer, a.task}, id);
          break;
        }
        if (!Reaches(a.task, freer)) {
          Error(LintCheck::kLifetime,
                TensorName(id) + ": " + TaskName(a.task) + " is unordered with the free in " +
                    TaskName(freer) + " — racy end-of-life",
                {freer, a.task}, id);
          break;
        }
      }
    }
  }

  // A fetched tensor must have a defined value: either it was created with a valid host
  // copy (weights, optimizer state, input batches) or some ordered predecessor wrote it.
  // A deleted producer edge leaves the consumer fetching undefined bytes.
  void CheckUninitializedReads() {
    for (TensorId id = 0; id < registry_.size(); ++id) {
      const auto& list = accesses_[st(id)];
      if (list.empty() || registry_.state(id).host_valid) {
        continue;
      }
      for (const Access& a : list) {
        if (!a.read || a.write) {
          continue;  // accumulate zero-inits, so read-write accesses define the value
        }
        bool defined = false;
        bool racy_writer = false;
        for (const Access& w : list) {
          if (!w.write || w.task == a.task) {
            continue;
          }
          if (Reaches(w.task, a.task)) {
            defined = true;
            break;
          }
          if (!Reaches(a.task, w.task)) {
            racy_writer = true;
          }
        }
        if (!defined) {
          Error(LintCheck::kCrossDeviceHazard,
                TensorName(id) + ": " + TaskName(a.task) + " fetches it but no ordered " +
                    "predecessor writes it" +
                    (racy_writer ? " (a writer exists but is unordered with the read)"
                                 : " and it has no initial host copy"),
                {a.task}, id);
          break;  // one finding per tensor
        }
      }
    }
  }

  // JIT-update legality: a reader in iteration i must see the weight version produced by
  // the newest update from an earlier iteration — that update must be ordered before the
  // reader, or the reader computes on a stale (or torn) version.
  void CheckWeightVersions() {
    for (TensorId id = 0; id < registry_.size(); ++id) {
      if (registry_.meta(id).cls != TensorClass::kWeight) {
        continue;
      }
      const auto& list = accesses_[st(id)];
      std::vector<const Access*> updates;
      for (const Access& a : list) {
        if (a.write && task(a.task).kind == TaskKind::kUpdate) {
          updates.push_back(&a);
        }
      }
      if (updates.empty()) {
        continue;
      }
      bool reported = false;
      for (const Access& r : list) {
        if (!r.read) {
          continue;
        }
        // The newest update strictly before the reader's iteration.
        const Access* latest = nullptr;
        for (const Access* u : updates) {
          if (u->task == r.task) {
            continue;
          }
          if (task(u->task).iteration < task(r.task).iteration &&
              (latest == nullptr ||
               task(u->task).iteration > task(latest->task).iteration)) {
            latest = u;
          }
        }
        if (latest == nullptr) {
          continue;
        }
        if (!Reaches(latest->task, r.task)) {
          const bool reversed = Reaches(r.task, latest->task);
          Error(LintCheck::kStaleWeightRead,
                TensorName(id) + ": " + TaskName(r.task) + " (iteration " +
                    std::to_string(task(r.task).iteration) + ") " +
                    (reversed ? "is ordered before" : "is unordered with") + " " +
                    TaskName(latest->task) + " (iteration " +
                    std::to_string(task(latest->task).iteration) +
                    ") — it reads a weight version older than the latest update before it",
                {latest->task, r.task}, id);
          reported = true;
        }
        if (reported) {
          break;  // one finding per weight tensor
        }
      }
    }
  }

  const Plan& plan_;
  const TensorRegistry& registry_;
  const LintOptions& options_;
  LintReport report_;

  bool structure_ok_ = false;
  bool tensor_refs_broken_ = false;
  std::vector<TaskId> topo_;
  std::vector<std::vector<TaskId>> successors_;
  std::size_t blocks_ = 0;
  std::vector<std::uint64_t> reach_;
  std::vector<std::vector<Access>> accesses_;
};

}  // namespace

LintReport LintPlan(const Plan& plan, const TensorRegistry& registry,
                    const LintOptions& options) {
  return Linter(plan, registry, options).Run();
}

}  // namespace harmony
