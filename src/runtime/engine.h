// Execution engine: runs a Plan on the simulated machine.
//
// Each device executes its queue in order. Per task the engine:
//   1. waits for cross-device dependencies,
//   2. acquires the task's working set from the device's MemoryManager (which swaps/evicts
//      as needed and fires an event when everything is resident and pinned),
//   3. models compute as flops / device-effective-FLOPs (all-reduce tasks instead rendezvous
//      through the CollectiveEngine),
//   4. on completion marks outputs dirty, releases pins, frees end-of-life tensors, and
//      fires the task's completion event for dependents.
//
// With prefetch enabled the engine overlaps the *next* task's swap-ins with the current
// task's compute (the double-buffering trade-off from the paper's Sec. 4): the next working
// set is acquired best-effort, so under memory pressure the prefetch cancels itself rather
// than deadlocking the device.
#ifndef HARMONY_SRC_RUNTIME_ENGINE_H_
#define HARMONY_SRC_RUNTIME_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/hw/transfer_manager.h"
#include "src/mem/memory_manager.h"
#include "src/runtime/collective.h"
#include "src/runtime/metrics.h"
#include "src/sim/simulator.h"

namespace harmony {

struct EngineOptions {
  bool prefetch = true;         // double-buffer the next task's working set
  bool record_timeline = false;  // keep per-task start/end times (Fig. 4 rendering)
};

struct TaskTrace {
  TaskId task = kInvalidTask;
  double start = 0.0;  // compute begin (after working set resident)
  double end = 0.0;
};

class Engine {
 public:
  Engine(Simulator* sim, const Machine* machine, MemorySystem* memory,
         TransferManager* transfers, CollectiveEngine* collective, const Plan* plan,
         EngineOptions options = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executes the whole plan to completion (fatal with diagnostics on deadlock) and returns
  // the measured report.
  RunReport Run();

  const std::vector<TaskTrace>& timeline() const { return timeline_; }

 private:
  struct DeviceState {
    std::size_t next_index = 0;
  };

  struct Snapshot {
    Bytes swap_in_by_class[kNumTensorClasses] = {};
    Bytes swap_out_by_class[kNumTensorClasses] = {};
    std::vector<Bytes> swap_in_per_device;
    std::vector<Bytes> swap_out_per_device;
    Bytes p2p = 0;
    Bytes collective = 0;
  };

  void StartNextTask(int device);
  void AcquireAndRun(int device, TaskId task_id);
  void RunWithHandle(int device, TaskId task_id, MemoryManager::AcquireHandle handle);
  void FinishTask(int device, TaskId task_id, MemoryManager::AcquireHandle handle);
  void MaybePrefetch(int device);
  Snapshot TakeSnapshot() const;
  void OnIterationComplete(int iteration);
  void ReportDeadlock() const;

  Simulator* sim_;
  const Machine* machine_;
  MemorySystem* memory_;
  TransferManager* transfers_;
  CollectiveEngine* collective_;
  const Plan* plan_;
  EngineOptions options_;

  std::vector<std::unique_ptr<OneShotEvent>> completion_;
  std::vector<DeviceState> devices_;
  std::map<TaskId, MemoryManager::Acquisition> prefetched_;
  std::map<int, int> collective_group_size_;
  std::vector<int> iteration_remaining_;
  std::vector<double> iteration_end_;
  Snapshot last_snapshot_;
  double last_iteration_end_ = 0.0;

  // Per device: tensor -> ascending queue positions of tasks touching it (for the
  // lookahead-eviction oracle).
  std::vector<std::map<TensorId, std::vector<std::uint64_t>>> next_use_index_;

  std::vector<double> device_busy_;
  std::vector<TaskTrace> timeline_;
  std::vector<IterationStats> iteration_stats_;
  int completed_tasks_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_ENGINE_H_
