// Execution engine: runs a Plan on the simulated machine.
//
// Each device executes its queue in order. Per task the engine:
//   1. waits for cross-device dependencies,
//   2. acquires the task's working set from the device's MemoryManager (which swaps/evicts
//      as needed and fires an event when everything is resident and pinned),
//   3. models compute as flops / device-effective-FLOPs (all-reduce tasks instead rendezvous
//      through the CollectiveEngine),
//   4. on completion marks outputs dirty, releases pins, frees end-of-life tensors, and
//      fires the task's completion event for dependents.
//
// With prefetch enabled the engine overlaps the *next* task's swap-ins with the current
// task's compute (the double-buffering trade-off from the paper's Sec. 4): the next working
// set is acquired best-effort, so under memory pressure the prefetch cancels itself rather
// than deadlocking the device.
#ifndef HARMONY_SRC_RUNTIME_ENGINE_H_
#define HARMONY_SRC_RUNTIME_ENGINE_H_

#include <map>
#include <memory>
#include <vector>

#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/hw/transfer_manager.h"
#include "src/mem/memory_manager.h"
#include "src/runtime/checkpoint_store.h"
#include "src/runtime/collective.h"
#include "src/runtime/health_monitor.h"
#include "src/runtime/metrics.h"
#include "src/runtime/next_use.h"
#include "src/sim/simulator.h"

namespace harmony {

struct EngineOptions {
  bool prefetch = true;         // double-buffer the next task's working set
  bool record_timeline = false;  // keep per-task start/end times (Fig. 4 rendering)

  // ---- fault tolerance (all off by default: the failure-free path is byte-identical) ----
  // Checkpoint resident dirty weights + optimizer state to host after every k-th iteration
  // (0 = never). The copy-out rides the normal transfer fabric, so its cost and contention
  // are part of the measured makespan.
  int checkpoint_every = 0;
  // Also commit the checkpoint that lands on the final iteration. Normally skipped ("the
  // run is the checkpoint"), but a preemption drain ends with exactly that commit: the
  // cluster scheduler cuts a victim short and must pay the copy-out before releasing the
  // gang.
  bool checkpoint_final = false;
  // Flag the run as stalled when no task completes for this many sim seconds (0 = no
  // watchdog). Must exceed the longest single task's compute+swap latency.
  double watchdog_timeout = 0.0;
  // Set when a FaultInjector is armed on this run. Makes Run() report makespan as the last
  // productive event instead of sim idle time (fault expiries and watchdog ticks can leave
  // the sim clock past the real finish).
  bool fault_mode = false;
  // Health-monitor straggler threshold: EWMA(actual/expected task service time) above
  // which a device is classified a straggler and the segment ends gracefully at the next
  // iteration boundary (failure kind "gpu-straggler", no rollback). 0 = monitor off.
  double straggler_threshold = 0.0;
  // Ring buffer receiving committed checkpoint generations (owned by the recovery
  // coordinator; nullptr = commits are counted but not retained for verification).
  CheckpointStore* checkpoint_store = nullptr;
};

struct TaskTrace {
  TaskId task = kInvalidTask;
  double start = 0.0;  // compute begin (after working set resident)
  double end = 0.0;
};

class Engine {
 public:
  Engine(Simulator* sim, const Machine* machine, MemorySystem* memory,
         TransferManager* transfers, CollectiveEngine* collective, const Plan* plan,
         EngineOptions options = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executes the whole plan to completion (fatal with diagnostics on deadlock) and returns
  // the measured report. Under fault options a failure does not crash: the engine stops
  // dispatching, drains in-flight work, and returns a report with `failed` set.
  RunReport Run();

  // Fault-injector callback: GPU `gpu` fail-stopped at sim time `when` (its flows are
  // already aborted). The engine aborts the run — rollback/rebinding happens one level up,
  // in the recovery coordinator.
  void NotifyDeviceFailed(int gpu, SimTime when);

  // TransferManager callback: a transfer ran out of retry attempts at `when`. The engine
  // aborts with the typed failure kind "transfer-retry-exhausted"; the recovery
  // coordinator rolls back to the newest valid checkpoint without excluding any device.
  void NotifyTransferRetryExhausted(SimTime when);

  // Fault-injector callback: GPU `gpu` now computes at `scale` of its rated flops
  // (composed product of active kGpuSlow faults; 1.0 = healthy). Applies to tasks
  // dispatched from `when` on and feeds the degraded-seconds integral.
  void SetComputeScale(int gpu, double scale, SimTime when);

  const std::vector<TaskTrace>& timeline() const { return timeline_; }

 private:
  struct DeviceState {
    std::size_t next_index = 0;
  };

  struct Snapshot {
    Bytes swap_in_by_class[kNumTensorClasses] = {};
    Bytes swap_out_by_class[kNumTensorClasses] = {};
    std::vector<Bytes> swap_in_per_device;
    std::vector<Bytes> swap_out_per_device;
    Bytes p2p = 0;
    Bytes collective = 0;
  };

  void StartNextTask(int device);
  void AcquireAndRun(int device, TaskId task_id);
  void RunWithHandle(int device, TaskId task_id, MemoryManager::AcquireHandle handle);
  void FinishTask(int device, TaskId task_id, MemoryManager::AcquireHandle handle);
  void MaybePrefetch(int device);
  Snapshot TakeSnapshot() const;
  void OnIterationComplete(int iteration);
  void MaybeCheckpoint(int iteration);
  void WatchdogCheck(int last_completed);
  // Schedules the next watchdog check at an *absolute* deadline (period k lands at
  // exactly k * timeout): re-arming relative to the callback's fire time accumulates
  // FP round-off, drifting the deadlines the determinism tests pin.
  void ArmWatchdog(int last_completed);
  bool fault_mode() const {
    return options_.fault_mode || options_.checkpoint_every > 0 ||
           options_.watchdog_timeout > 0.0 || failed_;
  }
  void ReportDeadlock() const;

  Simulator* sim_;
  const Machine* machine_;
  MemorySystem* memory_;
  TransferManager* transfers_;
  CollectiveEngine* collective_;
  const Plan* plan_;
  EngineOptions options_;

  std::vector<std::unique_ptr<OneShotEvent>> completion_;
  std::vector<DeviceState> devices_;
  std::vector<SimLane> compute_lane_;  // one simulator lane per device compute stream
  std::map<TaskId, MemoryManager::Acquisition> prefetched_;
  std::map<int, int> collective_group_size_;
  std::vector<int> iteration_remaining_;
  std::vector<double> iteration_end_;
  Snapshot last_snapshot_;
  double last_iteration_end_ = 0.0;

  // Per device: each tensor's ascending queue positions with a monotone cursor (the
  // lookahead-eviction oracle answers in O(1) amortized; see next_use.h).
  std::vector<NextUseIndex> next_use_index_;

  std::vector<double> device_busy_;

  // ---- wall-clock decomposition (DESIGN.md §8) ----
  // Spans accumulate between the task lifecycle points the engine already passes through:
  // dependency wait [StartNextTask, AcquireAndRun), acquire wait [AcquireAndRun,
  // RunWithHandle) — split into transfer vs memory stall by differencing the MemorySystem's
  // inbound-busy integral — and compute/collective [RunWithHandle, FinishTask). Idle is
  // makespan minus the device's last finish, so the six buckets sum to makespan exactly on
  // failure-free runs. Pure accounting: no events are scheduled, the event order is
  // untouched, and every golden bench stdout stays byte-identical.
  std::vector<DeviceTimeBreakdown> device_time_;
  std::vector<double> dep_wait_start_;
  std::vector<double> acquire_start_;
  std::vector<double> inbound_mark_;   // InboundBusySeconds sample at acquire start
  std::vector<double> last_finish_;    // last FinishTask per device (idle anchor)

  std::vector<TaskTrace> timeline_;
  std::vector<IterationStats> iteration_stats_;
  int completed_tasks_ = 0;

  // Fault state. `aborting_` stops dispatch everywhere; in-flight events still drain so the
  // sim reaches a consistent quiet point (the drain time is the recovery coordinator's
  // "recovery latency" input).
  bool aborting_ = false;
  bool failed_ = false;
  std::string failure_kind_;
  int failed_device_ = -1;
  double failure_time_ = 0.0;
  double finish_time_ = 0.0;  // last productive event (task finish / checkpoint commit)
  int checkpoints_committed_ = 0;
  Bytes checkpoint_bytes_ = 0;
  int last_checkpoint_iteration_ = -1;
  double last_checkpoint_time_ = 0.0;

  // ---- degraded-mode resilience (DESIGN.md §11) ----
  std::int64_t watchdog_periods_ = 0;  // periods armed; deadline = anchor + periods * timeout
  double watchdog_anchor_ = 0.0;       // sim time of Run() start
  // Per-device compute multiplier from active kGpuSlow faults (1.0 = healthy) and the
  // time-integral of degraded operation (any scale < 1).
  std::vector<double> compute_scale_;
  std::vector<double> degraded_since_;  // window start while degraded; meaningful iff < 1
  std::vector<double> degraded_sec_;
  std::unique_ptr<HealthMonitor> monitor_;  // present iff straggler_threshold > 0
  bool straggler_pending_ = false;
  int straggler_device_ = -1;
};

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_ENGINE_H_
