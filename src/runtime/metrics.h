// Run reports: what a simulated training run measured.
//
// The engine snapshots memory/transfer counters at every iteration boundary so the benches
// can report *steady-state* per-iteration quantities (iteration 0 pays one-time costs:
// first-touch weight uploads, input staging), matching how the paper reports per-iteration
// swap volume.
#ifndef HARMONY_SRC_RUNTIME_METRICS_H_
#define HARMONY_SRC_RUNTIME_METRICS_H_

#include <string>
#include <vector>

#include "src/mem/memory_manager.h"
#include "src/util/units.h"

namespace harmony {

// Wall-clock taxonomy for the per-device decomposition: compute plus five stall classes.
// The engine accumulates these as spans between its task lifecycle points, so for every
// device the six buckets sum to the run's makespan *by construction* (see DESIGN.md §8;
// metrics_test asserts the invariant for every scheduler).
enum class TimeClass : int {
  kCompute = 0,          // task flops / effective FLOPs
  kStallDependency = 1,  // waiting for cross-device dependencies to fire
  kStallMemory = 2,      // waiting in Acquire with no inbound DMA in flight (eviction
                         // pressure, pinned-victim waits, FIFO queueing)
  kStallTransfer = 3,    // waiting in Acquire while inbound DMA is in flight
  kStallCollective = 4,  // all-reduce rendezvous + ring rounds
  kIdle = 5,             // device queue drained before the run finished
};
inline constexpr int kNumTimeClasses = 6;

const char* TimeClassName(TimeClass cls);

struct DeviceTimeBreakdown {
  double seconds[kNumTimeClasses] = {};

  double of(TimeClass cls) const { return seconds[static_cast<int>(cls)]; }
  double& of(TimeClass cls) { return seconds[static_cast<int>(cls)]; }
  double total() const;
  // The largest of the five non-compute classes (ties break on enum order, so the result
  // is deterministic).
  TimeClass DominantStall() const;
};

struct IterationStats {
  int iteration = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  double duration() const { return end_time - start_time; }

  // Deltas over this iteration.
  Bytes swap_in = 0;
  Bytes swap_out = 0;
  Bytes p2p_in = 0;
  Bytes collective_bytes = 0;
  Bytes swap_in_by_class[kNumTensorClasses] = {};
  Bytes swap_out_by_class[kNumTensorClasses] = {};
  std::vector<Bytes> swap_in_per_device;
  std::vector<Bytes> swap_out_per_device;

  Bytes swap_total() const { return swap_in + swap_out; }
  Bytes weight_swap_volume() const {
    return swap_in_by_class[static_cast<int>(TensorClass::kWeight)] +
           swap_out_by_class[static_cast<int>(TensorClass::kWeight)];
  }
};

struct RunReport {
  std::string scheme;
  double makespan = 0.0;
  int samples_per_iteration = 0;
  std::vector<IterationStats> iterations;

  // Whole-run, per-device.
  std::vector<double> device_busy;        // compute seconds
  std::vector<Bytes> device_swap_in;
  std::vector<Bytes> device_swap_out;
  std::vector<Bytes> device_high_water;
  std::vector<std::int64_t> device_evictions;
  std::vector<std::int64_t> device_defrags;

  // Per-device wall-clock decomposition (compute + five stall classes == makespan on
  // failure-free runs). Same length as device_busy; device_time[d].of(kCompute) equals
  // device_busy[d] exactly (both accumulate the identical per-task durations).
  std::vector<DeviceTimeBreakdown> device_time;

  // Per-link accounting over the whole run ("where did the bytes actually flow").
  struct LinkUsage {
    std::string name;      // "gpu0 -> pcie-sw0"
    Bytes bytes = 0;
    double busy_time = 0.0;
    double utilization = 0.0;  // busy_time / makespan
    double avg_queue_depth = 0.0;  // time-integral of active flows / makespan
    int max_queue_depth = 0;       // peak concurrent flows
    std::int64_t flows = 0;        // flows carried to completion
    Bytes bytes_by_kind[kNumTransferKinds] = {};  // completed-flow bytes per TransferKind
  };
  std::vector<LinkUsage> links;

  // Per-tier byte split for multi-node machines: link stats aggregated over the pcie / nic
  // / rack contention tiers (LinkTier). Empty on single-server topologies — every legacy
  // report (stdout, JSON, golden benches) stays byte-identical. The cluster conservation
  // tests assert the tiers partition the link totals and that swap bytes never leave the
  // pcie tier.
  struct TierUsage {
    std::string name;  // LinkTierName: "pcie" | "nic" | "rack"
    Bytes bytes = 0;
    double busy_time = 0.0;        // sum of member-link busy time
    std::int64_t flows = 0;        // flows carried to completion
    Bytes bytes_by_kind[kNumTransferKinds] = {};
    Bytes of(TransferKind kind) const { return bytes_by_kind[static_cast<int>(kind)]; }
  };
  std::vector<TierUsage> tiers;

  // Per-node ingress/egress by transfer kind, counted at flow start (the TransferManager's
  // endpoint-indexed view of the same bytes the MemoryCounters track per class — the
  // byte-conservation cross-check in metrics_test equates the two).
  struct NodeIo {
    std::string node;
    Bytes in_by_kind[kNumTransferKinds] = {};
    Bytes out_by_kind[kNumTransferKinds] = {};
    Bytes in_of(TransferKind kind) const { return in_by_kind[static_cast<int>(kind)]; }
    Bytes out_of(TransferKind kind) const { return out_by_kind[static_cast<int>(kind)]; }
  };
  std::vector<NodeIo> node_io;

  // Per-tensor swap churn: only tensors with at least one event appear, in ascending
  // tensor-id order. `write_backs` includes staged peer write-backs (the "Only CPU-GPU
  // Swaps" path), so summed per class these equal the MemoryCounters totals.
  struct TensorChurn {
    TensorId tensor = kInvalidTensor;
    std::string name;
    std::string cls;   // TensorClassName of the tensor's class
    Bytes bytes = 0;   // tensor size
    std::int64_t evictions = 0;
    std::int64_t clean_drops = 0;
    std::int64_t write_backs = 0;
    std::int64_t swap_ins = 0;
    std::int64_t p2p_ins = 0;
    Bytes swap_in_bytes = 0;
    Bytes swap_out_bytes = 0;
    Bytes p2p_in_bytes = 0;
    Bytes clean_drop_bytes = 0;
    // Fetches beyond the first arrival: the swap churn the paper's Fig. 2(a) counts as
    // "repeated weight swaps".
    std::int64_t refetches() const;
    Bytes moved_bytes() const { return swap_in_bytes + swap_out_bytes + p2p_in_bytes; }
  };
  std::vector<TensorChurn> tensor_churn;

  // Per-link queue-depth change points (time, active flows); recorded only when the run
  // had record_timeline set (rides into the chrome-trace export as counter tracks).
  struct LinkQueuePoint {
    double time = 0.0;
    int depth = 0;
  };
  std::vector<std::vector<LinkQueuePoint>> link_queue_timeline;

  // The hottest link (by utilization); empty name when no traffic flowed.
  const LinkUsage* BottleneckLink() const;

  // Whole-run totals.
  Bytes total_swap_in = 0;
  Bytes total_swap_out = 0;
  Bytes total_p2p = 0;
  Bytes total_collective = 0;

  // ---- fault / recovery (all zero on a failure-free run; Summary() never prints them) ----
  bool failed = false;          // the run stopped early (fail-stop or watchdog stall)
  std::string failure_kind;     // "gpu-fail-stop" | "watchdog-stall" | "gpu-straggler" |
                                // "transfer-retry-exhausted"
  int failed_device = -1;       // GPU index for gpu-fail-stop / gpu-straggler
  double failure_time = 0.0;    // sim time the failure was detected
  int checkpoints_committed = 0;
  Bytes checkpoint_bytes = 0;           // total bytes copied out across all checkpoints
  int last_checkpoint_iteration = -1;   // -1 = no committed checkpoint (restart from init)
  double last_checkpoint_time = 0.0;

  // ---- degraded-mode resilience (DESIGN.md §11; all zero on a failure-free run) ----
  std::int64_t flows_retried = 0;   // transient flow aborts re-issued by the retry tier
  std::int64_t retry_exhausted = 0;  // flows that ran out of attempts (escalated)
  double retry_backoff_sec = 0.0;    // total backoff delay inserted across all retries
  int straggler_device = -1;         // device classified as straggler; -1 = none
  std::vector<double> device_degraded_sec;  // seconds each device spent at scale < 1
  double degraded_sec = 0.0;                // sum over devices, each clamped to makespan
  int ckpt_generations = 0;       // checkpoint generations resident in the ring buffer
  int ckpt_verified_ok = 0;       // generations that passed digest verification
  int ckpt_corrupt_detected = 0;  // generations rejected by digest verification

  int num_devices() const { return static_cast<int>(device_busy.size()); }

  // Steady-state = average over iterations [1, n); falls back to iteration 0 for
  // single-iteration runs.
  double steady_iteration_time() const;
  double steady_throughput() const;  // samples / sec
  Bytes steady_swap_in() const;
  Bytes steady_swap_out() const;
  Bytes steady_swap_total() const { return steady_swap_in() + steady_swap_out(); }
  Bytes steady_weight_swap() const;
  Bytes steady_class_swap(TensorClass cls) const;  // in + out for one class
  Bytes steady_p2p() const;

  std::string Summary() const;
};

// Bottleneck attribution distilled from a RunReport: the dominant stall class per device,
// the top contended link, and the highest-churn tensors. This is what `harmony_sim
// --explain` prints and what the Tuner embeds in winning configurations.
struct AttributionReport {
  struct DeviceStall {
    int device = -1;
    TimeClass dominant = TimeClass::kIdle;
    double seconds = 0.0;
    double fraction = 0.0;  // seconds / makespan
  };
  std::vector<DeviceStall> devices;

  // Device whose dominant stall eats the largest makespan fraction (the machine-wide
  // headline); -1 when the report has no devices.
  int worst_device = -1;

  std::string bottleneck_link;  // empty when no traffic flowed
  double bottleneck_utilization = 0.0;
  double bottleneck_queue_depth = 0.0;  // average over the run
  Bytes bottleneck_bytes = 0;

  std::vector<RunReport::TensorChurn> top_churn;  // by moved_bytes(), descending

  // Per-tier byte splits mirrored from the RunReport. Empty on single-server machines;
  // Render() only prints the section when non-empty (legacy output byte-identical).
  std::vector<RunReport::TierUsage> tiers;

  // Resilience scalars mirrored from the RunReport (all zero / -1 on a failure-free run;
  // Render() only prints the section when something is nonzero, keeping historical output
  // byte-identical).
  std::int64_t flows_retried = 0;
  std::int64_t retry_exhausted = 0;
  double retry_backoff_sec = 0.0;
  double degraded_sec = 0.0;
  int straggler_device = -1;
  int ckpt_verified_ok = 0;
  int ckpt_corrupt_detected = 0;

  std::string Summary() const;  // one line, for tables / tuner rows
  std::string Render() const;   // multi-line human-readable report
};

// Distills `report` into an attribution; `top_tensors` caps the churn list.
AttributionReport Attribute(const RunReport& report, int top_tensors = 5);

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_METRICS_H_
