// Run reports: what a simulated training run measured.
//
// The engine snapshots memory/transfer counters at every iteration boundary so the benches
// can report *steady-state* per-iteration quantities (iteration 0 pays one-time costs:
// first-touch weight uploads, input staging), matching how the paper reports per-iteration
// swap volume.
#ifndef HARMONY_SRC_RUNTIME_METRICS_H_
#define HARMONY_SRC_RUNTIME_METRICS_H_

#include <string>
#include <vector>

#include "src/mem/memory_manager.h"
#include "src/util/units.h"

namespace harmony {

struct IterationStats {
  int iteration = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  double duration() const { return end_time - start_time; }

  // Deltas over this iteration.
  Bytes swap_in = 0;
  Bytes swap_out = 0;
  Bytes p2p_in = 0;
  Bytes collective_bytes = 0;
  Bytes swap_in_by_class[kNumTensorClasses] = {};
  Bytes swap_out_by_class[kNumTensorClasses] = {};
  std::vector<Bytes> swap_in_per_device;
  std::vector<Bytes> swap_out_per_device;

  Bytes swap_total() const { return swap_in + swap_out; }
  Bytes weight_swap_volume() const {
    return swap_in_by_class[static_cast<int>(TensorClass::kWeight)] +
           swap_out_by_class[static_cast<int>(TensorClass::kWeight)];
  }
};

struct RunReport {
  std::string scheme;
  double makespan = 0.0;
  int samples_per_iteration = 0;
  std::vector<IterationStats> iterations;

  // Whole-run, per-device.
  std::vector<double> device_busy;        // compute seconds
  std::vector<Bytes> device_swap_in;
  std::vector<Bytes> device_swap_out;
  std::vector<Bytes> device_high_water;
  std::vector<std::int64_t> device_evictions;
  std::vector<std::int64_t> device_defrags;

  // Per-link accounting over the whole run ("where did the bytes actually flow").
  struct LinkUsage {
    std::string name;      // "gpu0 -> pcie-sw0"
    Bytes bytes = 0;
    double busy_time = 0.0;
    double utilization = 0.0;  // busy_time / makespan
  };
  std::vector<LinkUsage> links;

  // The hottest link (by utilization); empty name when no traffic flowed.
  const LinkUsage* BottleneckLink() const;

  // Whole-run totals.
  Bytes total_swap_in = 0;
  Bytes total_swap_out = 0;
  Bytes total_p2p = 0;
  Bytes total_collective = 0;

  // ---- fault / recovery (all zero on a failure-free run; Summary() never prints them) ----
  bool failed = false;          // the run stopped early (fail-stop or watchdog stall)
  std::string failure_kind;     // "gpu-fail-stop" | "watchdog-stall"
  int failed_device = -1;       // GPU index for gpu-fail-stop
  double failure_time = 0.0;    // sim time the failure was detected
  int checkpoints_committed = 0;
  Bytes checkpoint_bytes = 0;           // total bytes copied out across all checkpoints
  int last_checkpoint_iteration = -1;   // -1 = no committed checkpoint (restart from init)
  double last_checkpoint_time = 0.0;

  int num_devices() const { return static_cast<int>(device_busy.size()); }

  // Steady-state = average over iterations [1, n); falls back to iteration 0 for
  // single-iteration runs.
  double steady_iteration_time() const;
  double steady_throughput() const;  // samples / sec
  Bytes steady_swap_in() const;
  Bytes steady_swap_out() const;
  Bytes steady_swap_total() const { return steady_swap_in() + steady_swap_out(); }
  Bytes steady_weight_swap() const;
  Bytes steady_class_swap(TensorClass cls) const;  // in + out for one class
  Bytes steady_p2p() const;

  std::string Summary() const;
};

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_METRICS_H_
