#include "src/runtime/demand.h"

#include <algorithm>
#include <map>

#include "src/util/check.h"

namespace harmony {

std::vector<Bytes> ComputeMemoryDemand(const Plan& plan, const TensorRegistry& registry) {
  const int n = static_cast<int>(plan.tasks.size());
  const int D = plan.num_devices();
  std::vector<bool> executed(static_cast<std::size_t>(n), false);
  std::vector<std::size_t> head(static_cast<std::size_t>(D), 0);

  std::map<TensorId, int> home;  // live tensor -> device
  std::vector<Bytes> live(static_cast<std::size_t>(D), 0);
  std::vector<Bytes> peak(static_cast<std::size_t>(D), 0);

  auto deps_met = [&](const Task& task) {
    for (TaskId dep : task.deps) {
      if (!executed[static_cast<std::size_t>(dep)]) {
        return false;
      }
    }
    return true;
  };

  auto touch = [&](TensorId id, int device) {
    const Bytes bytes = registry.meta(id).bytes;
    auto it = home.find(id);
    if (it == home.end()) {
      home.emplace(id, device);
      live[static_cast<std::size_t>(device)] += bytes;
    } else if (it->second != device) {
      live[static_cast<std::size_t>(it->second)] -= bytes;
      live[static_cast<std::size_t>(device)] += bytes;
      it->second = device;
    }
  };

  // All-reduce rendezvous bookkeeping mirrors the numeric executor.
  std::map<int, std::vector<const Task*>> arrived;
  std::map<int, int> group_size;
  for (const Task& task : plan.tasks) {
    if (task.kind == TaskKind::kAllReduce) {
      ++group_size[task.collective_group];
    }
  }

  auto run_task = [&](const Task& task) {
    const int d = task.device;
    for (TensorId id : task.working_set.fetch) {
      touch(id, d);
    }
    for (TensorId id : task.working_set.accumulate) {
      touch(id, d);
    }
    for (TensorId id : task.working_set.allocate) {
      touch(id, d);
    }
    peak[static_cast<std::size_t>(d)] =
        std::max(peak[static_cast<std::size_t>(d)],
                 live[static_cast<std::size_t>(d)] + task.working_set.scratch_bytes);
    for (TensorId id : task.free_after) {
      auto it = home.find(id);
      HCHECK(it != home.end());
      live[static_cast<std::size_t>(it->second)] -= registry.meta(id).bytes;
      home.erase(it);
    }
    executed[static_cast<std::size_t>(task.id)] = true;
  };

  int remaining = n;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (int d = 0; d < D; ++d) {
      const auto& order = plan.per_device_order[static_cast<std::size_t>(d)];
      while (head[static_cast<std::size_t>(d)] < order.size()) {
        const Task& task =
            plan.tasks[static_cast<std::size_t>(order[head[static_cast<std::size_t>(d)]])];
        if (!deps_met(task)) {
          break;
        }
        if (task.kind == TaskKind::kAllReduce) {
          auto& members = arrived[task.collective_group];
          members.push_back(&task);
          ++head[static_cast<std::size_t>(d)];
          progress = true;
          if (static_cast<int>(members.size()) == group_size.at(task.collective_group)) {
            for (const Task* member : members) {
              run_task(*member);
              --remaining;
            }
            arrived.erase(task.collective_group);
          }
          continue;
        }
        run_task(task);
        --remaining;
        ++head[static_cast<std::size_t>(d)];
        progress = true;
      }
    }
  }
  HCHECK_EQ(remaining, 0) << "demand analysis stalled on plan " << plan.scheme;
  return peak;
}

}  // namespace harmony
