#include "src/runtime/collective.h"

#include <algorithm>

#include "src/util/check.h"

namespace harmony {

CollectiveEngine::CollectiveEngine(Simulator* sim, TransferManager* transfers)
    : sim_(sim), transfers_(transfers) {}

void CollectiveEngine::Arrive(int group, int device_index, Bytes bytes, int expected,
                              std::function<void()> on_done) {
  HCHECK_GT(expected, 0);
  Group& state = groups_[group];
  if (state.devices.empty()) {
    state.expected = expected;
    state.bytes = bytes;
  } else {
    HCHECK_EQ(state.expected, expected) << "collective group " << group << " size mismatch";
    HCHECK_EQ(state.bytes, bytes) << "collective group " << group << " byte mismatch";
  }
  state.devices.push_back(device_index);
  state.callbacks.push_back(std::move(on_done));
  HCHECK_LE(static_cast<int>(state.devices.size()), expected);

  if (static_cast<int>(state.devices.size()) < expected) {
    return;
  }

  Group ready = std::move(state);
  groups_.erase(group);
  std::sort(ready.devices.begin(), ready.devices.end());
  if (ready.expected == 1 || ready.bytes == 0) {
    // Nothing to reduce across devices; complete asynchronously for uniform semantics.
    sim_->ScheduleAfter(0.0, [callbacks = std::move(ready.callbacks)] {
      for (const auto& cb : callbacks) {
        cb();
      }
    });
    return;
  }
  if (TryRunHierarchical(ready)) {
    return;
  }
  RunRound(std::move(ready), 0);
}

bool CollectiveEngine::TryRunHierarchical(Group& group_state) {
  const Topology& topo = transfers_->topology();
  if (topo.num_servers() <= 1) {
    return false;
  }
  // Partition the (sorted) members by server. Node-major device indexing keeps each
  // server's member list sorted, so the whole script is a deterministic function of the
  // group — a requirement for byte-identical runs at any --sim_threads.
  std::map<int, std::vector<int>> by_node;
  for (int device : group_state.devices) {
    by_node[topo.ServerOfGpu(device)].push_back(device);
  }
  const std::size_t m = by_node.size();
  if (m <= 1) {
    return false;  // single-server replica set: flat ring, legacy path
  }
  const std::size_t k = by_node.begin()->second.size();
  for (const auto& [node, members] : by_node) {
    if (members.size() != k) {
      return false;  // uneven membership: flat ring handles it correctly, if slower
    }
  }
  std::vector<std::vector<int>> nodes;
  nodes.reserve(m);
  for (auto& [node, members] : by_node) {
    nodes.push_back(std::move(members));
  }

  ++hierarchical_groups_run_;
  auto script = std::make_shared<Script>();
  script->callbacks = std::move(group_state.callbacks);
  const Bytes chunk = (group_state.bytes + static_cast<Bytes>(k) - 1) / static_cast<Bytes>(k);

  // Phase 1 — intra-node ring reduce-scatter: after k-1 rounds member j of every node owns
  // its node's partial sum of shard j (size `chunk`).
  const auto intra_ring_rounds = [&] {
    for (std::size_t r = 0; r + 1 < k; ++r) {
      std::vector<Hop> round;
      round.reserve(m * k);
      for (const std::vector<int>& members : nodes) {
        for (std::size_t i = 0; i < k; ++i) {
          round.push_back(Hop{members[i], members[(i + 1) % k], chunk});
        }
      }
      script->rounds.push_back(std::move(round));
    }
  };
  intra_ring_rounds();

  // Phase 2 — inter-node tree: recursive-halving reduce-scatter then recursive-doubling
  // all-gather over the m node representatives of each shard j, all shards in parallel.
  // With m not a power of two, the `rem` extra nodes fold into the first p (pre-round)
  // and unfold at the end (post-round), the classic pof2 reduction.
  std::size_t p = 1;
  while (p * 2 <= m) {
    p *= 2;
  }
  const std::size_t rem = m - p;
  std::size_t levels = 0;
  while ((std::size_t{1} << (levels + 1)) <= p) {
    ++levels;
  }
  const auto rep = [&nodes](std::size_t node, std::size_t j) {
    return nodes[node][j];
  };
  if (rem > 0) {
    std::vector<Hop> round;
    round.reserve(rem * k);
    for (std::size_t e = 0; e < rem; ++e) {
      for (std::size_t j = 0; j < k; ++j) {
        round.push_back(Hop{rep(p + e, j), rep(e, j), chunk});
      }
    }
    script->rounds.push_back(std::move(round));
  }
  // Halving: round t pairs nodes at distance p >> (t+1), exchanging chunk / 2^(t+1) each
  // direction. Doubling mirrors it with the per-round block size growing back to `chunk`.
  for (std::size_t t = 0; t < levels; ++t) {
    const std::size_t distance = p >> (t + 1);
    const Bytes denom = Bytes{1} << (t + 1);
    const Bytes block = (chunk + denom - 1) / denom;
    std::vector<Hop> round;
    round.reserve(p * k);
    for (std::size_t a = 0; a < p; ++a) {
      const std::size_t partner = a ^ distance;
      for (std::size_t j = 0; j < k; ++j) {
        round.push_back(Hop{rep(a, j), rep(partner, j), block});
      }
    }
    script->rounds.push_back(std::move(round));
  }
  for (std::size_t t = 0; t < levels; ++t) {
    const std::size_t distance = std::size_t{1} << t;
    const Bytes denom = Bytes{1} << (levels - t);
    const Bytes block = (chunk + denom - 1) / denom;
    std::vector<Hop> round;
    round.reserve(p * k);
    for (std::size_t a = 0; a < p; ++a) {
      const std::size_t partner = a ^ distance;
      for (std::size_t j = 0; j < k; ++j) {
        round.push_back(Hop{rep(a, j), rep(partner, j), block});
      }
    }
    script->rounds.push_back(std::move(round));
  }
  if (rem > 0) {
    std::vector<Hop> round;
    round.reserve(rem * k);
    for (std::size_t e = 0; e < rem; ++e) {
      for (std::size_t j = 0; j < k; ++j) {
        round.push_back(Hop{rep(e, j), rep(p + e, j), chunk});
      }
    }
    script->rounds.push_back(std::move(round));
  }

  // Phase 3 — intra-node ring all-gather: k-1 more intra rounds spread every node's fully
  // reduced shards back to all of its members.
  intra_ring_rounds();

  RunScriptedRound(std::move(script), 0);
  return true;
}

void CollectiveEngine::RunScriptedRound(std::shared_ptr<Script> script, std::size_t round) {
  if (round == script->rounds.size()) {
    for (const auto& cb : script->callbacks) {
      cb();
    }
    return;
  }
  const Topology& topo = transfers_->topology();
  const std::vector<Hop>& hops = script->rounds[round];
  auto barrier = std::make_shared<CountdownEvent>(sim_, static_cast<int>(hops.size()));
  for (const Hop& hop : hops) {
    total_bytes_moved_ += hop.bytes;
    if (topo.ServerOfGpu(hop.src_device) == topo.ServerOfGpu(hop.dst_device)) {
      intra_node_bytes_moved_ += hop.bytes;
    } else {
      inter_node_bytes_moved_ += hop.bytes;
    }
    OneShotEvent* done =
        transfers_->StartTransfer(topo.gpu_node(hop.src_device), topo.gpu_node(hop.dst_device),
                                  hop.bytes, TransferKind::kCollective);
    done->OnFired([barrier] { barrier->Arrive(); });
  }
  barrier->OnFired([this, script = std::move(script), round]() mutable {
    RunScriptedRound(std::move(script), round + 1);
  });
}

void CollectiveEngine::RunRound(Group group_state, int round) {
  const int n = group_state.expected;
  const int total_rounds = 2 * (n - 1);  // reduce-scatter + all-gather
  if (round == total_rounds) {
    for (const auto& cb : group_state.callbacks) {
      cb();
    }
    return;
  }
  const Bytes chunk = (group_state.bytes + n - 1) / n;
  const Topology& topo = transfers_->topology();
  auto barrier = std::make_shared<CountdownEvent>(sim_, n);
  for (int i = 0; i < n; ++i) {
    const NodeId src = topo.gpu_node(group_state.devices[static_cast<std::size_t>(i)]);
    const NodeId dst =
        topo.gpu_node(group_state.devices[static_cast<std::size_t>((i + 1) % n)]);
    total_bytes_moved_ += chunk;
    OneShotEvent* done = transfers_->StartTransfer(src, dst, chunk, TransferKind::kCollective);
    done->OnFired([barrier] { barrier->Arrive(); });
  }
  barrier->OnFired([this, group_state = std::move(group_state), round]() mutable {
    RunRound(std::move(group_state), round + 1);
  });
}

}  // namespace harmony
