#include "src/runtime/collective.h"

#include <algorithm>

#include "src/util/check.h"

namespace harmony {

CollectiveEngine::CollectiveEngine(Simulator* sim, TransferManager* transfers)
    : sim_(sim), transfers_(transfers) {}

void CollectiveEngine::Arrive(int group, int device_index, Bytes bytes, int expected,
                              std::function<void()> on_done) {
  HCHECK_GT(expected, 0);
  Group& state = groups_[group];
  if (state.devices.empty()) {
    state.expected = expected;
    state.bytes = bytes;
  } else {
    HCHECK_EQ(state.expected, expected) << "collective group " << group << " size mismatch";
    HCHECK_EQ(state.bytes, bytes) << "collective group " << group << " byte mismatch";
  }
  state.devices.push_back(device_index);
  state.callbacks.push_back(std::move(on_done));
  HCHECK_LE(static_cast<int>(state.devices.size()), expected);

  if (static_cast<int>(state.devices.size()) < expected) {
    return;
  }

  Group ready = std::move(state);
  groups_.erase(group);
  std::sort(ready.devices.begin(), ready.devices.end());
  if (ready.expected == 1 || ready.bytes == 0) {
    // Nothing to reduce across devices; complete asynchronously for uniform semantics.
    sim_->ScheduleAfter(0.0, [callbacks = std::move(ready.callbacks)] {
      for (const auto& cb : callbacks) {
        cb();
      }
    });
    return;
  }
  RunRound(std::move(ready), 0);
}

void CollectiveEngine::RunRound(Group group_state, int round) {
  const int n = group_state.expected;
  const int total_rounds = 2 * (n - 1);  // reduce-scatter + all-gather
  if (round == total_rounds) {
    for (const auto& cb : group_state.callbacks) {
      cb();
    }
    return;
  }
  const Bytes chunk = (group_state.bytes + n - 1) / n;
  const Topology& topo = transfers_->topology();
  auto barrier = std::make_shared<CountdownEvent>(sim_, n);
  for (int i = 0; i < n; ++i) {
    const NodeId src = topo.gpu_node(group_state.devices[static_cast<std::size_t>(i)]);
    const NodeId dst =
        topo.gpu_node(group_state.devices[static_cast<std::size_t>((i + 1) % n)]);
    total_bytes_moved_ += chunk;
    OneShotEvent* done = transfers_->StartTransfer(src, dst, chunk, TransferKind::kCollective);
    done->OnFired([barrier] { barrier->Arrive(); });
  }
  barrier->OnFired([this, group_state = std::move(group_state), round]() mutable {
    RunRound(std::move(group_state), round + 1);
  });
}

}  // namespace harmony
