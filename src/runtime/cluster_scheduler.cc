#include "src/runtime/cluster_scheduler.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/graph/model_zoo.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace harmony {
namespace {

// Reserved shares on one node may not exceed the full link; the epsilon absorbs the
// floating-point dust of summing parsed fractions.
constexpr double kReservationEps = 1e-9;

// Generated traces are bounded so a fat-fingered rate can't silently turn into a
// multi-hour simulation; the limit is far above any bench or test workload.
constexpr int kMaxTraceJobs = 4096;

struct Field {
  std::string text;
  std::size_t offset = 0;  // absolute byte offset in the spec string
};

Status Malformed(const char* what, std::size_t offset, const std::string& why) {
  return InvalidArgumentError("malformed " + std::string(what) + " spec: " + why +
                              " (at byte " + std::to_string(offset) +
                              "; see --help for the grammar)");
}

std::vector<Field> Split(const std::string& s, char sep) {
  std::vector<Field> out;
  std::string::size_type start = 0;
  for (;;) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(Field{s.substr(start), start});
      return out;
    }
    out.push_back(Field{s.substr(start, pos - start), start});
    start = pos + 1;
  }
}

StatusOr<double> ParseNonNegative(const char* what, const Field& field,
                                  const std::string& key) {
  char* end = nullptr;
  const double value = std::strtod(field.text.c_str(), &end);
  if (field.text.empty() || end != field.text.c_str() + field.text.size() ||
      !std::isfinite(value) || value < 0.0) {
    return Malformed(what, field.offset, key + " must be a finite number >= 0, got '" +
                                             field.text + "'");
  }
  return value;
}

StatusOr<int> ParseIntField(const char* what, const Field& field, const std::string& key,
                            int min_value, int max_value) {
  char* end = nullptr;
  const long value = std::strtol(field.text.c_str(), &end, 10);
  if (field.text.empty() || end != field.text.c_str() + field.text.size() ||
      value < min_value || value > max_value) {
    return Malformed(what, field.offset,
                     key + " must be an integer in [" + std::to_string(min_value) + ", " +
                         std::to_string(max_value) + "], got '" + field.text + "'");
  }
  return static_cast<int>(value);
}

bool ValidTenantName(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) {
      return false;
    }
  }
  return true;
}

StatusOr<Scheme> TrainingSchemeByName(const char* what, const Field& field) {
  if (field.text == "baseline-dp") {
    return Scheme::kBaselineDp;
  }
  if (field.text == "baseline-pp") {
    return Scheme::kBaselinePp;
  }
  if (field.text == "harmony-dp") {
    return Scheme::kHarmonyDp;
  }
  if (field.text == "harmony-pp") {
    return Scheme::kHarmonyPp;
  }
  if (field.text == "harmony-tp") {
    return Scheme::kHarmonyTp;
  }
  return Malformed(what, field.offset,
                   "unknown training scheme '" + field.text +
                       "' (serving jobs use serve@; training schemes are baseline-dp, "
                       "baseline-pp, harmony-dp, harmony-pp, harmony-tp)");
}

// Shortest decimal that round-trips to the same double (the ReportToJson rule), shared by
// the canonical --jobs rendering and the JSON export: bursty-trace arrivals staggered by
// 1e-3 at large t must stay distinct, and the bytes must be stable across runs and
// thread counts.
std::string RoundTripNumber(double value) {
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) {
      break;
    }
  }
  return buffer;
}

}  // namespace

std::string JobSpec::ToString() const {
  std::string out = kind == JobKind::kServing ? "serve@" : "train@";
  out += RoundTripNumber(arrival);
  out += ":tenant=" + tenant;
  out += ",model=" + model;
  if (kind == JobKind::kTraining) {
    out += ",scheme=" + std::string(SchemeName(scheme));
  }
  out += ",gpus=" + std::to_string(gpus);
  out += ",iters=" + std::to_string(iterations);
  out += ",mb=" + std::to_string(microbatches);
  out += ",mbs=" + std::to_string(microbatch_size);
  out += ",prio=" + std::to_string(priority);
  return out;
}

StatusOr<std::vector<JobSpec>> ParseJobsSpec(const std::string& spec) {
  std::vector<JobSpec> jobs;
  for (const Field& entry : Split(spec, ';')) {
    if (entry.text.empty()) {
      continue;
    }
    const auto at = entry.text.find('@');
    if (at == std::string::npos) {
      return Malformed("jobs", entry.offset,
                       "expected (train|serve)@<arrival>[:key=value,...], got '" +
                           entry.text + "'");
    }
    JobSpec job;
    const std::string kind = entry.text.substr(0, at);
    if (kind == "train") {
      job.kind = JobKind::kTraining;
    } else if (kind == "serve") {
      job.kind = JobKind::kServing;
      job.scheme = Scheme::kServing;
      job.microbatch_size = 1;
    } else {
      return Malformed("jobs", entry.offset,
                       "job kind must be 'train' or 'serve', got '" + kind + "'");
    }
    const auto colon = entry.text.find(':', at + 1);
    const std::string when_text = entry.text.substr(
        at + 1, colon == std::string::npos ? std::string::npos : colon - at - 1);
    const StatusOr<double> when =
        ParseNonNegative("jobs", Field{when_text, entry.offset + at + 1}, "arrival time");
    if (!when.ok()) {
      return when.status();
    }
    job.arrival = when.value();
    bool seen[8] = {};  // tenant model scheme gpus iters mb mbs prio
    if (colon != std::string::npos) {
      const std::string opts = entry.text.substr(colon + 1);
      for (const Field& raw : Split(opts, ',')) {
        const Field kv{raw.text, entry.offset + colon + 1 + raw.offset};
        if (kv.text.empty()) {
          continue;
        }
        const auto eq = kv.text.find('=');
        if (eq == std::string::npos) {
          return Malformed("jobs", kv.offset, "expected key=value, got '" + kv.text + "'");
        }
        const std::string key = kv.text.substr(0, eq);
        const Field value{kv.text.substr(eq + 1), kv.offset + eq + 1};
        int slot;
        if (key == "tenant") {
          slot = 0;
        } else if (key == "model") {
          slot = 1;
        } else if (key == "scheme") {
          slot = 2;
        } else if (key == "gpus") {
          slot = 3;
        } else if (key == "iters") {
          slot = 4;
        } else if (key == "mb") {
          slot = 5;
        } else if (key == "mbs") {
          slot = 6;
        } else if (key == "prio") {
          slot = 7;
        } else {
          return Malformed("jobs", kv.offset, "unknown job option '" + key + "'");
        }
        if (seen[slot]) {
          return Malformed("jobs", kv.offset, "duplicate job option '" + key + "'");
        }
        seen[slot] = true;
        switch (slot) {
          case 0:
            if (!ValidTenantName(value.text)) {
              return Malformed("jobs", value.offset,
                               "tenant must be a nonempty [A-Za-z0-9_.-]+ name, got '" +
                                   value.text + "'");
            }
            job.tenant = value.text;
            break;
          case 1:
            if (value.text.empty()) {
              return Malformed("jobs", value.offset, "model must be nonempty");
            }
            job.model = value.text;
            break;
          case 2: {
            if (job.kind == JobKind::kServing) {
              return Malformed("jobs", kv.offset,
                               "serving jobs have a fixed scheme; drop 'scheme='");
            }
            const StatusOr<Scheme> scheme = TrainingSchemeByName("jobs", value);
            if (!scheme.ok()) {
              return scheme.status();
            }
            job.scheme = scheme.value();
            break;
          }
          case 3: {
            const StatusOr<int> v = ParseIntField("jobs", value, key, 1, 1 << 20);
            if (!v.ok()) {
              return v.status();
            }
            job.gpus = v.value();
            break;
          }
          case 4: {
            const StatusOr<int> v = ParseIntField("jobs", value, key, 1, 1 << 20);
            if (!v.ok()) {
              return v.status();
            }
            job.iterations = v.value();
            break;
          }
          case 5: {
            const StatusOr<int> v = ParseIntField("jobs", value, key, 1, 1 << 20);
            if (!v.ok()) {
              return v.status();
            }
            job.microbatches = v.value();
            break;
          }
          case 6: {
            const StatusOr<int> v = ParseIntField("jobs", value, key, 1, 1 << 20);
            if (!v.ok()) {
              return v.status();
            }
            job.microbatch_size = v.value();
            break;
          }
          default: {
            const StatusOr<int> v = ParseIntField("jobs", value, key, 0, 1 << 20);
            if (!v.ok()) {
              return v.status();
            }
            job.priority = v.value();
            break;
          }
        }
      }
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

StatusOr<std::vector<JobSpec>> GenerateTrace(const std::string& spec, int gpus_per_node,
                                             int num_nodes,
                                             const std::string& default_model) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon == std::string::npos ? spec.size() : colon);
  const bool poisson = kind == "poisson";
  const bool bursty = kind == "bursty";
  const bool diurnal = kind == "diurnal";
  if (!poisson && !bursty && !diurnal) {
    return Malformed("trace", 0,
                     "trace kind must be poisson, bursty, or diurnal, got '" + kind + "'");
  }
  bool seen[6] = {};  // seed rate horizon serve_frac burst period
  std::uint64_t seed = 0;
  double rate = 0.0, horizon = 0.0, serve_frac = 0.25, period = 0.0;
  int burst = 0;
  if (colon != std::string::npos) {
    for (const Field& kv : Split(spec.substr(colon + 1), ',')) {
      const Field entry{kv.text, colon + 1 + kv.offset};
      if (entry.text.empty()) {
        continue;
      }
      const auto eq = entry.text.find('=');
      if (eq == std::string::npos) {
        return Malformed("trace", entry.offset,
                         "expected key=value, got '" + entry.text + "'");
      }
      const std::string key = entry.text.substr(0, eq);
      const Field value{entry.text.substr(eq + 1), entry.offset + eq + 1};
      int slot;
      if (key == "seed") {
        slot = 0;
      } else if (key == "rate") {
        slot = 1;
      } else if (key == "horizon") {
        slot = 2;
      } else if (key == "serve_frac") {
        slot = 3;
      } else if (key == "burst") {
        slot = 4;
      } else if (key == "period") {
        slot = 5;
      } else {
        return Malformed("trace", entry.offset, "unknown trace option '" + key + "'");
      }
      if (seen[slot]) {
        return Malformed("trace", entry.offset, "duplicate trace option '" + key + "'");
      }
      seen[slot] = true;
      switch (slot) {
        case 0: {
          char* end = nullptr;
          errno = 0;
          const unsigned long long parsed = std::strtoull(value.text.c_str(), &end, 10);
          if (value.text.empty() || end != value.text.c_str() + value.text.size() ||
              errno == ERANGE) {
            return Malformed("trace", value.offset,
                             "seed must be an unsigned integer, got '" + value.text + "'");
          }
          seed = parsed;
          break;
        }
        case 1: {
          const StatusOr<double> v = ParseNonNegative("trace", value, key);
          if (!v.ok()) {
            return v.status();
          }
          if (v.value() <= 0.0) {
            return Malformed("trace", value.offset, "rate must be > 0 jobs/s");
          }
          rate = v.value();
          break;
        }
        case 2: {
          const StatusOr<double> v = ParseNonNegative("trace", value, key);
          if (!v.ok()) {
            return v.status();
          }
          if (v.value() <= 0.0) {
            return Malformed("trace", value.offset, "horizon must be > 0 seconds");
          }
          horizon = v.value();
          break;
        }
        case 3: {
          const StatusOr<double> v = ParseNonNegative("trace", value, key);
          if (!v.ok()) {
            return v.status();
          }
          if (v.value() > 1.0) {
            return Malformed("trace", value.offset, "serve_frac must be in [0, 1]");
          }
          serve_frac = v.value();
          break;
        }
        case 4: {
          const StatusOr<int> v = ParseIntField("trace", value, key, 1, kMaxTraceJobs);
          if (!v.ok()) {
            return v.status();
          }
          burst = v.value();
          break;
        }
        default: {
          const StatusOr<double> v = ParseNonNegative("trace", value, key);
          if (!v.ok()) {
            return v.status();
          }
          if (v.value() <= 0.0) {
            return Malformed("trace", value.offset, "period must be > 0 seconds");
          }
          period = v.value();
          break;
        }
      }
    }
  }
  if (!seen[0] || !seen[1] || !seen[2]) {
    return Malformed("trace", 0, "seed=, rate=, and horizon= are required");
  }
  if (bursty && (burst == 0 || period == 0.0)) {
    return Malformed("trace", 0, "bursty traces require burst= and period=");
  }
  if (diurnal && period == 0.0) {
    return Malformed("trace", 0, "diurnal traces require period=");
  }
  if (poisson && (seen[4] || seen[5])) {
    return Malformed("trace", 0, "burst=/period= do not apply to poisson traces");
  }
  // Diurnal *requires* period=, so only burst= is foreign there.
  if (diurnal && seen[4]) {
    return Malformed("trace", 0, "burst= only applies to bursty traces");
  }

  Rng rng(seed);
  std::vector<double> arrivals;
  // Exponential inter-arrivals (the fault_plan MTBF idiom); diurnal thins a 2x-rate
  // stream against the sinusoidal day curve, so the *expected* rate integrates to `rate`.
  const double base_rate = diurnal ? 2.0 * rate : rate;
  double t = 0.0;
  for (;;) {
    t += -std::log(1.0 - rng.NextDouble()) / base_rate;
    if (t > horizon) {
      break;
    }
    if (diurnal &&
        !(rng.NextDouble() < 0.5 * (1.0 + std::sin(2.0 * 3.141592653589793 * t / period)))) {
      continue;
    }
    arrivals.push_back(t);
    if (static_cast<int>(arrivals.size()) > kMaxTraceJobs) {
      return Malformed("trace", 0,
                       "trace generates more than " + std::to_string(kMaxTraceJobs) +
                           " jobs; lower rate or horizon");
    }
  }
  if (bursty) {
    for (double b = period; b <= horizon; b += period) {
      for (int i = 0; i < burst; ++i) {
        // A millisecond stagger keeps burst arrivals distinct (and the event order
        // independent of submission index tie-breaking).
        arrivals.push_back(b + 1e-3 * static_cast<double>(i));
      }
      if (static_cast<int>(arrivals.size()) > kMaxTraceJobs) {
        return Malformed("trace", 0,
                         "trace generates more than " + std::to_string(kMaxTraceJobs) +
                             " jobs; lower rate, burst, or horizon");
      }
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end());

  std::vector<JobSpec> jobs;
  jobs.reserve(arrivals.size());
  for (double when : arrivals) {
    JobSpec job;
    job.arrival = when;
    job.model = default_model;
    job.tenant = "t" + std::to_string(rng.NextBounded(4));
    job.priority = static_cast<int>(rng.NextBounded(3));
    const bool serving = rng.NextDouble() < serve_frac;
    if (serving) {
      job.kind = JobKind::kServing;
      job.scheme = Scheme::kServing;
      // Small pipeline gangs: serving packs models onto few GPUs and relies on swapping.
      job.gpus = std::min(gpus_per_node, 1 << static_cast<int>(rng.NextBounded(2)));
      job.iterations = 1 + static_cast<int>(rng.NextBounded(3));
      job.microbatches = 2 + static_cast<int>(rng.NextBounded(3));
      job.microbatch_size = 1;
    } else {
      job.kind = JobKind::kTraining;
      const bool dp = rng.NextBounded(2) == 0;
      job.scheme = dp ? Scheme::kHarmonyDp : Scheme::kHarmonyPp;
      if (dp && num_nodes > 1 && rng.NextBounded(4) == 0) {
        job.gpus = 2 * gpus_per_node;  // whole-node gang pair: exercises NIC-tier traffic
      } else {
        const int cap = std::min(gpus_per_node, 4);
        int pick = 1 << static_cast<int>(rng.NextBounded(3));
        job.gpus = std::min(pick, cap);
      }
      job.iterations = 2 + static_cast<int>(rng.NextBounded(3));
      job.microbatches = 2 + static_cast<int>(rng.NextBounded(3));
      job.microbatch_size = 1 + static_cast<int>(rng.NextBounded(2));
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

const TenantQuota& QuotaMap::For(const std::string& tenant) const {
  const auto it = tenants.find(tenant);
  return it == tenants.end() ? fallback : it->second;
}

StatusOr<QuotaMap> ParseQuotaSpec(const std::string& spec) {
  QuotaMap out;
  bool seen_fallback = false;
  for (const Field& entry : Split(spec, ';')) {
    if (entry.text.empty()) {
      continue;
    }
    const auto colon = entry.text.find(':');
    if (colon == std::string::npos) {
      return Malformed("quota", entry.offset,
                       "expected <tenant|*>:key=value[,key=value], got '" + entry.text +
                           "'");
    }
    const std::string tenant = entry.text.substr(0, colon);
    if (tenant != "*" && !ValidTenantName(tenant)) {
      return Malformed("quota", entry.offset,
                       "tenant must be '*' or a [A-Za-z0-9_.-]+ name, got '" + tenant +
                           "'");
    }
    if (tenant == "*" ? seen_fallback : out.tenants.count(tenant) > 0) {
      return Malformed("quota", entry.offset, "duplicate quota for tenant '" + tenant + "'");
    }
    TenantQuota quota;
    bool seen[2] = {};  // mem_gib bw
    for (const Field& raw : Split(entry.text.substr(colon + 1), ',')) {
      const Field kv{raw.text, entry.offset + colon + 1 + raw.offset};
      if (kv.text.empty()) {
        continue;
      }
      const auto eq = kv.text.find('=');
      if (eq == std::string::npos) {
        return Malformed("quota", kv.offset, "expected key=value, got '" + kv.text + "'");
      }
      const std::string key = kv.text.substr(0, eq);
      const Field value{kv.text.substr(eq + 1), kv.offset + eq + 1};
      int slot;
      if (key == "mem_gib") {
        slot = 0;
      } else if (key == "bw") {
        slot = 1;
      } else {
        return Malformed("quota", kv.offset, "unknown quota option '" + key + "'");
      }
      if (seen[slot]) {
        return Malformed("quota", kv.offset, "duplicate quota option '" + key + "'");
      }
      seen[slot] = true;
      const StatusOr<double> v = ParseNonNegative("quota", value, key);
      if (!v.ok()) {
        return v.status();
      }
      if (slot == 0) {
        quota.host_mem_bytes =
            static_cast<Bytes>(v.value() * static_cast<double>(kGiB));
      } else {
        if (v.value() <= 0.0 || v.value() > 1.0) {
          return Malformed("quota", value.offset,
                           "bw must be a bandwidth fraction in (0, 1]");
        }
        quota.bw_fraction = v.value();
      }
    }
    if (tenant == "*") {
      seen_fallback = true;
      out.fallback = quota;
    } else {
      out.tenants.emplace(tenant, quota);
    }
  }
  return out;
}

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kFifo:
      return "fifo";
    case SchedPolicy::kPriority:
      return "priority";
  }
  return "unknown";
}

StatusOr<SchedPolicy> SchedPolicyByName(const std::string& name) {
  if (name == "fifo") {
    return SchedPolicy::kFifo;
  }
  if (name == "priority") {
    return SchedPolicy::kPriority;
  }
  return InvalidArgumentError("unknown scheduling policy '" + name +
                              "' (expected fifo or priority)");
}

namespace {

// The host-memory footprint a job pins for its whole residency: the model state staged in
// host memory per replica (weights, and for training gradients + optimizer state).
// Activations and stashes churn through the same pool but are transient; the quota is a
// *state* reservation, which is also what makes admission a pure function of the spec.
Bytes JobHostFootprint(const Model& model, const JobSpec& job) {
  Bytes per_replica = model.total_param_bytes();
  if (job.kind == JobKind::kTraining) {
    per_replica += model.total_grad_bytes() + model.total_opt_state_bytes();
  }
  const bool data_parallel =
      job.scheme == Scheme::kBaselineDp || job.scheme == Scheme::kHarmonyDp;
  return per_replica * (data_parallel ? job.gpus : 1);
}

// The inner-session configuration for one granted segment of `job`. Sub-node gangs run on
// a truncated single server; whole-node gangs replicate the full per-node shape behind
// the NIC / rack fabric, mirroring where the gang would physically land.
SessionConfig InnerConfig(const JobSpec& job, const ClusterSchedulerConfig& config,
                          int iterations) {
  SessionConfig inner;
  inner.server = config.server;
  const int node_gpus = config.server.num_gpus;
  if (job.gpus <= node_gpus) {
    inner.server.num_gpus = job.gpus;
    inner.num_nodes = 1;
  } else {
    inner.num_nodes = job.gpus / node_gpus;
    inner.nodes_per_rack = config.nodes_per_rack == 0
                               ? 0
                               : std::min(config.nodes_per_rack, inner.num_nodes);
    inner.nic_link = config.nic_link;
    inner.rack_link = config.rack_link;
  }
  inner.scheme = job.scheme;
  inner.microbatches = job.microbatches;
  inner.microbatch_size = job.microbatch_size;
  inner.iterations = iterations;
  inner.pack_size = 1;
  inner.sim_threads = config.sim_threads;
  inner.lint_plan = config.lint_plans;
  inner.uplink_bw_fraction = config.quotas.For(job.tenant).bw_fraction;
  return inner;
}

// The slice of an inner-session result the stream layer keeps (the full SessionResult
// holds the plan and per-device vectors — far more than the scheduler needs).
struct InnerRun {
  double makespan = 0.0;
  int samples_per_iteration = 0;
  Bytes swap_in = 0;
  Bytes swap_out = 0;
  Bytes collective = 0;
  Bytes checkpoint = 0;
  Bytes iter0_state_swap_in = 0;  // weight + optimizer-state staging in iteration 0
  std::vector<double> iter_ends;  // per-iteration end times, relative to segment start
};

InnerRun RunInner(const Model& model, const SessionConfig& config) {
  const SessionResult result = RunTraining(model, config);
  HCHECK(!result.report.failed) << "inner session failed without faults armed: "
                                << result.report.failure_kind;
  InnerRun run;
  run.makespan = result.report.makespan;
  run.samples_per_iteration = result.plan.samples_per_iteration;
  run.swap_in = result.report.total_swap_in;
  run.swap_out = result.report.total_swap_out;
  run.collective = result.report.total_collective;
  run.checkpoint = result.report.checkpoint_bytes;
  if (!result.report.iterations.empty()) {
    const IterationStats& first = result.report.iterations.front();
    run.iter0_state_swap_in =
        first.swap_in_by_class[static_cast<int>(TensorClass::kWeight)] +
        first.swap_in_by_class[static_cast<int>(TensorClass::kOptimizerState)];
  }
  run.iter_ends.reserve(result.report.iterations.size());
  for (const IterationStats& it : result.report.iterations) {
    run.iter_ends.push_back(it.end_time);
  }
  return run;
}

enum class Phase { kPending, kQueued, kRunning, kDraining, kDone };

struct JobState {
  JobSpec spec;
  Model model = Model("", 0);
  Bytes footprint = 0;
  double reservation = 0.0;  // bw share counted by admission (0 when unreserved)
  Phase phase = Phase::kPending;
  int epoch = 0;  // bumped to cancel in-flight completion/release events
  double enqueue_time = 0.0;
  int iterations_done = 0;
  std::vector<int> nodes;  // nodes held while kRunning / kDraining
  int gpus_per_held_node = 0;
  double seg_start = 0.0;
  int seg_planned = 0;
  InnerRun seg_run;
  SegmentOutcome pending;  // open segment, finalized at completion or release
  JobOutcome out;
};

class ClusterScheduler {
 public:
  ClusterScheduler(std::vector<JobState> jobs, const ClusterSchedulerConfig& config)
      : config_(config),
        node_free_(static_cast<std::size_t>(config.num_nodes), config.server.num_gpus),
        node_reserved_(static_cast<std::size_t>(config.num_nodes), 0.0),
        jobs_(std::move(jobs)) {}

  ClusterReport Run() {
    // All stream events ride one dedicated lane: arrival order is fixed up front, and
    // the (when, seq) event order — hence every grant decision — is identical at any
    // worker-thread count (DESIGN.md §10).
    lane_ = sim_.CreateLane("sched.arrivals");
    const int threads = ResolveSimThreads(config_.sim_threads);
    sim_.SetParallelism(threads);
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      const int id = static_cast<int>(i);
      sim_.ScheduleAt(lane_, jobs_[i].spec.arrival, [this, id] { OnArrival(id); });
    }
    sim_.RunUntilIdle();

    ClusterReport report;
    // ValidateJobs bounds the widened product by kMaxClusterGpus, so the narrowing fits.
    report.total_gpus =
        static_cast<int>(std::int64_t{config_.num_nodes} * config_.server.num_gpus);
    report.num_nodes = config_.num_nodes;
    report.policy = config_.policy;
    for (JobState& job : jobs_) {
      HCHECK(job.phase == Phase::kDone)
          << "job stream ended with job " << job.spec.id << " in a non-terminal phase";
      report.makespan = std::max(report.makespan, job.out.finish);
      report.preemptions += job.out.preemptions;
      if (job.out.completed) {
        ++report.completed_jobs;
      }
      for (const SegmentOutcome& seg : job.out.segments) {
        report.gpu_seconds_busy += seg.duration * static_cast<double>(job.spec.gpus);
      }
      report.jobs.push_back(std::move(job.out));
    }
    if (report.makespan > 0.0 && report.total_gpus > 0) {
      report.utilization =
          report.gpu_seconds_busy /
          (report.makespan * static_cast<double>(report.total_gpus));
    }
    RollupTenants(&report);
    return report;
  }

 private:
  void OnArrival(int id) {
    JobState& job = jobs_[static_cast<std::size_t>(id)];
    job.phase = Phase::kQueued;
    job.enqueue_time = sim_.now();
    queue_.push_back(id);
    TrySchedule();
  }

  void OnComplete(int id, int epoch) {
    JobState& job = jobs_[static_cast<std::size_t>(id)];
    if (job.epoch != epoch) {
      return;  // preempted after this completion was scheduled
    }
    HCHECK(job.phase == Phase::kRunning || job.phase == Phase::kDraining);
    if (job.phase == Phase::kDraining) {
      // A final-iteration-in-flight drain ends here, not in OnRelease: the counter must
      // drop or priority preemption stays gated off for the rest of the stream.
      --draining_;
    }
    FinalizeSegment(&job, /*duration=*/job.seg_run.makespan, /*iterations=*/job.seg_planned,
                    /*preempted=*/false);
    job.out.completed = true;
    job.out.finish = sim_.now();
    ReleaseGang(&job);
    job.phase = Phase::kDone;
    TrySchedule();
  }

  void OnRelease(int id, int epoch) {
    JobState& job = jobs_[static_cast<std::size_t>(id)];
    if (job.epoch != epoch || job.phase != Phase::kDraining) {
      return;
    }
    ReleaseGang(&job);
    job.phase = Phase::kQueued;
    job.enqueue_time = sim_.now();
    queue_.push_back(id);
    --draining_;
    TrySchedule();
  }

  // Queue order under the active policy: fifo = (arrival, id); priority = (priority
  // desc, arrival, id). Ids break every tie, so the order is total and deterministic.
  std::vector<int> QueueOrder() const {
    std::vector<int> order = queue_;
    std::sort(order.begin(), order.end(), [this](int a, int b) {
      const JobSpec& ja = jobs_[static_cast<std::size_t>(a)].spec;
      const JobSpec& jb = jobs_[static_cast<std::size_t>(b)].spec;
      if (config_.policy == SchedPolicy::kPriority && ja.priority != jb.priority) {
        return ja.priority > jb.priority;
      }
      if (ja.arrival != jb.arrival) {
        return ja.arrival < jb.arrival;
      }
      return a < b;
    });
    return order;
  }

  bool MemQuotaBlocks(const JobState& job) const {
    const TenantQuota& quota = config_.quotas.For(job.spec.tenant);
    if (quota.host_mem_bytes < 0) {
      return false;
    }
    Bytes used = 0;
    for (const JobState& other : jobs_) {
      if ((other.phase == Phase::kRunning || other.phase == Phase::kDraining) &&
          other.spec.tenant == job.spec.tenant) {
        used += other.footprint;
      }
    }
    return used + job.footprint > quota.host_mem_bytes;
  }

  // First-fit gang placement over `free` / `reserved` (lowest node indices win):
  // sub-node gangs take the first node with enough free GPUs and bandwidth headroom;
  // whole-node gangs take the first k fully-free nodes.
  bool FindPlacement(const JobState& job, const std::vector<int>& free,
                     const std::vector<double>& reserved, std::vector<int>* nodes) const {
    nodes->clear();
    const int node_gpus = config_.server.num_gpus;
    const bool headroom_needed = job.reservation > 0.0;
    if (job.spec.gpus <= node_gpus) {
      for (int n = 0; n < config_.num_nodes; ++n) {
        if (free[static_cast<std::size_t>(n)] >= job.spec.gpus &&
            (!headroom_needed ||
             reserved[static_cast<std::size_t>(n)] + job.reservation <=
                 1.0 + kReservationEps)) {
          nodes->push_back(n);
          return true;
        }
      }
      return false;
    }
    const int k = job.spec.gpus / node_gpus;
    for (int n = 0; n < config_.num_nodes && static_cast<int>(nodes->size()) < k; ++n) {
      if (free[static_cast<std::size_t>(n)] == node_gpus &&
          (!headroom_needed ||
           reserved[static_cast<std::size_t>(n)] + job.reservation <=
               1.0 + kReservationEps)) {
        nodes->push_back(n);
      }
    }
    if (static_cast<int>(nodes->size()) == k) {
      return true;
    }
    nodes->clear();
    return false;
  }

  void TrySchedule() {
    bool granted = true;
    while (granted) {
      granted = false;
      for (int id : QueueOrder()) {
        JobState& job = jobs_[static_cast<std::size_t>(id)];
        if (MemQuotaBlocks(job)) {
          // Memory quota is a tenant self-limit: the job steps aside (and is marked
          // deferred) instead of blocking other tenants behind it.
          job.out.quota_deferred = true;
          continue;
        }
        std::vector<int> nodes;
        if (FindPlacement(job, node_free_, node_reserved_, &nodes)) {
          Grant(&job, nodes);
          granted = true;
          break;  // state changed: recompute the queue order from scratch
        }
        // The head of the order is GPU-blocked. FIFO lets nothing overtake it; priority
        // preempts strictly-lower-priority gangs for it (once any in-flight drains have
        // settled) and likewise admits nothing past it while it waits.
        if (config_.policy == SchedPolicy::kPriority && draining_ == 0) {
          TryPreempt(job);
        }
        break;
      }
    }
  }

  void TryPreempt(JobState& head) {
    std::vector<int> victims;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      const JobState& other = jobs_[i];
      if (other.phase == Phase::kRunning && other.spec.priority < head.spec.priority) {
        victims.push_back(static_cast<int>(i));
      }
    }
    // Lowest priority first; among equals, the most recently started segment (least
    // disturbed work), then the highest id — a total, deterministic order.
    std::sort(victims.begin(), victims.end(), [this](int a, int b) {
      const JobState& ja = jobs_[static_cast<std::size_t>(a)];
      const JobState& jb = jobs_[static_cast<std::size_t>(b)];
      if (ja.spec.priority != jb.spec.priority) {
        return ja.spec.priority < jb.spec.priority;
      }
      if (ja.seg_start != jb.seg_start) {
        return ja.seg_start > jb.seg_start;
      }
      return a > b;
    });
    std::vector<int> free = node_free_;
    std::vector<double> reserved = node_reserved_;
    std::vector<int> chosen;
    std::vector<int> placement;
    for (int id : victims) {
      const JobState& victim = jobs_[static_cast<std::size_t>(id)];
      for (int n : victim.nodes) {
        free[static_cast<std::size_t>(n)] += victim.gpus_per_held_node;
        reserved[static_cast<std::size_t>(n)] -= victim.reservation;
      }
      chosen.push_back(id);
      if (FindPlacement(head, free, reserved, &placement)) {
        for (int v : chosen) {
          Preempt(&jobs_[static_cast<std::size_t>(v)]);
        }
        return;
      }
    }
    // Even evicting every lower-priority gang would not make room (the head needs nodes
    // held by equal/higher priorities, or is simply too big right now): wait instead.
  }

  // Checkpoint → release: the victim stops at the end of its in-flight iteration, commits
  // a checkpoint there (training jobs; serving state is immutable), and the gang is
  // released once that drain segment ends. The preempted remainder re-enters the queue at
  // release time and loses zero iterations.
  void Preempt(JobState* job) {
    const double now = sim_.now();
    int completed = 0;
    while (completed < static_cast<int>(job->seg_run.iter_ends.size()) &&
           job->seg_start + job->seg_run.iter_ends[static_cast<std::size_t>(completed)] <=
               now) {
      ++completed;
    }
    const int cut = std::min(job->seg_planned, completed + 1);
    if (cut >= job->seg_planned) {
      // The final iteration is already in flight: preempting saves nothing over letting
      // the segment finish. Mark it draining so it is not re-picked; its completion event
      // stands and the GPUs free at the natural end.
      job->phase = Phase::kDraining;
      ++draining_;
      return;
    }
    ++job->epoch;  // cancels the scheduled completion
    SessionConfig drain = InnerConfig(job->spec, config_, cut);
    if (job->spec.kind == JobKind::kTraining) {
      drain.checkpoint_every = cut;   // commit a checkpoint at the cut boundary...
      drain.checkpoint_final = true;  // ...even though the cut is the drain's last iteration
    }
    const InnerRun rerun = RunInner(job->model, drain);
    // The drain replays the identical event sequence up to the cut, then commits the
    // checkpoint; the gang is held to the later of that commit and the decision point.
    const double release = std::max(now, job->seg_start + rerun.makespan);
    job->seg_run = rerun;
    FinalizeSegment(job, /*duration=*/release - job->seg_start, /*iterations=*/cut,
                    /*preempted=*/true);
    ++job->out.preemptions;
    job->phase = Phase::kDraining;
    ++draining_;
    const int epoch = job->epoch;
    const int id = job->spec.id;
    sim_.ScheduleAt(lane_, release, [this, id, epoch] { OnRelease(id, epoch); });
  }

  void Grant(JobState* job, const std::vector<int>& nodes) {
    const double now = sim_.now();
    const int remaining = job->spec.iterations - job->iterations_done;
    HCHECK_GT(remaining, 0);
    job->seg_run = RunInner(job->model, InnerConfig(job->spec, config_, remaining));
    job->seg_start = now;
    job->seg_planned = remaining;
    job->out.queue_wait += now - job->enqueue_time;
    if (job->out.first_start < 0.0) {
      job->out.first_start = now;
    }
    job->pending = SegmentOutcome{};
    job->pending.start = now;
    job->pending.start_iteration = job->iterations_done;
    // Re-admission restores from host state: the first iteration's weight/optimizer
    // staging IS the restore traffic (the same accounting RecoveryStats::reswap_bytes
    // uses for fail-stop recovery).
    job->pending.restore = job->iterations_done > 0 ? job->seg_run.iter0_state_swap_in : 0;
    job->nodes = nodes;
    job->gpus_per_held_node = std::min(job->spec.gpus, config_.server.num_gpus);
    for (int n : nodes) {
      node_free_[static_cast<std::size_t>(n)] -= job->gpus_per_held_node;
      HCHECK_GE(node_free_[static_cast<std::size_t>(n)], 0);
      node_reserved_[static_cast<std::size_t>(n)] += job->reservation;
    }
    queue_.erase(std::find(queue_.begin(), queue_.end(), job->spec.id));
    job->phase = Phase::kRunning;
    const int epoch = job->epoch;
    const int id = job->spec.id;
    sim_.ScheduleAt(lane_, now + job->seg_run.makespan,
                    [this, id, epoch] { OnComplete(id, epoch); });
  }

  void FinalizeSegment(JobState* job, double duration, int iterations, bool preempted) {
    job->pending.duration = duration;
    job->pending.iterations = iterations;
    job->pending.preempted = preempted;
    job->pending.swap_in = job->seg_run.swap_in;
    job->pending.swap_out = job->seg_run.swap_out;
    job->pending.collective = job->seg_run.collective;
    job->pending.checkpoint = job->seg_run.checkpoint;
    job->out.segments.push_back(job->pending);
    job->out.service += duration;
    job->iterations_done += iterations;
    job->out.iterations_done = job->iterations_done;
    job->out.samples_done += iterations * job->seg_run.samples_per_iteration;
    double prev = 0.0;
    for (int i = 0; i < iterations; ++i) {
      const double end = job->seg_run.iter_ends[static_cast<std::size_t>(i)];
      job->out.iteration_sec.push_back(end - prev);
      prev = end;
    }
  }

  void ReleaseGang(JobState* job) {
    for (int n : job->nodes) {
      node_free_[static_cast<std::size_t>(n)] += job->gpus_per_held_node;
      node_reserved_[static_cast<std::size_t>(n)] -= job->reservation;
    }
    job->nodes.clear();
    job->gpus_per_held_node = 0;
  }

  static double NearestRankP99(std::vector<double> values) {
    if (values.empty()) {
      return 0.0;
    }
    std::sort(values.begin(), values.end());
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(values.size())));
    return values[rank - 1];
  }

  void RollupTenants(ClusterReport* report) const {
    std::map<std::string, TenantSlo> tenants;
    std::map<std::string, std::vector<double>> delays;
    std::map<std::string, std::vector<double>> iteration_times;
    for (const JobOutcome& job : report->jobs) {
      TenantSlo& slo = tenants[job.spec.tenant];
      slo.tenant = job.spec.tenant;
      ++slo.jobs;
      if (job.completed) {
        ++slo.completed;
      }
      slo.preemptions += job.preemptions;
      if (job.quota_deferred) {
        ++slo.quota_deferred;
      }
      delays[job.spec.tenant].push_back(job.queue_wait);
      for (double d : job.iteration_sec) {
        iteration_times[job.spec.tenant].push_back(d);
      }
      for (const SegmentOutcome& seg : job.segments) {
        slo.swap_bytes += seg.swap_in + seg.swap_out;
        slo.checkpoint_bytes += seg.checkpoint;
        slo.restore_bytes += seg.restore;
        slo.gpu_seconds += seg.duration * static_cast<double>(job.spec.gpus);
      }
      if (report->makespan > 0.0) {
        slo.goodput += static_cast<double>(job.samples_done) / report->makespan;
      }
    }
    for (auto& [tenant, slo] : tenants) {
      const std::vector<double>& waits = delays[tenant];
      double sum = 0.0;
      for (double w : waits) {
        sum += w;
      }
      slo.queue_delay_mean = waits.empty() ? 0.0 : sum / static_cast<double>(waits.size());
      slo.queue_delay_p99 = NearestRankP99(waits);
      slo.iteration_p99 = NearestRankP99(iteration_times[tenant]);
      report->tenants.push_back(slo);  // std::map iterates sorted by tenant name
    }
  }

  ClusterSchedulerConfig config_;
  Simulator sim_;
  SimLane lane_ = 0;
  std::vector<int> node_free_;
  std::vector<double> node_reserved_;
  std::vector<JobState> jobs_;
  std::vector<int> queue_;  // job ids currently queued (unsorted; QueueOrder sorts)
  int draining_ = 0;
};

}  // namespace

Status ValidateJobs(const std::vector<JobSpec>& jobs,
                    const ClusterSchedulerConfig& config) {
  if (config.num_nodes < 1) {
    return InvalidArgumentError("cluster needs nodes >= 1, got " +
                                std::to_string(config.num_nodes));
  }
  // Widen before multiplying: each factor may legitimately be up to 1<<20, so the int
  // product overflows. Bounding here (not just in ParseClusterSpec) covers library
  // callers that build the config directly.
  if (std::int64_t{config.num_nodes} * config.server.num_gpus > kMaxClusterGpus) {
    return InvalidArgumentError(
        "cluster of " + std::to_string(config.num_nodes) + " nodes x " +
        std::to_string(config.server.num_gpus) +
        " GPUs exceeds the supported maximum of " + std::to_string(kMaxClusterGpus) +
        " total GPUs");
  }
  const int node_gpus = config.server.num_gpus;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobSpec& job = jobs[i];
    const std::string label = "job " + std::to_string(i) + " (" + job.ToString() + "): ";
    if (!ValidTenantName(job.tenant)) {
      return InvalidArgumentError(label + "invalid tenant name");
    }
    if (!(job.arrival >= 0.0) || !std::isfinite(job.arrival)) {
      return InvalidArgumentError(label + "arrival must be a finite time >= 0");
    }
    if ((job.kind == JobKind::kServing) != (job.scheme == Scheme::kServing)) {
      return InvalidArgumentError(label +
                                  "serving jobs (and only serving jobs) use the serving "
                                  "scheme");
    }
    if (job.priority < 0) {
      return InvalidArgumentError(label + "priority must be >= 0");
    }
    if (job.gpus < 1) {
      return InvalidArgumentError(label + "gpus must be >= 1");
    }
    if (job.gpus > node_gpus) {
      if (job.gpus % node_gpus != 0) {
        return InvalidArgumentError(
            label + "multi-node gangs must be whole-node multiples of gpus_per_node (" +
            std::to_string(node_gpus) + "), got " + std::to_string(job.gpus));
      }
      if (job.gpus / node_gpus > config.num_nodes) {
        return InvalidArgumentError(label + "gang of " + std::to_string(job.gpus) +
                                    " GPUs exceeds the cluster (" +
                                    std::to_string(config.num_nodes) + " nodes x " +
                                    std::to_string(node_gpus) + " GPUs)");
      }
    }
    const StatusOr<Model> model = ModelByName(job.model);
    if (!model.ok()) {
      return InvalidArgumentError(label + model.status().message());
    }
    const SessionConfig inner = InnerConfig(job, config, job.iterations);
    const Status valid = ValidateSessionConfig(model.value(), inner);
    if (!valid.ok()) {
      return InvalidArgumentError(label + valid.message());
    }
    const TenantQuota& quota = config.quotas.For(job.tenant);
    if (quota.host_mem_bytes >= 0 &&
        JobHostFootprint(model.value(), job) > quota.host_mem_bytes) {
      return InvalidArgumentError(
          label + "job state footprint " +
          FormatBytes(JobHostFootprint(model.value(), job)) +
          " exceeds tenant '" + job.tenant + "' host-memory quota " +
          FormatBytes(quota.host_mem_bytes) + " — the job could never be admitted");
    }
  }
  return Status::Ok();
}

StatusOr<ClusterReport> RunJobStream(std::vector<JobSpec> jobs,
                                     const ClusterSchedulerConfig& config) {
  HARMONY_RETURN_IF_ERROR(ValidateJobs(jobs, config));
  // Re-index in (arrival, submission) order: job ids are queue-stable tie-breakers and
  // name the rows of the report.
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobSpec& a, const JobSpec& b) { return a.arrival < b.arrival; });
  std::vector<JobState> states;
  states.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    JobState state;
    state.spec = jobs[i];
    state.spec.id = static_cast<int>(i);
    state.model = ModelByName(state.spec.model).value();
    state.footprint = JobHostFootprint(state.model, state.spec);
    const double bw = config.quotas.For(state.spec.tenant).bw_fraction;
    state.reservation = bw < 1.0 ? bw : 0.0;
    state.out.spec = state.spec;
    states.push_back(std::move(state));
  }
  ClusterScheduler scheduler(std::move(states), config);
  return scheduler.Run();
}

// ---- rendering --------------------------------------------------------------------------

std::string ClusterReport::Summary() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "cluster: %d jobs (%d completed), %d preemption(s), makespan %.3f s, "
                "%d GPUs over %d node(s), utilization %.3f [%s]",
                static_cast<int>(jobs.size()), completed_jobs, preemptions, makespan,
                total_gpus, num_nodes, utilization, SchedPolicyName(policy));
  return buffer;
}

std::string ClusterReport::RenderTenantTable() const {
  std::ostringstream os;
  os << "per-tenant SLO:\n";
  TablePrinter table({"tenant", "jobs", "done", "preempt", "deferred", "q-delay mean (s)",
                      "q-delay p99 (s)", "p99 iter (s)", "goodput (samples/s)", "swap",
                      "ckpt", "restore"});
  for (const TenantSlo& slo : tenants) {
    table.Row()
        .Cell(slo.tenant)
        .Cell(slo.jobs)
        .Cell(slo.completed)
        .Cell(slo.preemptions)
        .Cell(slo.quota_deferred)
        .Cell(slo.queue_delay_mean, 6)
        .Cell(slo.queue_delay_p99, 6)
        .Cell(slo.iteration_p99, 6)
        .Cell(slo.goodput, 3)
        .Cell(FormatBytes(slo.swap_bytes))
        .Cell(FormatBytes(slo.checkpoint_bytes))
        .Cell(FormatBytes(slo.restore_bytes));
  }
  table.Print(os);
  return os.str();
}

namespace {

// The cluster export uses the same shortest-round-trip rule as the spec rendering.
std::string JsonNumber(double value) { return RoundTripNumber(value); }

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string ClusterReportToJson(const ClusterReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"harmony-cluster-report\",\n";
  os << "  \"version\": 1,\n";
  os << "  \"policy\": " << JsonString(SchedPolicyName(report.policy)) << ",\n";
  os << "  \"total_gpus\": " << report.total_gpus << ",\n";
  os << "  \"num_nodes\": " << report.num_nodes << ",\n";
  os << "  \"makespan_s\": " << JsonNumber(report.makespan) << ",\n";
  os << "  \"completed_jobs\": " << report.completed_jobs << ",\n";
  os << "  \"preemptions\": " << report.preemptions << ",\n";
  os << "  \"gpu_seconds_busy\": " << JsonNumber(report.gpu_seconds_busy) << ",\n";
  os << "  \"utilization\": " << JsonNumber(report.utilization) << ",\n";
  os << "  \"tenants\": [\n";
  for (std::size_t i = 0; i < report.tenants.size(); ++i) {
    const TenantSlo& slo = report.tenants[i];
    os << "    {\"tenant\": " << JsonString(slo.tenant) << ", \"jobs\": " << slo.jobs
       << ", \"completed\": " << slo.completed << ", \"preemptions\": " << slo.preemptions
       << ", \"quota_deferred\": " << slo.quota_deferred
       << ", \"queue_delay_mean_s\": " << JsonNumber(slo.queue_delay_mean)
       << ", \"queue_delay_p99_s\": " << JsonNumber(slo.queue_delay_p99)
       << ", \"iteration_p99_s\": " << JsonNumber(slo.iteration_p99)
       << ", \"goodput_samples_per_s\": " << JsonNumber(slo.goodput)
       << ", \"swap_bytes\": " << slo.swap_bytes
       << ", \"checkpoint_bytes\": " << slo.checkpoint_bytes
       << ", \"restore_bytes\": " << slo.restore_bytes
       << ", \"gpu_seconds\": " << JsonNumber(slo.gpu_seconds) << "}"
       << (i + 1 < report.tenants.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"jobs\": [\n";
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const JobOutcome& job = report.jobs[i];
    os << "    {\"id\": " << job.spec.id << ", \"spec\": " << JsonString(job.spec.ToString())
       << ", \"tenant\": " << JsonString(job.spec.tenant)
       << ", \"kind\": " << JsonString(job.spec.kind == JobKind::kServing ? "serving"
                                                                          : "training")
       << ", \"completed\": " << (job.completed ? "true" : "false")
       << ", \"quota_deferred\": " << (job.quota_deferred ? "true" : "false")
       << ", \"arrival_s\": " << JsonNumber(job.spec.arrival)
       << ", \"first_start_s\": " << JsonNumber(job.first_start)
       << ", \"finish_s\": " << JsonNumber(job.finish)
       << ", \"queue_wait_s\": " << JsonNumber(job.queue_wait)
       << ", \"service_s\": " << JsonNumber(job.service)
       << ", \"preemptions\": " << job.preemptions
       << ", \"iterations_done\": " << job.iterations_done
       << ", \"samples_done\": " << job.samples_done << ", \"segments\": [";
    for (std::size_t s = 0; s < job.segments.size(); ++s) {
      const SegmentOutcome& seg = job.segments[s];
      os << (s == 0 ? "" : ", ") << "{\"start_s\": " << JsonNumber(seg.start)
         << ", \"duration_s\": " << JsonNumber(seg.duration)
         << ", \"start_iteration\": " << seg.start_iteration
         << ", \"iterations\": " << seg.iterations
         << ", \"preempted\": " << (seg.preempted ? "true" : "false")
         << ", \"swap_in\": " << seg.swap_in << ", \"swap_out\": " << seg.swap_out
         << ", \"collective\": " << seg.collective
         << ", \"checkpoint\": " << seg.checkpoint << ", \"restore\": " << seg.restore
         << "}";
    }
    os << "]}" << (i + 1 < report.jobs.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

Status WriteClusterReportJson(const ClusterReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InvalidArgumentError("cannot open '" + path + "' for writing");
  }
  out << ClusterReportToJson(report);
  out.close();
  if (!out) {
    return InvalidArgumentError("failed writing cluster report to '" + path + "'");
  }
  return Status::Ok();
}

std::string ClusterReport::Render() const {
  std::ostringstream os;
  os << Summary() << "\n\n" << RenderTenantTable() << "\njobs:\n";
  for (const JobOutcome& job : jobs) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  job %d [%s] wait %.6f s, service %.6f s, start %.6f, finish %.6f, "
                  "%d segment(s), %d preemption(s), %d/%d iterations\n",
                  job.spec.id, job.completed ? "done" : "incomplete", job.queue_wait,
                  job.service, job.first_start, job.finish,
                  static_cast<int>(job.segments.size()), job.preemptions,
                  job.iterations_done, job.spec.iterations);
    os << "  " << job.spec.ToString() << "\n" << line;
  }
  return os.str();
}

}  // namespace harmony
