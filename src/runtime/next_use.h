// Amortized-O(1) next-use oracle backing store for one device.
//
// The lookahead eviction policy asks "when does `tensor` next run on this device?" once per
// candidate considered, so the old map-find + lower_bound lookup (O(log n) with a cold cache
// walk) sat on the hottest path in the system. Both sides of the query are monotone — use
// positions are appended in schedule order at build time, and the engine's `next_index` only
// advances — so a per-tensor cursor that walks each use list forward answers every query in
// O(1) amortized: each list position is consumed at most once over the run's lifetime.
//
// Contract (checked): AddUse positions are nondecreasing per tensor, and query positions are
// nondecreasing across calls. Rewinding a cursor would require rebuilding the index.
#ifndef HARMONY_SRC_RUNTIME_NEXT_USE_H_
#define HARMONY_SRC_RUNTIME_NEXT_USE_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/mem/tensor.h"
#include "src/util/logging.h"

namespace harmony {

class NextUseIndex {
 public:
  static constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

  // Records that the task at queue position `pos` touches `id`. Build-time only; positions
  // must arrive in nondecreasing order per tensor (schedule order guarantees this).
  void AddUse(TensorId id, std::uint64_t pos) {
    const std::size_t idx = static_cast<std::size_t>(id);
    if (idx >= uses_.size()) {
      uses_.resize(idx + 1);
      cursor_.resize(idx + 1, 0);
    }
    HCHECK(uses_[idx].empty() || uses_[idx].back() <= pos)
        << "next-use positions must be appended in order (tensor " << id << ")";
    uses_[idx].push_back(pos);
  }

  // First use of `id` at or after `pos`, or kNever. `pos` must be nondecreasing across
  // calls (the device's next_index never rewinds).
  std::uint64_t NextUseAtOrAfter(TensorId id, std::uint64_t pos) {
    HCHECK_GE(pos, last_query_pos_) << "next-use cursor cannot rewind";
    last_query_pos_ = pos;
    const std::size_t idx = static_cast<std::size_t>(id);
    if (idx >= uses_.size()) {
      return kNever;
    }
    const std::vector<std::uint64_t>& list = uses_[idx];
    std::size_t& c = cursor_[idx];
    while (c < list.size() && list[c] < pos) {
      ++c;
    }
    return c < list.size() ? list[c] : kNever;
  }

 private:
  std::vector<std::vector<std::uint64_t>> uses_;  // indexed by TensorId, ascending positions
  std::vector<std::size_t> cursor_;               // first not-yet-consumed position per list
  std::uint64_t last_query_pos_ = 0;
};

}  // namespace harmony

#endif  // HARMONY_SRC_RUNTIME_NEXT_USE_H_
