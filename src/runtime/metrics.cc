#include "src/runtime/metrics.h"

#include <sstream>

#include "src/util/check.h"

namespace harmony {
namespace {

// Averages `get(it)` over steady-state iterations.
template <typename Fn>
double SteadyAverage(const std::vector<IterationStats>& iterations, Fn get) {
  HCHECK(!iterations.empty());
  if (iterations.size() == 1) {
    return get(iterations[0]);
  }
  double total = 0.0;
  for (std::size_t i = 1; i < iterations.size(); ++i) {
    total += get(iterations[i]);
  }
  return total / static_cast<double>(iterations.size() - 1);
}

}  // namespace

double RunReport::steady_iteration_time() const {
  return SteadyAverage(iterations, [](const IterationStats& it) { return it.duration(); });
}

double RunReport::steady_throughput() const {
  const double t = steady_iteration_time();
  HCHECK_GT(t, 0.0);
  return static_cast<double>(samples_per_iteration) / t;
}

Bytes RunReport::steady_swap_in() const {
  return static_cast<Bytes>(SteadyAverage(
      iterations, [](const IterationStats& it) { return static_cast<double>(it.swap_in); }));
}

Bytes RunReport::steady_swap_out() const {
  return static_cast<Bytes>(SteadyAverage(
      iterations, [](const IterationStats& it) { return static_cast<double>(it.swap_out); }));
}

Bytes RunReport::steady_weight_swap() const {
  return static_cast<Bytes>(SteadyAverage(iterations, [](const IterationStats& it) {
    return static_cast<double>(it.weight_swap_volume());
  }));
}

Bytes RunReport::steady_class_swap(TensorClass cls) const {
  return static_cast<Bytes>(SteadyAverage(iterations, [cls](const IterationStats& it) {
    return static_cast<double>(it.swap_in_by_class[static_cast<int>(cls)] +
                               it.swap_out_by_class[static_cast<int>(cls)]);
  }));
}

Bytes RunReport::steady_p2p() const {
  return static_cast<Bytes>(SteadyAverage(
      iterations, [](const IterationStats& it) { return static_cast<double>(it.p2p_in); }));
}

const RunReport::LinkUsage* RunReport::BottleneckLink() const {
  const LinkUsage* best = nullptr;
  for (const LinkUsage& link : links) {
    if (link.bytes > 0 && (best == nullptr || link.utilization > best->utilization)) {
      best = &link;
    }
  }
  return best;
}

std::string RunReport::Summary() const {
  std::ostringstream os;
  os << scheme << ": makespan " << FormatSeconds(makespan) << ", steady iter "
     << FormatSeconds(steady_iteration_time()) << " ("
     << FormatBytesDecimal(static_cast<double>(steady_swap_total())) << " swap/iter, "
     << FormatBytesDecimal(static_cast<double>(steady_p2p())) << " p2p/iter), throughput ";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f samples/s", steady_throughput());
  os << buffer;
  return os.str();
}

}  // namespace harmony
