#include "src/runtime/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/util/check.h"

namespace harmony {
namespace {

// Averages `get(it)` over steady-state iterations.
template <typename Fn>
double SteadyAverage(const std::vector<IterationStats>& iterations, Fn get) {
  HCHECK(!iterations.empty());
  if (iterations.size() == 1) {
    return get(iterations[0]);
  }
  double total = 0.0;
  for (std::size_t i = 1; i < iterations.size(); ++i) {
    total += get(iterations[i]);
  }
  return total / static_cast<double>(iterations.size() - 1);
}

}  // namespace

const char* TimeClassName(TimeClass cls) {
  switch (cls) {
    case TimeClass::kCompute:
      return "compute";
    case TimeClass::kStallDependency:
      return "stall-dependency";
    case TimeClass::kStallMemory:
      return "stall-memory";
    case TimeClass::kStallTransfer:
      return "stall-transfer";
    case TimeClass::kStallCollective:
      return "stall-collective";
    case TimeClass::kIdle:
      return "idle";
  }
  return "unknown";
}

double DeviceTimeBreakdown::total() const {
  double sum = 0.0;
  for (double s : seconds) {
    sum += s;
  }
  return sum;
}

TimeClass DeviceTimeBreakdown::DominantStall() const {
  TimeClass best = TimeClass::kStallDependency;
  for (int c = static_cast<int>(TimeClass::kStallDependency); c < kNumTimeClasses; ++c) {
    if (seconds[c] > seconds[static_cast<int>(best)]) {
      best = static_cast<TimeClass>(c);
    }
  }
  return best;
}

std::int64_t RunReport::TensorChurn::refetches() const {
  const std::int64_t fetches = swap_ins + p2p_ins;
  return fetches > 0 ? fetches - 1 : 0;
}

double RunReport::steady_iteration_time() const {
  return SteadyAverage(iterations, [](const IterationStats& it) { return it.duration(); });
}

double RunReport::steady_throughput() const {
  const double t = steady_iteration_time();
  HCHECK_GT(t, 0.0);
  return static_cast<double>(samples_per_iteration) / t;
}

Bytes RunReport::steady_swap_in() const {
  return static_cast<Bytes>(SteadyAverage(
      iterations, [](const IterationStats& it) { return static_cast<double>(it.swap_in); }));
}

Bytes RunReport::steady_swap_out() const {
  return static_cast<Bytes>(SteadyAverage(
      iterations, [](const IterationStats& it) { return static_cast<double>(it.swap_out); }));
}

Bytes RunReport::steady_weight_swap() const {
  return static_cast<Bytes>(SteadyAverage(iterations, [](const IterationStats& it) {
    return static_cast<double>(it.weight_swap_volume());
  }));
}

Bytes RunReport::steady_class_swap(TensorClass cls) const {
  return static_cast<Bytes>(SteadyAverage(iterations, [cls](const IterationStats& it) {
    return static_cast<double>(it.swap_in_by_class[static_cast<int>(cls)] +
                               it.swap_out_by_class[static_cast<int>(cls)]);
  }));
}

Bytes RunReport::steady_p2p() const {
  return static_cast<Bytes>(SteadyAverage(
      iterations, [](const IterationStats& it) { return static_cast<double>(it.p2p_in); }));
}

const RunReport::LinkUsage* RunReport::BottleneckLink() const {
  const LinkUsage* best = nullptr;
  for (const LinkUsage& link : links) {
    if (link.bytes > 0 && (best == nullptr || link.utilization > best->utilization)) {
      best = &link;
    }
  }
  return best;
}

std::string RunReport::Summary() const {
  std::ostringstream os;
  os << scheme << ": makespan " << FormatSeconds(makespan) << ", steady iter "
     << FormatSeconds(steady_iteration_time()) << " ("
     << FormatBytesDecimal(static_cast<double>(steady_swap_total())) << " swap/iter, "
     << FormatBytesDecimal(static_cast<double>(steady_p2p())) << " p2p/iter), throughput ";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f samples/s", steady_throughput());
  os << buffer;
  return os.str();
}

AttributionReport Attribute(const RunReport& report, int top_tensors) {
  AttributionReport out;
  double worst_fraction = -1.0;
  const int devices_with_breakdown =
      std::min(report.num_devices(), static_cast<int>(report.device_time.size()));
  for (int d = 0; d < devices_with_breakdown; ++d) {
    const DeviceTimeBreakdown& time = report.device_time[static_cast<std::size_t>(d)];
    AttributionReport::DeviceStall stall;
    stall.device = d;
    stall.dominant = time.DominantStall();
    stall.seconds = time.of(stall.dominant);
    stall.fraction = report.makespan > 0.0 ? stall.seconds / report.makespan : 0.0;
    if (stall.fraction > worst_fraction) {
      worst_fraction = stall.fraction;
      out.worst_device = d;
    }
    out.devices.push_back(stall);
  }
  if (const RunReport::LinkUsage* link = report.BottleneckLink()) {
    out.bottleneck_link = link->name;
    out.bottleneck_utilization = link->utilization;
    out.bottleneck_queue_depth = link->avg_queue_depth;
    out.bottleneck_bytes = link->bytes;
  }
  out.top_churn = report.tensor_churn;
  std::sort(out.top_churn.begin(), out.top_churn.end(),
            [](const RunReport::TensorChurn& a, const RunReport::TensorChurn& b) {
              if (a.moved_bytes() != b.moved_bytes()) {
                return a.moved_bytes() > b.moved_bytes();
              }
              return a.tensor < b.tensor;
            });
  if (top_tensors >= 0 &&
      out.top_churn.size() > static_cast<std::size_t>(top_tensors)) {
    out.top_churn.resize(static_cast<std::size_t>(top_tensors));
  }
  out.tiers = report.tiers;
  out.flows_retried = report.flows_retried;
  out.retry_exhausted = report.retry_exhausted;
  out.retry_backoff_sec = report.retry_backoff_sec;
  out.degraded_sec = report.degraded_sec;
  out.straggler_device = report.straggler_device;
  out.ckpt_verified_ok = report.ckpt_verified_ok;
  out.ckpt_corrupt_detected = report.ckpt_corrupt_detected;
  return out;
}

std::string AttributionReport::Summary() const {
  std::ostringstream os;
  char buffer[160];
  if (worst_device >= 0) {
    const DeviceStall& stall = devices[static_cast<std::size_t>(worst_device)];
    std::snprintf(buffer, sizeof(buffer), "gpu%d %s %.0f%%", stall.device,
                  TimeClassName(stall.dominant), stall.fraction * 100.0);
    os << buffer;
  } else {
    os << "no devices";
  }
  if (!bottleneck_link.empty()) {
    std::snprintf(buffer, sizeof(buffer), "; hot link %s %.0f%%", bottleneck_link.c_str(),
                  bottleneck_utilization * 100.0);
    os << buffer;
  }
  if (!top_churn.empty()) {
    os << "; top churn " << top_churn.front().name << " ("
       << FormatBytes(top_churn.front().moved_bytes()) << " moved, "
       << top_churn.front().refetches() << " re-fetches)";
  }
  return os.str();
}

std::string AttributionReport::Render() const {
  std::ostringstream os;
  char buffer[200];
  os << "bottleneck attribution:\n";
  for (const DeviceStall& stall : devices) {
    std::snprintf(buffer, sizeof(buffer),
                  "  gpu%d: dominant stall %-16s %8.3f s (%5.1f%% of makespan)%s\n",
                  stall.device, TimeClassName(stall.dominant), stall.seconds,
                  stall.fraction * 100.0, stall.device == worst_device ? "  <-- worst" : "");
    os << buffer;
  }
  if (!bottleneck_link.empty()) {
    std::snprintf(buffer, sizeof(buffer),
                  "  top contended link: %s (%.1f%% busy, avg queue %.2f, %s carried)\n",
                  bottleneck_link.c_str(), bottleneck_utilization * 100.0,
                  bottleneck_queue_depth, FormatBytes(bottleneck_bytes).c_str());
    os << buffer;
  } else {
    os << "  top contended link: none (no traffic)\n";
  }
  // Multi-node machines get the per-tier byte split; the section is absent on
  // single-server runs (tiers empty), keeping historical output byte-identical.
  if (!tiers.empty()) {
    os << "  tier byte split:\n";
    for (const RunReport::TierUsage& tier : tiers) {
      std::snprintf(buffer, sizeof(buffer),
                    "    %-5s %s carried (%lld flows, %.3f s link-busy; collective %s, "
                    "swap %s)\n",
                    tier.name.c_str(), FormatBytes(tier.bytes).c_str(),
                    static_cast<long long>(tier.flows), tier.busy_time,
                    FormatBytes(tier.of(TransferKind::kCollective)).c_str(),
                    FormatBytes(tier.of(TransferKind::kSwapIn) +
                                tier.of(TransferKind::kSwapOut))
                        .c_str());
      os << buffer;
    }
  }
  if (top_churn.empty()) {
    os << "  top churn tensors: none\n";
  } else {
    os << "  top churn tensors:\n";
    for (const RunReport::TensorChurn& churn : top_churn) {
      std::snprintf(buffer, sizeof(buffer),
                    "    %-24s %s moved (%lld evictions, %lld re-fetches, %lld clean-drops, "
                    "%lld write-backs)\n",
                    churn.name.c_str(), FormatBytes(churn.moved_bytes()).c_str(),
                    static_cast<long long>(churn.evictions),
                    static_cast<long long>(churn.refetches()),
                    static_cast<long long>(churn.clean_drops),
                    static_cast<long long>(churn.write_backs));
      os << buffer;
    }
  }
  // Only printed when the run actually exercised the resilience tier, so failure-free
  // output stays byte-identical to the pre-resilience renderer.
  if (flows_retried > 0 || retry_exhausted > 0 || degraded_sec > 0.0 ||
      straggler_device >= 0 || ckpt_verified_ok > 0 || ckpt_corrupt_detected > 0) {
    os << "  degraded-mode resilience:\n";
    if (flows_retried > 0 || retry_exhausted > 0) {
      std::snprintf(buffer, sizeof(buffer),
                    "    transfer retries: %lld reissued (%.3f s backoff), %lld exhausted\n",
                    static_cast<long long>(flows_retried), retry_backoff_sec,
                    static_cast<long long>(retry_exhausted));
      os << buffer;
    }
    if (degraded_sec > 0.0 || straggler_device >= 0) {
      std::snprintf(buffer, sizeof(buffer),
                    "    degraded compute: %.3f device-seconds at reduced scale%s\n",
                    degraded_sec,
                    straggler_device >= 0 ? " (straggler classified)" : "");
      os << buffer;
      if (straggler_device >= 0) {
        std::snprintf(buffer, sizeof(buffer), "    straggler device: gpu%d\n",
                      straggler_device);
        os << buffer;
      }
    }
    if (ckpt_verified_ok > 0 || ckpt_corrupt_detected > 0) {
      std::snprintf(buffer, sizeof(buffer),
                    "    checkpoint verification: %d ok, %d corrupt\n", ckpt_verified_ok,
                    ckpt_corrupt_detected);
      os << buffer;
    }
  }
  return os.str();
}

}  // namespace harmony
