#include "src/runtime/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace harmony {
namespace {

const char* CategoryOf(TaskKind kind) {
  switch (kind) {
    case TaskKind::kForward:
      return "forward";
    case TaskKind::kLoss:
      return "loss";
    case TaskKind::kBackward:
      return "backward";
    case TaskKind::kUpdate:
      return "update";
    case TaskKind::kAllReduce:
      return "allreduce";
  }
  return "other";
}

void AppendEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
}

}  // namespace

std::string TimelineToChromeTrace(const Plan& plan, const std::vector<TaskTrace>& timeline) {
  return TimelineToChromeTrace(plan, timeline, nullptr);
}

std::string TimelineToChromeTrace(const Plan& plan, const std::vector<TaskTrace>& timeline,
                                  const RunReport* report) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buffer[128];
  for (const TaskTrace& trace : timeline) {
    const Task& task = plan.tasks[static_cast<std::size_t>(trace.task)];
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, task.DebugName());
    out += "\",\"cat\":\"";
    out += CategoryOf(task.kind);
    // pid = 0 (one process), tid = device index; timestamps in microseconds.
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,", task.device,
                  trace.start * 1e6, (trace.end - trace.start) * 1e6);
    out += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "\"args\":{\"iteration\":%d,\"microbatch\":%d,\"layers\":\"[%d,%d)\"}}",
                  task.iteration, task.microbatch, task.layer_begin, task.layer_end);
    out += buffer;
  }
  // Thread name metadata so tracks read "gpu0", "gpu1", ...
  for (int d = 0; d < plan.num_devices(); ++d) {
    std::snprintf(buffer, sizeof(buffer),
                  ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"name\":\"gpu%d\"}}",
                  d, d);
    out += buffer;
  }
  // Link queue-depth counter tracks (one per link with traffic), under their own pid so
  // Perfetto groups them away from the device tracks.
  if (report != nullptr && !report->link_queue_timeline.empty()) {
    const std::size_t num_links =
        std::min(report->links.size(), report->link_queue_timeline.size());
    for (std::size_t l = 0; l < num_links; ++l) {
      const auto& points = report->link_queue_timeline[l];
      if (points.empty()) {
        continue;
      }
      std::string name = "queue ";
      AppendEscaped(name, report->links[l].name);
      for (const RunReport::LinkQueuePoint& point : points) {
        out += ",{\"name\":\"";
        out += name;
        std::snprintf(buffer, sizeof(buffer),
                      "\",\"ph\":\"C\",\"pid\":1,\"ts\":%.3f,\"args\":{\"flows\":%d}}",
                      point.time * 1e6, point.depth);
        out += buffer;
      }
    }
    out +=
        ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"links\"}}";
  }
  out += "]}";
  return out;
}

Status WriteChromeTrace(const Plan& plan, const std::vector<TaskTrace>& timeline,
                        const std::string& path, const RunReport* report) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return InternalError("cannot open trace file " + path);
  }
  file << TimelineToChromeTrace(plan, timeline, report);
  if (!file.good()) {
    return InternalError("failed writing trace file " + path);
  }
  return Status::Ok();
}

}  // namespace harmony
