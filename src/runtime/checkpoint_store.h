#ifndef HARMONY_RUNTIME_CHECKPOINT_STORE_H_
#define HARMONY_RUNTIME_CHECKPOINT_STORE_H_

#include <cstdint>
#include <deque>

#include "src/util/units.h"

namespace harmony {

// One committed host checkpoint generation. Iteration and time are *global* (across
// elastic segments): the store is owned by the recovery coordinator, which re-bases
// it before each segment so engine-local commits land with run-wide coordinates.
struct CheckpointGeneration {
  int iteration = -1;         // global iteration the generation covers (0-based)
  double time = 0.0;          // global sim time of the commit
  Bytes bytes = 0;            // weight + optimizer bytes copied out
  std::uint64_t digest = 0;   // checksum over the generation's payload identity
};

// Ring buffer of the last K checksummed host checkpoints (DESIGN.md §11).
//
// Each commit stores an FNV-1a digest over the generation's identity (iteration,
// commit time, byte count) — the simulation's stand-in for a checksum of the real
// tensor payload. A `ckpt_corrupt` fault flips bits in the newest stored digest;
// recovery then calls NewestValid(), which re-derives the expected digest per
// generation newest-first and falls back past corrupt ones, so a run survives as
// long as one of the last K generations verifies.
class CheckpointStore {
 public:
  explicit CheckpointStore(int keep);

  // Re-bases subsequent Commit() calls: engine-local iteration i at local time t is
  // recorded as global iteration `iteration_base + i` at time `time_base + t`.
  void SetBases(int iteration_base, double time_base);

  // Records a generation, evicting the oldest once more than `keep` are resident.
  void Commit(int local_iteration, double local_time, Bytes bytes);

  // Corrupts the newest resident generation (no-op on an empty store; returns
  // whether a generation was hit). Models bit-rot on the host checkpoint buffer.
  bool CorruptNewest();

  // Verifies generations newest-first and returns the newest whose digest matches,
  // or nullptr when none survives. Every generation inspected bumps the verification
  // counters (verified_ok / corrupt_detected); the walk stops at the first success.
  // The returned pointer is invalidated by the next Commit().
  const CheckpointGeneration* NewestValid();

  int keep() const { return keep_; }
  int resident() const { return static_cast<int>(ring_.size()); }
  int committed() const { return committed_; }                  // total commits ever
  int verified_ok() const { return verified_ok_; }              // digest checks passed
  int corrupt_detected() const { return corrupt_detected_; }    // digest checks failed

 private:
  static std::uint64_t ComputeDigest(const CheckpointGeneration& gen);

  int keep_;
  int iteration_base_ = 0;
  double time_base_ = 0.0;
  int committed_ = 0;
  int verified_ok_ = 0;
  int corrupt_detected_ = 0;
  std::deque<CheckpointGeneration> ring_;  // oldest first
};

}  // namespace harmony

#endif  // HARMONY_RUNTIME_CHECKPOINT_STORE_H_
