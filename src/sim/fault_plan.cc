#include "src/sim/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/util/rng.h"

namespace harmony {
namespace {

// Fixed-precision time/scale rendering so traces are byte-stable across platforms.
std::string FormatFixed(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

Status MalformedEvent(const std::string& event, const std::string& why) {
  return InvalidArgumentError("malformed fault event '" + event + "': " + why +
                              " (see --help for the --faults grammar)");
}

// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string::size_type start = 0;
  for (;;) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

StatusOr<double> ParseDouble(const std::string& event, const std::string& field,
                             const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (field.empty() || end != field.c_str() + field.size() || !std::isfinite(value)) {
    return MalformedEvent(event, what + " must be a finite number, got '" + field + "'");
  }
  return value;
}

StatusOr<int> ParseGpuField(const std::string& event, const std::string& field) {
  if (field.rfind("gpu", 0) != 0 || field.size() == 3) {
    return MalformedEvent(event, "expected a target like 'gpu2', got '" + field + "'");
  }
  const std::string digits = field.substr(3);
  char* end = nullptr;
  const long gpu = std::strtol(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size() || gpu < 0) {
    return MalformedEvent(event, "expected a target like 'gpu2', got '" + field + "'");
  }
  return static_cast<int>(gpu);
}

StatusOr<FaultPlan> ParseRandSpec(const std::string& event) {
  RandomFaultOptions options;
  // event = "rand:key=value,key=value,..."
  for (const std::string& kv : Split(event.substr(5), ',')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      return MalformedEvent(event, "rand options must be key=value, got '" + kv + "'");
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "seed") {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "mtbf") {
      StatusOr<double> v = ParseDouble(event, value, "mtbf");
      if (!v.ok()) {
        return v.status();
      }
      options.mtbf = v.value();
    } else if (key == "horizon") {
      StatusOr<double> v = ParseDouble(event, value, "horizon");
      if (!v.ok()) {
        return v.status();
      }
      options.horizon = v.value();
    } else if (key == "gpus") {
      options.num_gpus = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "fail") {
      options.allow_fail_stop = value == "1" || value == "true";
    } else {
      return MalformedEvent(event, "unknown rand option '" + key + "'");
    }
  }
  if (options.mtbf <= 0.0 || options.horizon <= 0.0 || options.num_gpus <= 0) {
    return MalformedEvent(event, "mtbf, horizon and gpus must all be positive");
  }
  return MakeRandomFaultPlan(options);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGpuFailStop:
      return "gpu-fail-stop";
    case FaultKind::kGpuLinkDegrade:
      return "gpu-link-degrade";
    case FaultKind::kHostLinkDegrade:
      return "host-link-degrade";
    case FaultKind::kHostMemPressure:
      return "host-mem-pressure";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case FaultKind::kGpuFailStop:
      os << "fail@" << FormatFixed(time) << ":gpu" << gpu;
      break;
    case FaultKind::kGpuLinkDegrade:
      os << "degrade@" << FormatFixed(time) << ":gpu" << gpu << ":" << FormatFixed(scale)
         << ":" << FormatFixed(duration);
      break;
    case FaultKind::kHostLinkDegrade:
      os << "degrade@" << FormatFixed(time) << ":host:" << FormatFixed(scale) << ":"
         << FormatFixed(duration);
      break;
    case FaultKind::kHostMemPressure:
      os << "mem@" << FormatFixed(time) << ":" << FormatFixed(scale) << ":"
         << FormatFixed(duration);
      break;
  }
  return os.str();
}

void FaultPlan::Add(FaultEvent event) {
  // Stable insertion keeps equal-time events in Add() order — the replay order contract.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events_.insert(pos, event);
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) {
      os << ";";
    }
    os << events_[i].ToString();
  }
  return os.str();
}

StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& event : Split(spec, ';')) {
    if (event.empty()) {
      continue;
    }
    if (event.rfind("rand:", 0) == 0) {
      StatusOr<FaultPlan> random = ParseRandSpec(event);
      if (!random.ok()) {
        return random.status();
      }
      for (const FaultEvent& e : random.value().events()) {
        plan.Add(e);
      }
      continue;
    }
    const auto at = event.find('@');
    if (at == std::string::npos) {
      return MalformedEvent(event, "expected '<kind>@<time>:...'");
    }
    const std::string kind = event.substr(0, at);
    const std::vector<std::string> fields = Split(event.substr(at + 1), ':');
    StatusOr<double> time = ParseDouble(event, fields[0], "time");
    if (!time.ok()) {
      return time.status();
    }
    if (time.value() < 0.0) {
      return MalformedEvent(event, "time must be >= 0");
    }

    FaultEvent e;
    e.time = time.value();
    if (kind == "fail") {
      if (fields.size() != 2) {
        return MalformedEvent(event, "expected fail@<t>:gpu<i>");
      }
      StatusOr<int> gpu = ParseGpuField(event, fields[1]);
      if (!gpu.ok()) {
        return gpu.status();
      }
      e.kind = FaultKind::kGpuFailStop;
      e.gpu = gpu.value();
    } else if (kind == "degrade") {
      if (fields.size() != 4) {
        return MalformedEvent(event, "expected degrade@<t>:<gpu<i>|host>:<scale>:<dur>");
      }
      StatusOr<double> scale = ParseDouble(event, fields[2], "scale");
      if (!scale.ok()) {
        return scale.status();
      }
      StatusOr<double> duration = ParseDouble(event, fields[3], "duration");
      if (!duration.ok()) {
        return duration.status();
      }
      if (scale.value() <= 0.0 || scale.value() > 1.0) {
        return MalformedEvent(event, "scale must be in (0, 1]");
      }
      if (duration.value() < 0.0) {
        return MalformedEvent(event, "duration must be >= 0 (0 = permanent)");
      }
      e.scale = scale.value();
      e.duration = duration.value();
      if (fields[1] == "host") {
        e.kind = FaultKind::kHostLinkDegrade;
      } else {
        StatusOr<int> gpu = ParseGpuField(event, fields[1]);
        if (!gpu.ok()) {
          return gpu.status();
        }
        e.kind = FaultKind::kGpuLinkDegrade;
        e.gpu = gpu.value();
      }
    } else if (kind == "mem") {
      if (fields.size() != 3) {
        return MalformedEvent(event, "expected mem@<t>:<scale>:<dur>");
      }
      StatusOr<double> scale = ParseDouble(event, fields[1], "scale");
      if (!scale.ok()) {
        return scale.status();
      }
      StatusOr<double> duration = ParseDouble(event, fields[2], "duration");
      if (!duration.ok()) {
        return duration.status();
      }
      if (scale.value() <= 0.0 || scale.value() > 1.0) {
        return MalformedEvent(event, "scale must be in (0, 1]");
      }
      if (duration.value() < 0.0) {
        return MalformedEvent(event, "duration must be >= 0 (0 = permanent)");
      }
      e.kind = FaultKind::kHostMemPressure;
      e.scale = scale.value();
      e.duration = duration.value();
    } else {
      return MalformedEvent(event, "unknown fault kind '" + kind + "'");
    }
    plan.Add(e);
  }
  return plan;
}

FaultPlan MakeRandomFaultPlan(const RandomFaultOptions& options) {
  HCHECK_GT(options.mtbf, 0.0);
  HCHECK_GT(options.horizon, 0.0);
  HCHECK_GT(options.num_gpus, 0);
  FaultPlan plan;
  Rng rng(options.seed);
  bool fail_stop_used = false;
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival at rate 1/mtbf. 1 - NextDouble() keeps log() off zero.
    t += -options.mtbf * std::log(1.0 - rng.NextDouble());
    if (t >= options.horizon) {
      return plan;
    }
    FaultEvent e;
    e.time = t;
    // Draw the fault class; fail-stop is deliberately rare (one per plan at most) so the
    // schedule degrades before it amputates.
    const std::uint64_t roll = rng.NextBounded(8);
    if (roll == 0 && options.allow_fail_stop && !fail_stop_used) {
      fail_stop_used = true;
      e.kind = FaultKind::kGpuFailStop;
      e.gpu = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(options.num_gpus)));
    } else {
      const std::uint64_t which = rng.NextBounded(3);
      e.kind = which == 0   ? FaultKind::kGpuLinkDegrade
               : which == 1 ? FaultKind::kHostLinkDegrade
                            : FaultKind::kHostMemPressure;
      if (e.kind == FaultKind::kGpuLinkDegrade) {
        e.gpu = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(options.num_gpus)));
      }
      e.scale = rng.NextDouble(options.min_scale, 0.9);
      e.duration = -options.mean_duration * std::log(1.0 - rng.NextDouble());
    }
    plan.Add(e);
  }
}

}  // namespace harmony
