#include "src/sim/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/util/rng.h"

namespace harmony {
namespace {

// Fixed-precision time/scale rendering so traces are byte-stable across platforms.
std::string FormatFixed(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  return buffer;
}

// Permanent effects (duration == 0 internally) render as the literal "inf" so that the
// grammar round-trips: a rendered plan re-parses to the identical plan, and a rendered
// positive duration can never collide with the permanent sentinel.
std::string FormatDuration(double duration) {
  return duration == 0.0 ? "inf" : FormatFixed(duration);
}

// A field within one event, remembering where it starts in the original spec so parse
// errors can point at the offending byte (same convention as util/json.cc).
struct Field {
  std::string text;
  std::size_t offset = 0;  // absolute byte offset in the spec string
};

Status MalformedEvent(const std::string& event, std::size_t offset,
                      const std::string& why) {
  return InvalidArgumentError("malformed fault event '" + event + "': " + why +
                              " (at byte " + std::to_string(offset) +
                              "; see --help for the --faults grammar)");
}

// Splits on `sep`, keeping empty fields and recording each field's absolute offset
// (`base` = offset of `s` within the full spec).
std::vector<Field> Split(const std::string& s, char sep, std::size_t base) {
  std::vector<Field> out;
  std::string::size_type start = 0;
  for (;;) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(Field{s.substr(start), base + start});
      return out;
    }
    out.push_back(Field{s.substr(start, pos - start), base + start});
    start = pos + 1;
  }
}

StatusOr<double> ParseDouble(const std::string& event, const Field& field,
                             const std::string& what) {
  char* end = nullptr;
  const double value = std::strtod(field.text.c_str(), &end);
  if (field.text.empty() || end != field.text.c_str() + field.text.size() ||
      !std::isfinite(value)) {
    return MalformedEvent(event, field.offset,
                          what + " must be a finite number, got '" + field.text + "'");
  }
  return value;
}

// Scales are multipliers in (0, 1]; zero, negative, out-of-range and NaN all reject.
StatusOr<double> ParseScale(const std::string& event, const Field& field) {
  StatusOr<double> scale = ParseDouble(event, field, "scale");
  if (!scale.ok()) {
    return scale.status();
  }
  if (scale.value() <= 0.0 || scale.value() > 1.0) {
    return MalformedEvent(event, field.offset, "scale must be in (0, 1]");
  }
  return scale.value();
}

// Durations are strictly positive seconds or the literal "inf" (permanent; internal
// sentinel 0.0). Zero, negative and NaN durations reject at parse time.
StatusOr<double> ParseDurationField(const std::string& event, const Field& field) {
  if (field.text == "inf") {
    return 0.0;
  }
  StatusOr<double> duration = ParseDouble(event, field, "duration");
  if (!duration.ok()) {
    return duration.status();
  }
  if (duration.value() <= 0.0) {
    return MalformedEvent(event, field.offset,
                          "duration must be > 0 seconds or 'inf' (permanent)");
  }
  return duration.value();
}

StatusOr<int> ParseGpuField(const std::string& event, const Field& field) {
  if (field.text.rfind("gpu", 0) != 0 || field.text.size() == 3) {
    return MalformedEvent(event, field.offset,
                          "expected a target like 'gpu2', got '" + field.text + "'");
  }
  const std::string digits = field.text.substr(3);
  char* end = nullptr;
  const long gpu = std::strtol(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size() || gpu < 0) {
    return MalformedEvent(event, field.offset,
                          "expected a target like 'gpu2', got '" + field.text + "'");
  }
  return static_cast<int>(gpu);
}

// Parses "gpu<i>" or "host" (host encodes as gpu = -1).
StatusOr<int> ParseTargetField(const std::string& event, const Field& field) {
  if (field.text == "host") {
    return -1;
  }
  return ParseGpuField(event, field);
}

// Non-negative index following `prefix`, or -1 when the field does not start with it.
// "nic" alone (no digits) and negative/garbage indices reject via the caller.
int ParseIndexAfter(const std::string& text, const char* prefix) {
  const std::size_t len = std::char_traits<char>::length(prefix);
  if (text.rfind(prefix, 0) != 0 || text.size() == len) {
    return -1;
  }
  const std::string digits = text.substr(len);
  char* end = nullptr;
  const long value = std::strtol(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size() || value < 0) {
    return -1;
  }
  return static_cast<int>(value);
}

// Network-capable target for flow_flap / brownout: "gpu<i>", "host", "nic<i>" or "rack<i>".
// Exactly one of the out-params is set (host = gpu stays -1 with nic/rack -1).
Status ParseNetworkTargetField(const std::string& event, const Field& field, FaultEvent* e) {
  if (field.text.rfind("nic", 0) == 0) {
    const int nic = ParseIndexAfter(field.text, "nic");
    if (nic < 0) {
      return MalformedEvent(event, field.offset,
                            "expected a target like 'nic0', got '" + field.text + "'");
    }
    e->nic = nic;
    return Status::Ok();
  }
  if (field.text.rfind("rack", 0) == 0) {
    const int rack = ParseIndexAfter(field.text, "rack");
    if (rack < 0) {
      return MalformedEvent(event, field.offset,
                            "expected a target like 'rack0', got '" + field.text + "'");
    }
    e->rack = rack;
    return Status::Ok();
  }
  StatusOr<int> target = ParseTargetField(event, field);
  if (!target.ok()) {
    return target.status();
  }
  e->gpu = target.value();
  return Status::Ok();
}

StatusOr<FaultPlan> ParseRandSpec(const std::string& event, std::size_t offset) {
  RandomFaultOptions options;
  // event = "rand:key=value,key=value,..."
  for (const Field& kv : Split(event.substr(5), ',', offset + 5)) {
    const auto eq = kv.text.find('=');
    if (eq == std::string::npos) {
      return MalformedEvent(event, kv.offset,
                            "rand options must be key=value, got '" + kv.text + "'");
    }
    const std::string key = kv.text.substr(0, eq);
    const Field value{kv.text.substr(eq + 1), kv.offset + eq + 1};
    if (key == "seed") {
      options.seed = std::strtoull(value.text.c_str(), nullptr, 10);
    } else if (key == "mtbf") {
      StatusOr<double> v = ParseDouble(event, value, "mtbf");
      if (!v.ok()) {
        return v.status();
      }
      options.mtbf = v.value();
    } else if (key == "horizon") {
      StatusOr<double> v = ParseDouble(event, value, "horizon");
      if (!v.ok()) {
        return v.status();
      }
      options.horizon = v.value();
    } else if (key == "gpus") {
      options.num_gpus = static_cast<int>(std::strtol(value.text.c_str(), nullptr, 10));
    } else if (key == "nics" || key == "racks") {
      char* end = nullptr;
      const long count = std::strtol(value.text.c_str(), &end, 10);
      if (value.text.empty() || end != value.text.c_str() + value.text.size() || count < 0) {
        return MalformedEvent(event, value.offset,
                              key + " must be a non-negative integer, got '" + value.text +
                                  "'");
      }
      (key == "nics" ? options.num_nics : options.num_racks) = static_cast<int>(count);
    } else if (key == "fail" || key == "ext" || key == "ckpt") {
      const bool on = value.text == "1" || value.text == "true";
      if (!on && value.text != "0" && value.text != "false") {
        return MalformedEvent(event, value.offset,
                              key + " must be 0, 1, true or false, got '" + value.text + "'");
      }
      (key == "fail" ? options.allow_fail_stop
                     : key == "ext" ? options.transient : options.ckpt_faults) = on;
    } else {
      return MalformedEvent(event, kv.offset, "unknown rand option '" + key + "'");
    }
  }
  if (options.mtbf <= 0.0 || options.horizon <= 0.0 || options.num_gpus <= 0) {
    return MalformedEvent(event, offset, "mtbf, horizon and gpus must all be positive");
  }
  return MakeRandomFaultPlan(options);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGpuFailStop:
      return "gpu-fail-stop";
    case FaultKind::kGpuLinkDegrade:
      return "gpu-link-degrade";
    case FaultKind::kHostLinkDegrade:
      return "host-link-degrade";
    case FaultKind::kHostMemPressure:
      return "host-mem-pressure";
    case FaultKind::kFlowFlap:
      return "flow-flap";
    case FaultKind::kLinkBrownout:
      return "link-brownout";
    case FaultKind::kGpuSlow:
      return "gpu-slow";
    case FaultKind::kCkptCorrupt:
      return "ckpt-corrupt";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  const auto target = [this]() -> std::string {
    if (nic >= 0) {
      return "nic" + std::to_string(nic);
    }
    if (rack >= 0) {
      return "rack" + std::to_string(rack);
    }
    return gpu < 0 ? "host" : "gpu" + std::to_string(gpu);
  };
  switch (kind) {
    case FaultKind::kGpuFailStop:
      os << "fail@" << FormatFixed(time) << ":gpu" << gpu;
      break;
    case FaultKind::kGpuLinkDegrade:
      os << "degrade@" << FormatFixed(time) << ":gpu" << gpu << ":" << FormatFixed(scale)
         << ":" << FormatDuration(duration);
      break;
    case FaultKind::kHostLinkDegrade:
      os << "degrade@" << FormatFixed(time) << ":host:" << FormatFixed(scale) << ":"
         << FormatDuration(duration);
      break;
    case FaultKind::kHostMemPressure:
      os << "mem@" << FormatFixed(time) << ":" << FormatFixed(scale) << ":"
         << FormatDuration(duration);
      break;
    case FaultKind::kFlowFlap:
      os << "flow_flap@" << FormatFixed(time) << ":" << target();
      break;
    case FaultKind::kLinkBrownout:
      os << "brownout@" << FormatFixed(time) << ":" << target() << ":"
         << FormatFixed(scale) << ":" << FormatDuration(duration);
      break;
    case FaultKind::kGpuSlow:
      os << "gpu_slow@" << FormatFixed(time) << ":gpu" << gpu << ":" << FormatFixed(scale)
         << ":" << FormatDuration(duration);
      break;
    case FaultKind::kCkptCorrupt:
      os << "ckpt_corrupt@" << FormatFixed(time);
      break;
  }
  return os.str();
}

void FaultPlan::Add(FaultEvent event) {
  // Stable insertion keeps equal-time events in Add() order — the replay order contract.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
  events_.insert(pos, event);
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) {
      os << ";";
    }
    os << events_[i].ToString();
  }
  return os.str();
}

StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  for (const Field& item : Split(spec, ';', 0)) {
    const std::string& event = item.text;
    const std::size_t offset = item.offset;
    if (event.empty()) {
      continue;
    }
    if (event.rfind("rand:", 0) == 0) {
      StatusOr<FaultPlan> random = ParseRandSpec(event, offset);
      if (!random.ok()) {
        return random.status();
      }
      for (const FaultEvent& e : random.value().events()) {
        plan.Add(e);
      }
      continue;
    }
    const auto at = event.find('@');
    if (at == std::string::npos) {
      return MalformedEvent(event, offset, "expected '<kind>@<time>:...'");
    }
    const std::string kind = event.substr(0, at);
    const std::vector<Field> fields = Split(event.substr(at + 1), ':', offset + at + 1);
    StatusOr<double> time = ParseDouble(event, fields[0], "time");
    if (!time.ok()) {
      return time.status();
    }
    if (time.value() < 0.0) {
      return MalformedEvent(event, fields[0].offset, "time must be >= 0");
    }

    FaultEvent e;
    e.time = time.value();
    if (kind == "fail") {
      if (fields.size() != 2) {
        return MalformedEvent(event, offset, "expected fail@<t>:gpu<i>");
      }
      StatusOr<int> gpu = ParseGpuField(event, fields[1]);
      if (!gpu.ok()) {
        return gpu.status();
      }
      e.kind = FaultKind::kGpuFailStop;
      e.gpu = gpu.value();
    } else if (kind == "degrade") {
      if (fields.size() != 4) {
        return MalformedEvent(event, offset,
                              "expected degrade@<t>:<gpu<i>|host>:<scale>:<dur>");
      }
      StatusOr<double> scale = ParseScale(event, fields[2]);
      if (!scale.ok()) {
        return scale.status();
      }
      StatusOr<double> duration = ParseDurationField(event, fields[3]);
      if (!duration.ok()) {
        return duration.status();
      }
      e.scale = scale.value();
      e.duration = duration.value();
      StatusOr<int> target = ParseTargetField(event, fields[1]);
      if (!target.ok()) {
        return target.status();
      }
      e.gpu = target.value();
      e.kind = e.gpu < 0 ? FaultKind::kHostLinkDegrade : FaultKind::kGpuLinkDegrade;
    } else if (kind == "mem") {
      if (fields.size() != 3) {
        return MalformedEvent(event, offset, "expected mem@<t>:<scale>:<dur>");
      }
      StatusOr<double> scale = ParseScale(event, fields[1]);
      if (!scale.ok()) {
        return scale.status();
      }
      StatusOr<double> duration = ParseDurationField(event, fields[2]);
      if (!duration.ok()) {
        return duration.status();
      }
      e.kind = FaultKind::kHostMemPressure;
      e.scale = scale.value();
      e.duration = duration.value();
    } else if (kind == "flow_flap") {
      if (fields.size() != 2) {
        return MalformedEvent(event, offset,
                              "expected flow_flap@<t>:<gpu<i>|host|nic<i>|rack<i>>");
      }
      const Status target = ParseNetworkTargetField(event, fields[1], &e);
      if (!target.ok()) {
        return target;
      }
      e.kind = FaultKind::kFlowFlap;
    } else if (kind == "brownout") {
      if (fields.size() != 4) {
        return MalformedEvent(event, offset,
                              "expected brownout@<t>:<gpu<i>|host|nic<i>|rack<i>>:<scale>:<dur>");
      }
      StatusOr<double> scale = ParseScale(event, fields[2]);
      if (!scale.ok()) {
        return scale.status();
      }
      StatusOr<double> duration = ParseDurationField(event, fields[3]);
      if (!duration.ok()) {
        return duration.status();
      }
      const Status target = ParseNetworkTargetField(event, fields[1], &e);
      if (!target.ok()) {
        return target;
      }
      e.kind = FaultKind::kLinkBrownout;
      e.scale = scale.value();
      e.duration = duration.value();
    } else if (kind == "gpu_slow") {
      if (fields.size() != 4) {
        return MalformedEvent(event, offset,
                              "expected gpu_slow@<t>:gpu<i>:<scale>:<dur>");
      }
      StatusOr<int> gpu = ParseGpuField(event, fields[1]);
      if (!gpu.ok()) {
        return gpu.status();
      }
      StatusOr<double> scale = ParseScale(event, fields[2]);
      if (!scale.ok()) {
        return scale.status();
      }
      StatusOr<double> duration = ParseDurationField(event, fields[3]);
      if (!duration.ok()) {
        return duration.status();
      }
      e.kind = FaultKind::kGpuSlow;
      e.gpu = gpu.value();
      e.scale = scale.value();
      e.duration = duration.value();
    } else if (kind == "ckpt_corrupt") {
      if (fields.size() != 1) {
        return MalformedEvent(event, offset, "expected ckpt_corrupt@<t>");
      }
      e.kind = FaultKind::kCkptCorrupt;
    } else {
      return MalformedEvent(event, offset, "unknown fault kind '" + kind + "'");
    }
    plan.Add(e);
  }
  return plan;
}

FaultPlan MakeRandomFaultPlan(const RandomFaultOptions& options) {
  HCHECK_GT(options.mtbf, 0.0);
  HCHECK_GT(options.horizon, 0.0);
  HCHECK_GT(options.num_gpus, 0);
  FaultPlan plan;
  Rng rng(options.seed);
  const auto num_gpus = static_cast<std::uint64_t>(options.num_gpus);
  // Generated values stay above the renderer's %.3f resolution so that rendered plans
  // re-parse (a positive duration must never round down to the rejected "0.000").
  const auto draw_scale = [&rng, &options] {
    return std::max(0.001, rng.NextDouble(options.min_scale, 0.9));
  };
  const auto draw_duration = [&rng, &options] {
    return std::max(0.001, -options.mean_duration * std::log(1.0 - rng.NextDouble()));
  };
  // "gpu<i>" for i < num_gpus, or "host" (encoded -1), with equal probability; when the
  // machine has network tiers (nics=/racks=) the range widens to "nic<i>" / "rack<i>"
  // targets. Gating the widening on the options keeps pre-cluster seeds bitwise-stable.
  const auto num_nics = static_cast<std::uint64_t>(options.num_nics < 0 ? 0 : options.num_nics);
  const auto num_racks =
      static_cast<std::uint64_t>(options.num_racks < 0 ? 0 : options.num_racks);
  const auto draw_target = [&rng, num_gpus, num_nics, num_racks](FaultEvent* e) {
    const std::uint64_t t = rng.NextBounded(num_gpus + 1 + num_nics + num_racks);
    if (t < num_gpus) {
      e->gpu = static_cast<int>(t);
    } else if (t == num_gpus) {
      e->gpu = -1;
    } else if (t < num_gpus + 1 + num_nics) {
      e->nic = static_cast<int>(t - num_gpus - 1);
    } else {
      e->rack = static_cast<int>(t - num_gpus - 1 - num_nics);
    }
  };
  bool fail_stop_used = false;
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival at rate 1/mtbf. 1 - NextDouble() keeps log() off zero.
    t += -options.mtbf * std::log(1.0 - rng.NextDouble());
    if (t >= options.horizon) {
      return plan;
    }
    FaultEvent e;
    e.time = t;
    // Draw the fault class; fail-stop is deliberately rare (one per plan at most) so the
    // schedule degrades before it amputates.
    const std::uint64_t roll = rng.NextBounded(8);
    if (roll == 0 && options.allow_fail_stop && !fail_stop_used) {
      fail_stop_used = true;
      e.kind = FaultKind::kGpuFailStop;
      e.gpu = static_cast<int>(rng.NextBounded(num_gpus));
    } else {
      // Extended kinds widen the draw range only when enabled, so plans generated with
      // them off are bitwise-identical to plans from before the kinds existed.
      const std::uint64_t classes = 3u + (options.transient ? 3u : 0u) +
                                    (options.ckpt_faults ? 1u : 0u);
      const std::uint64_t which = rng.NextBounded(classes);
      const std::uint64_t ckpt_index = options.ckpt_faults ? classes - 1 : classes;
      if (which < 3) {
        e.kind = which == 0   ? FaultKind::kGpuLinkDegrade
                 : which == 1 ? FaultKind::kHostLinkDegrade
                              : FaultKind::kHostMemPressure;
        if (e.kind == FaultKind::kGpuLinkDegrade) {
          e.gpu = static_cast<int>(rng.NextBounded(num_gpus));
        }
        e.scale = draw_scale();
        e.duration = draw_duration();
      } else if (which == ckpt_index) {
        e.kind = FaultKind::kCkptCorrupt;
      } else if (which == 3) {
        e.kind = FaultKind::kFlowFlap;
        draw_target(&e);
      } else if (which == 4) {
        e.kind = FaultKind::kLinkBrownout;
        draw_target(&e);
        e.scale = draw_scale();
        e.duration = draw_duration();
      } else {
        e.kind = FaultKind::kGpuSlow;
        e.gpu = static_cast<int>(rng.NextBounded(num_gpus));
        e.scale = draw_scale();
        e.duration = draw_duration();
      }
    }
    plan.Add(e);
  }
}

}  // namespace harmony
