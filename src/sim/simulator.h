// Sharded deterministic discrete-event simulation core.
//
// Everything in Harmony's hardware substrate (links, DMA engines, GPU compute streams) is
// driven by one Simulator. Events scheduled for the same timestamp run in insertion order
// (a monotonically increasing sequence number breaks ties), so every experiment is
// reproducible bit-for-bit.
//
// The core is sharded into *lanes* (DESIGN.md §10): each component that owns an event
// stream — a GPU compute stream, the DMA engine, each topology link — creates its own lane
// and schedules onto it. Internally a lane keeps timestamp buckets (a FIFO slot chain per
// distinct timestamp, a min-heap over the distinct timestamps), and a top-level indexed
// heap over lane heads yields the global (when, seq) order. Event closures live in a slab
// arena of fixed-size slots with small-buffer inline storage (util/inline_function.h), so
// steady-state scheduling performs no heap allocation at all.
//
// With SetParallelism(n > 1) and a positive lookahead, RunUntilIdle executes in
// conservative time windows: lanes whose next event falls inside [t, t + lookahead) are
// *drained* in parallel on a worker pool (each worker touches only its own lane's
// structures), then the drained events execute serially in merged (when, seq) order. The
// observable event sequence is therefore byte-identical at any thread count — parallelism
// accelerates queue maintenance, never reorders execution. Zero lookahead (or a single
// active lane) falls back to the serial path automatically.
#ifndef HARMONY_SRC_SIM_SIMULATOR_H_
#define HARMONY_SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/check.h"
#include "src/util/inline_function.h"
#include "src/util/status.h"

namespace harmony {

class ThreadPool;

// Simulated time, in seconds.
using SimTime = double;

inline constexpr SimTime kSimTimeNever = -1.0;

// Handle for a per-component event lane (index into the simulator's lane table).
using SimLane = int;

class Simulator {
 public:
  // Lane 0 always exists: events scheduled without an explicit lane land there.
  static constexpr SimLane kDefaultLane = 0;

  // Event closure type: inline storage covers the common captures (`this` + a few
  // scalars, up to 32 bytes — every hot-path closure in the runtime fits); larger captures
  // take one heap allocation, like std::function always did. 32 keeps the whole arena slot
  // (closure + sequence number + intrusive link) inside one 64-byte cache line.
  using Closure = InlineFunction<32>;

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }

  // Registers a new event lane (components call this at construction). Returns its handle.
  SimLane CreateLane(std::string name);
  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  const std::string& lane_name(SimLane lane) const {
    return lanes_[CheckedLane(lane)].name;
  }

  // Capacity hint: pre-sizes the event arena to at least `events` outstanding events so
  // steady-state scheduling never allocates.
  void Reserve(std::size_t events);

  // Schedules `fn` to run at absolute time `when` (must be >= now()), optionally on a
  // specific lane. Lane choice never affects execution order — only which sub-queue carries
  // the event (and thus which worker drains it under parallel execution).
  void ScheduleAt(SimTime when, Closure fn) { ScheduleOnLane(kDefaultLane, when, std::move(fn)); }
  void ScheduleAt(SimLane lane, SimTime when, Closure fn) {
    ScheduleOnLane(lane, when, std::move(fn));
  }

  // Schedules `fn` to run `delay` seconds from now (delay >= 0).
  void ScheduleAfter(SimTime delay, Closure fn);
  void ScheduleAfter(SimLane lane, SimTime delay, Closure fn);

  // Worker threads for windowed execution (>= 1; 1 = serial, the default). The pool is
  // created lazily on the first parallel RunUntilIdle.
  void SetParallelism(int threads);
  int parallelism() const { return threads_; }

  // Conservative window width, normally Topology::MinLinkLatency(). Zero (the default)
  // disables windowing regardless of parallelism.
  void SetLookahead(SimTime lookahead);
  SimTime lookahead() const { return lookahead_; }

  // Runs events until the queue drains. Returns the final simulated time. The event budget
  // guards against runaway loops in buggy schedules; exceeding it is a fatal error.
  SimTime RunUntilIdle(std::uint64_t max_events = 500'000'000);

  // Runs exactly one event if available; returns false when the queue is empty.
  bool RunOne();

  bool idle() const { return top_heap_.empty() && overflow_.empty(); }

  // Arena introspection (tests): total slots allocated / currently holding a live event.
  std::size_t arena_capacity() const { return slabs_.size() * kSlabSlots; }
  std::size_t arena_in_use() const { return arena_in_use_; }

 private:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kSlabShift = 12;
  static constexpr std::size_t kSlabSlots = std::size_t{1} << kSlabShift;  // 4096
  static constexpr std::size_t kMaxSlabs = std::size_t{1} << 19;           // 2^31 slots
  // How many slots ahead of the pop cursor to prefetch within a bucket chain: deep enough
  // to cover a memory-latency stall with a handful of event executions.
  static constexpr std::size_t kPrefetchDistance = 8;

  // One arena slot: the closure, its global sequence number, and the free-list link.
  struct Slot {
    Closure fn;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;
  };

  // One distinct timestamp within a lane: the FIFO chain of slot indices, stored flat so
  // the pop path can prefetch slot lines well ahead (an intrusive chain only reveals the
  // next index after the miss it causes). `pos` is the consumed prefix; free buckets keep
  // their chain capacity, so steady-state scheduling never reallocates here either.
  struct Bucket {
    SimTime when = 0.0;
    std::vector<std::uint32_t> chain;
    std::size_t pos = 0;
  };

  struct BucketRef {
    SimTime when = 0.0;
    std::uint32_t bucket = kNil;
  };

  // A drained (or popped) event, ready to execute: the (when, seq) key plus its arena slot.
  struct PendingEvent {
    SimTime when = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t slot = kNil;
  };

  struct Lane {
    std::string name;
    std::vector<BucketRef> heap;     // min-heap over distinct timestamps
    std::vector<Bucket> buckets;          // bucket pool
    std::vector<std::uint32_t> bucket_free;  // LIFO free list into `buckets`
    std::unordered_map<SimTime, std::uint32_t> bucket_by_time;
    // Cached head key — (heap[0].when, first chained slot's seq) — read by the top-level
    // heap comparator. Valid whenever the lane is non-empty.
    SimTime head_when = 0.0;
    std::uint64_t head_seq = 0;
    // head_seq deferral: while a lane is alone in the top heap its seq is never compared,
    // so pops skip the (cache-missing) read of the next slot's seq and mark it stale;
    // TopHeapInsert restores freshness before any second lane can be compared against it.
    bool head_seq_stale = false;
    std::size_t top_pos = kNoPos;    // position in top_heap_, kNoPos when lane is empty
    std::vector<PendingEvent> run;   // window-drain output, reused across windows
  };

  // Cursor into one lane's drained run during merged window execution.
  struct RunCursor {
    SimLane lane = 0;
    std::size_t index = 0;
  };

  std::size_t CheckedLane(SimLane lane) const {
    HCHECK_GE(lane, 0);
    HCHECK_LT(lane, num_lanes());
    return static_cast<std::size_t>(lane);
  }

  Slot& SlotAt(std::uint32_t index) {
    return slabs_[index >> kSlabShift][index & (kSlabSlots - 1)];
  }

  // ---- arena ----
  void AddSlab();
  std::uint32_t AllocSlot(Closure&& fn, std::uint64_t seq);
  void FreeSlot(std::uint32_t index);

  // ---- lane queues ----
  std::uint32_t AllocBucket(Lane& lane);
  void FreeBucket(Lane& lane, std::uint32_t index);
  void BucketHeapSiftUp(Lane& lane, std::size_t i);
  void BucketHeapSiftDown(Lane& lane, std::size_t i);
  void RefreshLaneHead(Lane& lane, bool need_seq);
  void ScheduleOnLane(SimLane lane, SimTime when, Closure&& fn);
  void LanePush(SimLane lane_id, SimTime when, std::uint32_t slot);
  PendingEvent LanePopFront(SimLane lane_id, bool need_seq);

  // ---- top-level heap over lane heads ----
  bool LaneBefore(SimLane a, SimLane b) const;
  void TopHeapSiftUp(std::size_t i);
  void TopHeapSiftDown(std::size_t i);
  void TopHeapInsert(SimLane lane);
  void TopHeapRemoveAt(std::size_t i);

  // ---- execution ----
  void ExecuteEvent(const PendingEvent& event);
  void CheckBudget(std::uint64_t* budget);
  void DrainLane(Lane& lane, SimTime window_end);
  void ExecuteWindow(SimTime window_end, std::uint64_t* budget);
  void EnsurePool();
  bool CursorBefore(const RunCursor& a, const RunCursor& b) const;
  void CursorHeapSiftDown(std::size_t i);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t free_slot_ = kNil;
  std::size_t arena_in_use_ = 0;

  std::vector<Lane> lanes_;
  std::vector<SimLane> top_heap_;

  int threads_ = 1;
  SimTime lookahead_ = 0.0;
  std::unique_ptr<ThreadPool> pool_;

  // Window state: while a window executes, newly scheduled events earlier than window_end_
  // bypass the lanes and interleave through this (min-heap ordered) overflow queue.
  bool window_active_ = false;
  SimTime window_end_ = 0.0;
  std::vector<PendingEvent> overflow_;
  std::vector<SimLane> window_lanes_;  // scratch: lanes participating in the open window
  std::vector<RunCursor> cursors_;     // scratch: merge heap over drained runs
};

// Parses a HARMONY_SIM_THREADS environment value: nullptr / empty means "unset" and
// resolves to 1; anything else must be a full-string positive integer that fits an int.
// Garbage ("8x", "abc"), zero/negative values, and overflow reject with a typed error —
// the same contract --sim_threads enforces at the flag layer.
StatusOr<int> ParseSimThreadsEnv(const char* value);

// Resolves a sim-threads knob: n >= 1 is taken literally; n <= 0 means "consult the
// HARMONY_SIM_THREADS environment variable", re-read on every call so env changes between
// sessions take effect (each session samples it once at startup). A malformed env value is
// fatal with the ParseSimThreadsEnv message — callers that want a recoverable Status should
// parse the env themselves. The env hook lets the golden benches — which take no flags —
// be swept across thread counts without per-binary plumbing.
int ResolveSimThreads(int requested);

// One-shot waitable event. Waiters registered before the fire run (in registration order) as
// fresh simulator events at the fire time; waiters registered after the fire run as fresh
// events at the current time. This "always asynchronous" rule avoids re-entrancy surprises.
class OneShotEvent {
 public:
  explicit OneShotEvent(Simulator* sim) : sim_(sim) { HCHECK(sim != nullptr); }
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  bool fired() const { return fired_; }
  // Valid only after fired().
  SimTime fire_time() const {
    HCHECK(fired_);
    return fire_time_;
  }

  // Fires the event at the current simulated time. Must be called at most once.
  void Fire();

  // Registers a callback to run (as a fresh event) once the event has fired.
  void OnFired(Simulator::Closure fn);

 private:
  Simulator* sim_;
  bool fired_ = false;
  SimTime fire_time_ = kSimTimeNever;
  std::vector<Simulator::Closure> waiters_;
};

// Fires an inner OneShotEvent once `count` arrivals have been recorded. Used for joins:
// "run when all input transfers complete", "all devices reached the allreduce".
class CountdownEvent {
 public:
  CountdownEvent(Simulator* sim, int count) : remaining_(count), done_(sim) {
    HCHECK_GE(count, 0);
    if (count == 0) {
      done_.Fire();
    }
  }

  // Records one arrival; fires when the count reaches zero.
  void Arrive();

  // Registers additional expected arrivals before any Arrive() exhausts the count. Fatal
  // once the event has fired: a late Expect could never be satisfied and would deadlock
  // the join it guards.
  void Expect(int additional);

  bool fired() const { return done_.fired(); }
  void OnFired(Simulator::Closure fn) { done_.OnFired(std::move(fn)); }

 private:
  int remaining_;
  OneShotEvent done_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_SIM_SIMULATOR_H_
