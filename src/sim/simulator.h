// Deterministic discrete-event simulation core.
//
// Everything in Harmony's hardware substrate (links, DMA engines, GPU compute streams) is
// driven by one single-threaded Simulator. Events scheduled for the same timestamp run in
// insertion order (a monotonically increasing sequence number breaks ties), so every
// experiment is reproducible bit-for-bit.
#ifndef HARMONY_SRC_SIM_SIMULATOR_H_
#define HARMONY_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/check.h"

namespace harmony {

// Simulated time, in seconds.
using SimTime = double;

inline constexpr SimTime kSimTimeNever = -1.0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }

  // Capacity hint: pre-sizes the event heap so steady-state scheduling never reallocates.
  void Reserve(std::size_t events) { heap_.reserve(events); }

  // Schedules `fn` to run at absolute time `when` (must be >= now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` seconds from now (delay >= 0).
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  // Runs events until the queue drains. Returns the final simulated time. The event budget
  // guards against runaway loops in buggy schedules; exceeding it is a fatal error.
  SimTime RunUntilIdle(std::uint64_t max_events = 500'000'000);

  // Runs exactly one event if available; returns false when the queue is empty.
  bool RunOne();

  bool idle() const { return heap_.empty(); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  // (when, seq) is a total order over entries, so the pop sequence is independent of the
  // heap's internal layout — determinism does not rest on implementation details.
  static bool Earlier(const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  // Hand-rolled binary min-heap over a vector so entries (and their closures) are *moved*
  // during sift operations; std::priority_queue::top() returns const& and forced a copy of
  // every event closure on pop.
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::vector<Entry> heap_;
};

// One-shot waitable event. Waiters registered before the fire run (in registration order) as
// fresh simulator events at the fire time; waiters registered after the fire run as fresh
// events at the current time. This "always asynchronous" rule avoids re-entrancy surprises.
class OneShotEvent {
 public:
  explicit OneShotEvent(Simulator* sim) : sim_(sim) { HCHECK(sim != nullptr); }
  OneShotEvent(const OneShotEvent&) = delete;
  OneShotEvent& operator=(const OneShotEvent&) = delete;

  bool fired() const { return fired_; }
  // Valid only after fired().
  SimTime fire_time() const {
    HCHECK(fired_);
    return fire_time_;
  }

  // Fires the event at the current simulated time. Must be called at most once.
  void Fire();

  // Registers a callback to run (as a fresh event) once the event has fired.
  void OnFired(std::function<void()> fn);

 private:
  Simulator* sim_;
  bool fired_ = false;
  SimTime fire_time_ = kSimTimeNever;
  std::vector<std::function<void()>> waiters_;
};

// Fires an inner OneShotEvent once `count` arrivals have been recorded. Used for joins:
// "run when all input transfers complete", "all devices reached the allreduce".
class CountdownEvent {
 public:
  CountdownEvent(Simulator* sim, int count) : remaining_(count), done_(sim) {
    HCHECK_GE(count, 0);
    if (count == 0) {
      done_.Fire();
    }
  }

  // Records one arrival; fires when the count reaches zero.
  void Arrive();

  // Registers additional expected arrivals before any Arrive() exhausts the count.
  void Expect(int additional);

  bool fired() const { return done_.fired(); }
  void OnFired(std::function<void()> fn) { done_.OnFired(std::move(fn)); }

 private:
  int remaining_;
  OneShotEvent done_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_SIM_SIMULATOR_H_
