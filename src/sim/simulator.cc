#include "src/sim/simulator.h"

#include <utility>

namespace harmony {

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  HCHECK_GE(when, now_) << "cannot schedule into the past";
  heap_.push_back(Entry{when, next_seq_++, std::move(fn)});
  SiftUp(heap_.size() - 1);
}

void Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  HCHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

// Both sifts shift a "hole" through the heap and place the displaced entry once at the end —
// one closure move per level, where a std::swap-based sift would cost three.
void Simulator::SiftUp(std::size_t i) {
  Entry item = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!Earlier(item, heap_[parent])) {
      break;
    }
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(item);
}

void Simulator::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  Entry item = std::move(heap_[i]);
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    const std::size_t right = child + 1;
    if (right < n && Earlier(heap_[right], heap_[child])) {
      child = right;
    }
    if (!Earlier(heap_[child], item)) {
      break;
    }
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(item);
}

SimTime Simulator::RunUntilIdle(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (RunOne()) {
    HCHECK_GT(budget, 0u) << "simulator event budget exhausted (livelock in schedule?)";
    --budget;
  }
  return now_;
}

bool Simulator::RunOne() {
  if (heap_.empty()) {
    return false;
  }
  Entry entry = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
  }
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
  now_ = entry.when;
  ++events_processed_;
  entry.fn();
  return true;
}

void OneShotEvent::Fire() {
  HCHECK(!fired_) << "OneShotEvent fired twice";
  fired_ = true;
  fire_time_ = sim_->now();
  for (auto& waiter : waiters_) {
    sim_->ScheduleAfter(0.0, std::move(waiter));
  }
  waiters_.clear();
}

void OneShotEvent::OnFired(std::function<void()> fn) {
  if (fired_) {
    sim_->ScheduleAfter(0.0, std::move(fn));
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void CountdownEvent::Arrive() {
  HCHECK_GT(remaining_, 0) << "CountdownEvent::Arrive past zero";
  --remaining_;
  if (remaining_ == 0) {
    done_.Fire();
  }
}

void CountdownEvent::Expect(int additional) {
  HCHECK_GT(additional, 0);
  HCHECK(!done_.fired()) << "CountdownEvent::Expect after fire";
  remaining_ += additional;
}

}  // namespace harmony
