#include "src/sim/simulator.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "src/util/thread_pool.h"

namespace harmony {

Simulator::Simulator() {
  CreateLane("main");  // kDefaultLane
}

// Out of line so ThreadPool can stay forward-declared in the header.
Simulator::~Simulator() = default;

SimLane Simulator::CreateLane(std::string name) {
  lanes_.emplace_back();
  lanes_.back().name = std::move(name);
  return static_cast<SimLane>(lanes_.size() - 1);
}

void Simulator::Reserve(std::size_t events) {
  while (arena_capacity() < events) {
    AddSlab();
  }
}

void Simulator::SetParallelism(int threads) {
  HCHECK_GE(threads, 1);
  threads_ = threads;
}

void Simulator::SetLookahead(SimTime lookahead) {
  HCHECK_GE(lookahead, 0.0);
  lookahead_ = lookahead;
}

void Simulator::EnsurePool() {
  if (pool_ == nullptr || pool_->size() != threads_) {
    pool_ = std::make_unique<ThreadPool>(threads_);
  }
}

// ---- arena ------------------------------------------------------------------------------

void Simulator::AddSlab() {
  HCHECK_LT(slabs_.size(), kMaxSlabs) << "event arena exhausted";
  auto slab = std::make_unique<Slot[]>(kSlabSlots);
  const std::uint32_t base = static_cast<std::uint32_t>(slabs_.size() << kSlabShift);
  // Thread the free list in increasing index order so slot assignment — and with it every
  // internal address — is deterministic.
  for (std::size_t i = kSlabSlots; i-- > 0;) {
    slab[i].next = free_slot_;
    free_slot_ = base + static_cast<std::uint32_t>(i);
  }
  slabs_.push_back(std::move(slab));
}

std::uint32_t Simulator::AllocSlot(Closure&& fn, std::uint64_t seq) {
  if (free_slot_ == kNil) {
    AddSlab();
  }
  const std::uint32_t index = free_slot_;
  Slot& slot = SlotAt(index);
  free_slot_ = slot.next;
  slot.fn = std::move(fn);
  slot.seq = seq;
  slot.next = kNil;
  ++arena_in_use_;
  return index;
}

void Simulator::FreeSlot(std::uint32_t index) {
  Slot& slot = SlotAt(index);
  slot.fn.Reset();  // drop captures now; the slot may sit on the free list for a while
  slot.next = free_slot_;
  free_slot_ = index;
  --arena_in_use_;
}

// ---- lane queues ------------------------------------------------------------------------

std::uint32_t Simulator::AllocBucket(Lane& lane) {
  if (!lane.bucket_free.empty()) {
    const std::uint32_t index = lane.bucket_free.back();
    lane.bucket_free.pop_back();
    return index;
  }
  lane.buckets.emplace_back();
  return static_cast<std::uint32_t>(lane.buckets.size() - 1);
}

void Simulator::FreeBucket(Lane& lane, std::uint32_t index) {
  lane.buckets[index].chain.clear();  // keeps capacity for the bucket's next life
  lane.buckets[index].pos = 0;
  lane.bucket_free.push_back(index);
}

void Simulator::BucketHeapSiftUp(Lane& lane, std::size_t i) {
  const BucketRef item = lane.heap[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (item.when >= lane.heap[parent].when) {
      break;
    }
    lane.heap[i] = lane.heap[parent];
    i = parent;
  }
  lane.heap[i] = item;
}

void Simulator::BucketHeapSiftDown(Lane& lane, std::size_t i) {
  const std::size_t n = lane.heap.size();
  const BucketRef item = lane.heap[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    const std::size_t right = child + 1;
    if (right < n && lane.heap[right].when < lane.heap[child].when) {
      child = right;
    }
    if (lane.heap[child].when >= item.when) {
      break;
    }
    lane.heap[i] = lane.heap[child];
    i = child;
  }
  lane.heap[i] = item;
}

void Simulator::RefreshLaneHead(Lane& lane, bool need_seq) {
  if (lane.heap.empty()) {
    return;  // caller removes the lane from the top heap
  }
  lane.head_when = lane.heap[0].when;
  if (need_seq) {
    const Bucket& head = lane.buckets[lane.heap[0].bucket];
    lane.head_seq = SlotAt(head.chain[head.pos]).seq;
    lane.head_seq_stale = false;
  } else {
    // The seq feeds only inter-lane tie-breaks; deferring the read keeps a dependent
    // cache miss (the next slot's line) off the single-lane pop path. TopHeapInsert
    // refreshes it before a second lane can be compared against this one.
    lane.head_seq_stale = true;
  }
}

void Simulator::ScheduleOnLane(SimLane lane, SimTime when, Closure&& fn) {
  HCHECK_GE(when, now_) << "cannot schedule into the past";
  (void)CheckedLane(lane);
  if (when == 0.0) {
    when = 0.0;  // canonicalize -0.0: bucket lookup hashes the bit pattern, ordering
                 // compares the value — they must agree on what "equal times" means
  }
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = AllocSlot(std::move(fn), seq);
  if (window_active_ && when < window_end_) {
    // Scheduled from inside the open window and due inside it: interleave through the
    // overflow heap so the merged order stays exactly the serial (when, seq) order.
    overflow_.push_back(PendingEvent{when, seq, slot});
    std::size_t i = overflow_.size() - 1;
    const PendingEvent item = overflow_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (overflow_[parent].when < item.when ||
          (overflow_[parent].when == item.when && overflow_[parent].seq < item.seq)) {
        break;
      }
      overflow_[i] = overflow_[parent];
      i = parent;
    }
    overflow_[i] = item;
    return;
  }
  LanePush(lane, when, slot);
}

void Simulator::LanePush(SimLane lane_id, SimTime when, std::uint32_t slot) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
  const auto [it, inserted] = lane.bucket_by_time.try_emplace(when, kNil);
  if (!inserted) {
    // Duplicate timestamp: append to the FIFO chain. O(1), no ordering structure moves —
    // this is the hot case (zero-delay callbacks, lockstep device streams).
    lane.buckets[it->second].chain.push_back(slot);
    return;
  }
  const std::uint32_t bucket_index = AllocBucket(lane);
  it->second = bucket_index;
  Bucket& bucket = lane.buckets[bucket_index];
  bucket.when = when;
  if (bucket.chain.capacity() == 0) {
    bucket.chain.reserve(16);  // skip the 1->2->4->8 doubling on a bucket's first life
  }
  bucket.chain.push_back(slot);

  lane.heap.push_back(BucketRef{when, bucket_index});
  std::size_t pos = lane.heap.size() - 1;
  BucketHeapSiftUp(lane, pos);
  if (lane.heap[0].bucket == bucket_index) {
    // New earliest timestamp for this lane: refresh the cached head key and re-key the
    // lane in the top-level heap (the key only ever decreases on a push).
    lane.head_when = when;
    lane.head_seq = SlotAt(slot).seq;
    lane.head_seq_stale = false;
    if (lane.top_pos == kNoPos) {
      TopHeapInsert(lane_id);
    } else {
      TopHeapSiftUp(lane.top_pos);
    }
  }
}

Simulator::PendingEvent Simulator::LanePopFront(SimLane lane_id, bool need_seq) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
  const std::uint32_t bucket_index = lane.heap[0].bucket;
  Bucket& bucket = lane.buckets[bucket_index];
  const std::uint32_t slot = bucket.chain[bucket.pos++];
  const PendingEvent event{bucket.when, SlotAt(slot).seq, slot};
  if (bucket.pos + kPrefetchDistance < bucket.chain.size()) {
    // Chained slots stride across the arena (they interleaved with other buckets' at
    // schedule time); the flat chain exposes far-ahead indices, so pull the line in well
    // before the pop that needs it.
    __builtin_prefetch(&SlotAt(bucket.chain[bucket.pos + kPrefetchDistance]));
  }
  if (bucket.pos == bucket.chain.size()) {
    lane.bucket_by_time.erase(bucket.when);
    FreeBucket(lane, bucket_index);
    lane.heap[0] = lane.heap.back();
    lane.heap.pop_back();
    if (!lane.heap.empty()) {
      BucketHeapSiftDown(lane, 0);
    }
  }
  RefreshLaneHead(lane, need_seq);  // caller re-keys (or removes) the lane in the top heap
  return event;
}

// ---- top-level heap over lane heads -----------------------------------------------------

bool Simulator::LaneBefore(SimLane a, SimLane b) const {
  const Lane& lane_a = lanes_[static_cast<std::size_t>(a)];
  const Lane& lane_b = lanes_[static_cast<std::size_t>(b)];
  if (lane_a.head_when != lane_b.head_when) {
    return lane_a.head_when < lane_b.head_when;
  }
  // Sequence numbers are globally unique, so (when, seq) is a strict total order over lane
  // heads — the pop sequence is independent of the heap's internal layout.
  return lane_a.head_seq < lane_b.head_seq;
}

void Simulator::TopHeapSiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!LaneBefore(top_heap_[i], top_heap_[parent])) {
      break;
    }
    std::swap(top_heap_[i], top_heap_[parent]);
    lanes_[static_cast<std::size_t>(top_heap_[i])].top_pos = i;
    lanes_[static_cast<std::size_t>(top_heap_[parent])].top_pos = parent;
    i = parent;
  }
}

void Simulator::TopHeapSiftDown(std::size_t i) {
  const std::size_t n = top_heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    const std::size_t right = child + 1;
    if (right < n && LaneBefore(top_heap_[right], top_heap_[child])) {
      child = right;
    }
    if (!LaneBefore(top_heap_[child], top_heap_[i])) {
      break;
    }
    std::swap(top_heap_[i], top_heap_[child]);
    lanes_[static_cast<std::size_t>(top_heap_[i])].top_pos = i;
    lanes_[static_cast<std::size_t>(top_heap_[child])].top_pos = child;
    i = child;
  }
}

void Simulator::TopHeapInsert(SimLane lane) {
  // Restore the invariant that every lane in a multi-entry heap carries a fresh
  // (head_when, head_seq) key — single-lane pops defer the seq read (see RefreshLaneHead).
  for (SimLane other : top_heap_) {
    Lane& stale = lanes_[static_cast<std::size_t>(other)];
    if (stale.head_seq_stale) {
      const Bucket& head = stale.buckets[stale.heap[0].bucket];
      stale.head_seq = SlotAt(head.chain[head.pos]).seq;
      stale.head_seq_stale = false;
    }
  }
  top_heap_.push_back(lane);
  lanes_[static_cast<std::size_t>(lane)].top_pos = top_heap_.size() - 1;
  TopHeapSiftUp(top_heap_.size() - 1);
}

void Simulator::TopHeapRemoveAt(std::size_t i) {
  lanes_[static_cast<std::size_t>(top_heap_[i])].top_pos = kNoPos;
  const std::size_t last = top_heap_.size() - 1;
  if (i != last) {
    top_heap_[i] = top_heap_[last];
    lanes_[static_cast<std::size_t>(top_heap_[i])].top_pos = i;
  }
  top_heap_.pop_back();
  if (i < top_heap_.size()) {
    TopHeapSiftUp(i);
    if (lanes_[static_cast<std::size_t>(top_heap_[i])].top_pos == i) {
      TopHeapSiftDown(i);
    }
  }
}

// ---- execution --------------------------------------------------------------------------

void Simulator::ScheduleAfter(SimTime delay, Closure fn) {
  HCHECK_GE(delay, 0.0);
  ScheduleOnLane(kDefaultLane, now_ + delay, std::move(fn));
}

void Simulator::ScheduleAfter(SimLane lane, SimTime delay, Closure fn) {
  HCHECK_GE(delay, 0.0);
  ScheduleOnLane(lane, now_ + delay, std::move(fn));
}

void Simulator::ExecuteEvent(const PendingEvent& event) {
  now_ = event.when;
  ++events_processed_;
  // Run the closure in place — slab storage is stable, so re-entrant scheduling (which may
  // add slabs) cannot move it — and only then recycle the slot.
  SlotAt(event.slot).fn();
  FreeSlot(event.slot);
}

void Simulator::CheckBudget(std::uint64_t* budget) {
  HCHECK_GT(*budget, 0u) << "simulator event budget exhausted (livelock in schedule?)";
  --*budget;
}

bool Simulator::RunOne() {
  if (top_heap_.empty()) {
    return false;
  }
  const SimLane lane_id = top_heap_[0];
  const PendingEvent event = LanePopFront(lane_id, /*need_seq=*/top_heap_.size() > 1);
  if (lanes_[static_cast<std::size_t>(lane_id)].heap.empty()) {
    TopHeapRemoveAt(0);
  } else {
    TopHeapSiftDown(0);
  }
  ExecuteEvent(event);
  return true;
}

SimTime Simulator::RunUntilIdle(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  if (threads_ <= 1 || lookahead_ <= 0.0) {
    // Serial fast path (and the automatic zero-lookahead fallback).
    while (RunOne()) {
      CheckBudget(&budget);
    }
    return now_;
  }
  EnsurePool();
  while (!top_heap_.empty()) {
    const SimTime window_end =
        lanes_[static_cast<std::size_t>(top_heap_[0])].head_when + lookahead_;
    window_lanes_.clear();
    for (SimLane lane : top_heap_) {
      if (lanes_[static_cast<std::size_t>(lane)].head_when < window_end) {
        window_lanes_.push_back(lane);
      }
    }
    if (window_lanes_.size() < 2) {
      // One active lane in the window: nothing to drain in parallel; run it serially
      // until the window would close (new events may extend the burst — RunOne's order
      // is the canonical one either way).
      while (!top_heap_.empty() &&
             lanes_[static_cast<std::size_t>(top_heap_[0])].head_when < window_end) {
        RunOne();
        CheckBudget(&budget);
      }
      continue;
    }
    ExecuteWindow(window_end, &budget);
  }
  return now_;
}

void Simulator::DrainLane(Lane& lane, SimTime window_end) {
  // Worker-side: touches only this lane's buckets/heap/map and the (pre-existing,
  // read-only) arena slots, so concurrent drains of distinct lanes never share state.
  lane.run.clear();
  while (!lane.heap.empty() && lane.heap[0].when < window_end) {
    const std::uint32_t bucket_index = lane.heap[0].bucket;
    Bucket& bucket = lane.buckets[bucket_index];
    const SimTime when = bucket.when;
    for (std::size_t i = bucket.pos; i < bucket.chain.size(); ++i) {
      if (i + kPrefetchDistance < bucket.chain.size()) {
        __builtin_prefetch(&SlotAt(bucket.chain[i + kPrefetchDistance]));
      }
      const std::uint32_t slot = bucket.chain[i];
      lane.run.push_back(PendingEvent{when, SlotAt(slot).seq, slot});
    }
    lane.bucket_by_time.erase(when);
    FreeBucket(lane, bucket_index);
    lane.heap[0] = lane.heap.back();
    lane.heap.pop_back();
    if (!lane.heap.empty()) {
      BucketHeapSiftDown(lane, 0);
    }
  }
  RefreshLaneHead(lane, /*need_seq=*/true);
}

bool Simulator::CursorBefore(const RunCursor& a, const RunCursor& b) const {
  const PendingEvent& ea = lanes_[static_cast<std::size_t>(a.lane)].run[a.index];
  const PendingEvent& eb = lanes_[static_cast<std::size_t>(b.lane)].run[b.index];
  if (ea.when != eb.when) {
    return ea.when < eb.when;
  }
  return ea.seq < eb.seq;
}

void Simulator::CursorHeapSiftDown(std::size_t i) {
  const std::size_t n = cursors_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    const std::size_t right = child + 1;
    if (right < n && CursorBefore(cursors_[right], cursors_[child])) {
      child = right;
    }
    if (!CursorBefore(cursors_[child], cursors_[i])) {
      break;
    }
    std::swap(cursors_[i], cursors_[child]);
    i = child;
  }
}

void Simulator::ExecuteWindow(SimTime window_end, std::uint64_t* budget) {
  // Phase 1: drain the candidate lanes in parallel. The slow part of the event loop —
  // bucket-heap pops, map erases, chain walks — runs concurrently; execution does not.
  ParallelFor(*pool_, window_lanes_.size(), [this, window_end](std::size_t i) {
    DrainLane(lanes_[static_cast<std::size_t>(window_lanes_[i])], window_end);
  });

  // Phase 2: the drained lanes' head keys changed (or the lanes emptied); rebuild the
  // top-level heap. Floyd's heapify is O(active lanes), the same as the candidate scan.
  for (SimLane lane_id : window_lanes_) {
    Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
    if (!lane.heap.empty()) {
      continue;
    }
    const std::size_t pos = lane.top_pos;
    lane.top_pos = kNoPos;
    top_heap_[pos] = top_heap_.back();
    top_heap_.pop_back();
    if (pos < top_heap_.size()) {
      lanes_[static_cast<std::size_t>(top_heap_[pos])].top_pos = pos;
    }
  }
  for (std::size_t i = top_heap_.size() / 2; i-- > 0;) {
    TopHeapSiftDown(i);
  }

  // Phase 3: execute the union of the drained runs serially, merged in (when, seq) order
  // through a cursor heap. Events scheduled *during* the window that land inside it
  // interleave via overflow_; everything later goes through the lanes as usual.
  window_active_ = true;
  window_end_ = window_end;
  cursors_.clear();
  for (SimLane lane_id : window_lanes_) {
    if (!lanes_[static_cast<std::size_t>(lane_id)].run.empty()) {
      cursors_.push_back(RunCursor{lane_id, 0});
    }
  }
  for (std::size_t i = cursors_.size() / 2; i-- > 0;) {
    CursorHeapSiftDown(i);
  }
  while (!cursors_.empty() || !overflow_.empty()) {
    bool take_overflow;
    if (cursors_.empty()) {
      take_overflow = true;
    } else if (overflow_.empty()) {
      take_overflow = false;
    } else {
      const RunCursor& cursor = cursors_[0];
      const PendingEvent& from_lane =
          lanes_[static_cast<std::size_t>(cursor.lane)].run[cursor.index];
      const PendingEvent& from_overflow = overflow_[0];
      take_overflow = from_overflow.when < from_lane.when ||
                      (from_overflow.when == from_lane.when &&
                       from_overflow.seq < from_lane.seq);
    }
    PendingEvent event;
    if (take_overflow) {
      event = overflow_[0];
      // Pop the overflow min-heap root (hole-shifting sift-down by (when, seq)).
      const PendingEvent item = overflow_.back();
      overflow_.pop_back();
      if (!overflow_.empty()) {
        std::size_t i = 0;
        const std::size_t n = overflow_.size();
        for (;;) {
          std::size_t child = 2 * i + 1;
          if (child >= n) {
            break;
          }
          const std::size_t right = child + 1;
          if (right < n && (overflow_[right].when < overflow_[child].when ||
                            (overflow_[right].when == overflow_[child].when &&
                             overflow_[right].seq < overflow_[child].seq))) {
            child = right;
          }
          if (item.when < overflow_[child].when ||
              (item.when == overflow_[child].when && item.seq < overflow_[child].seq)) {
            break;
          }
          overflow_[i] = overflow_[child];
          i = child;
        }
        overflow_[i] = item;
      }
    } else {
      RunCursor& cursor = cursors_[0];
      Lane& lane = lanes_[static_cast<std::size_t>(cursor.lane)];
      event = lane.run[cursor.index];
      ++cursor.index;
      if (cursor.index == lane.run.size()) {
        cursors_[0] = cursors_.back();
        cursors_.pop_back();
      }
      if (!cursors_.empty()) {
        CursorHeapSiftDown(0);
      }
    }
    ExecuteEvent(event);
    CheckBudget(budget);
  }
  window_active_ = false;
  for (SimLane lane_id : window_lanes_) {
    lanes_[static_cast<std::size_t>(lane_id)].run.clear();
  }
}

StatusOr<int> ParseSimThreadsEnv(const char* value) {
  if (value == nullptr || *value == '\0') {
    return 1;
  }
  // Digits only: strtol alone would skip leading whitespace and accept signs, and the
  // old std::atoi path mapped any garbage to 0 — which the caller then clamped to 1,
  // silently serializing the simulator on a typo'd environment.
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return InvalidArgumentError("HARMONY_SIM_THREADS must be a positive integer, got '" +
                                  std::string(value) + "'");
    }
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end != value + std::strlen(value) || errno == ERANGE || parsed < 1 ||
      parsed > std::numeric_limits<int>::max()) {
    return InvalidArgumentError("HARMONY_SIM_THREADS must be a positive integer, got '" +
                                std::string(value) + "'");
  }
  return static_cast<int>(parsed);
}

int ResolveSimThreads(int requested) {
  if (requested >= 1) {
    return requested;
  }
  // Re-read on every call (no cache): getenv is cheap next to building a session, and a
  // cached first read would silently ignore env changes from tests or long-lived embedders
  // that run several sessions. Each session still samples the value exactly once, at
  // startup, so determinism within a run is unaffected.
  const StatusOr<int> parsed = ParseSimThreadsEnv(std::getenv("HARMONY_SIM_THREADS"));
  HCHECK(parsed.ok()) << parsed.status().message();
  return parsed.value();
}

// ---- waitable events --------------------------------------------------------------------

void OneShotEvent::Fire() {
  HCHECK(!fired_) << "OneShotEvent fired twice";
  fired_ = true;
  fire_time_ = sim_->now();
  for (auto& waiter : waiters_) {
    sim_->ScheduleAfter(0.0, std::move(waiter));
  }
  waiters_.clear();
}

void OneShotEvent::OnFired(Simulator::Closure fn) {
  if (fired_) {
    sim_->ScheduleAfter(0.0, std::move(fn));
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void CountdownEvent::Arrive() {
  HCHECK_GT(remaining_, 0) << "CountdownEvent::Arrive past zero";
  --remaining_;
  if (remaining_ == 0) {
    done_.Fire();
  }
}

void CountdownEvent::Expect(int additional) {
  HCHECK_GT(additional, 0);
  HCHECK(!done_.fired()) << "CountdownEvent::Expect after fire";
  remaining_ += additional;
}

}  // namespace harmony
