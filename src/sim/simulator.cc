#include "src/sim/simulator.h"

#include <utility>

namespace harmony {

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  HCHECK_GE(when, now_) << "cannot schedule into the past";
  queue_.push(Entry{when, next_seq_++, std::move(fn)});
}

void Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  HCHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

SimTime Simulator::RunUntilIdle(std::uint64_t max_events) {
  std::uint64_t budget = max_events;
  while (RunOne()) {
    HCHECK_GT(budget, 0u) << "simulator event budget exhausted (livelock in schedule?)";
    --budget;
  }
  return now_;
}

bool Simulator::RunOne() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; move out via const_cast is the standard idiom but we
  // copy the function instead to keep this simple and safe (events are small closures).
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.when;
  ++events_processed_;
  entry.fn();
  return true;
}

void OneShotEvent::Fire() {
  HCHECK(!fired_) << "OneShotEvent fired twice";
  fired_ = true;
  fire_time_ = sim_->now();
  for (auto& waiter : waiters_) {
    sim_->ScheduleAfter(0.0, std::move(waiter));
  }
  waiters_.clear();
}

void OneShotEvent::OnFired(std::function<void()> fn) {
  if (fired_) {
    sim_->ScheduleAfter(0.0, std::move(fn));
  } else {
    waiters_.push_back(std::move(fn));
  }
}

void CountdownEvent::Arrive() {
  HCHECK_GT(remaining_, 0) << "CountdownEvent::Arrive past zero";
  --remaining_;
  if (remaining_ == 0) {
    done_.Fire();
  }
}

void CountdownEvent::Expect(int additional) {
  HCHECK_GT(additional, 0);
  HCHECK(!done_.fired()) << "CountdownEvent::Expect after fire";
  remaining_ += additional;
}

}  // namespace harmony
