// Deterministic fault schedules for the simulated machine.
//
// A FaultPlan is a time-ordered list of hardware anomalies — device fail-stop, link
// bandwidth degradation/flap, transient host-memory pressure — that the FaultInjector
// (hw/fault_injector.h) replays against a Simulator + TransferManager. Plans come from an
// explicit user spec (`--faults=`) or from a seeded RNG (MTBF-driven), and are plain data:
// the same plan applied to the same machine produces a bitwise-identical event trace, which
// is what the fault determinism tests pin down.
#ifndef HARMONY_SRC_SIM_FAULT_PLAN_H_
#define HARMONY_SRC_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/status.h"

namespace harmony {

enum class FaultKind : int {
  kGpuFailStop = 0,     // device fail-stop: the GPU and its links go away permanently
  kGpuLinkDegrade = 1,  // the GPU <-> switch links run at `scale` for `duration` seconds
  kHostLinkDegrade = 2, // every switch <-> host uplink runs at `scale` for `duration`
  kHostMemPressure = 3, // transient host-DRAM pressure: swap bandwidth scaled by `scale`
  // Transient faults absorbed by the retry tier (DESIGN.md §11):
  kFlowFlap = 4,        // instantly aborts in-flight flows on the target's links (retryable)
  kLinkBrownout = 5,    // degrade to `scale` for `duration` AND flap in-flight flows at onset
  kGpuSlow = 6,         // the GPU computes at `scale` of its rated flops for `duration`
  kCkptCorrupt = 7,     // bit-rot on the newest host checkpoint generation
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime time = 0.0;   // absolute time the fault strikes
  FaultKind kind = FaultKind::kGpuFailStop;
  int gpu = -1;         // target GPU for GPU-scoped kinds; -1 = host / untargeted
  double scale = 1.0;   // bandwidth (or compute, for kGpuSlow) multiplier while degraded
  double duration = 0.0;  // seconds the effect lasts; 0 = permanent (rendered "inf")
  // Node-scoped network targets for kFlowFlap / kLinkBrownout on multi-node machines:
  // nic<i> = node i's NIC links, rack<i> = rack i's ToR links. At most one of gpu/nic/rack
  // is set; both -1 defers to `gpu` (gpu<i> or host). Last so pre-cluster brace inits of
  // {time, kind, gpu, scale, duration} keep compiling unchanged.
  int nic = -1;
  int rack = -1;

  // One-line rendering, e.g. "fail@1.500:gpu2" — stable across runs (trace identity).
  std::string ToString() const;
};

// Time-ordered fault schedule. Events inserted out of order are kept sorted (stable on
// insertion order for equal times).
class FaultPlan {
 public:
  FaultPlan() = default;

  void Add(FaultEvent event);
  bool empty() const { return events_.empty(); }
  int size() const { return static_cast<int>(events_.size()); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Semicolon-joined event list; the canonical trace the determinism tests compare.
  std::string ToString() const;

 private:
  std::vector<FaultEvent> events_;
};

// Parses a `--faults=` spec: semicolon-separated events, each of
//   fail@<t>:gpu<i>                     device fail-stop at time t
//   degrade@<t>:gpu<i>:<scale>:<dur>    GPU link degraded to scale for dur seconds
//   degrade@<t>:host:<scale>:<dur>      all host uplinks degraded
//   mem@<t>:<scale>:<dur>               transient host-memory pressure (swap bw scaled)
//   flow_flap@<t>:<gpu<i>|host|nic<i>|rack<i>>  abort in-flight flows on the target's links
//   brownout@<t>:<gpu<i>|host|nic<i>|rack<i>>:<scale>:<dur>  degrade + flap at onset
//   gpu_slow@<t>:gpu<i>:<scale>:<dur>   device computes at scale of rated flops
//   ckpt_corrupt@<t>                    corrupt the newest host checkpoint generation
//   rand:seed=<s>,mtbf=<sec>,horizon=<sec>[,gpus=<n>][,fail=<0|1>][,ext=<0|1>][,ckpt=<0|1>]
//       [,nics=<n>][,racks=<n>]         seeded RNG-driven schedule over [0, horizon)
// nic<i> / rack<i> target node i's NIC links / rack i's ToR links on multi-node machines
// (flow_flap and brownout only).
// Durations must be > 0 or the literal "inf" (permanent); scales must be in (0, 1].
// Malformed specs return an actionable error carrying the byte offset of the offending
// field instead of crashing.
StatusOr<FaultPlan> ParseFaultSpec(const std::string& spec);

struct RandomFaultOptions {
  std::uint64_t seed = 1;
  double horizon = 10.0;       // generate faults in [0, horizon)
  double mtbf = 5.0;           // mean time between faults (exponential inter-arrivals)
  int num_gpus = 4;            // GPU index range for targeted faults
  bool allow_fail_stop = true; // include permanent device fail-stops (at most one)
  double min_scale = 0.25;     // degradations draw scale from [min_scale, 0.9]
  double mean_duration = 1.0;  // mean degradation duration (exponential)
  // Extended kinds are opt-in so the draw sequence (and hence every pre-existing
  // seeded plan) is unchanged when they are off.
  bool transient = false;      // include flow_flap / brownout / gpu_slow ("ext=1")
  bool ckpt_faults = false;    // include ckpt_corrupt ("ckpt=1")
  // Network-tier targets for flow_flap / brownout draws ("nics="/"racks="). 0 keeps the
  // target draw range (and every pre-existing seeded plan) unchanged.
  int num_nics = 0;
  int num_racks = 0;
};

// Seeded fault schedule: exponential inter-arrival times at rate 1/mtbf, each event a
// degradation (GPU link, host link, or memory pressure) or — at most once, when allowed —
// a device fail-stop. Same options => bitwise-identical plan.
FaultPlan MakeRandomFaultPlan(const RandomFaultOptions& options);

}  // namespace harmony

#endif  // HARMONY_SRC_SIM_FAULT_PLAN_H_
