#include "src/graph/model_zoo.h"

#include "src/util/check.h"
#include "src/util/status.h"

namespace harmony {

double OptimizerStateFactor(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return 0.0;
    case OptimizerKind::kMomentum:
      return 1.0;
    case OptimizerKind::kAdam:
      return 2.0;
  }
  return 0.0;
}

Model MakeTransformerLm(const TransformerConfig& config) {
  HCHECK_GT(config.num_layers, 0);
  const double s = static_cast<double>(config.seq_len);
  const double h = static_cast<double>(config.hidden);
  const double dtype = static_cast<double>(config.dtype_bytes);
  const double opt_factor = OptimizerStateFactor(config.optimizer);

  // Input: token ids, 8 bytes per token (id + position).
  Model model(config.name, static_cast<Bytes>(s * 8.0));

  // Embedding (tied with the LM head, so it owns the full vocab matrix once).
  {
    Layer embed;
    embed.name = "embedding";
    embed.kind = LayerKind::kEmbedding;
    embed.cost.param_bytes =
        static_cast<Bytes>(static_cast<double>(config.vocab) * h * dtype);
    embed.cost.grad_bytes = embed.cost.param_bytes;
    embed.cost.opt_state_bytes =
        static_cast<Bytes>(static_cast<double>(embed.cost.param_bytes) * opt_factor);
    embed.cost.act_out_bytes_per_sample = static_cast<Bytes>(s * h * dtype);
    embed.cost.fwd_flops_per_sample = 2.0 * s * h;
    embed.cost.bwd_flops_per_sample = 4.0 * s * h;
    embed.cost.upd_flops = static_cast<double>(embed.cost.param_bytes) / dtype * 4.0;
    model.AddLayer(embed);
  }

  for (int l = 0; l < config.num_layers; ++l) {
    Layer block;
    block.name = "transformer" + std::to_string(l);
    block.kind = LayerKind::kTransformer;
    const double params = 12.0 * h * h + 13.0 * h;
    block.cost.param_bytes = static_cast<Bytes>(params * dtype);
    block.cost.grad_bytes = block.cost.param_bytes;
    block.cost.opt_state_bytes =
        static_cast<Bytes>(static_cast<double>(block.cost.param_bytes) * opt_factor);
    block.cost.act_out_bytes_per_sample = static_cast<Bytes>(s * h * dtype);
    block.cost.stash_bytes_per_sample =
        static_cast<Bytes>(config.stash_factor * s * h * dtype);
    block.cost.workspace_bytes_per_sample = static_cast<Bytes>(4.0 * s * h * dtype);
    block.cost.fwd_flops_per_sample = 24.0 * s * h * h + 4.0 * s * s * h;
    block.cost.bwd_flops_per_sample = 2.0 * block.cost.fwd_flops_per_sample;
    block.cost.upd_flops = params * 4.0;
    model.AddLayer(block);
  }
  return model;
}

Model MakeBertBase(OptimizerKind optimizer) {
  TransformerConfig config;
  config.name = "BERT-base";
  config.num_layers = 12;
  config.hidden = 768;
  config.seq_len = 512;
  config.vocab = 30522;
  config.optimizer = optimizer;
  return MakeTransformerLm(config);
}

Model MakeBertLarge(OptimizerKind optimizer) {
  TransformerConfig config;
  config.name = "BERT-large";
  config.num_layers = 24;
  config.hidden = 1024;
  config.seq_len = 512;
  config.vocab = 30522;
  config.optimizer = optimizer;
  return MakeTransformerLm(config);
}

Model MakeGpt2Xl(OptimizerKind optimizer) {
  TransformerConfig config;
  config.name = "GPT2-XL";
  config.num_layers = 48;
  config.hidden = 1600;
  config.seq_len = 1024;
  config.vocab = 50257;
  config.optimizer = optimizer;
  return MakeTransformerLm(config);
}

Model MakeUniformModel(const UniformModelConfig& config) {
  HCHECK_GT(config.num_layers, 0);
  Model model(config.name, config.act_bytes_per_sample);
  for (int l = 0; l < config.num_layers; ++l) {
    Layer layer;
    layer.name = "L" + std::to_string(l);
    layer.kind = LayerKind::kGeneric;
    layer.cost.param_bytes = config.param_bytes;
    layer.cost.grad_bytes = config.param_bytes;
    layer.cost.opt_state_bytes =
        static_cast<Bytes>(static_cast<double>(config.param_bytes) *
                           config.optimizer_state_factor);
    layer.cost.act_out_bytes_per_sample = config.act_bytes_per_sample;
    layer.cost.stash_bytes_per_sample = config.stash_bytes_per_sample;
    layer.cost.workspace_bytes_per_sample = config.workspace_bytes_per_sample;
    layer.cost.fwd_flops_per_sample = config.fwd_flops_per_sample;
    layer.cost.bwd_flops_per_sample = 2.0 * config.fwd_flops_per_sample;
    layer.cost.upd_flops = static_cast<double>(config.param_bytes) / 4.0 * 4.0;
    model.AddLayer(layer);
  }
  return model;
}

Model MakeMlp(const std::vector<int>& dims, Bytes dtype_bytes) {
  HCHECK_GE(dims.size(), 2u);
  Model model("mlp", static_cast<Bytes>(dims[0]) * dtype_bytes);
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    const Bytes in = dims[l];
    const Bytes out = dims[l + 1];
    Layer layer;
    layer.name = "linear" + std::to_string(l);
    layer.kind = LayerKind::kLinear;
    layer.cost.param_bytes = (in * out + out) * dtype_bytes;  // weights + bias
    layer.cost.grad_bytes = layer.cost.param_bytes;
    layer.cost.opt_state_bytes = 0;  // plain SGD in the numeric substrate
    layer.cost.act_out_bytes_per_sample = out * dtype_bytes;
    layer.cost.fwd_flops_per_sample = 2.0 * static_cast<double>(in * out);
    layer.cost.bwd_flops_per_sample = 4.0 * static_cast<double>(in * out);
    layer.cost.upd_flops = static_cast<double>(in * out + out);
    model.AddLayer(layer);
  }
  return model;
}

std::vector<CatalogueEntry> Fig1Catalogue() {
  return {
      {"LeNet", 1998, 60'000, "image classification"},
      {"AlexNet", 2012, 61'000'000, "image classification"},
      {"GNMT", 2016, 278'000'000, "translation / language modeling"},
      {"AmoebaNet", 2018, 557'000'000, "image classification"},
      {"GPT-2", 2019, 1'500'000'000, "language modeling"},
      {"T5", 2019, 11'000'000'000, "language modeling"},
      {"GPT-3", 2020, 175'000'000'000, "language modeling"},
  };
}

void AddConvLayer(Model* model, const std::string& name, const ConvLayerSpec& spec,
                  double opt_factor, Bytes dtype_bytes) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kConv;
  const double params = static_cast<double>(spec.kernel) * spec.kernel * spec.in_channels *
                            spec.out_channels +
                        spec.out_channels;
  const double map = static_cast<double>(spec.out_height) * spec.out_width;
  layer.cost.param_bytes = static_cast<Bytes>(params * static_cast<double>(dtype_bytes));
  layer.cost.grad_bytes = layer.cost.param_bytes;
  layer.cost.opt_state_bytes =
      static_cast<Bytes>(static_cast<double>(layer.cost.param_bytes) * opt_factor);
  layer.cost.act_out_bytes_per_sample = static_cast<Bytes>(
      static_cast<double>(spec.out_channels) * map * static_cast<double>(dtype_bytes));
  // im2col-style workspace plus pre-activation stash.
  layer.cost.stash_bytes_per_sample = layer.cost.act_out_bytes_per_sample;
  layer.cost.workspace_bytes_per_sample = 2 * layer.cost.act_out_bytes_per_sample;
  layer.cost.fwd_flops_per_sample = 2.0 * params * map;
  layer.cost.bwd_flops_per_sample = 2.0 * layer.cost.fwd_flops_per_sample;
  layer.cost.upd_flops = params * 4.0;
  model->AddLayer(layer);
}

void AddFcLayer(Model* model, const std::string& name, const FcLayerSpec& spec,
                double opt_factor, Bytes dtype_bytes) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kLinear;
  const double params =
      static_cast<double>(spec.in_features) * spec.out_features + spec.out_features;
  layer.cost.param_bytes = static_cast<Bytes>(params * static_cast<double>(dtype_bytes));
  layer.cost.grad_bytes = layer.cost.param_bytes;
  layer.cost.opt_state_bytes =
      static_cast<Bytes>(static_cast<double>(layer.cost.param_bytes) * opt_factor);
  layer.cost.act_out_bytes_per_sample = static_cast<Bytes>(spec.out_features) * dtype_bytes;
  layer.cost.fwd_flops_per_sample = 2.0 * params;
  layer.cost.bwd_flops_per_sample = 4.0 * params;
  layer.cost.upd_flops = params * 4.0;
  model->AddLayer(layer);
}

void AddLstmLayer(Model* model, const std::string& name, int input_size, int hidden_size,
                  int seq_len, double opt_factor, Bytes dtype_bytes) {
  Layer layer;
  layer.name = name;
  layer.kind = LayerKind::kGeneric;
  const double h = hidden_size;
  const double params = 4.0 * h * (static_cast<double>(input_size) + h + 1.0);
  layer.cost.param_bytes = static_cast<Bytes>(params * static_cast<double>(dtype_bytes));
  layer.cost.grad_bytes = layer.cost.param_bytes;
  layer.cost.opt_state_bytes =
      static_cast<Bytes>(static_cast<double>(layer.cost.param_bytes) * opt_factor);
  layer.cost.act_out_bytes_per_sample =
      static_cast<Bytes>(static_cast<double>(seq_len) * h * static_cast<double>(dtype_bytes));
  // Gate pre-activations (i, f, g, o) stashed per timestep for BPTT.
  layer.cost.stash_bytes_per_sample = 4 * layer.cost.act_out_bytes_per_sample;
  layer.cost.workspace_bytes_per_sample = layer.cost.act_out_bytes_per_sample;
  layer.cost.fwd_flops_per_sample = 2.0 * params * static_cast<double>(seq_len);
  layer.cost.bwd_flops_per_sample = 2.0 * layer.cost.fwd_flops_per_sample;
  layer.cost.upd_flops = params * 4.0;
  model->AddLayer(layer);
}

Model MakeLeNet(OptimizerKind optimizer) {
  const double opt = OptimizerStateFactor(optimizer);
  Model model("LeNet", /*input: 32x32x1 image*/ 32 * 32 * 4);
  AddConvLayer(&model, "conv1", ConvLayerSpec{1, 6, 5, 28, 28}, opt);
  AddConvLayer(&model, "conv2", ConvLayerSpec{6, 16, 5, 10, 10}, opt);
  AddFcLayer(&model, "fc3", FcLayerSpec{400, 120}, opt);
  AddFcLayer(&model, "fc4", FcLayerSpec{120, 84}, opt);
  AddFcLayer(&model, "fc5", FcLayerSpec{84, 10}, opt);
  return model;
}

Model MakeAlexNet(OptimizerKind optimizer) {
  const double opt = OptimizerStateFactor(optimizer);
  Model model("AlexNet", /*input: 227x227x3 image*/ 227 * 227 * 3 * 4);
  AddConvLayer(&model, "conv1", ConvLayerSpec{3, 96, 11, 55, 55}, opt);
  AddConvLayer(&model, "conv2", ConvLayerSpec{96, 256, 5, 27, 27}, opt);
  AddConvLayer(&model, "conv3", ConvLayerSpec{256, 384, 3, 13, 13}, opt);
  AddConvLayer(&model, "conv4", ConvLayerSpec{384, 384, 3, 13, 13}, opt);
  AddConvLayer(&model, "conv5", ConvLayerSpec{384, 256, 3, 13, 13}, opt);
  AddFcLayer(&model, "fc6", FcLayerSpec{9216, 4096}, opt);
  AddFcLayer(&model, "fc7", FcLayerSpec{4096, 4096}, opt);
  AddFcLayer(&model, "fc8", FcLayerSpec{4096, 1000}, opt);
  return model;
}

Model MakeGnmt(OptimizerKind optimizer) {
  const double opt = OptimizerStateFactor(optimizer);
  const int seq = 64;
  const int h = 1024;
  const int vocab = 36000;
  Model model("GNMT", static_cast<Bytes>(seq) * 8);
  // Source embedding.
  {
    Layer embed;
    embed.name = "src-embedding";
    embed.kind = LayerKind::kEmbedding;
    embed.cost.param_bytes = static_cast<Bytes>(vocab) * h * 4;
    embed.cost.grad_bytes = embed.cost.param_bytes;
    embed.cost.opt_state_bytes =
        static_cast<Bytes>(static_cast<double>(embed.cost.param_bytes) * opt);
    embed.cost.act_out_bytes_per_sample = static_cast<Bytes>(seq) * h * 4;
    embed.cost.fwd_flops_per_sample = 2.0 * seq * h;
    embed.cost.bwd_flops_per_sample = 4.0 * seq * h;
    embed.cost.upd_flops = static_cast<double>(vocab) * h;
    model.AddLayer(embed);
  }
  // Encoder: bidirectional layer 1 (two directions) + 7 stacked layers.
  AddLstmLayer(&model, "enc-bi-lstm1-fwd", h, h, seq, opt);
  AddLstmLayer(&model, "enc-bi-lstm1-rev", h, h, seq, opt);
  AddLstmLayer(&model, "enc-lstm2", 2 * h, h, seq, opt);
  for (int l = 3; l <= 8; ++l) {
    AddLstmLayer(&model, "enc-lstm" + std::to_string(l), h, h, seq, opt);
  }
  // Target embedding + attention-augmented decoder layer 1.
  {
    Layer embed;
    embed.name = "tgt-embedding";
    embed.kind = LayerKind::kEmbedding;
    embed.cost.param_bytes = static_cast<Bytes>(vocab) * h * 4;
    embed.cost.grad_bytes = embed.cost.param_bytes;
    embed.cost.opt_state_bytes =
        static_cast<Bytes>(static_cast<double>(embed.cost.param_bytes) * opt);
    embed.cost.act_out_bytes_per_sample = static_cast<Bytes>(seq) * h * 4;
    embed.cost.fwd_flops_per_sample = 2.0 * seq * h;
    embed.cost.bwd_flops_per_sample = 4.0 * seq * h;
    embed.cost.upd_flops = static_cast<double>(vocab) * h;
    model.AddLayer(embed);
  }
  AddLstmLayer(&model, "dec-lstm1+attn", 2 * h, h, seq, opt);
  for (int l = 2; l <= 8; ++l) {
    AddLstmLayer(&model, "dec-lstm" + std::to_string(l), h, h, seq, opt);
  }
  // Output projection (softmax weights).
  AddFcLayer(&model, "softmax", FcLayerSpec{h, vocab}, opt);
  return model;
}

Model MakeAmoebaNet(OptimizerKind optimizer) {
  // AmoebaNet's NAS cells are approximated by a deep conv stack matching the published
  // 557M-parameter budget; what matters to the scheduler is the per-layer state/compute
  // profile, not the exact cell wiring.
  const double opt = OptimizerStateFactor(optimizer);
  Model model("AmoebaNet", 224 * 224 * 3 * 4);
  AddConvLayer(&model, "stem", ConvLayerSpec{3, 256, 3, 112, 112}, opt);
  for (int cell = 0; cell < 18; ++cell) {
    AddConvLayer(&model, "cell" + std::to_string(cell), ConvLayerSpec{1856, 1856, 3, 14, 14},
                 opt);
  }
  AddFcLayer(&model, "classifier", FcLayerSpec{1856, 1000}, opt);
  return model;
}

StatusOr<Model> ModelByName(const std::string& name) {
  if (name == "lenet") {
    return MakeLeNet();
  }
  if (name == "alexnet") {
    return MakeAlexNet();
  }
  if (name == "gnmt") {
    return MakeGnmt();
  }
  if (name == "amoebanet") {
    return MakeAmoebaNet();
  }
  if (name == "bert-base") {
    return MakeBertBase();
  }
  if (name == "bert-large") {
    return MakeBertLarge();
  }
  if (name == "gpt2-xl") {
    return MakeGpt2Xl();
  }
  if (name == "toy") {
    UniformModelConfig config;
    config.name = "toy-4layer";
    config.num_layers = 4;
    config.param_bytes = 256 * kMiB;
    config.act_bytes_per_sample = 64 * kMiB;
    config.fwd_flops_per_sample = 2e11;
    return MakeUniformModel(config);
  }
  return InvalidArgumentError("unknown model '" + name +
                              "' (try lenet, alexnet, gnmt, amoebanet, bert-base, "
                              "bert-large, gpt2-xl, toy)");
}

}  // namespace harmony
