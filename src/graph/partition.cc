#include "src/graph/partition.h"

#include <limits>

#include "src/util/check.h"

namespace harmony {

std::vector<int> PartitionContiguousMinMax(const std::vector<double>& costs, int parts) {
  const int n = static_cast<int>(costs.size());
  HCHECK_GT(parts, 0);
  HCHECK_GT(n, 0);

  std::vector<double> prefix(static_cast<std::size_t>(n + 1), 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[static_cast<std::size_t>(i + 1)] =
        prefix[static_cast<std::size_t>(i)] + costs[static_cast<std::size_t>(i)];
  }
  auto range_cost = [&](int a, int b) {
    return prefix[static_cast<std::size_t>(b)] - prefix[static_cast<std::size_t>(a)];
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // best[k][i]: minimal max-cost splitting the first i items into k parts; ties prefer
  // solutions with fewer empty parts (empty pipeline stages waste a whole device).
  std::vector<std::vector<double>> best(
      static_cast<std::size_t>(parts + 1),
      std::vector<double>(static_cast<std::size_t>(n + 1), kInf));
  std::vector<std::vector<int>> empties(
      static_cast<std::size_t>(parts + 1),
      std::vector<int>(static_cast<std::size_t>(n + 1), n + parts));
  std::vector<std::vector<int>> cut(
      static_cast<std::size_t>(parts + 1), std::vector<int>(static_cast<std::size_t>(n + 1), 0));
  best[0][0] = 0.0;
  empties[0][0] = 0;
  for (int k = 1; k <= parts; ++k) {
    for (int i = 0; i <= n; ++i) {
      for (int j = 0; j <= i; ++j) {
        const double prev = best[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(j)];
        if (prev == kInf) {
          continue;
        }
        const double candidate = std::max(prev, range_cost(j, i));
        const int empty =
            empties[static_cast<std::size_t>(k - 1)][static_cast<std::size_t>(j)] +
            (j == i ? 1 : 0);
        double& best_cost = best[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
        int& best_empty = empties[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)];
        if (candidate < best_cost ||
            (candidate == best_cost && empty < best_empty)) {
          best_cost = candidate;
          best_empty = empty;
          cut[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] = j;
        }
      }
    }
  }

  std::vector<int> boundaries(static_cast<std::size_t>(parts + 1), 0);
  boundaries[static_cast<std::size_t>(parts)] = n;
  int at = n;
  for (int k = parts; k >= 1; --k) {
    at = cut[static_cast<std::size_t>(k)][static_cast<std::size_t>(at)];
    boundaries[static_cast<std::size_t>(k - 1)] = at;
  }
  return boundaries;
}

}  // namespace harmony
