// A model is an ordered sequence of layers plus the input sample geometry.
//
// Activation indexing convention used throughout the planner: X[0] is the input microbatch,
// X[l+1] is the output of layer l, so a model with R layers has activations X[0..R] and X[R]
// is the logits tensor consumed by the loss.
#ifndef HARMONY_SRC_GRAPH_MODEL_H_
#define HARMONY_SRC_GRAPH_MODEL_H_

#include <string>
#include <vector>

#include "src/graph/layer.h"
#include "src/util/units.h"

namespace harmony {

class Model {
 public:
  Model(std::string name, Bytes input_bytes_per_sample)
      : name_(std::move(name)), input_bytes_per_sample_(input_bytes_per_sample) {}

  void AddLayer(Layer layer) { layers_.push_back(std::move(layer)); }

  const std::string& name() const { return name_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(int l) const { return layers_.at(static_cast<std::size_t>(l)); }
  Bytes input_bytes_per_sample() const { return input_bytes_per_sample_; }

  // Size of activation X[l] (l in 0..num_layers()) per sample.
  Bytes activation_bytes_per_sample(int l) const;

  Bytes total_param_bytes() const;
  Bytes total_grad_bytes() const;
  Bytes total_opt_state_bytes() const;
  std::int64_t total_params(Bytes dtype_bytes = 4) const {
    return total_param_bytes() / dtype_bytes;
  }
  double total_fwd_flops_per_sample() const;
  double total_bwd_flops_per_sample() const;

  // Peak live footprint of one training iteration on a single device with `samples` per
  // microbatch and `microbatches` gradient-accumulation steps (weights + grads + optimizer
  // state + all live stashes/activations). This is the "memory demand" quantity plotted in
  // Fig. 2(c) against the capacity line.
  Bytes SingleDeviceFootprint(int samples, int microbatches) const;

  // Multi-line human-readable description.
  std::string Summary() const;

 private:
  std::string name_;
  Bytes input_bytes_per_sample_;
  std::vector<Layer> layers_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_GRAPH_MODEL_H_
