// Layer IR with an analytical cost model.
//
// A layer carries everything the planner needs: parameter/gradient/optimizer bytes, the
// per-sample activation and internal-stash footprints, scratch workspace, and FLOP counts
// for the three phases (forward, backward, weight update). Absolute numbers come from the
// model zoo's closed-form estimates (see model_zoo.h); the scheduling results depend only on
// their relative shape.
#ifndef HARMONY_SRC_GRAPH_LAYER_H_
#define HARMONY_SRC_GRAPH_LAYER_H_

#include <string>

#include "src/util/units.h"

namespace harmony {

enum class LayerKind {
  kEmbedding,
  kTransformer,
  kLinear,
  kConv,
  kGeneric,
};

struct LayerCost {
  Bytes param_bytes = 0;  // W
  Bytes grad_bytes = 0;   // dW (== param_bytes unless quantized)
  // Optimizer state K, e.g. 2x params for Adam (set by the zoo from the optimizer choice).
  Bytes opt_state_bytes = 0;

  // Output activation Y per input sample (the tensor handed to the next layer).
  Bytes act_out_bytes_per_sample = 0;
  // Internal tensors stashed between forward and backward (attention scores, GeLU inputs,
  // dropout masks, ...) per sample. Zero when activation recomputation is used.
  Bytes stash_bytes_per_sample = 0;
  // Transient scratch during a kernel (cuDNN-style workspace) per sample.
  Bytes workspace_bytes_per_sample = 0;

  double fwd_flops_per_sample = 0.0;
  double bwd_flops_per_sample = 0.0;  // typically 2x forward
  double upd_flops = 0.0;             // per update step (independent of batch)
};

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kGeneric;
  LayerCost cost;
};

}  // namespace harmony

#endif  // HARMONY_SRC_GRAPH_LAYER_H_
