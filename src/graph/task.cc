#include "src/graph/task.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>

namespace harmony {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kForward:
      return "FWD";
    case TaskKind::kLoss:
      return "LOSS";
    case TaskKind::kBackward:
      return "BWD";
    case TaskKind::kUpdate:
      return "UPD";
    case TaskKind::kAllReduce:
      return "AR";
  }
  return "?";
}

std::string Task::DebugName() const {
  std::ostringstream os;
  os << TaskKindName(kind) << "[L" << layer_begin;
  if (layer_end > layer_begin + 1) {
    os << "-L" << layer_end - 1;
  }
  os << "]";
  if (microbatch >= 0) {
    os << " mb" << microbatch;
  }
  os << " r" << replica << " it" << iteration << " @gpu" << device;
  return os.str();
}

Status Plan::Validate() const {
  const int n = static_cast<int>(tasks.size());
  for (int i = 0; i < n; ++i) {
    if (tasks[static_cast<std::size_t>(i)].id != i) {
      return InternalError("task id mismatch at index " + std::to_string(i));
    }
  }

  // Every task appears exactly once in its device's order.
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  for (int d = 0; d < num_devices(); ++d) {
    for (TaskId t : per_device_order[static_cast<std::size_t>(d)]) {
      if (t < 0 || t >= n) {
        return InternalError("device order references unknown task " + std::to_string(t));
      }
      if (tasks[static_cast<std::size_t>(t)].device != d) {
        return InternalError("task " + tasks[static_cast<std::size_t>(t)].DebugName() +
                             " queued on device " + std::to_string(d));
      }
      if (++seen[static_cast<std::size_t>(t)] > 1) {
        return InternalError("task " + std::to_string(t) + " queued twice");
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (seen[static_cast<std::size_t>(i)] != 1) {
      return InternalError("task " + tasks[static_cast<std::size_t>(i)].DebugName() +
                           " not queued on any device");
    }
  }

  // Acyclicity of deps + per-device order (Kahn's algorithm over the combined edges).
  std::vector<std::vector<TaskId>> out(static_cast<std::size_t>(n));
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  auto add_edge = [&](TaskId from, TaskId to) {
    out[static_cast<std::size_t>(from)].push_back(to);
    ++indegree[static_cast<std::size_t>(to)];
  };
  for (const Task& task : tasks) {
    for (TaskId dep : task.deps) {
      if (dep < 0 || dep >= n) {
        return InternalError("task " + task.DebugName() + " has unknown dep " +
                             std::to_string(dep));
      }
      add_edge(dep, task.id);
    }
  }
  for (const auto& order : per_device_order) {
    for (std::size_t i = 1; i < order.size(); ++i) {
      add_edge(order[i - 1], order[i]);
    }
  }
  std::queue<TaskId> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[static_cast<std::size_t>(i)] == 0) {
      ready.push(i);
    }
  }
  int processed = 0;
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop();
    ++processed;
    for (TaskId next : out[static_cast<std::size_t>(t)]) {
      if (--indegree[static_cast<std::size_t>(next)] == 0) {
        ready.push(next);
      }
    }
  }
  if (processed != n) {
    return InternalError("plan has a dependency cycle (" + std::to_string(n - processed) +
                         " tasks unreachable)");
  }

  // Collective groups: all members share byte count and have distinct devices.
  std::map<int, std::vector<const Task*>> groups;
  for (const Task& task : tasks) {
    if (task.kind == TaskKind::kAllReduce) {
      if (task.collective_group < 0) {
        return InternalError("allreduce task without a group: " + task.DebugName());
      }
      groups[task.collective_group].push_back(&task);
    }
  }
  for (const auto& [group, members] : groups) {
    std::vector<int> devices;
    for (const Task* task : members) {
      devices.push_back(task->device);
      if (task->collective_bytes != members.front()->collective_bytes) {
        return InternalError("collective group " + std::to_string(group) +
                             " has mismatched byte counts");
      }
    }
    std::sort(devices.begin(), devices.end());
    if (std::adjacent_find(devices.begin(), devices.end()) != devices.end()) {
      return InternalError("collective group " + std::to_string(group) +
                           " has two members on one device");
    }
  }
  return Status::Ok();
}

std::vector<Bytes> Plan::PeakTaskWorkingSet(const TensorRegistry& registry) const {
  std::vector<Bytes> peak(static_cast<std::size_t>(num_devices()), 0);
  for (const Task& task : tasks) {
    Bytes total = task.working_set.scratch_bytes;
    auto add = [&](const std::vector<TensorId>& ids) {
      for (TensorId id : ids) {
        total += registry.meta(id).bytes;
      }
    };
    add(task.working_set.fetch);
    add(task.working_set.accumulate);
    add(task.working_set.allocate);
    auto& slot = peak[static_cast<std::size_t>(task.device)];
    slot = std::max(slot, total);
  }
  return peak;
}

std::string Plan::Stats() const {
  int counts[5] = {};
  for (const Task& task : tasks) {
    ++counts[static_cast<int>(task.kind)];
  }
  std::ostringstream os;
  os << "plan " << scheme << ": " << tasks.size() << " tasks over " << num_devices()
     << " devices, " << num_iterations << " iteration(s) ("
     << counts[static_cast<int>(TaskKind::kForward)] << " fwd, "
     << counts[static_cast<int>(TaskKind::kLoss)] << " loss, "
     << counts[static_cast<int>(TaskKind::kBackward)] << " bwd, "
     << counts[static_cast<int>(TaskKind::kUpdate)] << " upd, "
     << counts[static_cast<int>(TaskKind::kAllReduce)] << " allreduce)";
  return os.str();
}

}  // namespace harmony
