#include "src/graph/plan_builder.h"

#include <algorithm>

#include "src/graph/partition.h"
#include "src/util/check.h"

namespace harmony {

Status ValidateDecomposerOptions(int num_devices, const DecomposerOptions& options) {
  if (num_devices < 1) {
    return InvalidArgumentError("num_devices must be >= 1, got " +
                                std::to_string(num_devices));
  }
  if (options.num_replicas < 1) {
    return InvalidArgumentError("num_replicas must be >= 1, got " +
                                std::to_string(options.num_replicas));
  }
  if (options.microbatches < 1) {
    return InvalidArgumentError("microbatches must be >= 1, got " +
                                std::to_string(options.microbatches));
  }
  if (options.microbatch_size < 1) {
    return InvalidArgumentError("microbatch_size must be >= 1, got " +
                                std::to_string(options.microbatch_size));
  }
  if (options.iterations < 1) {
    return InvalidArgumentError("iterations must be >= 1, got " +
                                std::to_string(options.iterations));
  }
  if (options.weight_shards < 1) {
    return InvalidArgumentError("weight_shards must be >= 1, got " +
                                std::to_string(options.weight_shards));
  }
  return Status::Ok();
}

PlanBuilder::PlanBuilder(const Model* model, TensorRegistry* registry, int num_devices,
                         DecomposerOptions options)
    : model_(model), registry_(registry), options_(options) {
  const Status valid = ValidateDecomposerOptions(num_devices, options);
  HCHECK(valid.ok()) << valid.ToString();
  plan_.per_device_order.resize(static_cast<std::size_t>(num_devices));
  plan_.num_iterations = options.iterations;
  plan_.microbatch_size = options.microbatch_size;
  plan_.samples_per_iteration =
      options.num_replicas * options.microbatches * options.microbatch_size;
}

Bytes PlanBuilder::ActBytes(int layer) const {
  return model_->activation_bytes_per_sample(layer) * options_.microbatch_size;
}

Bytes PlanBuilder::ShardBytes(Bytes bytes) const {
  if (options_.weight_shards <= 1) {
    return bytes;
  }
  return (bytes + options_.weight_shards - 1) / options_.weight_shards;
}

double PlanBuilder::ShardFlops(double flops) const {
  return flops / static_cast<double>(options_.weight_shards);
}

TensorId PlanBuilder::Weight(int layer, int replica) {
  const auto key = std::make_pair(layer, replica);
  auto it = weights_.find(key);
  if (it != weights_.end()) {
    return it->second;
  }
  const Layer& l = model_->layer(layer);
  const TensorId id = registry_->Create(
      "W[" + l.name + "]r" + std::to_string(replica), ShardBytes(l.cost.param_bytes),
      TensorClass::kWeight, /*host_valid=*/true, layer, -1, replica);
  weights_.emplace(key, id);
  return id;
}

TensorId PlanBuilder::OptState(int layer, int replica) {
  const Layer& l = model_->layer(layer);
  if (l.cost.opt_state_bytes == 0) {
    return kInvalidTensor;
  }
  const auto key = std::make_pair(layer, replica);
  auto it = opt_states_.find(key);
  if (it != opt_states_.end()) {
    return it->second;
  }
  const TensorId id = registry_->Create(
      "K[" + l.name + "]r" + std::to_string(replica), ShardBytes(l.cost.opt_state_bytes),
      TensorClass::kOptimizerState, /*host_valid=*/true, layer, -1, replica);
  opt_states_.emplace(key, id);
  return id;
}

TensorId PlanBuilder::WeightGrad(int layer, int replica) {
  const auto key = std::make_tuple(iteration_, layer, replica);
  auto it = grads_.find(key);
  if (it != grads_.end()) {
    return it->second;
  }
  const Layer& l = model_->layer(layer);
  const TensorId id = registry_->Create(
      "dW[" + l.name + "]r" + std::to_string(replica) + "i" + std::to_string(iteration_),
      ShardBytes(l.cost.grad_bytes), TensorClass::kWeightGrad, /*host_valid=*/false, layer, -1,
      replica);
  grads_.emplace(key, id);
  return id;
}

TensorId PlanBuilder::Activation(int layer, int microbatch, int replica) {
  const auto key = std::make_tuple(iteration_, layer, microbatch, replica);
  auto it = acts_.find(key);
  if (it != acts_.end()) {
    return it->second;
  }
  const bool is_input = layer == 0;
  const TensorId id = registry_->Create(
      "X" + std::to_string(layer) + "mb" + std::to_string(microbatch) + "r" +
          std::to_string(replica) + "i" + std::to_string(iteration_),
      ActBytes(layer), is_input ? TensorClass::kInput : TensorClass::kActivation,
      /*host_valid=*/is_input, layer - 1, microbatch, replica);
  acts_.emplace(key, id);
  return id;
}

TensorId PlanBuilder::ActGrad(int layer, int microbatch, int replica) {
  HCHECK_GT(layer, 0) << "input gradients are never materialized";
  const auto key = std::make_tuple(iteration_, layer, microbatch, replica);
  auto it = act_grads_.find(key);
  if (it != act_grads_.end()) {
    return it->second;
  }
  const TensorId id = registry_->Create(
      "dX" + std::to_string(layer) + "mb" + std::to_string(microbatch) + "r" +
          std::to_string(replica) + "i" + std::to_string(iteration_),
      ActBytes(layer), TensorClass::kActivationGrad, /*host_valid=*/false, layer - 1,
      microbatch, replica);
  act_grads_.emplace(key, id);
  return id;
}

TensorId PlanBuilder::Stash(int layer, int microbatch, int replica) {
  const Layer& l = model_->layer(layer);
  if (options_.recompute || l.cost.stash_bytes_per_sample == 0) {
    return kInvalidTensor;
  }
  const auto key = std::make_tuple(iteration_, layer, microbatch, replica);
  auto it = stashes_.find(key);
  if (it != stashes_.end()) {
    return it->second;
  }
  const TensorId id = registry_->Create(
      "S" + std::to_string(layer) + "mb" + std::to_string(microbatch) + "r" +
          std::to_string(replica) + "i" + std::to_string(iteration_),
      l.cost.stash_bytes_per_sample * options_.microbatch_size, TensorClass::kActivation,
      /*host_valid=*/false, layer, microbatch, replica);
  stashes_.emplace(key, id);
  return id;
}

Task& PlanBuilder::NewTask(TaskKind kind, int device, int layer_begin, int layer_end,
                           int microbatch, int replica) {
  HCHECK_GE(device, 0);
  HCHECK_LT(device, plan_.num_devices());
  Task task;
  task.id = static_cast<TaskId>(plan_.tasks.size());
  task.kind = kind;
  task.device = device;
  task.iteration = iteration_;
  task.layer_begin = layer_begin;
  task.layer_end = layer_end;
  task.microbatch = microbatch;
  task.replica = replica;
  plan_.tasks.push_back(std::move(task));
  plan_.per_device_order[static_cast<std::size_t>(device)].push_back(plan_.tasks.back().id);
  return plan_.tasks.back();
}

TaskId PlanBuilder::AddForward(int device, int layer_begin, int layer_end, int microbatch,
                               int replica, std::vector<TaskId> deps) {
  HCHECK_LT(layer_begin, layer_end);
  HCHECK_LE(layer_end, num_layers());
  Task& task = NewTask(TaskKind::kForward, device, layer_begin, layer_end, microbatch, replica);
  task.deps = std::move(deps);

  task.working_set.fetch.push_back(Activation(layer_begin, microbatch, replica));
  Bytes transient = 0;
  for (int l = layer_begin; l < layer_end; ++l) {
    const Layer& layer = model_->layer(l);
    task.working_set.fetch.push_back(Weight(l, replica));
    task.flops += ShardFlops(layer.cost.fwd_flops_per_sample) *
                  static_cast<double>(options_.microbatch_size);
    transient = std::max(transient, layer.cost.workspace_bytes_per_sample *
                                        options_.microbatch_size);
    const bool boundary = l == layer_end - 1;
    if (options_.recompute) {
      // Internal activations/stashes live only within the task.
      if (!boundary) {
        transient += ActBytes(l + 1);
      }
      transient += layer.cost.stash_bytes_per_sample * options_.microbatch_size;
    } else {
      const TensorId out = Activation(l + 1, microbatch, replica);
      task.working_set.allocate.push_back(out);
      task.dirty_outputs.push_back(out);
      const TensorId stash = Stash(l, microbatch, replica);
      if (stash != kInvalidTensor) {
        task.working_set.allocate.push_back(stash);
        task.dirty_outputs.push_back(stash);
      }
    }
  }
  if (options_.recompute) {
    const TensorId out = Activation(layer_end, microbatch, replica);
    task.working_set.allocate.push_back(out);
    task.dirty_outputs.push_back(out);
  }
  task.working_set.scratch_bytes = transient;
  return task.id;
}

TaskId PlanBuilder::AddLoss(int device, int microbatch, int replica, std::vector<TaskId> deps) {
  const int R = num_layers();
  Task& task = NewTask(TaskKind::kLoss, device, R, R, microbatch, replica);
  task.deps = std::move(deps);
  const TensorId logits = Activation(R, microbatch, replica);
  const TensorId grad = ActGrad(R, microbatch, replica);
  task.working_set.fetch.push_back(logits);
  task.working_set.allocate.push_back(grad);
  task.dirty_outputs.push_back(grad);
  task.free_after.push_back(logits);
  task.flops = static_cast<double>(ActBytes(R)) / 2.0;  // elementwise over the logits
  return task.id;
}

TaskId PlanBuilder::AddBackward(int device, int layer_begin, int layer_end, int microbatch,
                                int replica, std::vector<TaskId> deps) {
  HCHECK_LT(layer_begin, layer_end);
  HCHECK_LE(layer_end, num_layers());
  Task& task =
      NewTask(TaskKind::kBackward, device, layer_begin, layer_end, microbatch, replica);
  task.deps = std::move(deps);

  const TensorId out_grad = ActGrad(layer_end, microbatch, replica);
  task.working_set.fetch.push_back(out_grad);
  task.free_after.push_back(out_grad);

  Bytes transient = 0;
  for (int l = layer_begin; l < layer_end; ++l) {
    const Layer& layer = model_->layer(l);
    task.working_set.fetch.push_back(Weight(l, replica));
    const TensorId grad = WeightGrad(l, replica);
    task.working_set.accumulate.push_back(grad);
    task.dirty_outputs.push_back(grad);
    task.flops += ShardFlops(layer.cost.bwd_flops_per_sample) *
                  static_cast<double>(options_.microbatch_size);
    transient = std::max(transient, 2 * layer.cost.workspace_bytes_per_sample *
                                        options_.microbatch_size);

    const bool is_pack_input = l == layer_begin;
    if (options_.recompute) {
      task.flops += ShardFlops(layer.cost.fwd_flops_per_sample) *
                    static_cast<double>(options_.microbatch_size);
      if (!is_pack_input) {
        transient += ActBytes(l);
      }
      transient += layer.cost.stash_bytes_per_sample * options_.microbatch_size;
    } else {
      const TensorId act = Activation(l, microbatch, replica);
      task.working_set.fetch.push_back(act);
      task.free_after.push_back(act);
      const TensorId stash = Stash(l, microbatch, replica);
      if (stash != kInvalidTensor) {
        task.working_set.fetch.push_back(stash);
        task.free_after.push_back(stash);
      }
    }
  }
  if (options_.recompute) {
    const TensorId act = Activation(layer_begin, microbatch, replica);
    task.working_set.fetch.push_back(act);
    task.free_after.push_back(act);
  }
  if (layer_begin > 0) {
    const TensorId in_grad = ActGrad(layer_begin, microbatch, replica);
    task.working_set.allocate.push_back(in_grad);
    task.dirty_outputs.push_back(in_grad);
  }
  task.working_set.scratch_bytes = transient;
  return task.id;
}

TaskId PlanBuilder::AddUpdate(int device, int layer_begin, int layer_end, int replica,
                              std::vector<TaskId> deps) {
  HCHECK_LT(layer_begin, layer_end);
  HCHECK_LE(layer_end, num_layers());
  Task& task = NewTask(TaskKind::kUpdate, device, layer_begin, layer_end, -1, replica);
  task.deps = std::move(deps);
  for (int l = layer_begin; l < layer_end; ++l) {
    const TensorId w = Weight(l, replica);
    const TensorId grad = WeightGrad(l, replica);
    task.working_set.fetch.push_back(w);
    task.working_set.fetch.push_back(grad);
    task.dirty_outputs.push_back(w);
    task.free_after.push_back(grad);  // "reset dW'" in Fig. 5(a)
    const TensorId opt = OptState(l, replica);
    if (opt != kInvalidTensor) {
      task.working_set.fetch.push_back(opt);
      task.dirty_outputs.push_back(opt);
    }
    task.flops += ShardFlops(model_->layer(l).cost.upd_flops);
  }
  return task.id;
}

TaskId PlanBuilder::AddAllReduce(int device, int layer_begin, int layer_end, int replica,
                                 int group, std::vector<TaskId> deps) {
  HCHECK_LT(layer_begin, layer_end);
  HCHECK_LE(layer_end, num_layers());
  Task& task = NewTask(TaskKind::kAllReduce, device, layer_begin, layer_end, -1, replica);
  task.deps = std::move(deps);
  task.collective_group = group;
  for (int l = layer_begin; l < layer_end; ++l) {
    const TensorId grad = WeightGrad(l, replica);
    task.working_set.fetch.push_back(grad);
    task.dirty_outputs.push_back(grad);
    task.collective_bytes += ShardBytes(model_->layer(l).cost.grad_bytes);
  }
  return task.id;
}

TaskId PlanBuilder::AddActivationAllReduce(int device, int layer, int microbatch,
                                           int replica, bool grad, int group,
                                           std::vector<TaskId> deps) {
  Task& task = NewTask(TaskKind::kAllReduce, device, layer, layer, microbatch, replica);
  task.deps = std::move(deps);
  task.collective_group = group;
  task.collective_data =
      grad ? Task::CollectiveData::kActivationGrad : Task::CollectiveData::kActivation;
  const TensorId tensor =
      grad ? ActGrad(layer, microbatch, replica) : Activation(layer, microbatch, replica);
  task.working_set.fetch.push_back(tensor);
  task.dirty_outputs.push_back(tensor);
  task.collective_bytes = registry_->meta(tensor).bytes;
  return task.id;
}

void PlanBuilder::AddDep(TaskId task, TaskId dep) {
  HCHECK_GE(task, 0);
  HCHECK_GE(dep, 0);
  HCHECK_LT(task, static_cast<TaskId>(plan_.tasks.size()));
  HCHECK_LT(dep, static_cast<TaskId>(plan_.tasks.size()));
  plan_.tasks[static_cast<std::size_t>(task)].deps.push_back(dep);
}

void PlanBuilder::FreeAfter(TaskId task, TensorId tensor) {
  HCHECK_GE(task, 0);
  HCHECK_LT(task, static_cast<TaskId>(plan_.tasks.size()));
  HCHECK(tensor != kInvalidTensor);
  plan_.tasks[static_cast<std::size_t>(task)].free_after.push_back(tensor);
}

Plan PlanBuilder::Finish(std::string scheme) {
  plan_.scheme = std::move(scheme);
  return std::move(plan_);
}

Plan BuildServingPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                      const ServingPlanOptions& options) {
  const int N = machine.num_gpus();
  const int R = model.num_layers();
  HCHECK_GE(R, N) << "serving needs at least one layer per stage (" << R << " layers, " << N
                  << " GPUs)";
  // One compute-balanced contiguous stage per GPU, weighted by forward FLOPs only — there
  // is no backward pass to balance against.
  std::vector<double> costs(static_cast<std::size_t>(R), 0.0);
  for (int l = 0; l < R; ++l) {
    costs[static_cast<std::size_t>(l)] = model.layer(l).cost.fwd_flops_per_sample;
  }
  const std::vector<int> bounds = PartitionContiguousMinMax(costs, N);

  DecomposerOptions decomp;
  decomp.microbatches = options.batches;
  decomp.microbatch_size = options.batch_size;
  decomp.iterations = options.requests;
  decomp.recompute = true;  // stashless: only stage-boundary activations materialize
  PlanBuilder builder(&model, registry, N, decomp);

  for (int it = 0; it < options.requests; ++it) {
    builder.BeginIteration(it);
    for (int mb = 0; mb < options.batches; ++mb) {
      TaskId prev = kInvalidTask;
      for (int s = 0; s < N; ++s) {
        std::vector<TaskId> deps;
        if (prev != kInvalidTask) {
          deps.push_back(prev);
        }
        const TaskId fwd = builder.AddForward(s, bounds[static_cast<std::size_t>(s)],
                                              bounds[static_cast<std::size_t>(s + 1)], mb, 0,
                                              std::move(deps));
        // The consumer owns its input: once stage s has read its boundary activation the
        // producer's output is dead (no backward will revisit it).
        builder.FreeAfter(fwd, builder.Activation(bounds[static_cast<std::size_t>(s)], mb, 0));
        prev = fwd;
      }
      // The response leaves the machine: the last stage drops the logits it just produced.
      builder.FreeAfter(prev, builder.Activation(R, mb, 0));
    }
  }
  return builder.Finish("serving");
}

void AnnotateClusterStructure(Plan* plan, const Topology& topology) {
  if (topology.num_servers() <= 1) {
    return;  // single-node plans carry no annotation (byte-identical legacy shape)
  }
  plan->device_node.clear();
  plan->device_node.reserve(static_cast<std::size_t>(plan->num_devices()));
  for (int d = 0; d < plan->num_devices(); ++d) {
    plan->device_node.push_back(topology.ServerOfGpu(d));
  }
  for (Task& task : plan->tasks) {
    if (task.kind == TaskKind::kAllReduce) {
      task.collective_node = plan->device_node[static_cast<std::size_t>(task.device)];
    }
  }
}

}  // namespace harmony
