// PlanBuilder: the Task Decomposer (Fig. 3, left box).
//
// Splits model-wise operations into fine-grained tasks — forward / backward / update over a
// layer pack [layer_begin, layer_end) and one microbatch — creates every tensor each task
// touches (weights, gradient buffers, optimizer state, boundary activations, internal
// stashes, activation gradients), and records precise working sets and lifetimes. Schedulers
// (baseline and Harmony) differ only in which tasks they emit, in what per-device order, and
// with which memory policy; the decomposition logic lives here once.
//
// Tensor lifetime rules encoded by the builder (Fig. 5(a) of the paper):
//   FWD  in: X[lb], W[lb..le)            out: X[lb+1..le], stashes
//   LOSS in: X[R]                        out: dX[R]             frees X[R]
//   BWD  in: X,S,W of the pack, dX[le]   out: dX[lb], dW+=      frees X, S, dX[le]
//   UPD  in: W, dW, K                    out: W', K'            frees dW ("reset dW'")
//
// With `recompute` enabled, forward keeps only the pack's boundary activation and backward
// re-runs the pack's forward math (Chen et al. sublinear-memory training), trading FLOPs and
// scratch for stash memory — the knob discussed in the paper's "memory-performance tango".
#ifndef HARMONY_SRC_GRAPH_PLAN_BUILDER_H_
#define HARMONY_SRC_GRAPH_PLAN_BUILDER_H_

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "src/graph/model.h"
#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/mem/tensor.h"
#include "src/util/status.h"

namespace harmony {

struct DecomposerOptions {
  // Weight replicas: N for data parallelism, 1 for pipeline parallelism. Under intra-op
  // (tensor-parallel) splitting the "replica" index doubles as the shard index.
  int num_replicas = 1;
  // Microbatches per replica (DP) or in the whole minibatch (PP).
  int microbatches = 1;
  int microbatch_size = 1;
  int iterations = 1;
  bool recompute = false;
  // Intra-op splitting (the paper's second key idea: "decompose individual operations —
  // such as a matrix multiplication — into subtasks that can run on different physical
  // devices"). Each replica index then holds 1/weight_shards of every layer's weights,
  // gradients and optimizer state, and compute tasks carry 1/weight_shards of the FLOPs;
  // activations stay full-size per shard (row-parallel partials reduced by collectives).
  int weight_shards = 1;
};

// Validates user-reachable decomposition parameters with actionable messages. The
// PlanBuilder constructor still enforces the same conditions fatally (internal-invariant
// style); front ends route configuration through this first so a bad flag value surfaces
// as a Status, not a crash.
Status ValidateDecomposerOptions(int num_devices, const DecomposerOptions& options);

// Stamps the plan's two-level (node) group structure from the machine topology: fills
// Plan::device_node with each device's server index and Task::collective_node on every
// collective participant. No-op on single-server topologies, so single-node plans stay
// byte-identical to pre-cluster builds. Called by BuildPlanForConfig after the scheduler
// emits the plan; the hierarchical CollectiveEngine path and plan_lint's hierarchical
// checks both key on the annotation.
void AnnotateClusterStructure(Plan* plan, const Topology& topology);

class PlanBuilder {
 public:
  PlanBuilder(const Model* model, TensorRegistry* registry, int num_devices,
              DecomposerOptions options);

  // Tasks added after this call belong to iteration `iter`; per-iteration tensors
  // (activations, gradients) are distinct across iterations, persistent state (W, K) is not.
  void BeginIteration(int iter) { iteration_ = iter; }

  // ---- tensors (created lazily on first use) ----
  TensorId Weight(int layer, int replica);
  TensorId OptState(int layer, int replica);  // kInvalidTensor when the optimizer is stateless
  TensorId WeightGrad(int layer, int replica);
  TensorId Activation(int layer, int microbatch, int replica);  // X[0..R]
  TensorId ActGrad(int layer, int microbatch, int replica);     // dX[1..R]
  TensorId Stash(int layer, int microbatch, int replica);       // kInvalidTensor if stashless

  // ---- tasks; each call appends to `device`'s execution queue in call order ----
  TaskId AddForward(int device, int layer_begin, int layer_end, int microbatch, int replica,
                    std::vector<TaskId> deps);
  TaskId AddLoss(int device, int microbatch, int replica, std::vector<TaskId> deps);
  TaskId AddBackward(int device, int layer_begin, int layer_end, int microbatch, int replica,
                     std::vector<TaskId> deps);
  TaskId AddUpdate(int device, int layer_begin, int layer_end, int replica,
                   std::vector<TaskId> deps);
  TaskId AddAllReduce(int device, int layer_begin, int layer_end, int replica, int group,
                      std::vector<TaskId> deps);

  // Activation collective for intra-op splitting: reduces the row-parallel partial outputs
  // X[layer] (or partial input gradients dX[layer] when `grad`) of one microbatch across
  // shards. One task per shard, rendezvousing via `group`.
  TaskId AddActivationAllReduce(int device, int layer, int microbatch, int replica, bool grad,
                                int group, std::vector<TaskId> deps);

  // Wires an extra dependency after both tasks exist (needed when queue emission order
  // differs from dependency order, e.g. 1F1B backward edges pointing at later stages).
  void AddDep(TaskId task, TaskId dep);

  // Appends `tensor` to `task`'s free list: its lifetime ends when the task completes.
  // Lets plan shapes whose consumers differ from the builder's built-in lifetime rules
  // (e.g. forward-only serving pipelines, where the consumer stage owns its input
  // activation) encode explicit frees without a backward pass.
  void FreeAfter(TaskId task, TensorId tensor);

  const Model& model() const { return *model_; }
  const DecomposerOptions& options() const { return options_; }
  int num_layers() const { return model_->num_layers(); }

  Plan Finish(std::string scheme);

 private:
  Task& NewTask(TaskKind kind, int device, int layer_begin, int layer_end, int microbatch,
                int replica);
  Bytes ActBytes(int layer) const;
  Bytes ShardBytes(Bytes bytes) const;
  double ShardFlops(double flops) const;

  const Model* model_;
  TensorRegistry* registry_;
  DecomposerOptions options_;
  int iteration_ = 0;
  Plan plan_;

  std::map<std::pair<int, int>, TensorId> weights_;      // (layer, replica)
  std::map<std::pair<int, int>, TensorId> opt_states_;   // (layer, replica)
  std::map<std::tuple<int, int, int>, TensorId> grads_;  // (iter, layer, replica)
  std::map<std::tuple<int, int, int, int>, TensorId> acts_;       // (iter, layer, mb, replica)
  std::map<std::tuple<int, int, int, int>, TensorId> act_grads_;  // (iter, layer, mb, replica)
  std::map<std::tuple<int, int, int, int>, TensorId> stashes_;    // (iter, layer, mb, replica)
};

// ---- inference serving (Computron-style model-parallel swapping; DESIGN.md §13) ----
//
// A serving plan is a forward-only pipeline: layers are partitioned into one
// compute-balanced contiguous stage per GPU, and each request batch flows swap-in →
// forward → swap-out. "Swap-in" is the ordinary first-touch (or post-eviction) weight
// fetch from host memory; "swap-out" is a *clean drop* — serving never dirties weights, so
// evicting a cold model's stage writes nothing back, which is exactly what lets many
// models time-share a small GPU pool. Stages run stashless (recompute-style decomposition:
// only boundary activations materialize); the consumer stage frees its input activation
// once consumed, and the last stage frees the logits it produced (the response leaves the
// simulated machine).
struct ServingPlanOptions {
  int requests = 1;    // pipeline wavefronts; maps to Plan::num_iterations for SLO stats
  int batches = 1;     // request batches pipelined per wavefront
  int batch_size = 1;  // samples per batch
};

Plan BuildServingPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                      const ServingPlanOptions& options);

}  // namespace harmony

#endif  // HARMONY_SRC_GRAPH_PLAN_BUILDER_H_
