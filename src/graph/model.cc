#include "src/graph/model.h"

#include <sstream>

#include "src/util/check.h"

namespace harmony {

Bytes Model::activation_bytes_per_sample(int l) const {
  HCHECK_GE(l, 0);
  HCHECK_LE(l, num_layers());
  if (l == 0) {
    return input_bytes_per_sample_;
  }
  return layers_[static_cast<std::size_t>(l - 1)].cost.act_out_bytes_per_sample;
}

Bytes Model::total_param_bytes() const {
  Bytes total = 0;
  for (const auto& layer : layers_) {
    total += layer.cost.param_bytes;
  }
  return total;
}

Bytes Model::total_grad_bytes() const {
  Bytes total = 0;
  for (const auto& layer : layers_) {
    total += layer.cost.grad_bytes;
  }
  return total;
}

Bytes Model::total_opt_state_bytes() const {
  Bytes total = 0;
  for (const auto& layer : layers_) {
    total += layer.cost.opt_state_bytes;
  }
  return total;
}

double Model::total_fwd_flops_per_sample() const {
  double total = 0.0;
  for (const auto& layer : layers_) {
    total += layer.cost.fwd_flops_per_sample;
  }
  return total;
}

double Model::total_bwd_flops_per_sample() const {
  double total = 0.0;
  for (const auto& layer : layers_) {
    total += layer.cost.bwd_flops_per_sample;
  }
  return total;
}

Bytes Model::SingleDeviceFootprint(int samples, int microbatches) const {
  // Weights, gradient buffers and optimizer state are live for the whole iteration. Each
  // microbatch's stashes and boundary activations are live from its forward pass until its
  // backward pass; with the standard "all forwards then all backwards" accumulation order
  // every microbatch's stash is simultaneously live at the fwd/bwd turning point.
  Bytes persistent = total_param_bytes() + total_grad_bytes() + total_opt_state_bytes();
  Bytes per_microbatch = 0;
  for (int l = 0; l <= num_layers(); ++l) {
    per_microbatch += activation_bytes_per_sample(l) * samples;
  }
  for (const auto& layer : layers_) {
    per_microbatch += layer.cost.stash_bytes_per_sample * samples;
  }
  return persistent + per_microbatch * microbatches;
}

std::string Model::Summary() const {
  std::ostringstream os;
  os << "model " << name_ << ": " << num_layers() << " layers, "
     << FormatCount(total_params()) << " params (" << FormatBytes(total_param_bytes())
     << " weights, " << FormatBytes(total_grad_bytes()) << " grads, "
     << FormatBytes(total_opt_state_bytes()) << " optimizer state)";
  return os.str();
}

}  // namespace harmony
