// Model builders and the Fig. 1 model-growth catalogue.
//
// The transformer builder uses the standard closed-form estimates:
//   params/layer      = 12 h^2 + 13 h           (attention + MLP + norms)
//   fwd FLOPs/sample  = 24 s h^2 + 4 s^2 h      (projections + attention + MLP)
//   bwd FLOPs         = 2x forward
//   stash/sample      = stash_factor * s * h * dtype  (attention scores, GeLU inputs, ...)
// which reproduce BERT-large at ~333M parameters and GPT-2 XL at ~1.5B.
#ifndef HARMONY_SRC_GRAPH_MODEL_ZOO_H_
#define HARMONY_SRC_GRAPH_MODEL_ZOO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/model.h"
#include "src/util/status.h"

namespace harmony {

enum class OptimizerKind {
  kSgd,       // no state
  kMomentum,  // 1x params
  kAdam,      // 2x params
};

double OptimizerStateFactor(OptimizerKind kind);

struct TransformerConfig {
  std::string name = "transformer";
  int num_layers = 12;
  int hidden = 768;
  int seq_len = 512;
  int vocab = 30522;
  Bytes dtype_bytes = 4;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  // Internal stashed-tensor multiplier, in units of (seq_len * hidden * dtype) per layer per
  // sample. ~30 covers attention score/prob matrices (heads * s^2), QKV projections, the 4h
  // MLP intermediates and dropout masks at s=512, h=1024.
  double stash_factor = 30.0;
};

// Embedding layer + num_layers transformer blocks (tied LM head, like GPT-2/BERT).
Model MakeTransformerLm(const TransformerConfig& config);

// Paper workloads.
Model MakeBertBase(OptimizerKind optimizer = OptimizerKind::kAdam);
Model MakeBertLarge(OptimizerKind optimizer = OptimizerKind::kAdam);
Model MakeGpt2Xl(OptimizerKind optimizer = OptimizerKind::kAdam);  // 1.5B params

// R identical layers with the given per-layer costs; the workhorse for unit tests and the
// analytic-model verification (it matches the paper's "one type of layer, same runtime and
// footprint per layer" assumption in Sec. 3).
struct UniformModelConfig {
  std::string name = "uniform";
  int num_layers = 4;
  Bytes param_bytes = 64 * kMiB;
  Bytes act_bytes_per_sample = 16 * kMiB;
  Bytes stash_bytes_per_sample = 0;
  Bytes workspace_bytes_per_sample = 0;
  double fwd_flops_per_sample = 1e9;
  double optimizer_state_factor = 1.0;
};
Model MakeUniformModel(const UniformModelConfig& config);

// A small MLP (Linear layers only); mirrors numeric::MlpNet so timing plans can be replayed
// numerically. Dims are the layer widths, e.g. {8, 16, 4} = two Linear layers.
Model MakeMlp(const std::vector<int>& dims, Bytes dtype_bytes = 8);

// ---- Convolutional / recurrent cost models (the rest of the Fig. 1 catalogue) ------------
//
// Standard closed forms: a KxK conv (in -> out channels on an HxW map) costs
// 2 K^2 Cin Cout H W FLOPs and K^2 Cin Cout parameters; an LSTM layer with input x and
// hidden h costs 4 h (x + h + 1) parameters and ~2 params FLOPs per token.

struct ConvLayerSpec {
  int in_channels;
  int out_channels;
  int kernel;
  int out_height;
  int out_width;
};

struct FcLayerSpec {
  int in_features;
  int out_features;
};

// Appends a conv/fc layer with derived costs to `model` (exposed for custom nets).
void AddConvLayer(Model* model, const std::string& name, const ConvLayerSpec& spec,
                  double opt_factor, Bytes dtype_bytes = 4);
void AddFcLayer(Model* model, const std::string& name, const FcLayerSpec& spec,
                double opt_factor, Bytes dtype_bytes = 4);
void AddLstmLayer(Model* model, const std::string& name, int input_size, int hidden_size,
                  int seq_len, double opt_factor, Bytes dtype_bytes = 4);

// LeNet-5 (1998): ~60K parameters.
Model MakeLeNet(OptimizerKind optimizer = OptimizerKind::kSgd);
// AlexNet (2012): ~61M parameters (dominated by the FC layers).
Model MakeAlexNet(OptimizerKind optimizer = OptimizerKind::kMomentum);
// GNMT-class encoder-decoder LSTM (2016): ~280M parameters.
Model MakeGnmt(OptimizerKind optimizer = OptimizerKind::kAdam);
// AmoebaNet-class NAS network (2018): ~557M parameters, approximated as a deep conv stack
// with the published parameter budget.
Model MakeAmoebaNet(OptimizerKind optimizer = OptimizerKind::kAdam);

// Looks a model up by catalogue-ish name ("lenet", "alexnet", "gnmt", "amoebanet",
// "bert-base", "bert-large", "gpt2-xl", "toy"); used by the CLI and tests.
StatusOr<Model> ModelByName(const std::string& name);

// Fig. 1: two decades of model growth.
struct CatalogueEntry {
  std::string name;
  int year;
  std::int64_t params;
  std::string task;  // "image classification" or "language modeling"
};
std::vector<CatalogueEntry> Fig1Catalogue();

}  // namespace harmony

#endif  // HARMONY_SRC_GRAPH_MODEL_ZOO_H_
