// Contiguous min-max partitioning, used to form compute-balanced pipeline stages.
#ifndef HARMONY_SRC_GRAPH_PARTITION_H_
#define HARMONY_SRC_GRAPH_PARTITION_H_

#include <vector>

namespace harmony {

// Splits items [0, costs.size()) into `parts` contiguous ranges minimizing the maximum
// per-range cost sum (classic linear-partition DP). Returns `parts + 1` boundaries with
// boundaries[0] == 0 and boundaries[parts] == costs.size(); some ranges may be empty when
// parts > items.
std::vector<int> PartitionContiguousMinMax(const std::vector<double>& costs, int parts);

}  // namespace harmony

#endif  // HARMONY_SRC_GRAPH_PARTITION_H_
