// Task IR: the unit of scheduling in Harmony.
//
// The Task Decomposer splits a training iteration into fine-grained tasks — forward,
// backward, and weight update per (layer pack, microbatch) — exactly as in Fig. 3 of the
// paper. A Plan binds tasks to devices with an explicit per-device execution order plus
// cross-device dependency edges; the runtime engine executes Plans against the simulated
// machine, and the numeric substrate can replay the same Plan with real math.
#ifndef HARMONY_SRC_GRAPH_TASK_H_
#define HARMONY_SRC_GRAPH_TASK_H_

#include <string>
#include <vector>

#include "src/mem/memory_manager.h"
#include "src/mem/tensor.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace harmony {

using TaskId = int;
inline constexpr TaskId kInvalidTask = -1;

enum class TaskKind {
  kForward,
  kLoss,      // loss + output-gradient computation (virtual layer after the last layer)
  kBackward,
  kUpdate,
  kAllReduce,  // data-parallel gradient reduction (rendezvous across replicas)
};

const char* TaskKindName(TaskKind kind);

struct Task {
  TaskId id = kInvalidTask;
  TaskKind kind = TaskKind::kForward;
  int device = -1;
  int iteration = 0;

  // Layer pack [layer_begin, layer_end); for kLoss both equal num_layers.
  int layer_begin = 0;
  int layer_end = 0;
  // Microbatch this instance operates on; -1 for per-model tasks (update, allreduce).
  int microbatch = -1;
  // Data-parallel replica index; 0 when weights are not replicated.
  int replica = 0;

  std::vector<TaskId> deps;

  WorkingSet working_set;
  std::vector<TensorId> dirty_outputs;  // marked dirty on completion
  std::vector<TensorId> free_after;     // freed on completion (end of lifetime)

  double flops = 0.0;  // compute cost; duration = flops / device effective FLOP/s

  // kAllReduce: tasks sharing a group rendezvous and move `collective_bytes` per device
  // around the ring. `collective_data` records what is being reduced so semantic replay
  // (numeric::PlanExecutor) can apply the right math; the timing engine ignores it.
  enum class CollectiveData { kWeightGrad, kActivation, kActivationGrad };
  int collective_group = -1;
  Bytes collective_bytes = 0;
  CollectiveData collective_data = CollectiveData::kWeightGrad;
  // Server (node) this collective participant lives on in a multi-node plan; -1 in
  // single-node plans. Stamped by AnnotateClusterStructure; must agree with
  // Plan::device_node[device] (the hierarchical lint's crossed-rendezvous check).
  int collective_node = -1;

  std::string DebugName() const;
};

struct Plan {
  std::string scheme;  // e.g. "baseline-dp", "harmony-pp"
  std::vector<Task> tasks;
  std::vector<std::vector<TaskId>> per_device_order;
  int num_iterations = 1;
  int microbatch_size = 1;
  // Samples consumed per iteration (for throughput reporting).
  int samples_per_iteration = 0;
  // Two-level group structure for multi-node plans: device_node[d] = dense server index of
  // device d (Topology::ServerOfGpu). Empty for single-node plans, keeping them
  // byte-identical to pre-cluster builds. Stamped by AnnotateClusterStructure.
  std::vector<int> device_node;

  int num_devices() const { return static_cast<int>(per_device_order.size()); }

  // Structural validation: ids consistent, every task appears exactly once in exactly one
  // device order, deps reference earlier-created tasks, the dependency graph plus per-device
  // order is acyclic, and every collective group has one task per participating device.
  Status Validate() const;

  // Largest single-task working set per device; must fit in device memory for the plan to
  // be executable.
  std::vector<Bytes> PeakTaskWorkingSet(const TensorRegistry& registry) const;

  std::string Stats() const;
};

}  // namespace harmony

#endif  // HARMONY_SRC_GRAPH_TASK_H_
