#include "src/numeric/reference.h"

#include <utility>

namespace harmony {

DataFn SyntheticData(const std::vector<int>& dims, int microbatch_size, std::uint64_t seed) {
  const int in_dim = dims.front();
  const int out_dim = dims.back();
  return [=](int iteration, int global_microbatch, Mat* x, Mat* y) {
    // Key the stream by (iteration, microbatch) so every consumer sees identical data
    // regardless of the order it asks in.
    Rng rng(seed + std::uint64_t{1000003} * static_cast<std::uint64_t>(iteration) +
            std::uint64_t{10007} * static_cast<std::uint64_t>(global_microbatch));
    *x = Mat(microbatch_size, in_dim);
    for (double& v : x->v) {
      v = rng.NextGaussian();
    }
    *y = Mat(microbatch_size, out_dim);
    for (double& v : y->v) {
      v = rng.NextGaussian() * 0.5;
    }
  };
}

namespace {

ReferenceResult TrainFrom(MlpParams initial, const DataFn& data, int first_iteration,
                          int iterations, int total_microbatches, int microbatch_size,
                          double lr, double momentum) {
  ReferenceResult result;
  result.params = std::move(initial);
  const int num_layers = result.params.num_layers();
  const int samples = total_microbatches * microbatch_size;

  for (int it = first_iteration; it < first_iteration + iterations; ++it) {
    std::vector<Mat> dw(static_cast<std::size_t>(num_layers));
    std::vector<Mat> db(static_cast<std::size_t>(num_layers));
    double loss = 0.0;

    for (int gm = 0; gm < total_microbatches; ++gm) {
      Mat x, target;
      data(it, gm, &x, &target);
      std::vector<Mat> acts;
      acts.push_back(std::move(x));
      for (int l = 0; l < num_layers; ++l) {
        const bool relu = l < num_layers - 1;
        acts.push_back(MlpForwardLayer(result.params, l, acts.back(), relu));
      }
      Mat dy = MlpLossGrad(acts.back(), target, &loss);
      for (int l = num_layers - 1; l >= 0; --l) {
        const bool relu = l < num_layers - 1;
        LayerGrads grads =
            MlpBackwardLayer(result.params, l, acts[static_cast<std::size_t>(l)],
                             acts[static_cast<std::size_t>(l + 1)], dy, relu);
        if (dw[static_cast<std::size_t>(l)].empty()) {
          dw[static_cast<std::size_t>(l)] = std::move(grads.dw);
          db[static_cast<std::size_t>(l)] = std::move(grads.db);
        } else {
          AddInPlace(dw[static_cast<std::size_t>(l)], grads.dw);
          AddInPlace(db[static_cast<std::size_t>(l)], grads.db);
        }
        dy = std::move(grads.dx);
      }
    }

    for (int l = 0; l < num_layers; ++l) {
      MlpApplyUpdate(result.params, l, dw[static_cast<std::size_t>(l)],
                     db[static_cast<std::size_t>(l)], lr, samples, momentum);
    }
    result.losses.push_back(loss);
  }
  return result;
}

}  // namespace

ReferenceResult TrainReference(const std::vector<int>& dims, std::uint64_t init_seed,
                               const DataFn& data, int iterations, int total_microbatches,
                               int microbatch_size, double lr, double momentum) {
  return TrainFrom(InitMlp(dims, init_seed), data, /*first_iteration=*/0, iterations,
                   total_microbatches, microbatch_size, lr, momentum);
}

ReferenceResult TrainReferenceFrom(const MlpParams& initial, const DataFn& data,
                                   int first_iteration, int iterations,
                                   int total_microbatches, int microbatch_size, double lr,
                                   double momentum) {
  return TrainFrom(initial, data, first_iteration, iterations, total_microbatches,
                   microbatch_size, lr, momentum);
}

}  // namespace harmony
