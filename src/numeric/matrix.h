// Tiny dense row-major matrix for the numeric substrate.
//
// Everything is double precision: the point of this module is to prove that Harmony's task
// reordering computes the *same* gradients as sequential PyTorch-style execution, so we want
// floating-point noise far below the comparison tolerances.
#ifndef HARMONY_SRC_NUMERIC_MATRIX_H_
#define HARMONY_SRC_NUMERIC_MATRIX_H_

#include <vector>

#include "src/util/check.h"

namespace harmony {

struct Mat {
  int rows = 0;
  int cols = 0;
  std::vector<double> v;  // row-major, rows*cols

  Mat() = default;
  Mat(int r, int c) : rows(r), cols(c), v(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0.0) {}

  double& at(int r, int c) {
    return v[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
             static_cast<std::size_t>(c)];
  }
  double at(int r, int c) const {
    return v[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
             static_cast<std::size_t>(c)];
  }
  bool empty() const { return v.empty(); }
};

// out = a * b^T? No transposes here; explicit helpers keep call sites readable.
// c = a(m,k) * b(k,n)
Mat MatMul(const Mat& a, const Mat& b);
// c = a(m,k) * b(n,k)^T
Mat MatMulBt(const Mat& a, const Mat& b);
// c = a(k,m)^T * b(k,n)
Mat MatMulAt(const Mat& a, const Mat& b);
void AddInPlace(Mat& a, const Mat& b);
void ScaleInPlace(Mat& a, double s);
// max |a - b|
double MaxAbsDiff(const Mat& a, const Mat& b);

}  // namespace harmony

#endif  // HARMONY_SRC_NUMERIC_MATRIX_H_
