#include "src/numeric/plan_executor.h"

#include <algorithm>
#include <set>

namespace harmony {

PlanExecutor::PlanExecutor(const Plan* plan, PlanExecutorConfig config, DataFn data)
    : plan_(plan), config_(std::move(config)), data_(std::move(data)) {
  const Status valid = plan->Validate();
  HCHECK(valid.ok()) << valid.ToString();
  num_model_layers_ = static_cast<int>(config_.dims.size()) - 1;
  HCHECK_GE(num_model_layers_, 1);
  tensor_parallel_ = plan->scheme == "harmony-tp";

  int max_replica = 0;
  for (const Task& task : plan->tasks) {
    max_replica = std::max(max_replica, task.replica);
    HCHECK_LE(task.layer_end, num_model_layers_)
        << "plan layer range exceeds the MLP in " << task.DebugName();
  }
  if (config_.initial_params.has_value()) {
    HCHECK(!tensor_parallel_) << "initial_params resume is not supported for sharded plans";
  }
  for (int r = 0; r <= max_replica; ++r) {
    replicas_.push_back(config_.initial_params.has_value()
                            ? *config_.initial_params
                            : InitMlp(config_.dims, config_.init_seed));
  }
  losses_.assign(static_cast<std::size_t>(plan->num_iterations), 0.0);
}

void PlanExecutor::LoadData(int iteration, int microbatch, int replica) {
  const ActKey input_key{iteration, 0, microbatch, replica};
  if (acts_.count(input_key) > 0) {
    return;
  }
  // Data-parallel replicas each own a slice of the minibatch; tensor-parallel shards all
  // see the same microbatches.
  const int global =
      tensor_parallel_ ? microbatch : replica * config_.microbatches_per_replica + microbatch;
  Mat x, y;
  data_(iteration, global, &x, &y);
  acts_.emplace(input_key, std::move(x));
  targets_.emplace(ActKey{iteration, -1, microbatch, replica}, std::move(y));
}

Mat& PlanExecutor::InputActivation(int iteration, int microbatch, int replica) {
  LoadData(iteration, microbatch, replica);
  return acts_.at(ActKey{iteration, 0, microbatch, replica});
}

Mat& PlanExecutor::Target(int iteration, int microbatch, int replica) {
  LoadData(iteration, microbatch, replica);
  return targets_.at(ActKey{iteration, -1, microbatch, replica});
}

void PlanExecutor::Run() {
  const int n = static_cast<int>(plan_->tasks.size());
  std::vector<bool> executed(static_cast<std::size_t>(n), false);
  std::vector<std::size_t> head(static_cast<std::size_t>(plan_->num_devices()), 0);

  // All-reduce tasks rendezvous: collect "arrived" members per group, execute the group
  // atomically when complete.
  std::map<int, std::vector<const Task*>> arrived;

  auto deps_met = [&](const Task& task) {
    for (TaskId dep : task.deps) {
      if (!executed[static_cast<std::size_t>(dep)]) {
        return false;
      }
    }
    return true;
  };

  int remaining = n;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (int d = 0; d < plan_->num_devices(); ++d) {
      const auto& order = plan_->per_device_order[static_cast<std::size_t>(d)];
      while (head[static_cast<std::size_t>(d)] < order.size()) {
        const Task& task =
            plan_->tasks[static_cast<std::size_t>(order[head[static_cast<std::size_t>(d)]])];
        if (!deps_met(task)) {
          break;
        }
        if (task.kind == TaskKind::kAllReduce) {
          auto& members = arrived[task.collective_group];
          members.push_back(&task);
          ++head[static_cast<std::size_t>(d)];
          progress = true;
          // Count expected members lazily: a group spans every replica that has a task with
          // this id anywhere in the plan.
          int expected = 0;
          for (const Task& t : plan_->tasks) {
            if (t.kind == TaskKind::kAllReduce && t.collective_group == task.collective_group) {
              ++expected;
            }
          }
          if (static_cast<int>(members.size()) == expected) {
            ExecAllReduceGroup(members);
            for (const Task* member : members) {
              executed[static_cast<std::size_t>(member->id)] = true;
              --remaining;
            }
            arrived.erase(task.collective_group);
          }
          continue;
        }
        if (!TryExecute(task)) {
          break;
        }
        executed[static_cast<std::size_t>(task.id)] = true;
        --remaining;
        ++head[static_cast<std::size_t>(d)];
        progress = true;
      }
    }
  }
  HCHECK_EQ(remaining, 0) << "plan executor stalled (rendezvous or dependency deadlock)";
}

bool PlanExecutor::TryExecute(const Task& task) {
  switch (task.kind) {
    case TaskKind::kForward:
      ExecForward(task);
      return true;
    case TaskKind::kLoss:
      ExecLoss(task);
      return true;
    case TaskKind::kBackward:
      ExecBackward(task);
      return true;
    case TaskKind::kUpdate:
      ExecUpdate(task);
      return true;
    case TaskKind::kAllReduce:
      HCHECK(false) << "allreduce handled by the rendezvous path";
  }
  return false;
}

std::pair<int, int> PlanExecutor::ShardCols(int layer, int shard) const {
  const int in = config_.dims[static_cast<std::size_t>(layer)];
  const int n = num_replicas();
  return {shard * in / n, (shard + 1) * in / n};
}

void PlanExecutor::ExecForward(const Task& task) {
  const int it = task.iteration;
  const int mb = task.microbatch;
  const int r = task.replica;
  MlpParams& params = replicas_[static_cast<std::size_t>(r)];
  const Mat* x = task.layer_begin == 0
                     ? &InputActivation(it, mb, r)
                     : &acts_.at(ActKey{it, task.layer_begin, mb, r});

  if (tensor_parallel_) {
    // Row-parallel partial product over the shard's input columns; the activation
    // collective sums the partials (and applies the nonlinearity). Bias contributed by
    // shard 0 only so the sum sees it once.
    HCHECK_EQ(task.layer_end, task.layer_begin + 1) << "TP packs are single layers";
    const int l = task.layer_begin;
    const auto [c0, c1] = ShardCols(l, r);
    const Mat& w = params.weights[static_cast<std::size_t>(l)];
    const Mat& b = params.biases[static_cast<std::size_t>(l)];
    Mat partial(x->rows, w.rows);
    for (int i = 0; i < x->rows; ++i) {
      for (int o = 0; o < w.rows; ++o) {
        double sum = r == 0 ? b.at(0, o) : 0.0;
        for (int c = c0; c < c1; ++c) {
          sum += x->at(i, c) * w.at(o, c);
        }
        partial.at(i, o) = sum;
      }
    }
    acts_.insert_or_assign(ActKey{it, l + 1, mb, r}, std::move(partial));
    return;
  }

  for (int l = task.layer_begin; l < task.layer_end; ++l) {
    const bool relu = l < num_model_layers_ - 1;
    Mat y = MlpForwardLayer(params, l, *x, relu);
    auto [iter, inserted] = acts_.insert_or_assign(ActKey{it, l + 1, mb, r}, std::move(y));
    x = &iter->second;
  }
}

void PlanExecutor::ExecLoss(const Task& task) {
  const int it = task.iteration;
  const int mb = task.microbatch;
  const int r = task.replica;
  const Mat& logits = acts_.at(ActKey{it, num_model_layers_, mb, r});
  // Tensor-parallel shards all hold identical logits; count the loss once.
  double* loss_sink =
      (!tensor_parallel_ || r == 0) ? &losses_[static_cast<std::size_t>(it)] : nullptr;
  Mat grad = MlpLossGrad(logits, Target(it, mb, r), loss_sink);
  act_grads_.insert_or_assign(ActKey{it, num_model_layers_, mb, r}, std::move(grad));
}

void PlanExecutor::ExecBackward(const Task& task) {
  const int it = task.iteration;
  const int mb = task.microbatch;
  const int r = task.replica;
  MlpParams& params = replicas_[static_cast<std::size_t>(r)];
  Mat dy = std::move(act_grads_.at(ActKey{it, task.layer_end, mb, r}));
  act_grads_.erase(ActKey{it, task.layer_end, mb, r});

  if (tensor_parallel_) {
    // Shard-masked backward: full-size dW / dX buffers that are zero outside the shard's
    // columns, so the sum-collective reconstructs the dense result exactly.
    HCHECK_EQ(task.layer_end, task.layer_begin + 1);
    const int l = task.layer_begin;
    const auto [c0, c1] = ShardCols(l, r);
    const bool relu = l < num_model_layers_ - 1;
    const Mat& x = l == 0 ? InputActivation(it, mb, r) : acts_.at(ActKey{it, l, mb, r});
    const Mat& y = acts_.at(ActKey{it, l + 1, mb, r});
    const Mat& w = params.weights[static_cast<std::size_t>(l)];

    Mat dz = dy;
    if (relu) {
      for (std::size_t i = 0; i < dz.v.size(); ++i) {
        if (y.v[i] <= 0.0) {
          dz.v[i] = 0.0;
        }
      }
    }
    GradBuffer& buffer = grads_[GradKey{it, l, r}];
    if (buffer.dw.empty()) {
      buffer.dw = Mat(w.rows, w.cols);
      buffer.db = Mat(1, w.rows);
    }
    for (int o = 0; o < w.rows; ++o) {
      for (int i = 0; i < dz.rows; ++i) {
        const double g = dz.at(i, o);
        if (r == 0) {
          buffer.db.at(0, o) += g;
        }
        for (int c = c0; c < c1; ++c) {
          buffer.dw.at(o, c) += g * x.at(i, c);
        }
      }
    }
    if (l > 0) {
      Mat dx(x.rows, x.cols);  // zero outside [c0, c1)
      for (int i = 0; i < dz.rows; ++i) {
        for (int c = c0; c < c1; ++c) {
          double sum = 0.0;
          for (int o = 0; o < w.rows; ++o) {
            sum += dz.at(i, o) * w.at(o, c);
          }
          dx.at(i, c) = sum;
        }
      }
      act_grads_.insert_or_assign(ActKey{it, l, mb, r}, std::move(dx));
    }
    return;
  }

  for (int l = task.layer_end - 1; l >= task.layer_begin; --l) {
    const bool relu = l < num_model_layers_ - 1;
    const Mat& x = l == 0 ? InputActivation(it, mb, r) : acts_.at(ActKey{it, l, mb, r});
    const Mat& y = acts_.at(ActKey{it, l + 1, mb, r});
    LayerGrads grads = MlpBackwardLayer(params, l, x, y, dy, relu);
    GradBuffer& buffer = grads_[GradKey{it, l, r}];
    if (buffer.dw.empty()) {
      buffer.dw = std::move(grads.dw);
      buffer.db = std::move(grads.db);
    } else {
      AddInPlace(buffer.dw, grads.dw);
      AddInPlace(buffer.db, grads.db);
    }
    dy = std::move(grads.dx);
  }
  if (task.layer_begin > 0) {
    act_grads_.insert_or_assign(ActKey{it, task.layer_begin, mb, r}, std::move(dy));
  }
}

void PlanExecutor::ExecUpdate(const Task& task) {
  const int it = task.iteration;
  const int r = task.replica;
  MlpParams& params = replicas_[static_cast<std::size_t>(r)];
  for (int l = task.layer_begin; l < task.layer_end; ++l) {
    GradBuffer& buffer = grads_.at(GradKey{it, l, r});
    MlpApplyUpdate(params, l, buffer.dw, buffer.db, config_.lr,
                   plan_->samples_per_iteration, config_.momentum);
    grads_.erase(GradKey{it, l, r});
  }
}

void PlanExecutor::ExecAllReduceGroup(const std::vector<const Task*>& members) {
  HCHECK(!members.empty());
  const Task& first = *members.front();
  const int it = first.iteration;

  if (first.collective_data != Task::CollectiveData::kWeightGrad) {
    // Activation (or activation-gradient) collective: sum the shards' full-size partials
    // and hand every shard the reduced copy. The forward reduction also applies the
    // nonlinearity the partial sums had to skip.
    const bool is_grad = first.collective_data == Task::CollectiveData::kActivationGrad;
    const int layer = first.layer_begin;
    const int mb = first.microbatch;
    auto& store = is_grad ? act_grads_ : acts_;
    std::vector<const Task*> sorted = members;
    std::sort(sorted.begin(), sorted.end(),
              [](const Task* a, const Task* b) { return a->replica < b->replica; });
    Mat sum;
    for (const Task* member : sorted) {
      const Mat& partial = store.at(ActKey{it, layer, mb, member->replica});
      if (sum.empty()) {
        sum = partial;
      } else {
        AddInPlace(sum, partial);
      }
    }
    if (!is_grad && layer < num_model_layers_) {
      for (double& v : sum.v) {
        if (v < 0.0) {
          v = 0.0;
        }
      }
    }
    for (const Task* member : sorted) {
      store.insert_or_assign(ActKey{it, layer, mb, member->replica}, sum);
    }
    return;
  }
  for (int l = first.layer_begin; l < first.layer_end; ++l) {
    // Deterministic reduction order: ascending replica.
    std::vector<const Task*> sorted = members;
    std::sort(sorted.begin(), sorted.end(),
              [](const Task* a, const Task* b) { return a->replica < b->replica; });
    Mat sum_dw, sum_db;
    for (const Task* member : sorted) {
      const GradBuffer& buffer = grads_.at(GradKey{it, l, member->replica});
      if (sum_dw.empty()) {
        sum_dw = buffer.dw;
        sum_db = buffer.db;
      } else {
        AddInPlace(sum_dw, buffer.dw);
        AddInPlace(sum_db, buffer.db);
      }
    }
    for (const Task* member : sorted) {
      GradBuffer& buffer = grads_.at(GradKey{it, l, member->replica});
      buffer.dw = sum_dw;
      buffer.db = sum_db;
    }
  }
}

MlpParams PlanExecutor::AssembleShardedParams() const {
  HCHECK(tensor_parallel_);
  MlpParams assembled = replicas_[0];
  for (int l = 0; l < num_model_layers_; ++l) {
    for (int r = 1; r < num_replicas(); ++r) {
      const auto [c0, c1] = ShardCols(l, r);
      const Mat& shard = replicas_[static_cast<std::size_t>(r)].weights[static_cast<std::size_t>(l)];
      Mat& w = assembled.weights[static_cast<std::size_t>(l)];
      for (int o = 0; o < w.rows; ++o) {
        for (int c = c0; c < c1; ++c) {
          w.at(o, c) = shard.at(o, c);
        }
      }
    }
  }
  return assembled;
}

}  // namespace harmony

