#include "src/numeric/mlp.h"

#include <algorithm>
#include <cmath>

namespace harmony {

MlpParams InitMlp(const std::vector<int>& dims, std::uint64_t seed) {
  HCHECK_GE(dims.size(), 2u);
  Rng rng(seed);
  MlpParams params;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    const int in = dims[l];
    const int out = dims[l + 1];
    Mat w(out, in);
    const double scale = 1.0 / std::sqrt(static_cast<double>(in));
    for (double& x : w.v) {
      x = rng.NextGaussian() * scale;
    }
    Mat b(1, out);
    for (double& x : b.v) {
      x = rng.NextGaussian() * 0.01;
    }
    params.weights.push_back(std::move(w));
    params.biases.push_back(std::move(b));
  }
  return params;
}

Mat MlpForwardLayer(const MlpParams& params, int layer, const Mat& x, bool relu) {
  const Mat& w = params.weights[static_cast<std::size_t>(layer)];
  const Mat& b = params.biases[static_cast<std::size_t>(layer)];
  Mat y = MatMulBt(x, w);  // (batch,in) * (out,in)^T = (batch,out)
  for (int r = 0; r < y.rows; ++r) {
    for (int c = 0; c < y.cols; ++c) {
      y.at(r, c) += b.at(0, c);
      if (relu && y.at(r, c) < 0.0) {
        y.at(r, c) = 0.0;
      }
    }
  }
  return y;
}

LayerGrads MlpBackwardLayer(const MlpParams& params, int layer, const Mat& x, const Mat& y,
                            const Mat& dy, bool relu) {
  const Mat& w = params.weights[static_cast<std::size_t>(layer)];
  Mat dz = dy;
  if (relu) {
    for (int r = 0; r < dz.rows; ++r) {
      for (int c = 0; c < dz.cols; ++c) {
        if (y.at(r, c) <= 0.0) {
          dz.at(r, c) = 0.0;
        }
      }
    }
  }
  LayerGrads grads;
  grads.dw = MatMulAt(dz, x);  // (batch,out)^T * (batch,in) = (out,in)
  grads.db = Mat(1, dz.cols);
  for (int r = 0; r < dz.rows; ++r) {
    for (int c = 0; c < dz.cols; ++c) {
      grads.db.at(0, c) += dz.at(r, c);
    }
  }
  grads.dx = MatMul(dz, w);  // (batch,out) * (out,in) = (batch,in)
  return grads;
}

Mat MlpLossGrad(const Mat& logits, const Mat& target, double* loss) {
  HCHECK_EQ(logits.rows, target.rows);
  HCHECK_EQ(logits.cols, target.cols);
  Mat grad(logits.rows, logits.cols);
  double total = 0.0;
  for (std::size_t i = 0; i < grad.v.size(); ++i) {
    const double diff = logits.v[i] - target.v[i];
    grad.v[i] = diff;
    total += 0.5 * diff * diff;
  }
  if (loss != nullptr) {
    *loss += total;
  }
  return grad;
}

void MlpApplyUpdate(MlpParams& params, int layer, const Mat& dw, const Mat& db, double lr,
                    int samples, double momentum) {
  HCHECK_GT(samples, 0);
  const double inv = 1.0 / static_cast<double>(samples);
  Mat& w = params.weights[static_cast<std::size_t>(layer)];
  Mat& b = params.biases[static_cast<std::size_t>(layer)];
  HCHECK_EQ(w.rows, dw.rows);
  HCHECK_EQ(w.cols, dw.cols);
  if (momentum == 0.0) {
    for (std::size_t i = 0; i < w.v.size(); ++i) {
      w.v[i] -= lr * inv * dw.v[i];
    }
    for (std::size_t i = 0; i < b.v.size(); ++i) {
      b.v[i] -= lr * inv * db.v[i];
    }
    return;
  }
  if (params.velocity_w.empty()) {
    for (int l = 0; l < params.num_layers(); ++l) {
      params.velocity_w.emplace_back(params.weights[static_cast<std::size_t>(l)].rows,
                                     params.weights[static_cast<std::size_t>(l)].cols);
      params.velocity_b.emplace_back(1, params.biases[static_cast<std::size_t>(l)].cols);
    }
  }
  Mat& vw = params.velocity_w[static_cast<std::size_t>(layer)];
  Mat& vb = params.velocity_b[static_cast<std::size_t>(layer)];
  for (std::size_t i = 0; i < w.v.size(); ++i) {
    vw.v[i] = momentum * vw.v[i] + inv * dw.v[i];
    w.v[i] -= lr * vw.v[i];
  }
  for (std::size_t i = 0; i < b.v.size(); ++i) {
    vb.v[i] = momentum * vb.v[i] + inv * db.v[i];
    b.v[i] -= lr * vb.v[i];
  }
}

double MaxParamDiff(const MlpParams& a, const MlpParams& b) {
  HCHECK_EQ(a.num_layers(), b.num_layers());
  double worst = 0.0;
  for (int l = 0; l < a.num_layers(); ++l) {
    worst = std::max(worst, MaxAbsDiff(a.weights[static_cast<std::size_t>(l)],
                                       b.weights[static_cast<std::size_t>(l)]));
    worst = std::max(worst, MaxAbsDiff(a.biases[static_cast<std::size_t>(l)],
                                       b.biases[static_cast<std::size_t>(l)]));
  }
  return worst;
}

}  // namespace harmony
