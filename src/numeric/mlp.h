// A real MLP (Linear(+ReLU) stack) with hand-written forward/backward kernels.
//
// The layer indexing matches graph::MakeMlp(dims): layer l maps dims[l] -> dims[l+1]; every
// layer applies ReLU except the last (logits). The loss is 0.5 * ||logits - target||^2
// summed over samples; updates are plain SGD with the gradient averaged over the iteration's
// total sample count. These exact semantics are shared by the sequential reference trainer
// and the plan executor so their trajectories are comparable.
#ifndef HARMONY_SRC_NUMERIC_MLP_H_
#define HARMONY_SRC_NUMERIC_MLP_H_

#include <vector>

#include "src/numeric/matrix.h"
#include "src/util/rng.h"

namespace harmony {

struct MlpParams {
  // weights[l]: (dims[l+1] x dims[l]); biases[l]: (1 x dims[l+1])
  std::vector<Mat> weights;
  std::vector<Mat> biases;
  // Momentum buffers, lazily initialized to zero on the first update with momentum > 0.
  std::vector<Mat> velocity_w;
  std::vector<Mat> velocity_b;

  int num_layers() const { return static_cast<int>(weights.size()); }
};

// Deterministic Gaussian init (replicas built from the same seed are bit-identical).
MlpParams InitMlp(const std::vector<int>& dims, std::uint64_t seed);

// y = x * W^T + b, followed by ReLU when `relu`.
Mat MlpForwardLayer(const MlpParams& params, int layer, const Mat& x, bool relu);

struct LayerGrads {
  Mat dw;
  Mat db;
  Mat dx;
};

// Backward through layer `layer`: `x` is the layer input, `y` its (post-ReLU) output, `dy`
// the gradient wrt that output.
LayerGrads MlpBackwardLayer(const MlpParams& params, int layer, const Mat& x, const Mat& y,
                            const Mat& dy, bool relu);

// dLogits = logits - target; returns the gradient and accumulates loss if `loss` non-null.
Mat MlpLossGrad(const Mat& logits, const Mat& target, double* loss);

// SGD with optional momentum: v = mu*v + dW/samples; W -= lr*v (and bias likewise).
// mu == 0 is plain SGD.
void MlpApplyUpdate(MlpParams& params, int layer, const Mat& dw, const Mat& db, double lr,
                    int samples, double momentum = 0.0);

double MaxParamDiff(const MlpParams& a, const MlpParams& b);

}  // namespace harmony

#endif  // HARMONY_SRC_NUMERIC_MLP_H_
