// Replays a scheduling Plan with real math.
//
// The timing engine (runtime/engine.h) proves a plan is *fast*; this executor proves it is
// *correct*: it walks the same per-device queues and dependency edges, executing each task's
// semantics (forward, loss, backward with gradient accumulation, ring all-reduce, SGD
// update) on double-precision MLP tensors. Property tests compare the resulting weights and
// losses against the sequential reference trainer — the paper's claim that Harmony
// "transparently preserves the semantics of the original tasks".
#ifndef HARMONY_SRC_NUMERIC_PLAN_EXECUTOR_H_
#define HARMONY_SRC_NUMERIC_PLAN_EXECUTOR_H_

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "src/graph/task.h"
#include "src/numeric/mlp.h"
#include "src/numeric/reference.h"

namespace harmony {

struct PlanExecutorConfig {
  std::vector<int> dims;            // MLP widths; layer count must match the plan's model
  std::uint64_t init_seed = 1;
  int microbatches_per_replica = 1;  // maps (replica, microbatch) -> global microbatch
  double lr = 0.05;
  double momentum = 0.0;  // per-replica momentum buffers (the "K" optimizer state)
  // Start from these exact parameters (weights + momentum buffers) instead of InitMlp —
  // how a recovery segment resumes from a checkpoint. Every replica starts from the same
  // copy, which is exactly the DP invariant after an update barrier. Not supported for
  // tensor-parallel plans (shards own column ranges, not full replicas).
  std::optional<MlpParams> initial_params;
};

class PlanExecutor {
 public:
  PlanExecutor(const Plan* plan, PlanExecutorConfig config, DataFn data);

  // Executes every task (fatal if the plan cannot make progress).
  void Run();

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  bool tensor_parallel() const { return tensor_parallel_; }

  // Tensor-parallel replicas only own a column range of each weight matrix (plus the bias
  // on shard 0); this assembles the effective dense parameters for comparison against the
  // sequential reference.
  MlpParams AssembleShardedParams() const;
  const MlpParams& replica_params(int replica) const {
    return replicas_.at(static_cast<std::size_t>(replica));
  }
  const std::vector<double>& losses() const { return losses_; }

 private:
  struct GradBuffer {
    Mat dw;
    Mat db;
  };
  using ActKey = std::tuple<int, int, int, int>;   // (iteration, layer, microbatch, replica)
  using GradKey = std::tuple<int, int, int>;       // (iteration, layer, replica)

  bool TryExecute(const Task& task);
  // Input-dimension column range owned by `shard` at `layer` (tensor-parallel mode).
  std::pair<int, int> ShardCols(int layer, int shard) const;
  void ExecForward(const Task& task);
  void ExecLoss(const Task& task);
  void ExecBackward(const Task& task);
  void ExecUpdate(const Task& task);
  void ExecAllReduceGroup(const std::vector<const Task*>& members);
  Mat& InputActivation(int iteration, int microbatch, int replica);
  Mat& Target(int iteration, int microbatch, int replica);
  void LoadData(int iteration, int microbatch, int replica);

  const Plan* plan_;
  PlanExecutorConfig config_;
  DataFn data_;
  int num_model_layers_;
  bool tensor_parallel_ = false;

  std::vector<MlpParams> replicas_;
  std::map<ActKey, Mat> acts_;       // X[layer]
  std::map<ActKey, Mat> act_grads_;  // dX[layer]
  std::map<ActKey, Mat> targets_;    // keyed with layer = -1
  std::map<GradKey, GradBuffer> grads_;
  std::vector<double> losses_;
};

}  // namespace harmony

#endif  // HARMONY_SRC_NUMERIC_PLAN_EXECUTOR_H_
