#include "src/numeric/matrix.h"

#include <algorithm>
#include <cmath>

namespace harmony {

Mat MatMul(const Mat& a, const Mat& b) {
  HCHECK_EQ(a.cols, b.rows);
  Mat c(a.rows, b.cols);
  for (int i = 0; i < a.rows; ++i) {
    for (int k = 0; k < a.cols; ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) {
        continue;
      }
      for (int j = 0; j < b.cols; ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Mat MatMulBt(const Mat& a, const Mat& b) {
  HCHECK_EQ(a.cols, b.cols);
  Mat c(a.rows, b.rows);
  for (int i = 0; i < a.rows; ++i) {
    for (int j = 0; j < b.rows; ++j) {
      double sum = 0.0;
      for (int k = 0; k < a.cols; ++k) {
        sum += a.at(i, k) * b.at(j, k);
      }
      c.at(i, j) = sum;
    }
  }
  return c;
}

Mat MatMulAt(const Mat& a, const Mat& b) {
  HCHECK_EQ(a.rows, b.rows);
  Mat c(a.cols, b.cols);
  for (int k = 0; k < a.rows; ++k) {
    for (int i = 0; i < a.cols; ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) {
        continue;
      }
      for (int j = 0; j < b.cols; ++j) {
        c.at(i, j) += aki * b.at(k, j);
      }
    }
  }
  return c;
}

void AddInPlace(Mat& a, const Mat& b) {
  HCHECK_EQ(a.rows, b.rows);
  HCHECK_EQ(a.cols, b.cols);
  for (std::size_t i = 0; i < a.v.size(); ++i) {
    a.v[i] += b.v[i];
  }
}

void ScaleInPlace(Mat& a, double s) {
  for (double& x : a.v) {
    x *= s;
  }
}

double MaxAbsDiff(const Mat& a, const Mat& b) {
  HCHECK_EQ(a.rows, b.rows);
  HCHECK_EQ(a.cols, b.cols);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.v.size(); ++i) {
    worst = std::max(worst, std::fabs(a.v[i] - b.v[i]));
  }
  return worst;
}

}  // namespace harmony
