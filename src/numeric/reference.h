// Sequential single-device reference trainer.
//
// This is the semantic ground truth: what an unmodified imperative PyTorch script would
// compute — forward and backward over every microbatch in order, gradient accumulation,
// one SGD step per iteration. Harmony's reordered plans must reproduce this trajectory.
#ifndef HARMONY_SRC_NUMERIC_REFERENCE_H_
#define HARMONY_SRC_NUMERIC_REFERENCE_H_

#include <functional>
#include <vector>

#include "src/numeric/mlp.h"

namespace harmony {

// Fills input x and target y for one microbatch. `global_microbatch` enumerates the whole
// minibatch (data-parallel replicas concatenated in replica-major order).
using DataFn = std::function<void(int iteration, int global_microbatch, Mat* x, Mat* y)>;

// Deterministic synthetic regression data from a seed.
DataFn SyntheticData(const std::vector<int>& dims, int microbatch_size, std::uint64_t seed);

struct ReferenceResult {
  MlpParams params;
  std::vector<double> losses;  // per iteration
};

ReferenceResult TrainReference(const std::vector<int>& dims, std::uint64_t init_seed,
                               const DataFn& data, int iterations, int total_microbatches,
                               int microbatch_size, double lr, double momentum = 0.0);

// Continues training from `initial` (weights + momentum buffers, e.g. a recovery
// checkpoint) for `iterations` more iterations. `data` is queried with global iteration
// indices starting at `first_iteration`, so the resumed trajectory sees exactly the data
// the uninterrupted run would have seen.
ReferenceResult TrainReferenceFrom(const MlpParams& initial, const DataFn& data,
                                   int first_iteration, int iterations,
                                   int total_microbatches, int microbatch_size, double lr,
                                   double momentum = 0.0);

}  // namespace harmony

#endif  // HARMONY_SRC_NUMERIC_REFERENCE_H_
