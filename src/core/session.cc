#include "src/core/session.h"

#include <cmath>

#include "src/baseline/baseline_dp.h"
#include "src/baseline/baseline_pp.h"
#include "src/core/harmony_dp.h"
#include "src/core/harmony_pp.h"
#include "src/core/harmony_tp.h"
#include "src/graph/plan_builder.h"
#include "src/hw/fault_injector.h"
#include "src/hw/transfer_manager.h"
#include "src/runtime/collective.h"
#include "src/runtime/demand.h"
#include "src/runtime/plan_lint.h"
#include "src/sim/simulator.h"
#include "src/util/check.h"
#include "src/util/units.h"

namespace harmony {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kBaselineDp:
      return "baseline-dp";
    case Scheme::kBaselinePp:
      return "baseline-pp";
    case Scheme::kHarmonyDp:
      return "harmony-dp";
    case Scheme::kHarmonyPp:
      return "harmony-pp";
    case Scheme::kHarmonyTp:
      return "harmony-tp";
    case Scheme::kServing:
      return "serving";
  }
  return "unknown";
}

StatusOr<Scheme> SchemeByName(const std::string& name) {
  for (Scheme scheme :
       {Scheme::kBaselineDp, Scheme::kBaselinePp, Scheme::kHarmonyDp, Scheme::kHarmonyPp,
        Scheme::kHarmonyTp, Scheme::kServing}) {
    if (name == SchemeName(scheme)) {
      return scheme;
    }
  }
  return InvalidArgumentError(
      "unknown scheme '" + name +
      "' (expected baseline-dp, baseline-pp, harmony-dp, harmony-pp, harmony-tp, or "
      "serving)");
}

MemoryPolicy DefaultPolicyFor(Scheme scheme, bool p2p) {
  switch (scheme) {
    case Scheme::kBaselineDp:
    case Scheme::kBaselinePp:
      return LmsPolicy();
    case Scheme::kHarmonyDp:
    case Scheme::kHarmonyPp:
    case Scheme::kHarmonyTp:
    // Serving runs under the Harmony policy: cross-device context makes stage-boundary
    // activations move p2p, and weight evictions are clean drops either way.
    case Scheme::kServing: {
      MemoryPolicy policy = HarmonyPolicy();
      policy.allow_p2p = p2p;
      return policy;
    }
  }
  return LmsPolicy();
}

Machine MakeSessionMachine(const SessionConfig& config) {
  if (config.num_nodes <= 1) {
    return MakeCommodityServer(config.server);
  }
  ClusterConfig cluster;
  cluster.num_servers = config.num_nodes;
  cluster.nodes_per_rack = config.nodes_per_rack;
  cluster.server = config.server;
  cluster.nic = config.nic_link;
  cluster.rack = config.rack_link;
  return MakeCluster(cluster);
}

Plan BuildPlanForConfig(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const SessionConfig& config) {
  Plan plan;
  switch (config.scheme) {
    case Scheme::kBaselineDp: {
      BaselineDpOptions options;
      options.microbatches_per_gpu = config.microbatches;
      options.microbatch_size = config.microbatch_size;
      options.iterations = config.iterations;
      options.recompute = config.recompute;
      plan = BuildBaselineDpPlan(model, machine, registry, options);
      break;
    }
    case Scheme::kBaselinePp: {
      BaselinePpOptions options;
      options.microbatches = config.microbatches;
      options.microbatch_size = config.microbatch_size;
      options.iterations = config.iterations;
      options.recompute = config.recompute;
      plan = BuildBaselinePpPlan(model, machine, registry, options);
      break;
    }
    case Scheme::kHarmonyDp: {
      HarmonyDpOptions options;
      options.microbatches_per_gpu = config.microbatches;
      options.microbatch_size = config.microbatch_size;
      options.iterations = config.iterations;
      options.input_batch_grouping = config.grouping;
      options.jit_updates = config.jit_updates;
      options.recompute = config.recompute;
      plan = BuildHarmonyDpPlan(model, machine, registry, options);
      break;
    }
    case Scheme::kHarmonyPp: {
      HarmonyPpOptions options;
      options.microbatches = config.microbatches;
      options.microbatch_size = config.microbatch_size;
      options.iterations = config.iterations;
      options.pack_size = config.pack_size;
      options.input_batch_grouping = config.grouping;
      options.group_size = config.group_size;
      options.jit_updates = config.jit_updates;
      options.balanced_packing = config.balanced_packing;
      options.recompute = config.recompute;
      plan = BuildHarmonyPpPlan(model, machine, registry, options);
      break;
    }
    case Scheme::kHarmonyTp: {
      HarmonyTpOptions options;
      options.microbatches = config.microbatches;
      options.microbatch_size = config.microbatch_size;
      options.iterations = config.iterations;
      options.input_batch_grouping = config.grouping;
      options.jit_updates = config.jit_updates;
      options.recompute = config.recompute;
      plan = BuildHarmonyTpPlan(model, machine, registry, options);
      break;
    }
    case Scheme::kServing: {
      ServingPlanOptions options;
      options.requests = config.iterations;
      options.batches = config.microbatches;
      options.batch_size = config.microbatch_size;
      plan = BuildServingPlan(model, machine, registry, options);
      break;
    }
  }
  AnnotateClusterStructure(&plan, machine.topology);
  return plan;
}

std::vector<Bytes> ProbePeakWorkingSet(const Model& model, const SessionConfig& config) {
  Machine machine = MakeSessionMachine(config);
  TensorRegistry registry;
  const Plan plan = BuildPlanForConfig(model, machine, &registry, config);
  return plan.PeakTaskWorkingSet(registry);
}

Status ValidateSessionConfig(const Model& model, const SessionConfig& config) {
  if (model.num_layers() < 1) {
    return InvalidArgumentError("model has no layers — need at least one");
  }
  if (config.server.num_gpus < 1) {
    return InvalidArgumentError("num_gpus must be >= 1, got " +
                                std::to_string(config.server.num_gpus));
  }
  if (config.server.gpus_per_switch < 1) {
    return InvalidArgumentError("gpus_per_switch must be >= 1, got " +
                                std::to_string(config.server.gpus_per_switch));
  }
  if (config.num_nodes < 1) {
    return InvalidArgumentError("nodes must be >= 1, got " +
                                std::to_string(config.num_nodes));
  }
  if (config.nodes_per_rack < 0) {
    return InvalidArgumentError("nodes_per_rack must be >= 0 (0 = one rack), got " +
                                std::to_string(config.nodes_per_rack));
  }
  if (config.num_nodes > 1 && (!(config.nic_link.bandwidth_bytes_per_sec > 0.0) ||
                               !(config.rack_link.bandwidth_bytes_per_sec > 0.0))) {
    return InvalidArgumentError("nic/rack link bandwidth must be positive");
  }
  // Bound the machine size before any sizing math or topology construction: both factors
  // are individually valid up to 1 << 20, so the product must be computed widened.
  const std::int64_t machine_gpus = std::int64_t{config.num_nodes} * config.server.num_gpus;
  if (machine_gpus > kMaxClusterGpus) {
    return InvalidArgumentError(
        "cluster of " + std::to_string(config.num_nodes) + " nodes x " +
        std::to_string(config.server.num_gpus) + " GPUs = " + std::to_string(machine_gpus) +
        " total GPUs exceeds the supported maximum of " + std::to_string(kMaxClusterGpus));
  }
  if (config.scheme == Scheme::kServing && model.num_layers() < config.total_gpus()) {
    return InvalidArgumentError(
        "serving needs at least one layer per pipeline stage: model has " +
        std::to_string(model.num_layers()) + " layers but the machine has " +
        std::to_string(config.total_gpus()) + " GPUs");
  }
  if (!(config.uplink_bw_fraction > 0.0) || config.uplink_bw_fraction > 1.0 ||
      !std::isfinite(config.uplink_bw_fraction)) {
    return InvalidArgumentError(
        "uplink_bw_fraction must be in (0, 1] — the share of host-uplink and network "
        "bandwidth this session may draw");
  }
  const bool data_parallel =
      config.scheme == Scheme::kBaselineDp || config.scheme == Scheme::kHarmonyDp;
  DecomposerOptions decomposer;
  decomposer.num_replicas = data_parallel ? config.total_gpus() : 1;
  decomposer.microbatches = config.microbatches;
  decomposer.microbatch_size = config.microbatch_size;
  decomposer.iterations = config.iterations;
  HARMONY_RETURN_IF_ERROR(ValidateDecomposerOptions(config.total_gpus(), decomposer));
  if (config.pack_size < 1) {
    return InvalidArgumentError("pack_size must be >= 1, got " +
                                std::to_string(config.pack_size));
  }
  if (config.group_size < 0) {
    return InvalidArgumentError("group_size must be >= 0 (0 = whole minibatch), got " +
                                std::to_string(config.group_size));
  }
  if (config.checkpoint_every < 0) {
    return InvalidArgumentError("checkpoint_every must be >= 0 (0 = never), got " +
                                std::to_string(config.checkpoint_every));
  }
  if (config.watchdog_timeout < 0.0) {
    return InvalidArgumentError("watchdog_timeout must be >= 0 (0 = off)");
  }
  if (config.sim_threads < 0) {
    return InvalidArgumentError("sim_threads must be >= 0 (0 = HARMONY_SIM_THREADS or 1), got " +
                                std::to_string(config.sim_threads));
  }
  if (config.retry_max < 0) {
    return InvalidArgumentError("retry_max must be >= 0 (0 = retries off), got " +
                                std::to_string(config.retry_max));
  }
  if (!(config.retry_base > 0.0) || !std::isfinite(config.retry_base)) {
    return InvalidArgumentError("retry_base must be a positive finite delay in seconds");
  }
  if (config.ckpt_keep < 1) {
    return InvalidArgumentError("ckpt_keep must be >= 1, got " +
                                std::to_string(config.ckpt_keep));
  }
  if (config.straggler_threshold != 0.0 &&
      (!(config.straggler_threshold > 1.0) || !std::isfinite(config.straggler_threshold))) {
    return InvalidArgumentError(
        "straggler_threshold must be 0 (off) or > 1 (a healthy device sits at exactly 1.0)");
  }
  // Each node has one NIC; rack count follows the nodes_per_rack grouping (0 = one rack).
  const int num_nics = config.num_nodes > 1 ? config.num_nodes : 0;
  const int nodes_per_rack =
      config.nodes_per_rack == 0 ? config.num_nodes : config.nodes_per_rack;
  const int num_racks =
      config.num_nodes > 1 ? (config.num_nodes + nodes_per_rack - 1) / nodes_per_rack : 0;
  for (const FaultEvent& event : config.faults.events()) {
    const bool targets_gpu =
        event.kind == FaultKind::kGpuFailStop || event.kind == FaultKind::kGpuLinkDegrade ||
        event.kind == FaultKind::kGpuSlow ||
        ((event.kind == FaultKind::kFlowFlap || event.kind == FaultKind::kLinkBrownout) &&
         event.gpu >= 0 && event.nic < 0 && event.rack < 0);
    if (targets_gpu && event.gpu >= config.total_gpus()) {
      return InvalidArgumentError("fault event '" + event.ToString() + "' targets gpu" +
                                  std::to_string(event.gpu) + " but the machine has only " +
                                  std::to_string(config.total_gpus()) + " GPUs");
    }
    if (event.nic >= num_nics) {
      return InvalidArgumentError("fault event '" + event.ToString() + "' targets nic" +
                                  std::to_string(event.nic) + " but the machine has " +
                                  std::to_string(num_nics) + " NICs (one per node; nodes=" +
                                  std::to_string(config.num_nodes) + ")");
    }
    if (event.rack >= num_racks) {
      return InvalidArgumentError("fault event '" + event.ToString() + "' targets rack" +
                                  std::to_string(event.rack) + " but the machine has " +
                                  std::to_string(num_racks) + " racks");
    }
  }
  // Shape is sane; now probe the decomposition for per-task memory fit.
  const std::vector<Bytes> peaks = ProbePeakWorkingSet(model, config);
  for (std::size_t d = 0; d < peaks.size(); ++d) {
    const Bytes capacity = config.server.gpu.memory_bytes;
    if (peaks[d] > capacity) {
      return InvalidArgumentError(
          "infeasible configuration: a single task's working set (" + FormatBytes(peaks[d]) +
          ") exceeds gpu" + std::to_string(d) + " memory (" + FormatBytes(capacity) +
          ") — shrink microbatch_size or pack_size");
    }
  }
  return Status::Ok();
}

SessionResult RunTraining(const Model& model, const SessionConfig& config) {
  Machine machine = MakeSessionMachine(config);
  Simulator sim;
  TransferManager transfers(&sim, &machine.topology);
  // Tenant bandwidth reservation (DESIGN.md §13): applied before any flow exists, so a
  // full share (the default 1.0) keeps the historical event sequence bit-for-bit.
  transfers.ApplyUplinkBandwidthQuota(config.uplink_bw_fraction);
  TensorRegistry registry;
  Plan plan = BuildPlanForConfig(model, machine, &registry, config);
  // Pre-size the event arena from the plan's actual shape: each task contributes a handful
  // of control events plus one transfer (join + completion wakeup) per working-set entry it
  // fetches or writes back. This over-counts the *peak outstanding* events — most complete
  // long before the run ends — so cap the hint; the arena still grows on demand if a
  // schedule ever exceeds it.
  std::size_t transfer_entries = 0;
  for (const Task& task : plan.tasks) {
    transfer_entries += task.working_set.fetch.size() + task.working_set.accumulate.size() +
                        task.working_set.allocate.size() + task.free_after.size();
  }
  sim.Reserve(std::min<std::size_t>(plan.tasks.size() * 8 + transfer_entries * 2 + 1024,
                                    std::size_t{1} << 18));

  // Sharded-core knobs (DESIGN.md §10): thread count from the config (or the
  // HARMONY_SIM_THREADS env), lookahead from the slowest-possible cross-component
  // interaction — the minimum link latency of the finalized topology. Both are
  // output-neutral: events always execute in global (when, seq) order.
  const int sim_threads = ResolveSimThreads(config.sim_threads);
  sim.SetParallelism(sim_threads);
  if (sim_threads > 1) {
    sim.SetLookahead(machine.topology.MinLinkLatency());
  }

  MemoryPolicy policy =
      config.policy.has_value() ? *config.policy : DefaultPolicyFor(config.scheme, config.p2p);
  if (config.lookahead_eviction) {
    policy.eviction = EvictionPolicy::kLookahead;
  }

  std::vector<Bytes> capacities;
  capacities.reserve(machine.gpus.size());
  for (const GpuSpec& gpu : machine.gpus) {
    capacities.push_back(gpu.memory_bytes);
  }
  // Static lint (cheap tier) before anything executes: catches structural corruption,
  // pin-balance leaks, collective rank mismatches, and rendezvous deadlocks that would
  // otherwise surface as hangs or quiescence failures mid-run. Silent when clean.
  if (config.lint_plan) {
    LintOptions lint_options;
    lint_options.deep = false;
    lint_options.device_capacities = capacities;
    const LintReport lint = LintPlan(plan, registry, lint_options);
    HCHECK_EQ(lint.num_errors(), 0) << "plan failed static lint — refusing to run:\n"
                                    << lint.Render();
  }

  MemorySystem memory(&sim, &transfers, &registry, &machine.topology, capacities, policy);
  memory.set_audit_eviction(config.audit_eviction);
  CollectiveEngine collective(&sim, &transfers);

  // Fail fast with a clear message when a single task cannot fit.
  SessionResult result;
  result.peak_task_working_set = plan.PeakTaskWorkingSet(registry);
  for (int d = 0; d < plan.num_devices(); ++d) {
    HCHECK_LE(result.peak_task_working_set[static_cast<std::size_t>(d)],
              capacities[static_cast<std::size_t>(d)])
        << "scheme " << plan.scheme << ": a single task's working set exceeds gpu" << d
        << " memory — shrink microbatch_size or pack_size";
  }
  result.memory_demand_per_device = ComputeMemoryDemand(plan, registry);

  EngineOptions engine_options;
  engine_options.prefetch = config.prefetch;
  engine_options.record_timeline = config.record_timeline;
  engine_options.checkpoint_every = config.checkpoint_every;
  engine_options.checkpoint_final = config.checkpoint_final;
  engine_options.watchdog_timeout = config.watchdog_timeout;
  engine_options.fault_mode = !config.faults.empty();
  engine_options.straggler_threshold = config.straggler_threshold;
  engine_options.checkpoint_store = config.checkpoint_store;
  Engine engine(&sim, &machine, &memory, &transfers, &collective, &plan, engine_options);

  // Retry tier: the policy is constructed only when a budget is set, so default runs keep
  // the exact pre-retry abort semantics (and event sequence). The exhaustion handler is
  // wired unconditionally — a flap with no budget IS immediate exhaustion, and it must
  // surface as a typed engine failure, not as an aborted completion the memory system
  // would mistake for delivered bytes.
  std::optional<RetryPolicy> retry_policy;
  if (config.retry_max > 0) {
    RetryPolicyConfig retry_config;
    retry_config.max_attempts = config.retry_max;
    retry_config.base_delay_sec = config.retry_base;
    retry_config.max_delay_sec = config.retry_base * 64.0;
    retry_policy.emplace(retry_config);
    transfers.SetRetryPolicy(&*retry_policy);
  }
  transfers.SetRetryExhaustedHandler([&engine](std::int64_t /*flow_id*/, SimTime when) {
    engine.NotifyTransferRetryExhausted(when);
  });

  // The injector is only constructed when faults are armed, so the failure-free path runs
  // the exact historical event sequence.
  std::optional<FaultInjector> injector;
  if (!config.faults.empty()) {
    injector.emplace(&sim, &transfers);
    injector->SetDeviceFailHandler(
        [&engine](int gpu, SimTime when) { engine.NotifyDeviceFailed(gpu, when); });
    injector->SetComputeScaleHandler([&engine](int gpu, double scale, SimTime when) {
      engine.SetComputeScale(gpu, scale, when);
    });
    if (config.checkpoint_store != nullptr) {
      CheckpointStore* store = config.checkpoint_store;
      injector->SetCheckpointCorruptHandler([store](SimTime /*when*/) {
        store->CorruptNewest();
      });
    }
    injector->Arm(config.faults);
  }

  result.report = engine.Run();
  result.timeline = engine.timeline();
  result.churn_audit_log = memory.churn_audit_log();
  if (injector.has_value()) {
    result.fault_trace = injector->TraceString();
  }
  result.plan = std::move(plan);
  return result;
}

}  // namespace harmony
