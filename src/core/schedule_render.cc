#include "src/core/schedule_render.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"
#include "src/util/units.h"

namespace harmony {
namespace {

char KindChar(TaskKind kind) {
  switch (kind) {
    case TaskKind::kForward:
      return 'F';
    case TaskKind::kLoss:
      return 'l';
    case TaskKind::kBackward:
      return 'B';
    case TaskKind::kUpdate:
      return 'U';
    case TaskKind::kAllReduce:
      return 'A';
  }
  return '?';
}

std::string SegmentLabel(const Task& task) {
  std::ostringstream os;
  if (task.microbatch >= 0) {
    os << task.microbatch + 1;
  }
  os << KindChar(task.kind) << "L" << task.layer_begin;
  if (task.layer_end > task.layer_begin + 1) {
    os << "-" << task.layer_end - 1;
  }
  return os.str();
}

}  // namespace

std::string RenderTimeline(const Plan& plan, const std::vector<TaskTrace>& timeline,
                           int width) {
  HCHECK_GT(width, 10);
  double makespan = 0.0;
  for (const TaskTrace& trace : timeline) {
    makespan = std::max(makespan, trace.end);
  }
  if (makespan <= 0.0) {
    return "(empty timeline)\n";
  }
  std::vector<std::string> rows(static_cast<std::size_t>(plan.num_devices()),
                                std::string(static_cast<std::size_t>(width), '.'));
  for (const TaskTrace& trace : timeline) {
    const Task& task = plan.tasks[static_cast<std::size_t>(trace.task)];
    int begin = static_cast<int>(trace.start / makespan * width);
    int end = static_cast<int>(trace.end / makespan * width);
    begin = std::clamp(begin, 0, width - 1);
    end = std::clamp(end, begin + 1, width);
    std::string& row = rows[static_cast<std::size_t>(task.device)];
    const std::string label = SegmentLabel(task);
    for (int i = begin; i < end; ++i) {
      const std::size_t li = static_cast<std::size_t>(i - begin);
      row[static_cast<std::size_t>(i)] = li < label.size() ? label[li] : '-';
    }
    if (end - begin >= 2) {
      row[static_cast<std::size_t>(end - 1)] = '|';
    }
  }
  std::ostringstream os;
  os << "timeline (" << FormatSeconds(makespan) << " total; labels <mb><kind>L<layer>)\n";
  for (int d = 0; d < plan.num_devices(); ++d) {
    os << "gpu" << d << " " << rows[static_cast<std::size_t>(d)] << "\n";
  }
  return os.str();
}

std::string ListTimeline(const Plan& plan, const std::vector<TaskTrace>& timeline) {
  std::vector<TaskTrace> sorted = timeline;
  std::sort(sorted.begin(), sorted.end(), [](const TaskTrace& a, const TaskTrace& b) {
    if (a.start != b.start) {
      return a.start < b.start;
    }
    return a.task < b.task;
  });
  std::ostringstream os;
  for (const TaskTrace& trace : sorted) {
    const Task& task = plan.tasks[static_cast<std::size_t>(trace.task)];
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%10.6fs .. %10.6fs  ", trace.start, trace.end);
    os << buffer << task.DebugName() << "\n";
  }
  return os.str();
}

}  // namespace harmony
