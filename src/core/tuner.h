// Performance Tuner (Fig. 3): profile-guided search over the "memory-performance tango"
// knobs of Sec. 4 — pack size and microbatch size under a fixed minibatch sample budget.
//
// Each candidate is checked for feasibility (largest single-task working set must fit the
// device) and then profiled by actually running the simulator; the tuner returns the whole
// swept frontier so benches can print the trade-off surface, plus the best point.
//
// Profiling is the cost center of the whole system (search cost grows multiplicatively with
// every knob), so the sweep runs on two optimizations:
//   1. Parallelism — each sweep point is a self-contained single-threaded Simulator, so
//      independent points profile concurrently on a ThreadPool. Results are assembled by
//      sweep index, making the TunerResult bit-identical to the serial order for any
//      `num_threads`.
//   2. Memoization — probe and profile results are cached process-wide, keyed by every
//      model/config field that affects the simulation, so the tuner and the experiment
//      benches never re-simulate a configuration they have already measured.
#ifndef HARMONY_SRC_CORE_TUNER_H_
#define HARMONY_SRC_CORE_TUNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/session.h"

namespace harmony {

struct TunerPoint {
  int pack_size = 1;
  int group_size = 0;  // 0 = whole minibatch
  int microbatch_size = 1;
  int microbatches = 1;  // derived: minibatch_samples / microbatch_size
  bool feasible = false;
  double throughput = 0.0;       // samples/sec (steady state); 0 when infeasible
  double iteration_time = 0.0;
  Bytes swap_volume = 0;         // steady-state swap bytes per iteration
  Bytes peak_working_set = 0;    // max across devices
  // One-line bottleneck attribution for feasible points (AttributionReport::Summary()):
  // the winning configuration carries *why* it wins. Not part of RenderTunerTable, whose
  // output the golden benches pin byte-for-byte.
  std::string why;
};

struct TunerOptions {
  std::vector<int> pack_sizes = {1, 2, 4};
  std::vector<int> group_sizes = {0};  // input-batch group sweep (0 = whole minibatch)
  std::vector<int> microbatch_sizes = {1, 2, 4};
  int minibatch_samples = 16;  // fixed SGD semantics across the sweep
  int iterations = 2;
  // Worker threads profiling sweep points (<= 0 = one per hardware thread). The result is
  // bit-identical across thread counts; see the header comment.
  int num_threads = 0;
  // Reuse process-wide cached probe/profile results for previously seen configurations.
  // Tests that measure genuine re-execution turn this off.
  bool memoize = true;
};

struct TunerResult {
  std::vector<TunerPoint> points;
  TunerPoint best;  // feasible point with max throughput (fatal if none feasible)
};

// Sweeps Harmony-PP configurations derived from `base` (scheme/pack/microbatch fields are
// overwritten per point).
TunerResult TunePp(const Model& model, const SessionConfig& base, const TunerOptions& options);

std::string RenderTunerTable(const TunerResult& result);

// ---- memoized profiling primitives (shared by the tuner and the benches) -----------------

// ProbePeakWorkingSet / RunTraining with a process-wide cache keyed by the full
// (model, config) simulation fingerprint. Thread-safe. `memoize = false` bypasses the
// cache (both lookup and insert).
std::vector<Bytes> CachedProbePeakWorkingSet(const Model& model, const SessionConfig& config,
                                             bool memoize = true);
RunReport ProfileTraining(const Model& model, const SessionConfig& config,
                          bool memoize = true);

struct TunerCacheStats {
  std::int64_t probe_hits = 0;
  std::int64_t probe_misses = 0;
  std::int64_t profile_hits = 0;
  std::int64_t profile_misses = 0;
};
TunerCacheStats GetTunerCacheStats();
void ClearTunerCache();  // drops cached results and zeroes the stats (tests)

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_TUNER_H_
