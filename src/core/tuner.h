// Performance Tuner (Fig. 3): profile-guided search over the "memory-performance tango"
// knobs of Sec. 4 — pack size and microbatch size under a fixed minibatch sample budget.
//
// Each candidate is checked for feasibility (largest single-task working set must fit the
// device) and then profiled by actually running the simulator; the tuner returns the whole
// swept frontier so benches can print the trade-off surface, plus the best point.
#ifndef HARMONY_SRC_CORE_TUNER_H_
#define HARMONY_SRC_CORE_TUNER_H_

#include <string>
#include <vector>

#include "src/core/session.h"

namespace harmony {

struct TunerPoint {
  int pack_size = 1;
  int group_size = 0;  // 0 = whole minibatch
  int microbatch_size = 1;
  int microbatches = 1;  // derived: minibatch_samples / microbatch_size
  bool feasible = false;
  double throughput = 0.0;       // samples/sec (steady state); 0 when infeasible
  double iteration_time = 0.0;
  Bytes swap_volume = 0;         // steady-state swap bytes per iteration
  Bytes peak_working_set = 0;    // max across devices
};

struct TunerOptions {
  std::vector<int> pack_sizes = {1, 2, 4};
  std::vector<int> group_sizes = {0};  // input-batch group sweep (0 = whole minibatch)
  std::vector<int> microbatch_sizes = {1, 2, 4};
  int minibatch_samples = 16;  // fixed SGD semantics across the sweep
  int iterations = 2;
};

struct TunerResult {
  std::vector<TunerPoint> points;
  TunerPoint best;  // feasible point with max throughput (fatal if none feasible)
};

// Sweeps Harmony-PP configurations derived from `base` (scheme/pack/microbatch fields are
// overwritten per point).
TunerResult TunePp(const Model& model, const SessionConfig& base, const TunerOptions& options);

std::string RenderTunerTable(const TunerResult& result);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_TUNER_H_
