#include "src/core/harmony_dp.h"

#include <vector>

#include "src/graph/plan_builder.h"
#include "src/util/check.h"

namespace harmony {

Plan BuildHarmonyDpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const HarmonyDpOptions& options) {
  const int N = machine.num_gpus();
  const int R = model.num_layers();
  const int m = options.microbatches_per_gpu;

  DecomposerOptions decomp;
  decomp.num_replicas = N;
  decomp.microbatches = m;
  decomp.microbatch_size = options.microbatch_size;
  decomp.iterations = options.iterations;
  decomp.recompute = options.recompute;
  PlanBuilder builder(&model, registry, N, decomp);

  int next_group = 0;
  for (int it = 0; it < options.iterations; ++it) {
    builder.BeginIteration(it);
    // fwd[g][l][mb], bwd likewise.
    auto make_grid = [&] {
      return std::vector<std::vector<std::vector<TaskId>>>(
          static_cast<std::size_t>(N),
          std::vector<std::vector<TaskId>>(
              static_cast<std::size_t>(R),
              std::vector<TaskId>(static_cast<std::size_t>(m), kInvalidTask)));
    };
    auto fwd = make_grid();
    auto bwd = make_grid();
    std::vector<std::vector<TaskId>> loss(
        static_cast<std::size_t>(N), std::vector<TaskId>(static_cast<std::size_t>(m)));

    // ---- forward ----
    for (int g = 0; g < N; ++g) {
      auto emit_fwd = [&](int l, int mb) {
        std::vector<TaskId> deps;
        if (l > 0) {
          deps.push_back(fwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l - 1)]
                            [static_cast<std::size_t>(mb)]);
        }
        fwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)]
           [static_cast<std::size_t>(mb)] =
               builder.AddForward(g, l, l + 1, mb, g, std::move(deps));
      };
      if (options.input_batch_grouping) {
        for (int l = 0; l < R; ++l) {
          for (int mb = 0; mb < m; ++mb) {
            emit_fwd(l, mb);
          }
        }
      } else {
        for (int mb = 0; mb < m; ++mb) {
          for (int l = 0; l < R; ++l) {
            emit_fwd(l, mb);
          }
        }
      }
      for (int mb = 0; mb < m; ++mb) {
        loss[static_cast<std::size_t>(g)][static_cast<std::size_t>(mb)] = builder.AddLoss(
            g, mb, g,
            {fwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(R - 1)]
                [static_cast<std::size_t>(mb)]});
      }
    }

    // ---- backward (+ jit all-reduce / update) ----
    // Collective groups must be shared across replicas, so backward is emitted in lockstep
    // layer-major over all replicas when grouping is on; the per-device queue order is
    // unchanged by interleaving emission across devices.
    auto bwd_deps = [&](int g, int l, int mb) {
      std::vector<TaskId> deps;
      if (l == R - 1) {
        deps.push_back(loss[static_cast<std::size_t>(g)][static_cast<std::size_t>(mb)]);
      } else {
        deps.push_back(bwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l + 1)]
                          [static_cast<std::size_t>(mb)]);
      }
      return deps;
    };

    std::vector<std::vector<TaskId>> reduce_done(
        static_cast<std::size_t>(N), std::vector<TaskId>(static_cast<std::size_t>(R)));
    auto emit_reduce_and_update = [&](int l, bool jit) {
      const int group = N > 1 ? next_group++ : -1;
      for (int g = 0; g < N; ++g) {
        TaskId dep = bwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)]
                        [static_cast<std::size_t>(m - 1)];
        if (N > 1) {
          dep = builder.AddAllReduce(g, l, l + 1, g, group, {dep});
        }
        reduce_done[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)] = dep;
        if (jit) {
          builder.AddUpdate(g, l, l + 1, g, {dep});
        }
      }
    };

    if (options.input_batch_grouping) {
      for (int l = R - 1; l >= 0; --l) {
        for (int g = 0; g < N; ++g) {
          for (int mb = 0; mb < m; ++mb) {
            bwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)]
               [static_cast<std::size_t>(mb)] =
                   builder.AddBackward(g, l, l + 1, mb, g, bwd_deps(g, l, mb));
          }
        }
        emit_reduce_and_update(l, options.jit_updates);
      }
    } else {
      for (int g = 0; g < N; ++g) {
        for (int mb = 0; mb < m; ++mb) {
          for (int l = R - 1; l >= 0; --l) {
            bwd[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)]
               [static_cast<std::size_t>(mb)] =
                   builder.AddBackward(g, l, l + 1, mb, g, bwd_deps(g, l, mb));
          }
        }
      }
      for (int l = R - 1; l >= 0; --l) {
        emit_reduce_and_update(l, options.jit_updates);
      }
    }

    if (!options.jit_updates) {
      // Rigid optimizer step at the end, like the baseline.
      for (int g = 0; g < N; ++g) {
        for (int l = 0; l < R; ++l) {
          builder.AddUpdate(
              g, l, l + 1, g,
              {reduce_done[static_cast<std::size_t>(g)][static_cast<std::size_t>(l)]});
        }
      }
    }
  }
  return builder.Finish("harmony-dp");
}

}  // namespace harmony
