// Harmony-TP: intra-op (tensor-parallel) splitting — the paper's second key idea,
// "decompose individual operations — such as a matrix multiplication — into subtasks that
// can run on different physical devices".
//
// Every layer's weights, gradients and optimizer state are sharded 1/N per GPU
// (row-parallel, Megatron-style); each GPU runs its shard of every forward/backward task on
// a full-size activation copy, and the partial outputs (forward) / partial input gradients
// (backward) are summed by a ring all-reduce per (layer, microbatch). Updates are purely
// local to each shard.
//
// This is the only scheme whose *single-task working set* shrinks with GPU count, so it can
// train models whose individual layers do not fit on one GPU — at the price of two
// activation-sized collectives per layer per microbatch. Input-batch grouping and jit
// updates apply exactly as in the other Harmony schedulers.
#ifndef HARMONY_SRC_CORE_HARMONY_TP_H_
#define HARMONY_SRC_CORE_HARMONY_TP_H_

#include "src/graph/model.h"
#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/mem/tensor.h"

namespace harmony {

struct HarmonyTpOptions {
  int microbatches = 1;  // whole-minibatch microbatch count (all shards see every sample)
  int microbatch_size = 1;
  int iterations = 2;
  bool input_batch_grouping = true;
  bool jit_updates = true;
  bool recompute = false;
};

Plan BuildHarmonyTpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const HarmonyTpOptions& options);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_HARMONY_TP_H_
