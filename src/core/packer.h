// Task packing: grouping layers into packs and balancing packs across devices (Sec. 3,
// optimization 4 — "pack tasks to balance compute, memory, and swap load").
#ifndef HARMONY_SRC_CORE_PACKER_H_
#define HARMONY_SRC_CORE_PACKER_H_

#include <vector>

namespace harmony {

// Splits layers [0, num_layers) into consecutive packs of `pack_size` (last pack may be
// short). Returns pack boundaries of size num_packs + 1.
std::vector<int> MakePackBoundaries(int num_layers, int pack_size);

// Assigns packs to devices round-robin (pack p -> p % num_devices); Harmony's default
// "looping" placement (Fig. 4), which interleaves packs so adjacent packs sit on different
// GPUs and their boundary tensors travel over p2p links.
std::vector<int> AssignPacksRoundRobin(int num_packs, int num_devices);

// Longest-processing-time greedy: heaviest pack to the least-loaded device. Balances
// heterogeneous packs (e.g. a huge embedding layer) at the cost of adjacency regularity.
std::vector<int> AssignPacksLpt(const std::vector<double>& pack_costs, int num_devices);

// Boustrophedon placement: 0,1,..,N-1,N-1,..,1,0,0,1,... Keeps adjacent packs on different
// devices (like round-robin) but decorrelates periodic cost patterns from the device index,
// e.g. alternating heavy/light layers stop piling onto one GPU.
std::vector<int> AssignPacksZigzag(int num_packs, int num_devices);

// Multi-dimensional balancing entry point: evaluates the adjacency-friendly placements
// (round-robin, zigzag) and LPT, returning the one with the lowest maximum device load;
// ties prefer the adjacency-friendly candidates, which pipeline better.
std::vector<int> AssignPacksBalanced(const std::vector<double>& pack_costs, int num_devices);

// Max device load under an assignment (for tests/benches).
double MaxDeviceLoad(const std::vector<double>& pack_costs, const std::vector<int>& assignment,
                     int num_devices);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_PACKER_H_
