#include "src/core/tuner.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "src/util/check.h"
#include "src/util/table.h"
#include "src/util/thread_pool.h"

namespace harmony {
namespace {

// Serializes every model and config field that can influence a simulation into a cache key.
// Plain text rather than a hash: collisions are impossible and keys are debuggable. Key
// construction costs microseconds against the milliseconds-to-seconds simulation it saves.
void AppendLinkSpec(std::ostringstream& os, const LinkSpec& link) {
  os << link.name << ',' << link.bandwidth_bytes_per_sec << ',' << link.latency_sec << ';';
}

std::string SimulationKey(const Model& model, const SessionConfig& config) {
  std::ostringstream os;
  os.precision(17);
  os << model.name() << '|' << model.input_bytes_per_sample() << '|';
  for (int l = 0; l < model.num_layers(); ++l) {
    const LayerCost& c = model.layer(l).cost;
    os << c.param_bytes << ',' << c.grad_bytes << ',' << c.opt_state_bytes << ','
       << c.act_out_bytes_per_sample << ',' << c.stash_bytes_per_sample << ','
       << c.workspace_bytes_per_sample << ',' << c.fwd_flops_per_sample << ','
       << c.bwd_flops_per_sample << ',' << c.upd_flops << ';';
  }
  const ServerConfig& server = config.server;
  os << '|' << server.num_gpus << ',' << server.gpus_per_switch << ',' << server.p2p_enabled
     << ',' << server.gpu.name << ',' << server.gpu.memory_bytes << ','
     << server.gpu.peak_flops << ',' << server.gpu.efficiency << ';';
  AppendLinkSpec(os, server.gpu_link);
  AppendLinkSpec(os, server.host_link);
  os << '|' << static_cast<int>(config.scheme) << ',' << config.microbatches << ','
     << config.microbatch_size << ',' << config.iterations << ',' << config.pack_size << ','
     << config.grouping << ',' << config.group_size << ',' << config.jit_updates << ','
     << config.p2p << ',' << config.balanced_packing << ',' << config.recompute << ','
     << config.lookahead_eviction << ',' << config.prefetch;
  if (config.policy.has_value()) {
    os << "|policy:" << config.policy->write_back_clean << ',' << config.policy->allow_p2p
       << ',' << static_cast<int>(config.policy->eviction);
  }
  return os.str();
}

struct TunerCache {
  std::mutex mu;
  std::map<std::string, std::vector<Bytes>> probes;
  std::map<std::string, RunReport> profiles;
  TunerCacheStats stats;
};

TunerCache& Cache() {
  static TunerCache* cache = new TunerCache();
  return *cache;
}

}  // namespace

std::vector<Bytes> CachedProbePeakWorkingSet(const Model& model, const SessionConfig& config,
                                             bool memoize) {
  if (!memoize) {
    return ProbePeakWorkingSet(model, config);
  }
  TunerCache& cache = Cache();
  const std::string key = SimulationKey(model, config);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.probes.find(key);
    if (it != cache.probes.end()) {
      ++cache.stats.probe_hits;
      return it->second;
    }
    ++cache.stats.probe_misses;
  }
  // Computed outside the lock so concurrent sweep points never serialize on the cache; a
  // racing duplicate computes the same deterministic value and the insert is idempotent.
  std::vector<Bytes> peaks = ProbePeakWorkingSet(model, config);
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.probes.emplace(key, peaks);
  return peaks;
}

RunReport ProfileTraining(const Model& model, const SessionConfig& config, bool memoize) {
  if (!memoize) {
    return RunTraining(model, config).report;
  }
  TunerCache& cache = Cache();
  const std::string key = SimulationKey(model, config);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.profiles.find(key);
    if (it != cache.profiles.end()) {
      ++cache.stats.profile_hits;
      return it->second;
    }
    ++cache.stats.profile_misses;
  }
  RunReport report = RunTraining(model, config).report;
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.profiles.emplace(key, report);
  return report;
}

TunerCacheStats GetTunerCacheStats() {
  TunerCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  return cache.stats;
}

void ClearTunerCache() {
  TunerCache& cache = Cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.probes.clear();
  cache.profiles.clear();
  cache.stats = TunerCacheStats{};
}

TunerResult TunePp(const Model& model, const SessionConfig& base, const TunerOptions& options) {
  const Bytes capacity = base.server.gpu.memory_bytes;

  // Phase 1: enumerate the whole candidate frontier up front (cheap), so profiling becomes
  // an index-addressed batch that can run in any order.
  struct Candidate {
    TunerPoint point;
    SessionConfig config;
  };
  std::vector<Candidate> candidates;
  for (int pack : options.pack_sizes) {
    for (int group : options.group_sizes) {
      for (int mbs : options.microbatch_sizes) {
        if (options.minibatch_samples % mbs != 0) {
          continue;  // keep the minibatch (SGD semantics) identical across the sweep
        }
        Candidate candidate;
        candidate.point.pack_size = pack;
        candidate.point.group_size = group;
        candidate.point.microbatch_size = mbs;
        candidate.point.microbatches = options.minibatch_samples / mbs;

        candidate.config = base;
        candidate.config.scheme = Scheme::kHarmonyPp;
        candidate.config.pack_size = pack;
        candidate.config.group_size = group;
        candidate.config.microbatch_size = mbs;
        candidate.config.microbatches = candidate.point.microbatches;
        candidate.config.iterations = options.iterations;
        candidates.push_back(std::move(candidate));
      }
    }
  }

  // Phase 2: probe + profile every point across the pool. Each point is written back to its
  // own slot, so the assembled vector matches the serial sweep order bit-for-bit.
  ThreadPool pool(ResolveThreadCount(options.num_threads));
  ParallelFor(pool, candidates.size(), [&](std::size_t i) {
    Candidate& candidate = candidates[i];
    TunerPoint& point = candidate.point;
    const std::vector<Bytes> peaks =
        CachedProbePeakWorkingSet(model, candidate.config, options.memoize);
    point.peak_working_set = *std::max_element(peaks.begin(), peaks.end());
    point.feasible = point.peak_working_set <= capacity;
    if (point.feasible) {
      const RunReport report = ProfileTraining(model, candidate.config, options.memoize);
      point.iteration_time = report.steady_iteration_time();
      point.throughput = report.steady_throughput();
      point.swap_volume = report.steady_swap_total();
      point.why = Attribute(report).Summary();
    }
  });

  TunerResult result;
  result.points.reserve(candidates.size());
  for (Candidate& candidate : candidates) {
    result.points.push_back(candidate.point);
  }

  const TunerPoint* best = nullptr;
  for (const TunerPoint& point : result.points) {
    if (point.feasible && (best == nullptr || point.throughput > best->throughput)) {
      best = &point;
    }
  }
  HCHECK(best != nullptr) << "tuner found no feasible (pack, microbatch) configuration";
  result.best = *best;
  return result;
}

std::string RenderTunerTable(const TunerResult& result) {
  TablePrinter table({"pack", "group", "ubatch", "m", "peak WS", "swap/iter", "iter time",
                      "samples/s", "note"});
  for (const TunerPoint& point : result.points) {
    auto row = table.Row();
    row.Cell(std::to_string(point.pack_size))
        .Cell(point.group_size == 0 ? std::string("all") : std::to_string(point.group_size))
        .Cell(point.microbatch_size)
        .Cell(point.microbatches)
        .Cell(FormatBytes(point.peak_working_set));
    if (point.feasible) {
      row.Cell(FormatBytesDecimal(static_cast<double>(point.swap_volume)))
          .Cell(point.iteration_time, 4)
          .Cell(point.throughput, 2)
          .Cell(point.pack_size == result.best.pack_size &&
                        point.group_size == result.best.group_size &&
                        point.microbatch_size == result.best.microbatch_size
                    ? "<< best"
                    : "");
    } else {
      row.Cell("-").Cell("-").Cell("-").Cell("infeasible");
    }
  }
  return table.ToString();
}

}  // namespace harmony
