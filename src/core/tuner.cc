#include "src/core/tuner.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/table.h"

namespace harmony {

TunerResult TunePp(const Model& model, const SessionConfig& base, const TunerOptions& options) {
  TunerResult result;
  const Bytes capacity = base.server.gpu.memory_bytes;

  for (int pack : options.pack_sizes) {
    for (int group : options.group_sizes) {
    for (int mbs : options.microbatch_sizes) {
      if (options.minibatch_samples % mbs != 0) {
        continue;  // keep the minibatch (SGD semantics) identical across the sweep
      }
      TunerPoint point;
      point.pack_size = pack;
      point.group_size = group;
      point.microbatch_size = mbs;
      point.microbatches = options.minibatch_samples / mbs;

      SessionConfig config = base;
      config.scheme = Scheme::kHarmonyPp;
      config.pack_size = pack;
      config.group_size = group;
      config.microbatch_size = mbs;
      config.microbatches = point.microbatches;
      config.iterations = options.iterations;

      const std::vector<Bytes> peaks = ProbePeakWorkingSet(model, config);
      point.peak_working_set = *std::max_element(peaks.begin(), peaks.end());
      point.feasible = point.peak_working_set <= capacity;
      if (point.feasible) {
        const SessionResult run = RunTraining(model, config);
        point.iteration_time = run.report.steady_iteration_time();
        point.throughput = run.report.steady_throughput();
        point.swap_volume = run.report.steady_swap_total();
      }
      result.points.push_back(point);
    }
    }
  }

  const TunerPoint* best = nullptr;
  for (const TunerPoint& point : result.points) {
    if (point.feasible && (best == nullptr || point.throughput > best->throughput)) {
      best = &point;
    }
  }
  HCHECK(best != nullptr) << "tuner found no feasible (pack, microbatch) configuration";
  result.best = *best;
  return result;
}

std::string RenderTunerTable(const TunerResult& result) {
  TablePrinter table({"pack", "group", "ubatch", "m", "peak WS", "swap/iter", "iter time",
                      "samples/s", "note"});
  for (const TunerPoint& point : result.points) {
    auto row = table.Row();
    row.Cell(std::to_string(point.pack_size))
        .Cell(point.group_size == 0 ? std::string("all") : std::to_string(point.group_size))
        .Cell(point.microbatch_size)
        .Cell(point.microbatches)
        .Cell(FormatBytes(point.peak_working_set));
    if (point.feasible) {
      row.Cell(FormatBytesDecimal(static_cast<double>(point.swap_volume)))
          .Cell(point.iteration_time, 4)
          .Cell(point.throughput, 2)
          .Cell(point.pack_size == result.best.pack_size &&
                        point.group_size == result.best.group_size &&
                        point.microbatch_size == result.best.microbatch_size
                    ? "<< best"
                    : "");
    } else {
      row.Cell("-").Cell("-").Cell("-").Cell("infeasible");
    }
  }
  return table.ToString();
}

}  // namespace harmony
