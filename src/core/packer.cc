#include "src/core/packer.h"

#include <algorithm>
#include <numeric>

#include "src/util/check.h"

namespace harmony {

std::vector<int> MakePackBoundaries(int num_layers, int pack_size) {
  HCHECK_GT(num_layers, 0);
  HCHECK_GT(pack_size, 0);
  std::vector<int> bounds;
  for (int at = 0; at < num_layers; at += pack_size) {
    bounds.push_back(at);
  }
  bounds.push_back(num_layers);
  return bounds;
}

std::vector<int> AssignPacksRoundRobin(int num_packs, int num_devices) {
  // A negative count cast to std::size_t would request a near-2^64-element vector.
  HCHECK_GE(num_packs, 0);
  HCHECK_GT(num_devices, 0);
  std::vector<int> assignment(static_cast<std::size_t>(num_packs));
  for (int p = 0; p < num_packs; ++p) {
    assignment[static_cast<std::size_t>(p)] = p % num_devices;
  }
  return assignment;
}

std::vector<int> AssignPacksLpt(const std::vector<double>& pack_costs, int num_devices) {
  HCHECK_GT(num_devices, 0);
  const int num_packs = static_cast<int>(pack_costs.size());
  std::vector<int> order(static_cast<std::size_t>(num_packs));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return pack_costs[static_cast<std::size_t>(a)] > pack_costs[static_cast<std::size_t>(b)];
  });
  std::vector<double> load(static_cast<std::size_t>(num_devices), 0.0);
  std::vector<int> assignment(static_cast<std::size_t>(num_packs), 0);
  for (int p : order) {
    int best = 0;
    for (int d = 1; d < num_devices; ++d) {
      if (load[static_cast<std::size_t>(d)] < load[static_cast<std::size_t>(best)]) {
        best = d;
      }
    }
    assignment[static_cast<std::size_t>(p)] = best;
    load[static_cast<std::size_t>(best)] += pack_costs[static_cast<std::size_t>(p)];
  }
  return assignment;
}

std::vector<int> AssignPacksZigzag(int num_packs, int num_devices) {
  HCHECK_GE(num_packs, 0);
  HCHECK_GT(num_devices, 0);
  std::vector<int> assignment(static_cast<std::size_t>(num_packs));
  for (int p = 0; p < num_packs; ++p) {
    const int round = p / num_devices;
    const int slot = p % num_devices;
    assignment[static_cast<std::size_t>(p)] =
        round % 2 == 0 ? slot : num_devices - 1 - slot;
  }
  return assignment;
}

std::vector<int> AssignPacksBalanced(const std::vector<double>& pack_costs, int num_devices) {
  const int num_packs = static_cast<int>(pack_costs.size());
  std::vector<std::vector<int>> candidates = {
      AssignPacksRoundRobin(num_packs, num_devices),
      AssignPacksZigzag(num_packs, num_devices),
      AssignPacksLpt(pack_costs, num_devices),
  };
  std::size_t best = 0;
  double best_load = MaxDeviceLoad(pack_costs, candidates[0], num_devices);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double load = MaxDeviceLoad(pack_costs, candidates[i], num_devices);
    if (load < best_load - 1e-12) {
      best = i;
      best_load = load;
    }
  }
  return candidates[best];
}

double MaxDeviceLoad(const std::vector<double>& pack_costs, const std::vector<int>& assignment,
                     int num_devices) {
  HCHECK_EQ(pack_costs.size(), assignment.size())
      << "pack_costs and assignment describe different pack counts";
  // Without this, num_devices <= 0 dereferences max_element() of an empty range.
  HCHECK_GT(num_devices, 0);
  std::vector<double> load(static_cast<std::size_t>(num_devices), 0.0);
  for (std::size_t p = 0; p < pack_costs.size(); ++p) {
    HCHECK_GE(assignment[p], 0) << "pack " << p << " assigned to a negative device";
    HCHECK_LT(assignment[p], num_devices)
        << "pack " << p << " assigned to device " << assignment[p] << " of " << num_devices;
    load[static_cast<std::size_t>(assignment[p])] += pack_costs[p];
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace harmony
