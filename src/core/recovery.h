// Elastic recovery: resume training on the surviving GPUs after a fail-stop.
//
// Harmony's tasks are late-bound to devices, so losing a GPU does not invalidate the
// program — only the binding. The coordinator runs training as a sequence of *segments*:
// each segment re-runs the Task Decomposer + packer against the currently-alive machine
// (Harmony-PP collapses to fewer stages, Harmony-DP shrinks to fewer replicas while
// preserving the total minibatch) and executes it with the remaining fault schedule
// time-shifted into segment-local time. A fail-stop ends the segment; the next one resumes
// from the last committed host checkpoint (rolling back any in-flight microbatches), which
// is why resumed SGD semantics match an uninterrupted run at the same effective batch
// schedule — the property tests/fault_test.cc pins down with the numeric substrate.
#ifndef HARMONY_SRC_CORE_RECOVERY_H_
#define HARMONY_SRC_CORE_RECOVERY_H_

#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/sim/fault_plan.h"
#include "src/util/status.h"

namespace harmony {

// One scheduling epoch between failures (or to completion).
struct RecoverySegment {
  int start_iteration = 0;     // first global iteration this segment executed
  int iterations = 0;          // iterations it was asked to run
  std::vector<int> gpus;       // original GPU indices it ran on
  SessionConfig config;        // the exact rebound configuration (tests replay from this)
  SessionResult result;        // report, plan, fault trace for the segment
};

// Whole-run recovery accounting (sim-time seconds / bytes).
struct RecoveryStats {
  int failures = 0;  // fail-stop rollbacks (the bottom rung of the resilience ladder)
  // ---- degraded-mode ladder (DESIGN.md §11) ----
  // Straggler degradations: segments ended gracefully at an iteration boundary and resumed
  // without touching the checkpoint (no lost work).
  int degradations = 0;
  // Transfer-retry budgets exhausted: rollbacks to the newest valid checkpoint without
  // excluding any device.
  int retry_exhaustions = 0;
  // Checkpoint-integrity outcomes across the whole run (from the shared CheckpointStore).
  int ckpt_verified = 0;
  int ckpt_corrupt_detected = 0;
  // Total rollbacks of any kind (what the chaos bench charts against fault rate).
  int rollbacks() const { return failures + retry_exhaustions; }
  // Sim time of committed-but-lost progress: failure time minus the last checkpoint commit
  // (the rolled-back in-flight microbatches), summed over failures.
  double lost_work_sec = 0.0;
  // Sim time from failure detection to the failed segment's quiet point (abort drain),
  // summed over failures. Rebinding itself is instantaneous in sim time — it happens
  // outside the simulated machine, like a host-side packer rerun.
  double recovery_latency_sec = 0.0;
  // Weight + optimizer bytes re-staged into survivors in each recovery segment's first
  // iteration (the checkpoint fan-out back onto devices).
  Bytes reswap_bytes = 0;
};

struct ElasticResult {
  // Ok when training completed on some surviving set; an error (with the partial segments
  // kept) when recovery is impossible: every GPU dead, a DP shrink that cannot preserve
  // the minibatch, an infeasible survivor configuration, or a watchdog stall.
  Status status;
  std::vector<RecoverySegment> segments;
  RecoveryStats stats;
  double total_makespan = 0.0;    // sum of segment makespans (global sim time)
  int completed_iterations = 0;   // == config.iterations on success
  int checkpoints_committed = 0;  // across all segments
  Bytes checkpoint_bytes = 0;

  const RecoverySegment& final_segment() const { return segments.back(); }
  // Segment fault traces joined with "--- segment k ---" headers: the canonical
  // whole-run artifact the determinism tests compare.
  std::string FaultTrace() const;
};

// Runs training under `config`, recovering from injected GPU fail-stops by rebinding onto
// the survivors. With no faults armed this degenerates to exactly one RunTraining call.
// Configurations should pass ValidateSessionConfig first; infeasible rebound
// configurations surface in `status`, not as crashes.
ElasticResult RunTrainingElastic(const Model& model, const SessionConfig& config);

// Rewrites `plan` into the frame of a recovery segment starting at global sim time
// `offset` on the surviving GPUs: events for dead GPUs are dropped, already-struck
// fail-stops are dropped, in-progress degradations are re-applied at local time 0 with
// their remaining duration, and GPU targets are renumbered to survivor-local indices.
// `dead[g]` marks original GPU g as failed; `alive` lists surviving original indices in
// ascending order. Exposed for the fault determinism tests.
FaultPlan ShiftFaultPlan(const FaultPlan& plan, double offset, const std::vector<bool>& dead,
                         const std::vector<int>& alive);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_RECOVERY_H_
