// Harmony-DP: data parallelism with fine-grained tasks, input-batch grouping and
// just-in-time weight updates (Sec. 3 of the paper).
//
// Differences from the baseline DP schedule, knob by knob:
//   - input_batch_grouping: forward/backward run layer-major ("run layer l across the whole
//     group of m microbatches back-to-back"), so each weight tensor is swapped in once per
//     pass instead of once per microbatch;
//   - jit_updates: the all-reduce and optimizer step for layer l run immediately after the
//     layer's backward group, while W_l and dW_l are still resident;
//   - the coherent-memory policy (clean drops, p2p) is applied by the Session, not here.
// With both knobs off this degenerates to the baseline task order (useful for ablations).
#ifndef HARMONY_SRC_CORE_HARMONY_DP_H_
#define HARMONY_SRC_CORE_HARMONY_DP_H_

#include "src/graph/model.h"
#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/mem/tensor.h"

namespace harmony {

struct HarmonyDpOptions {
  int microbatches_per_gpu = 1;
  int microbatch_size = 1;
  int iterations = 2;
  bool input_batch_grouping = true;
  bool jit_updates = true;
  bool recompute = false;
};

Plan BuildHarmonyDpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const HarmonyDpOptions& options);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_HARMONY_DP_H_
