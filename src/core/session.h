// Session: the public entry point ("users target a single virtual device with practically
// unbounded memory"). Give it a model and a configuration; it assembles the simulated
// machine, decomposes the program into tasks under the chosen parallelization scheme,
// applies the matching memory policy, executes the plan, and returns the measured report.
#ifndef HARMONY_SRC_CORE_SESSION_H_
#define HARMONY_SRC_CORE_SESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/graph/model.h"
#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/mem/memory_manager.h"
#include "src/runtime/engine.h"
#include "src/runtime/metrics.h"
#include "src/sim/fault_plan.h"
#include "src/util/status.h"

namespace harmony {

enum class Scheme {
  kBaselineDp,  // DDP + LMS-style per-GPU virtualization
  kBaselinePp,  // 1F1B stages + per-GPU virtualization
  kHarmonyDp,
  kHarmonyPp,
  kHarmonyTp,  // intra-op (tensor-parallel) splitting
  kServing,    // forward-only inference pipeline (Computron-style model swapping)
};

const char* SchemeName(Scheme scheme);

// Inverse of SchemeName: resolves a user-facing scheme string (flag values, job specs)
// with a typed error listing nothing silently. Accepts every scheme, including "serving".
StatusOr<Scheme> SchemeByName(const std::string& name);

struct SessionConfig {
  ServerConfig server;
  Scheme scheme = Scheme::kHarmonyPp;

  // Multi-node scale-out (DESIGN.md §12). num_nodes = 1 keeps the exact single-server
  // machine (and event sequence) of pre-cluster builds; > 1 replicates `server` per node
  // behind a NIC + top-of-rack fabric. GPUs are indexed globally, node-major.
  int num_nodes = 1;
  int nodes_per_rack = 0;              // 0 = one rack holds every node
  LinkSpec nic_link = Ethernet25G();   // host <-> NIC <-> ToR
  LinkSpec rack_link = Ethernet100G(); // ToR <-> spine (only built with > 1 rack)

  // Widened before multiplying so an unvalidated config can't trip signed-overflow UB;
  // ValidateSessionConfig bounds the product by kMaxClusterGpus, so the narrowing is
  // lossless for any config that passes validation.
  int total_gpus() const {
    return static_cast<int>(std::int64_t{num_nodes} * server.num_gpus);
  }

  // Workload shape: `microbatches` is per GPU for DP schemes and the whole minibatch for PP
  // schemes (matching the paper's "m microbatches per GPU, minibatch of mN microbatches").
  int microbatches = 1;
  int microbatch_size = 1;
  int iterations = 3;

  // Harmony knobs (ignored by baselines).
  int pack_size = 1;
  bool grouping = true;
  int group_size = 0;  // microbatches per input-batch group (PP); 0 = whole minibatch
  bool jit_updates = true;
  bool p2p = true;
  bool balanced_packing = false;
  bool recompute = false;
  // Scheduler-informed (Belady) eviction instead of LRU: the memory manager evicts the
  // tensor whose next scheduled use is farthest away. Off by default so the analytic LRU
  // model stays exact; an ablation quantifies the win.
  bool lookahead_eviction = false;
  // Cross-check every indexed eviction pick against the O(residents) reference scan (fatal
  // on divergence). Testing hook for the randomized churn suite; far too slow for benches.
  bool audit_eviction = false;

  // Engine knobs.
  bool prefetch = true;
  bool record_timeline = false;

  // Worker threads for the sharded simulator core (DESIGN.md §10). 1 = classic serial
  // event loop; > 1 drains per-component event lanes in parallel inside conservative
  // lookahead windows. Output is byte-identical at any value — the merged execution order
  // is always the serial (when, seq) order. 0 (default) resolves from the
  // HARMONY_SIM_THREADS environment variable (unset = 1), so golden benches can be swept
  // across thread counts without flag plumbing.
  int sim_threads = 0;

  // Run the cheap tier of the static plan linter (runtime/plan_lint.h) on the built plan
  // before execution; fatal on errors. O(tasks + edges), silent when the plan is clean.
  // Opt out for plans that are deliberately broken (fault-injection experiments that
  // truncate schedules, linter self-tests).
  bool lint_plan = true;

  // ---- fault tolerance (defaults keep the failure-free path byte-identical) ----
  FaultPlan faults;               // injected hardware anomalies; empty = none
  int checkpoint_every = 0;       // host-checkpoint weights every k iterations (0 = never)
  bool checkpoint_final = false;  // also commit the checkpoint landing on the last
                                  // iteration (preemption drains end with that commit)
  double watchdog_timeout = 0.0;  // flag a stalled schedule after this much sim time (0 = off)

  // ---- degraded-mode resilience (DESIGN.md §11; defaults keep everything off) ----
  // Transfer retry budget: total issues allowed per flow (0 = retries off, transient flow
  // aborts escalate immediately like pre-retry builds).
  int retry_max = 0;
  double retry_base = 0.001;  // base backoff delay in sim seconds (cap = 64x base)
  // Checkpoint generations retained for integrity verification (ring buffer depth).
  int ckpt_keep = 2;
  // EWMA(actual/expected service time) straggler threshold (0 = monitor off; must be > 1
  // when set — a healthy device sits at exactly 1.0).
  double straggler_threshold = 0.0;
  // Ring buffer receiving committed checkpoint generations; owned by the recovery
  // coordinator (RunTrainingElastic). nullptr = commits are not retained/verified.
  CheckpointStore* checkpoint_store = nullptr;

  // ---- multi-tenant quota (DESIGN.md §13; default keeps every run byte-identical) ----
  // Fraction of host-uplink (PCIe host links) and NIC/rack bandwidth this session may
  // draw. The cluster scheduler sets it to a tenant's reserved share so co-located jobs
  // compose without modeling cross-session contention; 1.0 = the whole machine (exact
  // pre-quota behavior and event sequence).
  double uplink_bw_fraction = 1.0;

  // Overrides the scheme-derived memory policy when set (ablations).
  std::optional<MemoryPolicy> policy;
};

struct SessionResult {
  RunReport report;
  Plan plan;
  std::vector<TaskTrace> timeline;             // non-empty iff record_timeline
  std::vector<Bytes> peak_task_working_set;    // per device
  std::vector<Bytes> memory_demand_per_device; // sum of live-tensor peak, see Fig. 2(c)
  std::string fault_trace;                     // applied-fault log (empty without faults)
  std::vector<ChurnEvent> churn_audit_log;     // non-empty iff audit_eviction: every swap-in,
                                               // eviction, write-back, and p2p fetch in order
};

// Validates user-reachable configuration (everything the harmony_sim flags can set) with
// actionable messages instead of crashing: positive workload shape, scheme constraints,
// fault-spec targets within the machine, and single-task working-set fit.
Status ValidateSessionConfig(const Model& model, const SessionConfig& config);

// Builds and runs one training session. Fatal on infeasible configurations (a single task's
// working set exceeding device memory) with a diagnostic message — run
// ValidateSessionConfig first to get a Status instead. With `config.faults` armed the run
// does not crash on failure: the report comes back with `failed` set (see
// RunTrainingElastic in core/recovery.h for the resume-on-survivors path).
SessionResult RunTraining(const Model& model, const SessionConfig& config);

// Convenience: the memory policy a scheme runs under by default.
MemoryPolicy DefaultPolicyFor(Scheme scheme, bool p2p);

// The simulated machine `config` describes: the single commodity server when num_nodes <= 1
// (byte-identical to pre-cluster builds), otherwise a cluster of `num_nodes` copies of
// `config.server` behind the NIC / rack fabric.
Machine MakeSessionMachine(const SessionConfig& config);

// Builds just the plan for `config` (no execution) against `registry`; exposed for tests and
// for the tuner's feasibility probing.
Plan BuildPlanForConfig(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const SessionConfig& config);

// Largest single-task working set per device for `config`, without running anything.
std::vector<Bytes> ProbePeakWorkingSet(const Model& model, const SessionConfig& config);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_SESSION_H_
