// Harmony-PP: virtualized pipeline parallelism at layer-pack granularity (Fig. 4).
//
// Unlike classic pipeline stages (contiguous layer blocks, one per GPU), Harmony assigns
// small layer packs to GPUs in a loop (pack p on GPU p mod N by default, or load-balanced
// with the LPT packer), and each pack runs across the whole group of microbatches
// back-to-back before the next pack starts. Weights are *not* replicated, so in the
// analytic model of Sec. 3 the per-iteration weight swap volume is 3|W| across all GPUs —
// the best of the schemes. Boundary activations cross GPUs over p2p links (the Session
// enables the coherent-memory policy for this plan); with grouping or JIT disabled the plan
// degrades toward classic schedules for ablation.
#ifndef HARMONY_SRC_CORE_HARMONY_PP_H_
#define HARMONY_SRC_CORE_HARMONY_PP_H_

#include <vector>

#include "src/graph/model.h"
#include "src/graph/task.h"
#include "src/hw/topology.h"
#include "src/mem/tensor.h"

namespace harmony {

struct HarmonyPpOptions {
  int microbatches = 4;  // whole-minibatch microbatch count
  int microbatch_size = 1;
  int iterations = 2;
  int pack_size = 1;  // layers per pack (the "memory-performance tango" knob)
  bool input_batch_grouping = true;
  // Microbatches per input-batch group when grouping is on; 0 means the whole minibatch.
  // Small groups pipeline better (a pack yields the device after `group_size` microbatches),
  // large groups amortize weight swaps across more microbatches — the second axis of the
  // memory-performance tango.
  int group_size = 0;
  bool jit_updates = true;
  bool balanced_packing = false;  // profile-balanced instead of round-robin pack placement
  bool recompute = false;
};

Plan BuildHarmonyPpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const HarmonyPpOptions& options);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_HARMONY_PP_H_
