#include "src/core/harmony_pp.h"

#include <algorithm>

#include "src/core/packer.h"
#include "src/graph/plan_builder.h"
#include "src/util/check.h"

namespace harmony {

Plan BuildHarmonyPpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const HarmonyPpOptions& options) {
  const int N = machine.num_gpus();
  const int M = options.microbatches;
  const std::vector<int> packs = MakePackBoundaries(model.num_layers(), options.pack_size);
  const int P = static_cast<int>(packs.size()) - 1;

  std::vector<int> device_of;
  if (options.balanced_packing) {
    // Multi-dimensional pack cost (Sec. 3, opt. 4: balance compute, memory, and swap):
    // normalized FLOPs plus normalized resident footprint (weights, optimizer state, and
    // the stashes that must live between forward and backward).
    std::vector<double> flops(static_cast<std::size_t>(P), 0.0);
    std::vector<double> mem(static_cast<std::size_t>(P), 0.0);
    double max_flops = 0.0;
    double max_mem = 0.0;
    for (int p = 0; p < P; ++p) {
      for (int l = packs[static_cast<std::size_t>(p)]; l < packs[static_cast<std::size_t>(p + 1)];
           ++l) {
        const LayerCost& cost = model.layer(l).cost;
        flops[static_cast<std::size_t>(p)] +=
            cost.fwd_flops_per_sample + cost.bwd_flops_per_sample;
        mem[static_cast<std::size_t>(p)] += static_cast<double>(
            cost.param_bytes + cost.grad_bytes + cost.opt_state_bytes +
            (cost.stash_bytes_per_sample + cost.act_out_bytes_per_sample) *
                options.microbatch_size);
      }
      max_flops = std::max(max_flops, flops[static_cast<std::size_t>(p)]);
      max_mem = std::max(max_mem, mem[static_cast<std::size_t>(p)]);
    }
    std::vector<double> costs(static_cast<std::size_t>(P), 0.0);
    for (int p = 0; p < P; ++p) {
      costs[static_cast<std::size_t>(p)] =
          (max_flops > 0 ? flops[static_cast<std::size_t>(p)] / max_flops : 0.0) +
          (max_mem > 0 ? mem[static_cast<std::size_t>(p)] / max_mem : 0.0);
    }
    device_of = AssignPacksBalanced(costs, N);
  } else {
    device_of = AssignPacksRoundRobin(P, N);
  }

  DecomposerOptions decomp;
  decomp.num_replicas = 1;
  decomp.microbatches = M;
  decomp.microbatch_size = options.microbatch_size;
  decomp.iterations = options.iterations;
  decomp.recompute = options.recompute;
  PlanBuilder builder(&model, registry, N, decomp);

  // Effective input-batch group size: the whole minibatch by default, 1 when grouping is
  // disabled (every microbatch is its own wavefront, classic fine-grained pipelining).
  int group = options.input_batch_grouping
                  ? (options.group_size > 0 ? std::min(options.group_size, M) : M)
                  : 1;

  for (int it = 0; it < options.iterations; ++it) {
    builder.BeginIteration(it);
    std::vector<std::vector<TaskId>> fwd(
        static_cast<std::size_t>(P),
        std::vector<TaskId>(static_cast<std::size_t>(M), kInvalidTask));
    std::vector<std::vector<TaskId>> bwd = fwd;
    std::vector<TaskId> loss(static_cast<std::size_t>(M), kInvalidTask);

    // ---- forward: group wavefronts, packs ascending within each group ----
    for (int g0 = 0; g0 < M; g0 += group) {
      const int g1 = std::min(M, g0 + group);
      for (int p = 0; p < P; ++p) {
        for (int mb = g0; mb < g1; ++mb) {
          std::vector<TaskId> deps;
          if (p > 0) {
            deps.push_back(fwd[static_cast<std::size_t>(p - 1)][static_cast<std::size_t>(mb)]);
          }
          fwd[static_cast<std::size_t>(p)][static_cast<std::size_t>(mb)] = builder.AddForward(
              device_of[static_cast<std::size_t>(p)], packs[static_cast<std::size_t>(p)],
              packs[static_cast<std::size_t>(p + 1)], mb, 0, std::move(deps));
        }
      }
      for (int mb = g0; mb < g1; ++mb) {
        loss[static_cast<std::size_t>(mb)] =
            builder.AddLoss(device_of[static_cast<std::size_t>(P - 1)], mb, 0,
                            {fwd[static_cast<std::size_t>(P - 1)][static_cast<std::size_t>(mb)]});
      }
    }

    // ---- backward: group wavefronts in reverse, packs descending; jit update after the
    // last group's backward for each pack ----
    auto bwd_deps = [&](int p, int mb) {
      std::vector<TaskId> deps;
      if (p == P - 1) {
        deps.push_back(loss[static_cast<std::size_t>(mb)]);
      } else {
        deps.push_back(bwd[static_cast<std::size_t>(p + 1)][static_cast<std::size_t>(mb)]);
      }
      return deps;
    };
    auto emit_update = [&](int p) {
      const int device = device_of[static_cast<std::size_t>(p)];
      const TaskId dep = bwd[static_cast<std::size_t>(p)][0];  // last backward emitted
      // One update task per layer in the pack, mirroring the per-layer "L-W" boxes of Fig. 4.
      for (int l = packs[static_cast<std::size_t>(p)]; l < packs[static_cast<std::size_t>(p + 1)];
           ++l) {
        builder.AddUpdate(device, l, l + 1, 0, {dep});
      }
    };

    const int first_group_start = 0;
    for (int g0 = (M - 1) / group * group; g0 >= 0; g0 -= group) {
      const int g1 = std::min(M, g0 + group);
      for (int p = P - 1; p >= 0; --p) {
        // Microbatches in descending order, matching Fig. 4's backward pass.
        for (int mb = g1 - 1; mb >= g0; --mb) {
          bwd[static_cast<std::size_t>(p)][static_cast<std::size_t>(mb)] = builder.AddBackward(
              device_of[static_cast<std::size_t>(p)], packs[static_cast<std::size_t>(p)],
              packs[static_cast<std::size_t>(p + 1)], mb, 0, bwd_deps(p, mb));
        }
        if (options.jit_updates && g0 == first_group_start) {
          emit_update(p);
        }
      }
    }
    if (!options.jit_updates) {
      for (int p = 0; p < P; ++p) {
        emit_update(p);
      }
    }
  }
  return builder.Finish("harmony-pp");
}

}  // namespace harmony
