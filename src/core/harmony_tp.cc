#include "src/core/harmony_tp.h"

#include <vector>

#include "src/graph/plan_builder.h"
#include "src/util/check.h"

namespace harmony {

Plan BuildHarmonyTpPlan(const Model& model, const Machine& machine, TensorRegistry* registry,
                        const HarmonyTpOptions& options) {
  const int N = machine.num_gpus();
  const int R = model.num_layers();
  const int M = options.microbatches;

  DecomposerOptions decomp;
  decomp.num_replicas = N;  // replica index == shard index
  decomp.microbatches = M;
  decomp.microbatch_size = options.microbatch_size;
  decomp.iterations = options.iterations;
  decomp.recompute = options.recompute;
  decomp.weight_shards = N;
  PlanBuilder builder(&model, registry, N, decomp);
  // All shards process the *same* microbatches; the decomposer's default sample accounting
  // (replicas x microbatches) would overcount by N.

  int next_group = 0;
  for (int it = 0; it < options.iterations; ++it) {
    builder.BeginIteration(it);
    auto grid = [&] {
      return std::vector<std::vector<std::vector<TaskId>>>(
          static_cast<std::size_t>(N),
          std::vector<std::vector<TaskId>>(
              static_cast<std::size_t>(R),
              std::vector<TaskId>(static_cast<std::size_t>(M), kInvalidTask)));
    };
    auto fwd_sync = grid();  // the activation all-reduce after FWD(l, mb) per shard
    auto bwd_sync = grid();  // the gradient all-reduce after BWD(l, mb) per shard
    std::vector<std::vector<TaskId>> loss(
        static_cast<std::size_t>(N), std::vector<TaskId>(static_cast<std::size_t>(M)));

    // ---- forward: every shard computes its partial, then the group reduces X[l+1] ----
    auto emit_fwd_wave = [&](int l, int mb) {
      std::vector<TaskId> fwd_ids(static_cast<std::size_t>(N));
      for (int d = 0; d < N; ++d) {
        std::vector<TaskId> deps;
        if (l > 0) {
          deps.push_back(fwd_sync[static_cast<std::size_t>(d)][static_cast<std::size_t>(l - 1)]
                                 [static_cast<std::size_t>(mb)]);
        }
        fwd_ids[static_cast<std::size_t>(d)] =
            builder.AddForward(d, l, l + 1, mb, d, std::move(deps));
      }
      const int group = next_group++;
      for (int d = 0; d < N; ++d) {
        fwd_sync[static_cast<std::size_t>(d)][static_cast<std::size_t>(l)]
                [static_cast<std::size_t>(mb)] = builder.AddActivationAllReduce(
                    d, l + 1, mb, d, /*grad=*/false, group,
                    {fwd_ids[static_cast<std::size_t>(d)]});
      }
    };
    if (options.input_batch_grouping) {
      for (int l = 0; l < R; ++l) {
        for (int mb = 0; mb < M; ++mb) {
          emit_fwd_wave(l, mb);
        }
      }
    } else {
      for (int mb = 0; mb < M; ++mb) {
        for (int l = 0; l < R; ++l) {
          emit_fwd_wave(l, mb);
        }
      }
    }
    for (int mb = 0; mb < M; ++mb) {
      for (int d = 0; d < N; ++d) {
        loss[static_cast<std::size_t>(d)][static_cast<std::size_t>(mb)] = builder.AddLoss(
            d, mb, d,
            {fwd_sync[static_cast<std::size_t>(d)][static_cast<std::size_t>(R - 1)]
                     [static_cast<std::size_t>(mb)]});
      }
    }

    // ---- backward: partial dX reduced per wave; shard-local jit updates ----
    auto emit_bwd_wave = [&](int l, int mb) {
      std::vector<TaskId> bwd_ids(static_cast<std::size_t>(N));
      for (int d = 0; d < N; ++d) {
        std::vector<TaskId> deps;
        if (l == R - 1) {
          deps.push_back(loss[static_cast<std::size_t>(d)][static_cast<std::size_t>(mb)]);
        } else {
          deps.push_back(bwd_sync[static_cast<std::size_t>(d)][static_cast<std::size_t>(l + 1)]
                                 [static_cast<std::size_t>(mb)]);
        }
        bwd_ids[static_cast<std::size_t>(d)] =
            builder.AddBackward(d, l, l + 1, mb, d, std::move(deps));
      }
      if (l > 0) {
        const int group = next_group++;
        for (int d = 0; d < N; ++d) {
          bwd_sync[static_cast<std::size_t>(d)][static_cast<std::size_t>(l)]
                  [static_cast<std::size_t>(mb)] = builder.AddActivationAllReduce(
                      d, l, mb, d, /*grad=*/true, group, {bwd_ids[static_cast<std::size_t>(d)]});
        }
      } else {
        for (int d = 0; d < N; ++d) {
          bwd_sync[static_cast<std::size_t>(d)][0][static_cast<std::size_t>(mb)] =
              bwd_ids[static_cast<std::size_t>(d)];
        }
      }
    };
    auto emit_updates = [&](int l) {
      for (int d = 0; d < N; ++d) {
        builder.AddUpdate(d, l, l + 1, d,
                          {bwd_sync[static_cast<std::size_t>(d)][static_cast<std::size_t>(l)]
                                   [static_cast<std::size_t>(
                                       options.input_batch_grouping ? 0 : M - 1)]});
      }
    };

    if (options.input_batch_grouping) {
      for (int l = R - 1; l >= 0; --l) {
        for (int mb = M - 1; mb >= 0; --mb) {
          emit_bwd_wave(l, mb);
        }
        if (options.jit_updates) {
          emit_updates(l);
        }
      }
    } else {
      for (int mb = M - 1; mb >= 0; --mb) {
        for (int l = R - 1; l >= 0; --l) {
          emit_bwd_wave(l, mb);
        }
      }
      if (options.jit_updates) {
        for (int l = R - 1; l >= 0; --l) {
          emit_updates(l);
        }
      }
    }
    if (!options.jit_updates) {
      for (int l = 0; l < R; ++l) {
        emit_updates(l);
      }
    }
  }

  Plan plan = builder.Finish("harmony-tp");
  // Every shard sees the same samples: correct the decomposer's replica-based accounting.
  plan.samples_per_iteration = M * options.microbatch_size;
  return plan;
}

}  // namespace harmony
