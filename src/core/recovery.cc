#include "src/core/recovery.h"

#include <numeric>
#include <utility>

#include "src/mem/tensor.h"

namespace harmony {
namespace {

bool IsDataParallel(Scheme scheme) {
  return scheme == Scheme::kBaselineDp || scheme == Scheme::kHarmonyDp;
}

bool TargetsGpu(const FaultEvent& event) {
  return event.kind == FaultKind::kGpuFailStop || event.kind == FaultKind::kGpuLinkDegrade;
}

}  // namespace

std::string ElasticResult::FaultTrace() const {
  std::string out;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    out += "--- segment " + std::to_string(i) + " ---\n";
    out += segments[i].result.fault_trace;
  }
  return out;
}

FaultPlan ShiftFaultPlan(const FaultPlan& plan, double offset, const std::vector<bool>& dead,
                         const std::vector<int>& alive) {
  std::vector<int> local(dead.size(), -1);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    local[static_cast<std::size_t>(alive[i])] = static_cast<int>(i);
  }
  FaultPlan shifted;
  for (FaultEvent event : plan.events()) {
    if (TargetsGpu(event) && dead[static_cast<std::size_t>(event.gpu)]) {
      continue;  // the target died in an earlier segment; its links no longer exist
    }
    const double local_time = event.time - offset;
    if (event.kind == FaultKind::kGpuFailStop) {
      if (local_time < 0.0) {
        continue;  // already struck
      }
      event.time = local_time;
    } else if (local_time < 0.0) {
      // A degradation that began before the segment boundary: still in force if permanent
      // or if its window extends past the boundary — re-apply at local 0 for the remainder.
      if (event.duration == 0.0) {
        event.time = 0.0;
      } else if (event.time + event.duration > offset) {
        event.duration = event.time + event.duration - offset;
        event.time = 0.0;
      } else {
        continue;  // expired before the segment started
      }
    } else {
      event.time = local_time;
    }
    if (TargetsGpu(event)) {
      event.gpu = local[static_cast<std::size_t>(event.gpu)];
    }
    shifted.Add(event);
  }
  return shifted;
}

ElasticResult RunTrainingElastic(const Model& model, const SessionConfig& config) {
  ElasticResult result;
  const int total_gpus = config.server.num_gpus;
  const bool data_parallel = IsDataParallel(config.scheme);
  // DP configs give microbatches per GPU; the minibatch (hence SGD semantics) must survive
  // the shrink, so carry the total and re-divide per segment.
  const int total_microbatches =
      data_parallel ? config.microbatches * total_gpus : config.microbatches;

  std::vector<int> alive(static_cast<std::size_t>(total_gpus));
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<bool> dead(static_cast<std::size_t>(total_gpus), false);
  double offset = 0.0;     // global sim time consumed by earlier segments
  int next_iteration = 0;  // first global iteration the next segment must run

  for (;;) {
    if (alive.empty()) {
      result.status = FailedPreconditionError(
          "every GPU has fail-stopped; no surviving device to rebind onto");
      return result;
    }

    RecoverySegment segment;
    segment.start_iteration = next_iteration;
    segment.iterations = config.iterations - next_iteration;
    segment.gpus = alive;
    segment.config = config;
    segment.config.server.num_gpus = static_cast<int>(alive.size());
    segment.config.iterations = segment.iterations;
    if (data_parallel) {
      if (total_microbatches % static_cast<int>(alive.size()) != 0) {
        result.status = FailedPreconditionError(
            "cannot shrink data parallelism to " + std::to_string(alive.size()) +
            " GPUs: the minibatch of " + std::to_string(total_microbatches) +
            " microbatches does not divide evenly — SGD semantics would change");
        return result;
      }
      segment.config.microbatches = total_microbatches / static_cast<int>(alive.size());
    }
    segment.config.faults = ShiftFaultPlan(config.faults, offset, dead, alive);

    if (!result.segments.empty()) {
      // Rebinding onto fewer devices concentrates layers/replicas; re-check feasibility
      // instead of letting RunTraining die on a working-set HCHECK.
      const Status feasible = ValidateSessionConfig(model, segment.config);
      if (!feasible.ok()) {
        result.status = FailedPreconditionError(
            "surviving configuration on " + std::to_string(alive.size()) +
            " GPUs is infeasible: " + feasible.message());
        return result;
      }
    }

    segment.result = RunTraining(model, segment.config);
    const RunReport& report = segment.result.report;
    result.total_makespan += report.makespan;
    result.checkpoints_committed += report.checkpoints_committed;
    result.checkpoint_bytes += report.checkpoint_bytes;
    const int segment_completed = static_cast<int>(report.iterations.size());
    const bool all_done = segment_completed == segment.iterations;
    const int last_checkpoint = report.last_checkpoint_iteration;
    const bool failed = report.failed;
    const std::string failure_kind = report.failure_kind;
    const int failed_local = report.failed_device;
    const double failure_time = report.failure_time;
    const double checkpoint_time = last_checkpoint >= 0 ? report.last_checkpoint_time : 0.0;
    const double makespan = report.makespan;
    result.segments.push_back(std::move(segment));

    if (all_done || !failed) {
      result.completed_iterations = next_iteration + segment_completed;
      result.status = Status::Ok();
      break;
    }
    if (failure_kind != "gpu-fail-stop") {
      result.completed_iterations = next_iteration + segment_completed;
      result.status = FailedPreconditionError(
          "schedule stalled (watchdog) at sim time " + std::to_string(failure_time) +
          " — rebinding cannot fix a livelocked configuration");
      return result;
    }

    // Roll back to the last committed checkpoint and rebind onto the survivors.
    ++result.stats.failures;
    result.stats.lost_work_sec += failure_time - checkpoint_time;
    result.stats.recovery_latency_sec += makespan - failure_time;
    const int dead_original = alive.at(static_cast<std::size_t>(failed_local));
    dead[static_cast<std::size_t>(dead_original)] = true;
    alive.erase(alive.begin() + failed_local);
    next_iteration += last_checkpoint + 1;  // -1 (no checkpoint) restarts the segment
    offset += makespan;
  }

  // Checkpoint fan-out cost: weights + optimizer state the survivors had to re-stage in
  // each recovery segment's first iteration.
  for (std::size_t i = 1; i < result.segments.size(); ++i) {
    const RunReport& report = result.segments[i].result.report;
    if (!report.iterations.empty()) {
      const IterationStats& first = report.iterations.front();
      result.stats.reswap_bytes +=
          first.swap_in_by_class[static_cast<int>(TensorClass::kWeight)] +
          first.swap_in_by_class[static_cast<int>(TensorClass::kOptimizerState)];
    }
  }
  return result;
}

}  // namespace harmony
