#include "src/core/recovery.h"

#include <numeric>
#include <utility>

#include "src/mem/tensor.h"

namespace harmony {
namespace {

bool IsDataParallel(Scheme scheme) {
  return scheme == Scheme::kBaselineDp || scheme == Scheme::kHarmonyDp;
}

bool TargetsGpu(const FaultEvent& event) {
  return event.kind == FaultKind::kGpuFailStop || event.kind == FaultKind::kGpuLinkDegrade ||
         event.kind == FaultKind::kGpuSlow ||
         ((event.kind == FaultKind::kFlowFlap || event.kind == FaultKind::kLinkBrownout) &&
          event.gpu >= 0);
}

// Fire-and-forget kinds with no time window: either they happen inside the segment or
// they already happened.
bool Instantaneous(const FaultEvent& event) {
  return event.kind == FaultKind::kGpuFailStop || event.kind == FaultKind::kFlowFlap ||
         event.kind == FaultKind::kCkptCorrupt;
}

// Upper bound on recovery segments: a fault plan is finite, so a run that keeps failing
// past this is looping (e.g. rolling back into the same permanent fault forever).
constexpr std::size_t kMaxSegments = 64;

}  // namespace

std::string ElasticResult::FaultTrace() const {
  std::string out;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    out += "--- segment " + std::to_string(i) + " ---\n";
    out += segments[i].result.fault_trace;
  }
  return out;
}

FaultPlan ShiftFaultPlan(const FaultPlan& plan, double offset, const std::vector<bool>& dead,
                         const std::vector<int>& alive) {
  std::vector<int> local(dead.size(), -1);
  for (std::size_t i = 0; i < alive.size(); ++i) {
    local[static_cast<std::size_t>(alive[i])] = static_cast<int>(i);
  }
  FaultPlan shifted;
  for (FaultEvent event : plan.events()) {
    if (TargetsGpu(event) && dead[static_cast<std::size_t>(event.gpu)]) {
      continue;  // the target died in an earlier segment; its links no longer exist
    }
    const double local_time = event.time - offset;
    if (Instantaneous(event)) {
      if (local_time < 0.0) {
        continue;  // already struck
      }
      event.time = local_time;
    } else if (local_time < 0.0) {
      // A degradation that began before the segment boundary: still in force if permanent
      // or if its window extends past the boundary — re-apply at local 0 for the remainder.
      if (event.duration == 0.0) {
        event.time = 0.0;
      } else if (event.time + event.duration > offset) {
        event.duration = event.time + event.duration - offset;
        event.time = 0.0;
      } else {
        continue;  // expired before the segment started
      }
    } else {
      event.time = local_time;
    }
    if (TargetsGpu(event)) {
      event.gpu = local[static_cast<std::size_t>(event.gpu)];
    }
    shifted.Add(event);
  }
  return shifted;
}

ElasticResult RunTrainingElastic(const Model& model, const SessionConfig& config) {
  ElasticResult result;
  const int total_gpus = config.server.num_gpus;
  const bool data_parallel = IsDataParallel(config.scheme);
  // DP configs give microbatches per GPU; the minibatch (hence SGD semantics) must survive
  // the shrink, so carry the total and re-divide per segment.
  const int total_microbatches =
      data_parallel ? config.microbatches * total_gpus : config.microbatches;

  std::vector<int> alive(static_cast<std::size_t>(total_gpus));
  std::iota(alive.begin(), alive.end(), 0);
  std::vector<bool> dead(static_cast<std::size_t>(total_gpus), false);
  double offset = 0.0;     // global sim time consumed by earlier segments
  int next_iteration = 0;  // first global iteration the next segment must run

  // The checkpoint ring buffer outlives segments: a corrupted newest generation falls
  // back to an older one, possibly committed before the current segment began.
  CheckpointStore store(config.ckpt_keep);
  // Dropped to 0 when a straggler cannot be excluded (the run completes degraded on the
  // full device set instead of re-classifying the same straggler every segment).
  double straggler_threshold = config.straggler_threshold;
  const auto finalize = [&result, &store] {
    result.stats.ckpt_verified = store.verified_ok();
    result.stats.ckpt_corrupt_detected = store.corrupt_detected();
  };

  for (;;) {
    if (alive.empty()) {
      result.status = FailedPreconditionError(
          "every GPU has fail-stopped; no surviving device to rebind onto");
      finalize();
      return result;
    }
    if (result.segments.size() >= kMaxSegments) {
      result.status = ResourceExhaustedError(
          "recovery did not converge after " + std::to_string(kMaxSegments) +
          " segments — the fault plan keeps striking faster than progress commits");
      finalize();
      return result;
    }

    RecoverySegment segment;
    segment.start_iteration = next_iteration;
    segment.iterations = config.iterations - next_iteration;
    segment.gpus = alive;
    segment.config = config;
    segment.config.server.num_gpus = static_cast<int>(alive.size());
    segment.config.iterations = segment.iterations;
    segment.config.straggler_threshold = straggler_threshold;
    // Segment-local commits land in the shared ring as global (iteration, time) pairs.
    store.SetBases(next_iteration, offset);
    segment.config.checkpoint_store = &store;
    if (data_parallel) {
      if (total_microbatches % static_cast<int>(alive.size()) != 0) {
        result.status = FailedPreconditionError(
            "cannot shrink data parallelism to " + std::to_string(alive.size()) +
            " GPUs: the minibatch of " + std::to_string(total_microbatches) +
            " microbatches does not divide evenly — SGD semantics would change");
        return result;
      }
      segment.config.microbatches = total_microbatches / static_cast<int>(alive.size());
    }
    segment.config.faults = ShiftFaultPlan(config.faults, offset, dead, alive);

    if (!result.segments.empty()) {
      // Rebinding onto fewer devices concentrates layers/replicas; re-check feasibility
      // instead of letting RunTraining die on a working-set HCHECK.
      const Status feasible = ValidateSessionConfig(model, segment.config);
      if (!feasible.ok()) {
        result.status = FailedPreconditionError(
            "surviving configuration on " + std::to_string(alive.size()) +
            " GPUs is infeasible: " + feasible.message());
        finalize();
        return result;
      }
    }

    segment.result = RunTraining(model, segment.config);
    // The store is owned by this coordinator; don't leak a dangling pointer into the
    // replayable per-segment config.
    segment.config.checkpoint_store = nullptr;
    const RunReport& report = segment.result.report;
    result.total_makespan += report.makespan;
    result.checkpoints_committed += report.checkpoints_committed;
    result.checkpoint_bytes += report.checkpoint_bytes;
    const int segment_completed = static_cast<int>(report.iterations.size());
    const bool all_done = segment_completed == segment.iterations;
    const bool failed = report.failed;
    const std::string failure_kind = report.failure_kind;
    const int failed_local = report.failed_device;
    const double failure_time = report.failure_time;
    const double makespan = report.makespan;
    result.segments.push_back(std::move(segment));

    if (all_done || !failed) {
      result.completed_iterations = next_iteration + segment_completed;
      result.status = Status::Ok();
      break;
    }

    if (failure_kind == "gpu-straggler") {
      // Middle rung of the ladder: the segment closed on a complete iteration boundary,
      // so progress is kept as-is — no rollback, no lost work. Rebind away from the slow
      // device when the workload allows it; otherwise finish degraded on the full set.
      ++result.stats.degradations;
      result.stats.recovery_latency_sec += makespan - failure_time;
      next_iteration += segment_completed;
      offset += makespan;
      const bool can_exclude =
          failed_local >= 0 && alive.size() > 1 &&
          (!data_parallel ||
           total_microbatches % static_cast<int>(alive.size() - 1) == 0);
      if (can_exclude) {
        const int dead_original = alive.at(static_cast<std::size_t>(failed_local));
        dead[static_cast<std::size_t>(dead_original)] = true;
        alive.erase(alive.begin() + failed_local);
      } else {
        straggler_threshold = 0.0;
      }
      continue;
    }

    if (failure_kind == "gpu-fail-stop" || failure_kind == "transfer-retry-exhausted") {
      // Bottom rung: roll back to the newest checkpoint generation that passes digest
      // verification (possibly older than this segment), then rebind. Retry exhaustion
      // keeps the full device set — the fabric failed, not a GPU.
      const CheckpointGeneration* generation = store.NewestValid();
      if (store.committed() > 0 && generation == nullptr) {
        result.completed_iterations = next_iteration + segment_completed;
        result.status = FailedPreconditionError(
            "all " + std::to_string(store.committed()) +
            " committed checkpoint generation(s) failed digest verification — nothing "
            "valid to roll back to");
        finalize();
        return result;
      }
      const double rollback_time = generation != nullptr ? generation->time : offset;
      result.stats.lost_work_sec += (offset + failure_time) - rollback_time;
      result.stats.recovery_latency_sec += makespan - failure_time;
      if (failure_kind == "gpu-fail-stop") {
        ++result.stats.failures;
        const int dead_original = alive.at(static_cast<std::size_t>(failed_local));
        dead[static_cast<std::size_t>(dead_original)] = true;
        alive.erase(alive.begin() + failed_local);
      } else {
        ++result.stats.retry_exhaustions;
      }
      if (generation != nullptr) {
        next_iteration = generation->iteration + 1;
      }  // no valid generation ever committed: restart the segment from its start
      offset += makespan;
      continue;
    }

    result.completed_iterations = next_iteration + segment_completed;
    result.status = FailedPreconditionError(
        "schedule stalled (watchdog) at sim time " + std::to_string(failure_time) +
        " — rebinding cannot fix a livelocked configuration");
    finalize();
    return result;
  }
  finalize();

  // Checkpoint fan-out cost: weights + optimizer state the survivors had to re-stage in
  // each recovery segment's first iteration.
  for (std::size_t i = 1; i < result.segments.size(); ++i) {
    const RunReport& report = result.segments[i].result.report;
    if (!report.iterations.empty()) {
      const IterationStats& first = report.iterations.front();
      result.stats.reswap_bytes +=
          first.swap_in_by_class[static_cast<int>(TensorClass::kWeight)] +
          first.swap_in_by_class[static_cast<int>(TensorClass::kOptimizerState)];
    }
  }
  return result;
}

}  // namespace harmony
