// The analytical swap-volume model of Sec. 3.
//
// Closed forms for the per-iteration swap volume of the weight tensor W under the paper's
// simplifying assumptions (homogeneous GPUs, each holding one layer-level operation on one
// microbatch; layer-granularity tasks; uniform layers):
//
//   DP + per-GPU virtualization : (4m + 2) * N * |W|
//   Harmony-DP                  :        3 * N * |W|
//   Harmony-PP                  :            3 * |W|
//
// plus the straightforward extensions for optimizer state (the paper omits the full model
// "for brevity"; these are derived the same way — one swap-in + one swap-out per use):
//
//   optimizer state K: baselines and Harmony-DP move 2 * N * |K| per iteration (fetched and
//   written back at the update step on every replica); Harmony-PP moves 2 * |K| (no
//   replication). Weight-gradient volume is scheme- and pressure-dependent and is measured
//   empirically instead.
//
// bench_fig5_swap_volume verifies the W forms against the simulator exactly.
#ifndef HARMONY_SRC_CORE_ANALYTIC_H_
#define HARMONY_SRC_CORE_ANALYTIC_H_

#include "src/util/units.h"

namespace harmony {

struct AnalyticSwapModel {
  // m: microbatches per GPU; N: GPUs; weight_bytes: |W| (whole model).
  static double BaselineDpWeightVolume(double weight_bytes, int m, int n_gpus) {
    return (4.0 * m + 2.0) * n_gpus * weight_bytes;
  }
  static double HarmonyDpWeightVolume(double weight_bytes, int n_gpus) {
    return 3.0 * n_gpus * weight_bytes;
  }
  static double HarmonyPpWeightVolume(double weight_bytes) { return 3.0 * weight_bytes; }

  static double BaselineDpOptStateVolume(double k_bytes, int n_gpus) {
    return 2.0 * n_gpus * k_bytes;
  }
  static double HarmonyDpOptStateVolume(double k_bytes, int n_gpus) {
    return 2.0 * n_gpus * k_bytes;
  }
  static double HarmonyPpOptStateVolume(double k_bytes) { return 2.0 * k_bytes; }

  // Ring all-reduce bytes moved per iteration for DP schemes.
  static double AllReduceVolume(double grad_bytes, int n_gpus) {
    if (n_gpus <= 1) {
      return 0.0;
    }
    return 2.0 * static_cast<double>(n_gpus - 1) * grad_bytes;
  }

  // ---- Boundary-corrected forms ------------------------------------------------------------
  //
  // The paper's closed forms assume *zero* cross-task reuse: W is charged a swap-in before
  // and a swap-out after every phase that touches it. A real LRU memory manager reuses a
  // resident tensor whenever adjacent tasks touch it with nothing big in between, which
  // saves a few per-layer units at the pass boundaries:
  //   - top layer: FWD -> LOSS -> BWD keeps W resident (2 units saved per microbatch in the
  //     per-microbatch baseline order; 2 units once under input-batch grouping);
  //   - bottom layer: BWD(mb_i) -> FWD(mb_{i+1}) and BWD -> UPDATE adjacency (the baseline's
  //     rigid all-reduce sweep destroys the latter when N > 1).
  // These corrections are exact for the uniform-layer analytic setup and vanish as O(1/R);
  // scheduler_test verifies the simulator against them bit-for-bit, and bench_fig5 reports
  // both the idealized and corrected predictions next to the measurement.
  //
  // layer_bytes: per-layer |W_l|; layers: R; m: microbatches per GPU; n_gpus: N.
  static double BaselineDpWeightVolumeCorrected(double layer_bytes, int layers, int m,
                                                int n_gpus) {
    const double reuse_units = n_gpus > 1 ? 4.0 * m - 2.0 : 4.0 * m;
    const double units_per_replica = (4.0 * m + 2.0) * layers - reuse_units;
    return units_per_replica * n_gpus * layer_bytes;
  }
  static double HarmonyDpWeightVolumeCorrected(double layer_bytes, int layers, int n_gpus) {
    // Top layer saves its backward swap-in, bottom layer its forward swap-in (resident from
    // the previous iteration's jit update).
    return (3.0 * layers - 2.0) * n_gpus * layer_bytes;
  }
  // Harmony-PP reuse depends on pack placement adjacency; the simulator stays within
  // [2|W| - 2|W_l|, 3|W|], and needs no weight traffic at all once every GPU can hold its
  // share of the persistent state (the paper's Sec. 4 observation).
  static double HarmonyPpWeightVolumeLowerBound(double layer_bytes, int layers) {
    return (2.0 * layers - 2.0) * layer_bytes;
  }
};

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_ANALYTIC_H_
