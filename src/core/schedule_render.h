// ASCII rendering of an executed schedule (Fig. 4's timeline as text).
#ifndef HARMONY_SRC_CORE_SCHEDULE_RENDER_H_
#define HARMONY_SRC_CORE_SCHEDULE_RENDER_H_

#include <string>
#include <vector>

#include "src/graph/task.h"
#include "src/runtime/engine.h"

namespace harmony {

// Proportional Gantt chart, one row per device, `width` characters across the makespan.
// Each compute segment is labelled "<mb><F|B|U|A>L<layer>" truncated to its width; idle
// time renders as '.'.
std::string RenderTimeline(const Plan& plan, const std::vector<TaskTrace>& timeline,
                           int width = 100);

// Compact listing: one line per task in start order, with timings.
std::string ListTimeline(const Plan& plan, const std::vector<TaskTrace>& timeline);

}  // namespace harmony

#endif  // HARMONY_SRC_CORE_SCHEDULE_RENDER_H_
