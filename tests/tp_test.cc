// Harmony-TP (intra-op splitting) tests: structure, sharding arithmetic, collectives,
// executability, and the headline property — feasibility beyond single-GPU layer sizes.
#include <gtest/gtest.h>

#include "src/core/harmony_tp.h"
#include "src/core/session.h"
#include "src/graph/model_zoo.h"

namespace harmony {
namespace {

Model SmallModel(Bytes param_bytes = 8 * kMiB) {
  UniformModelConfig config;
  config.num_layers = 3;
  config.param_bytes = param_bytes;
  config.act_bytes_per_sample = 2 * kMiB;
  config.optimizer_state_factor = 1.0;
  config.fwd_flops_per_sample = 1e9;
  return MakeUniformModel(config);
}

Plan BuildTp(const Model& model, TensorRegistry* registry, int n_gpus, int microbatches,
             bool grouping = true, bool jit = true) {
  ServerConfig server;
  server.num_gpus = n_gpus;
  const Machine machine = MakeCommodityServer(server);
  HarmonyTpOptions options;
  options.microbatches = microbatches;
  options.iterations = 1;
  options.input_batch_grouping = grouping;
  options.jit_updates = jit;
  return BuildHarmonyTpPlan(model, machine, registry, options);
}

TEST(HarmonyTpTest, PlanValidatesAndHasShardSymmetricStructure) {
  const Model model = SmallModel();
  TensorRegistry registry;
  const Plan plan = BuildTp(model, &registry, 4, 2);
  ASSERT_TRUE(plan.Validate().ok());
  // Every device runs the same number of tasks (fully symmetric shards).
  const std::size_t per_device = plan.per_device_order[0].size();
  for (const auto& order : plan.per_device_order) {
    EXPECT_EQ(order.size(), per_device);
  }
  // R=3 layers, M=2, N=4: forward = R*M*N, activation collectives = fwd waves (R*M) +
  // bwd waves above layer 0 ((R-1)*M), each with N member tasks.
  int fwd = 0;
  int collectives = 0;
  for (const Task& task : plan.tasks) {
    if (task.kind == TaskKind::kForward) {
      ++fwd;
    }
    if (task.kind == TaskKind::kAllReduce) {
      ++collectives;
    }
  }
  EXPECT_EQ(fwd, 3 * 2 * 4);
  EXPECT_EQ(collectives, (3 * 2 + 2 * 2) * 4);
}

TEST(HarmonyTpTest, WeightsAreShardedNotReplicated) {
  const Model model = SmallModel();
  TensorRegistry registry;
  const Plan plan = BuildTp(model, &registry, 4, 1);
  (void)plan;
  // Sum of all weight-tensor bytes equals the model total (1/N per shard), not N x total.
  const Bytes weight_bytes = registry.TotalBytes(TensorClass::kWeight);
  EXPECT_EQ(weight_bytes, model.total_param_bytes());
  EXPECT_EQ(registry.TotalBytes(TensorClass::kOptimizerState), model.total_opt_state_bytes());
}

TEST(HarmonyTpTest, PeakWorkingSetShrinksWithShards) {
  const Model model = SmallModel(32 * kMiB);
  auto peak_for = [&](int n_gpus) {
    TensorRegistry registry;
    const Plan plan = BuildTp(model, &registry, n_gpus, 1);
    const auto peaks = plan.PeakTaskWorkingSet(registry);
    return *std::max_element(peaks.begin(), peaks.end());
  };
  const Bytes p1 = peak_for(1);
  const Bytes p2 = peak_for(2);
  const Bytes p4 = peak_for(4);
  EXPECT_GT(p1, p2);
  EXPECT_GT(p2, p4);
}

TEST(HarmonyTpTest, SamplesPerIterationNotMultipliedByShards) {
  const Model model = SmallModel();
  TensorRegistry registry;
  HarmonyTpOptions options;
  options.microbatches = 3;
  options.microbatch_size = 5;
  options.iterations = 1;
  ServerConfig server;
  server.num_gpus = 4;
  const Machine machine = MakeCommodityServer(server);
  const Plan plan = BuildHarmonyTpPlan(model, machine, &registry, options);
  EXPECT_EQ(plan.samples_per_iteration, 15);
}

TEST(HarmonyTpTest, UngroupedAndNoJitVariantsValidate) {
  const Model model = SmallModel();
  for (bool grouping : {true, false}) {
    for (bool jit : {true, false}) {
      TensorRegistry registry;
      const Plan plan = BuildTp(model, &registry, 2, 3, grouping, jit);
      EXPECT_TRUE(plan.Validate().ok()) << "grouping=" << grouping << " jit=" << jit;
    }
  }
}

TEST(HarmonyTpTest, RunsEndToEndAndMovesCollectiveBytes) {
  const Model model = SmallModel();
  SessionConfig config;
  config.server.num_gpus = 4;
  config.server.gpu = TestGpu(64 * kMiB, TFlops(1.0));
  config.scheme = Scheme::kHarmonyTp;
  config.microbatches = 2;
  config.iterations = 2;
  const SessionResult result = RunTraining(model, config);
  EXPECT_EQ(result.report.iterations.size(), 2u);
  // Two activation collectives per interior layer per microbatch; bytes flow every iter.
  EXPECT_GT(result.report.iterations[1].collective_bytes, 0);
  // Shards are symmetric: equal busy time everywhere.
  for (int d = 1; d < 4; ++d) {
    EXPECT_NEAR(result.report.device_busy[static_cast<std::size_t>(d)],
                result.report.device_busy[0], 1e-9);
  }
}

TEST(HarmonyTpTest, FeasibleWhereLayerGranularitySchemesAreNot) {
  // One layer's weights alone exceed a GPU: PP/DP single-task working sets cannot fit, the
  // sharded tasks can.
  UniformModelConfig mc;
  mc.num_layers = 3;
  mc.param_bytes = 48 * kMiB;
  mc.act_bytes_per_sample = 1 * kMiB;
  mc.optimizer_state_factor = 1.0;
  mc.fwd_flops_per_sample = 1e9;
  const Model model = MakeUniformModel(mc);
  const Bytes capacity = 72 * kMiB;  // < W + dW of one layer

  auto peak_for = [&](Scheme scheme) {
    SessionConfig config;
    config.server.num_gpus = 4;
    config.server.gpu = TestGpu(capacity, TFlops(1.0));
    config.scheme = scheme;
    config.microbatches = 2;
    const auto peaks = ProbePeakWorkingSet(model, config);
    return *std::max_element(peaks.begin(), peaks.end());
  };
  EXPECT_GT(peak_for(Scheme::kHarmonyPp), capacity);
  EXPECT_GT(peak_for(Scheme::kBaselineDp), capacity);
  EXPECT_LE(peak_for(Scheme::kHarmonyTp), capacity);

  // And it actually runs under that capacity.
  SessionConfig config;
  config.server.num_gpus = 4;
  config.server.gpu = TestGpu(capacity, TFlops(1.0));
  config.scheme = Scheme::kHarmonyTp;
  config.microbatches = 2;
  config.iterations = 2;
  const SessionResult result = RunTraining(model, config);
  EXPECT_GT(result.report.steady_throughput(), 0.0);
}

TEST(HarmonyTpTest, SchemeNameRegistered) {
  EXPECT_STREQ(SchemeName(Scheme::kHarmonyTp), "harmony-tp");
  EXPECT_TRUE(DefaultPolicyFor(Scheme::kHarmonyTp, true).allow_p2p);
}

}  // namespace
}  // namespace harmony
