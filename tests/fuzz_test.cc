// Randomized property tests. Each seed deterministically generates a model, a scheme and a
// knob configuration; the run must complete (the engine fatally reports deadlocks and
// leaked pins via MemorySystem::CheckQuiescent), and for the numeric sweep the trajectory
// must match the sequential reference. This exercises eviction, defragmentation, staged
// fetches, prefetch cancellation and collective rendezvous under configurations no
// hand-written test would pick — at the minimum feasible capacity, where pressure is worst.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/hw/transfer_manager.h"
#include "src/numeric/plan_executor.h"
#include "src/numeric/reference.h"
#include "src/util/rng.h"
#include "tests/test_models.h"

namespace harmony {
namespace {

class RandomRunTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomRunTest, CompletesAtMinimalFeasibleCapacity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  const Model model = test_models::RandomUniformModel(rng, test_models::FuzzModelRanges());
  SessionConfig config = test_models::RandomFuzzSession(rng, model.num_layers());
  test_models::FitMinimalCapacity(model, &config);

  const SessionResult result = RunTraining(model, config);
  EXPECT_GT(result.report.makespan, 0.0);
  ASSERT_EQ(result.report.iterations.size(), 2u);
  for (const IterationStats& it : result.report.iterations) {
    EXPECT_GT(it.duration(), 0.0);
    EXPECT_GE(it.swap_in, 0);
    EXPECT_GE(it.swap_out, 0);
  }
  // High water never exceeds capacity (the allocator physically cannot, but the counter
  // path could lie; make sure it does not).
  for (Bytes high_water : result.report.device_high_water) {
    EXPECT_LE(high_water, config.server.gpu.memory_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRunTest, ::testing::Range(0, 40));

// Per-tensor churn counters cross-checked against an event-granular recount. With
// audit_eviction on, the MemorySystem appends every swap-in, eviction (clean-drop or
// write-back), staged peer write-back, and p2p fetch to the churn audit log; rebuilding the
// per-tensor counters from that log must reproduce report.tensor_churn *exactly*, and the
// per-device event sums must equal the MemoryCounters byte totals. Seed parity flips the
// write-back-clean policy so both eviction flavors are exercised.
class ChurnRecountTest : public ::testing::TestWithParam<int> {};

TEST_P(ChurnRecountTest, AuditLogRecountMatchesChurnCounters) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 15485863 + 101);
  const Model model = test_models::RandomUniformModel(rng, test_models::ChurnModelRanges());
  SessionConfig config = test_models::RandomChurnSession(rng, model.num_layers());
  MemoryPolicy policy = DefaultPolicyFor(config.scheme, config.p2p);
  policy.write_back_clean = seed % 2 == 0;
  config.policy = policy;
  test_models::FitMinimalCapacity(model, &config);

  const SessionResult result = RunTraining(model, config);
  ASSERT_FALSE(result.churn_audit_log.empty());

  // Rebuild per-tensor counters and per-device byte totals from the event log.
  std::map<TensorId, TensorChurnCounters> recount;
  std::vector<Bytes> swap_in_per_device(static_cast<std::size_t>(config.server.num_gpus), 0);
  std::vector<Bytes> swap_out_per_device(static_cast<std::size_t>(config.server.num_gpus), 0);
  for (const ChurnEvent& event : result.churn_audit_log) {
    TensorChurnCounters& c = recount[event.tensor];
    const auto device = static_cast<std::size_t>(event.device);
    switch (event.kind) {
      case ChurnKind::kSwapIn:
        ++c.swap_ins;
        c.swap_in_bytes += event.bytes;
        swap_in_per_device[device] += event.bytes;
        break;
      case ChurnKind::kEvictCleanDrop:
        ++c.evictions;
        ++c.clean_drops;
        c.clean_drop_bytes += event.bytes;
        break;
      case ChurnKind::kEvictWriteBack:
        ++c.evictions;
        ++c.write_backs;
        c.swap_out_bytes += event.bytes;
        swap_out_per_device[device] += event.bytes;
        break;
      case ChurnKind::kPeerStageWriteBack:
        ++c.write_backs;
        c.swap_out_bytes += event.bytes;
        swap_out_per_device[device] += event.bytes;
        break;
      case ChurnKind::kP2pIn:
        ++c.p2p_ins;
        c.p2p_in_bytes += event.bytes;
        break;
    }
  }

  // Every recounted tensor appears in the report, with identical counters.
  ASSERT_EQ(result.report.tensor_churn.size(), recount.size());
  for (const RunReport::TensorChurn& entry : result.report.tensor_churn) {
    auto it = recount.find(entry.tensor);
    ASSERT_NE(it, recount.end()) << "tensor " << entry.tensor << " missing from recount";
    const TensorChurnCounters& c = it->second;
    EXPECT_EQ(entry.evictions, c.evictions) << entry.name;
    EXPECT_EQ(entry.clean_drops, c.clean_drops) << entry.name;
    EXPECT_EQ(entry.write_backs, c.write_backs) << entry.name;
    EXPECT_EQ(entry.swap_ins, c.swap_ins) << entry.name;
    EXPECT_EQ(entry.p2p_ins, c.p2p_ins) << entry.name;
    EXPECT_EQ(entry.swap_in_bytes, c.swap_in_bytes) << entry.name;
    EXPECT_EQ(entry.swap_out_bytes, c.swap_out_bytes) << entry.name;
    EXPECT_EQ(entry.p2p_in_bytes, c.p2p_in_bytes) << entry.name;
    EXPECT_EQ(entry.clean_drop_bytes, c.clean_drop_bytes) << entry.name;
  }

  // The event sums also reproduce the per-device MemoryCounters totals — a third
  // independent accounting path over the same traffic.
  for (int d = 0; d < result.report.num_devices(); ++d) {
    const auto i = static_cast<std::size_t>(d);
    EXPECT_EQ(swap_in_per_device[i], result.report.device_swap_in[i]) << "gpu" << d;
    EXPECT_EQ(swap_out_per_device[i], result.report.device_swap_out[i]) << "gpu" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnRecountTest, ::testing::Range(0, 20));

class RandomNumericTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomNumericTest, TrajectoryMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);

  std::vector<int> dims;
  const int layers = 2 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i <= layers; ++i) {
    dims.push_back(3 + static_cast<int>(rng.NextBounded(9)));
  }
  const Model model = MakeMlp(dims);

  SessionConfig config;
  config.scheme = test_models::PickScheme(rng);
  config.server.num_gpus =
      1 + static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(std::min(3, layers))));
  config.microbatches = 1 + static_cast<int>(rng.NextBounded(3));
  config.microbatch_size = 1 + static_cast<int>(rng.NextBounded(3));
  config.iterations = 1 + static_cast<int>(rng.NextBounded(3));
  config.grouping = rng.NextBounded(2) == 0;
  config.group_size = static_cast<int>(rng.NextBounded(3));
  config.jit_updates = rng.NextBounded(2) == 0;
  config.recompute = rng.NextBounded(3) == 0;

  const Machine machine = MakeCommodityServer(config.server);
  TensorRegistry registry;
  const Plan plan = BuildPlanForConfig(model, machine, &registry, config);
  ASSERT_TRUE(plan.Validate().ok());

  const bool data_parallel =
      config.scheme == Scheme::kBaselineDp || config.scheme == Scheme::kHarmonyDp;
  const int replicas = data_parallel ? config.server.num_gpus : 1;
  const int total_microbatches =
      (config.scheme == Scheme::kHarmonyTp ? 1 : replicas) * config.microbatches;

  const DataFn data =
      SyntheticData(dims, config.microbatch_size, 1000 + static_cast<std::uint64_t>(GetParam()));
  PlanExecutorConfig exec_config;
  exec_config.dims = dims;
  exec_config.init_seed = 21;
  exec_config.microbatches_per_replica = config.microbatches;
  exec_config.lr = 0.03;
  PlanExecutor executor(&plan, exec_config, data);
  executor.Run();

  const ReferenceResult reference =
      TrainReference(dims, 21, data, config.iterations, total_microbatches,
                     config.microbatch_size, 0.03);

  if (config.scheme == Scheme::kHarmonyTp) {
    EXPECT_LT(MaxParamDiff(executor.AssembleShardedParams(), reference.params), 1e-9)
        << SchemeName(config.scheme);
  } else {
    for (int r = 0; r < executor.num_replicas(); ++r) {
      EXPECT_LT(MaxParamDiff(executor.replica_params(r), reference.params), 1e-9)
          << SchemeName(config.scheme) << " replica " << r;
    }
  }
  ASSERT_EQ(executor.losses().size(), reference.losses.size());
  for (std::size_t i = 0; i < reference.losses.size(); ++i) {
    EXPECT_NEAR(executor.losses()[i], reference.losses[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNumericTest, ::testing::Range(0, 24));

// Property test for the incremental flow model: drive a TransferManager through randomized
// arrival/departure churn and, at interleaved probe times, check its incrementally
// maintained state (per-link active counts, per-link flow lists, flow rates, completion
// heap) against a from-scratch recomputation. DebugCheckConsistency returns an empty
// string when everything matches and a description of the first divergence otherwise.
class RandomFlowChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomFlowChurnTest, IncrementalStateMatchesFromScratchRebuild) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);

  ServerConfig server;
  server.num_gpus = 2 + static_cast<int>(rng.NextBounded(7));  // 2..8 GPUs
  server.gpus_per_switch = 2 + static_cast<int>(rng.NextBounded(3));
  Topology topo = MakeCommodityServerTopology(server);
  Simulator sim;
  TransferManager tm(&sim, &topo);

  const auto gpu = [&](std::uint64_t bound) {
    return topo.gpu_node(static_cast<int>(rng.NextBounded(bound)));
  };
  const int n = server.num_gpus;
  const int transfers = 40 + static_cast<int>(rng.NextBounded(160));
  int real_flows = 0;  // same-node and zero-byte transfers short-circuit past the flow model
  int completions_observed = 0;
  for (int t = 0; t < transfers; ++t) {
    const NodeId src = gpu(static_cast<std::uint64_t>(n));
    const bool to_host = rng.NextBounded(3) != 0;  // mostly swap traffic, some p2p
    const NodeId dst = to_host ? topo.host_node() : gpu(static_cast<std::uint64_t>(n));
    const Bytes bytes = static_cast<Bytes>(rng.NextBounded(24)) * kMiB;  // zero-byte legal
    const TransferKind kind = to_host ? TransferKind::kSwapOut : TransferKind::kPeerToPeer;
    const double start = rng.NextDouble(0.0, 0.2);
    if (src != dst && bytes > 0) {
      ++real_flows;
    }
    sim.ScheduleAfter(start, [&tm, &completions_observed, src, dst, bytes, kind] {
      tm.StartTransfer(src, dst, bytes, kind)
          ->OnFired([&completions_observed] { ++completions_observed; });
    });
  }
  // Probes land throughout the churn window, including between the events a completion or
  // arrival schedules — exactly where a stale heap entry or count would hide.
  for (int probe = 0; probe < 64; ++probe) {
    sim.ScheduleAfter(rng.NextDouble(0.0, 0.4), [&tm] {
      EXPECT_EQ(tm.DebugCheckConsistency(), "");
    });
  }
  sim.RunUntilIdle();

  EXPECT_EQ(tm.DebugCheckConsistency(), "");
  EXPECT_EQ(tm.num_active_flows(), 0);
  EXPECT_EQ(tm.flows_completed(), real_flows);
  EXPECT_EQ(completions_observed, transfers);  // every done event fires, flow or not
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlowChurnTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace harmony
