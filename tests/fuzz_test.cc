// Randomized property tests. Each seed deterministically generates a model, a scheme and a
// knob configuration; the run must complete (the engine fatally reports deadlocks and
// leaked pins via MemorySystem::CheckQuiescent), and for the numeric sweep the trajectory
// must match the sequential reference. This exercises eviction, defragmentation, staged
// fetches, prefetch cancellation and collective rendezvous under configurations no
// hand-written test would pick — at the minimum feasible capacity, where pressure is worst.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/hw/transfer_manager.h"
#include "src/numeric/plan_executor.h"
#include "src/numeric/reference.h"
#include "src/util/rng.h"

namespace harmony {
namespace {

Scheme PickScheme(Rng& rng, int max_gpus_hint) {
  (void)max_gpus_hint;
  constexpr Scheme kSchemes[] = {Scheme::kBaselineDp, Scheme::kBaselinePp, Scheme::kHarmonyDp,
                                 Scheme::kHarmonyPp, Scheme::kHarmonyTp};
  return kSchemes[rng.NextBounded(5)];
}

class RandomRunTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomRunTest, CompletesAtMinimalFeasibleCapacity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);

  UniformModelConfig mc;
  mc.name = "fuzz";
  mc.num_layers = 2 + static_cast<int>(rng.NextBounded(8));
  mc.param_bytes = (1 + static_cast<Bytes>(rng.NextBounded(16))) * kMiB;
  mc.act_bytes_per_sample = (1 + static_cast<Bytes>(rng.NextBounded(4))) * kMiB;
  mc.stash_bytes_per_sample = static_cast<Bytes>(rng.NextBounded(8)) * kMiB;
  mc.workspace_bytes_per_sample = static_cast<Bytes>(rng.NextBounded(2)) * kMiB;
  mc.optimizer_state_factor = static_cast<double>(rng.NextBounded(3));
  mc.fwd_flops_per_sample = 1e8 + rng.NextDouble() * 1e9;
  const Model model = MakeUniformModel(mc);

  SessionConfig config;
  config.scheme = PickScheme(rng, 4);
  // baseline-pp needs at least one layer per stage.
  const int max_gpus = std::min(4, mc.num_layers);
  config.server.num_gpus = 1 + static_cast<int>(rng.NextBounded(
                                   static_cast<std::uint64_t>(max_gpus)));
  config.microbatches = 1 + static_cast<int>(rng.NextBounded(4));
  config.microbatch_size = 1 + static_cast<int>(rng.NextBounded(3));
  config.iterations = 2;
  config.pack_size = 1 + static_cast<int>(rng.NextBounded(3));
  config.grouping = rng.NextBounded(2) == 0;
  config.group_size = static_cast<int>(rng.NextBounded(3));  // 0 = all
  config.jit_updates = rng.NextBounded(2) == 0;
  config.p2p = rng.NextBounded(2) == 0;
  config.recompute = rng.NextBounded(4) == 0;
  config.prefetch = rng.NextBounded(2) == 0;
  config.balanced_packing = rng.NextBounded(2) == 0;
  config.lookahead_eviction = rng.NextBounded(2) == 0;

  // Minimal feasible capacity: the largest single-task working set plus a sliver. This is
  // the harshest legal regime — every task must evict almost everything else.
  const auto peaks = ProbePeakWorkingSet(model, config);
  const Bytes peak = *std::max_element(peaks.begin(), peaks.end());
  config.server.gpu = TestGpu(peak + peak / 16 + 1 * kMiB, TFlops(1.0));

  const SessionResult result = RunTraining(model, config);
  EXPECT_GT(result.report.makespan, 0.0);
  ASSERT_EQ(result.report.iterations.size(), 2u);
  for (const IterationStats& it : result.report.iterations) {
    EXPECT_GT(it.duration(), 0.0);
    EXPECT_GE(it.swap_in, 0);
    EXPECT_GE(it.swap_out, 0);
  }
  // High water never exceeds capacity (the allocator physically cannot, but the counter
  // path could lie; make sure it does not).
  for (Bytes high_water : result.report.device_high_water) {
    EXPECT_LE(high_water, config.server.gpu.memory_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRunTest, ::testing::Range(0, 40));

class RandomNumericTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomNumericTest, TrajectoryMatchesReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);

  std::vector<int> dims;
  const int layers = 2 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i <= layers; ++i) {
    dims.push_back(3 + static_cast<int>(rng.NextBounded(9)));
  }
  const Model model = MakeMlp(dims);

  SessionConfig config;
  config.scheme = PickScheme(rng, layers);
  config.server.num_gpus =
      1 + static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(std::min(3, layers))));
  config.microbatches = 1 + static_cast<int>(rng.NextBounded(3));
  config.microbatch_size = 1 + static_cast<int>(rng.NextBounded(3));
  config.iterations = 1 + static_cast<int>(rng.NextBounded(3));
  config.grouping = rng.NextBounded(2) == 0;
  config.group_size = static_cast<int>(rng.NextBounded(3));
  config.jit_updates = rng.NextBounded(2) == 0;
  config.recompute = rng.NextBounded(3) == 0;

  const Machine machine = MakeCommodityServer(config.server);
  TensorRegistry registry;
  const Plan plan = BuildPlanForConfig(model, machine, &registry, config);
  ASSERT_TRUE(plan.Validate().ok());

  const bool data_parallel =
      config.scheme == Scheme::kBaselineDp || config.scheme == Scheme::kHarmonyDp;
  const int replicas = data_parallel ? config.server.num_gpus : 1;
  const int total_microbatches =
      (config.scheme == Scheme::kHarmonyTp ? 1 : replicas) * config.microbatches;

  const DataFn data =
      SyntheticData(dims, config.microbatch_size, 1000 + static_cast<std::uint64_t>(GetParam()));
  PlanExecutorConfig exec_config;
  exec_config.dims = dims;
  exec_config.init_seed = 21;
  exec_config.microbatches_per_replica = config.microbatches;
  exec_config.lr = 0.03;
  PlanExecutor executor(&plan, exec_config, data);
  executor.Run();

  const ReferenceResult reference =
      TrainReference(dims, 21, data, config.iterations, total_microbatches,
                     config.microbatch_size, 0.03);

  if (config.scheme == Scheme::kHarmonyTp) {
    EXPECT_LT(MaxParamDiff(executor.AssembleShardedParams(), reference.params), 1e-9)
        << SchemeName(config.scheme);
  } else {
    for (int r = 0; r < executor.num_replicas(); ++r) {
      EXPECT_LT(MaxParamDiff(executor.replica_params(r), reference.params), 1e-9)
          << SchemeName(config.scheme) << " replica " << r;
    }
  }
  ASSERT_EQ(executor.losses().size(), reference.losses.size());
  for (std::size_t i = 0; i < reference.losses.size(); ++i) {
    EXPECT_NEAR(executor.losses()[i], reference.losses[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNumericTest, ::testing::Range(0, 24));

// Property test for the incremental flow model: drive a TransferManager through randomized
// arrival/departure churn and, at interleaved probe times, check its incrementally
// maintained state (per-link active counts, per-link flow lists, flow rates, completion
// heap) against a from-scratch recomputation. DebugCheckConsistency returns an empty
// string when everything matches and a description of the first divergence otherwise.
class RandomFlowChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomFlowChurnTest, IncrementalStateMatchesFromScratchRebuild) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);

  ServerConfig server;
  server.num_gpus = 2 + static_cast<int>(rng.NextBounded(7));  // 2..8 GPUs
  server.gpus_per_switch = 2 + static_cast<int>(rng.NextBounded(3));
  Topology topo = MakeCommodityServerTopology(server);
  Simulator sim;
  TransferManager tm(&sim, &topo);

  const auto gpu = [&](std::uint64_t bound) {
    return topo.gpu_node(static_cast<int>(rng.NextBounded(bound)));
  };
  const int n = server.num_gpus;
  const int transfers = 40 + static_cast<int>(rng.NextBounded(160));
  int real_flows = 0;  // same-node and zero-byte transfers short-circuit past the flow model
  int completions_observed = 0;
  for (int t = 0; t < transfers; ++t) {
    const NodeId src = gpu(static_cast<std::uint64_t>(n));
    const bool to_host = rng.NextBounded(3) != 0;  // mostly swap traffic, some p2p
    const NodeId dst = to_host ? topo.host_node() : gpu(static_cast<std::uint64_t>(n));
    const Bytes bytes = static_cast<Bytes>(rng.NextBounded(24)) * kMiB;  // zero-byte legal
    const TransferKind kind = to_host ? TransferKind::kSwapOut : TransferKind::kPeerToPeer;
    const double start = rng.NextDouble(0.0, 0.2);
    if (src != dst && bytes > 0) {
      ++real_flows;
    }
    sim.ScheduleAfter(start, [&tm, &completions_observed, src, dst, bytes, kind] {
      tm.StartTransfer(src, dst, bytes, kind)
          ->OnFired([&completions_observed] { ++completions_observed; });
    });
  }
  // Probes land throughout the churn window, including between the events a completion or
  // arrival schedules — exactly where a stale heap entry or count would hide.
  for (int probe = 0; probe < 64; ++probe) {
    sim.ScheduleAfter(rng.NextDouble(0.0, 0.4), [&tm] {
      EXPECT_EQ(tm.DebugCheckConsistency(), "");
    });
  }
  sim.RunUntilIdle();

  EXPECT_EQ(tm.DebugCheckConsistency(), "");
  EXPECT_EQ(tm.num_active_flows(), 0);
  EXPECT_EQ(tm.flows_completed(), real_flows);
  EXPECT_EQ(completions_observed, transfers);  // every done event fires, flow or not
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFlowChurnTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace harmony
