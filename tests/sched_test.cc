// Multi-tenant scheduler tier (ctest label `sched`, DESIGN.md §13).
//
// Five layers of evidence that the job-stream layer is trustworthy:
//   1. Grammar — --jobs / --trace / --quota specs round-trip (ToString re-parses to
//      itself) and malformed specs return typed errors carrying the byte offset.
//   2. Serving plans — forward-only task shape, and weights never write back (evictions
//      are clean drops: a served model's weights are immutable).
//   3. Determinism grid — seeded traces x {fifo, priority} x sim_threads {1, 2, 8}
//      produce byte-identical run signatures (ClusterReport::Render).
//   4. Conservation — every job's arrival→finish interval partitions exactly into
//      queueing and service; completed jobs lose zero iterations; per-tenant GPU-seconds
//      sum to the cluster's busy total.
//   5. Preemption — the checkpoint → release → re-admit → restore cycle commits real
//      checkpoint traffic, pays a real restore, and still completes every iteration.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/session.h"
#include "src/graph/model_zoo.h"
#include "src/runtime/cluster_scheduler.h"

namespace harmony {
namespace {

ClusterSchedulerConfig SmallCluster(int nodes = 1, int gpus_per_node = 4) {
  ClusterSchedulerConfig config;
  config.server.num_gpus = gpus_per_node;
  config.num_nodes = nodes;
  config.sim_threads = 1;
  return config;
}

JobSpec TrainJob(double arrival, const std::string& tenant, int gpus, int iters,
                 int priority = 0) {
  JobSpec job;
  job.kind = JobKind::kTraining;
  job.arrival = arrival;
  job.tenant = tenant;
  job.model = "toy";
  job.scheme = Scheme::kHarmonyPp;
  job.gpus = gpus;
  job.iterations = iters;
  job.priority = priority;
  return job;
}

// ---- 1. grammar -------------------------------------------------------------------------

TEST(JobsSpecTest, ParsesAndRoundTripsThroughToString) {
  const StatusOr<std::vector<JobSpec>> jobs = ParseJobsSpec(
      "train@0:tenant=a,gpus=2,iters=3,prio=1,scheme=harmony-dp;"
      "serve@1.5:tenant=b,model=toy,mb=8,mbs=1");
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs.value().size(), 2u);
  const JobSpec& train = jobs.value()[0];
  EXPECT_EQ(train.kind, JobKind::kTraining);
  EXPECT_EQ(train.scheme, Scheme::kHarmonyDp);
  EXPECT_EQ(train.gpus, 2);
  EXPECT_EQ(train.iterations, 3);
  EXPECT_EQ(train.priority, 1);
  const JobSpec& serve = jobs.value()[1];
  EXPECT_EQ(serve.kind, JobKind::kServing);
  EXPECT_EQ(serve.scheme, Scheme::kServing);
  EXPECT_DOUBLE_EQ(serve.arrival, 1.5);
  EXPECT_EQ(serve.microbatches, 8);

  // ToString is the canonical spelling: it re-parses to an identical ToString.
  for (const JobSpec& job : jobs.value()) {
    const StatusOr<std::vector<JobSpec>> again = ParseJobsSpec(job.ToString());
    ASSERT_TRUE(again.ok()) << job.ToString() << ": " << again.status().ToString();
    ASSERT_EQ(again.value().size(), 1u);
    EXPECT_EQ(again.value()[0].ToString(), job.ToString());
  }
}

TEST(JobsSpecTest, ArrivalRenderingKeepsMillisecondStaggerAtLargeTimes) {
  // Bursty traces stagger burst arrivals by 1e-3; at day-scale t a 6-significant-digit
  // rendering would collapse them. ToString must round-trip the exact double.
  const StatusOr<std::vector<JobSpec>> jobs =
      ParseJobsSpec("train@86400.001;train@86400.002");
  ASSERT_TRUE(jobs.ok()) << jobs.status().ToString();
  ASSERT_EQ(jobs.value().size(), 2u);
  EXPECT_NE(jobs.value()[0].ToString(), jobs.value()[1].ToString());
  for (const JobSpec& job : jobs.value()) {
    const StatusOr<std::vector<JobSpec>> again = ParseJobsSpec(job.ToString());
    ASSERT_TRUE(again.ok()) << job.ToString() << ": " << again.status().ToString();
    ASSERT_EQ(again.value().size(), 1u);
    EXPECT_EQ(again.value()[0].arrival, job.arrival) << job.ToString();
  }
}

TEST(JobsSpecTest, MalformedSpecsReturnTypedByteOffsetErrors) {
  const struct {
    const char* spec;
    const char* why_fragment;
    int offset;
  } cases[] = {
      {"train", "expected (train|serve)@", 0},
      {"poke@0", "job kind must be 'train' or 'serve'", 0},
      {"train@x", "arrival time must be a finite number >= 0", 6},
      {"train@0:bogus=1", "unknown job option 'bogus'", 8},
      {"train@0:gpus=2,gpus=4", "duplicate job option 'gpus'", 15},
      {"train@0:gpus=0", "must be an integer in [1,", 13},
      {"train@0:tenant=", "tenant must be a nonempty", 15},
      {"serve@0:scheme=harmony-pp", "serving jobs have a fixed scheme", 8},
      {"train@0:scheme=warp", "unknown training scheme 'warp'", 15},
      {"train@0;serve@y", "arrival time must be a finite number >= 0", 14},
  };
  for (const auto& c : cases) {
    const StatusOr<std::vector<JobSpec>> parsed = ParseJobsSpec(c.spec);
    ASSERT_FALSE(parsed.ok()) << c.spec;
    const std::string message = parsed.status().ToString();
    EXPECT_NE(message.find("malformed jobs spec"), std::string::npos) << message;
    EXPECT_NE(message.find(c.why_fragment), std::string::npos) << message;
    EXPECT_NE(message.find("(at byte " + std::to_string(c.offset) + ";"),
              std::string::npos)
        << c.spec << " -> " << message;
  }
}

TEST(QuotaSpecTest, ParsesFallbackAndPerTenantEntries) {
  const StatusOr<QuotaMap> quotas = ParseQuotaSpec("*:mem_gib=64;a:mem_gib=8,bw=0.5;b:bw=1");
  ASSERT_TRUE(quotas.ok()) << quotas.status().ToString();
  EXPECT_EQ(quotas.value().fallback.host_mem_bytes, 64 * kGiB);
  EXPECT_DOUBLE_EQ(quotas.value().fallback.bw_fraction, 1.0);
  EXPECT_EQ(quotas.value().For("a").host_mem_bytes, 8 * kGiB);
  EXPECT_DOUBLE_EQ(quotas.value().For("a").bw_fraction, 0.5);
  EXPECT_LT(quotas.value().For("b").host_mem_bytes, 0);  // unlimited
  // Unlisted tenants inherit the fallback.
  EXPECT_EQ(quotas.value().For("zzz").host_mem_bytes, 64 * kGiB);
}

TEST(QuotaSpecTest, MalformedSpecsReturnTypedByteOffsetErrors) {
  const struct {
    const char* spec;
    const char* why_fragment;
    int offset;
  } cases[] = {
      {"a", "expected <tenant|*>:key=value", 0},
      {"a:mem_gib=8;a:bw=0.5", "duplicate quota for tenant 'a'", 12},
      {"a:speed=9", "unknown quota option 'speed'", 2},
      {"a:bw=0.5,bw=0.5", "duplicate quota option 'bw'", 9},
      {"a:bw=1.5", "bw must be a bandwidth fraction in (0, 1]", 5},
      {"a:bw=0", "bw must be a bandwidth fraction in (0, 1]", 5},
      {"a:mem_gib=lots", "mem_gib must be a finite number >= 0", 10},
      {"t!:bw=0.5", "tenant must be '*' or a", 0},
  };
  for (const auto& c : cases) {
    const StatusOr<QuotaMap> parsed = ParseQuotaSpec(c.spec);
    ASSERT_FALSE(parsed.ok()) << c.spec;
    const std::string message = parsed.status().ToString();
    EXPECT_NE(message.find("malformed quota spec"), std::string::npos) << message;
    EXPECT_NE(message.find(c.why_fragment), std::string::npos) << message;
    EXPECT_NE(message.find("(at byte " + std::to_string(c.offset) + ";"),
              std::string::npos)
        << c.spec << " -> " << message;
  }
}

TEST(TraceSpecTest, SameSeedSameTrace) {
  const std::string spec = "poisson:seed=11,rate=0.5,horizon=20,serve_frac=0.5";
  const StatusOr<std::vector<JobSpec>> a = GenerateTrace(spec, 4, 2, "toy");
  const StatusOr<std::vector<JobSpec>> b = GenerateTrace(spec, 4, 2, "toy");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(a.value().empty());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].ToString(), b.value()[i].ToString()) << i;
    EXPECT_LE(a.value()[i].arrival, 20.0);
  }
  // A different seed draws a different stream.
  const StatusOr<std::vector<JobSpec>> c =
      GenerateTrace("poisson:seed=12,rate=0.5,horizon=20,serve_frac=0.5", 4, 2, "toy");
  ASSERT_TRUE(c.ok());
  std::string sig_a, sig_c;
  for (const JobSpec& j : a.value()) sig_a += j.ToString() + ";";
  for (const JobSpec& j : c.value()) sig_c += j.ToString() + ";";
  EXPECT_NE(sig_a, sig_c);
}

TEST(TraceSpecTest, BurstyAddsSynchronizedBursts) {
  const StatusOr<std::vector<JobSpec>> trace =
      GenerateTrace("bursty:seed=3,rate=0.1,horizon=10,burst=3,period=5", 4, 1, "toy");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  // Two burst instants (t=5, t=10) of 3 jobs each ride on top of the Poisson base.
  int at_bursts = 0;
  for (const JobSpec& job : trace.value()) {
    if (job.arrival >= 5.0 && job.arrival < 5.01) ++at_bursts;
    if (job.arrival >= 10.0 && job.arrival < 10.01) ++at_bursts;
  }
  EXPECT_GE(at_bursts, 6);
}

TEST(TraceSpecTest, MalformedTracesReturnTypedErrors) {
  const struct {
    const char* spec;
    const char* why_fragment;
  } cases[] = {
      {"steady:seed=1,rate=1,horizon=5", "trace kind must be poisson, bursty, or diurnal"},
      {"poisson:rate=1,horizon=5", "seed=, rate=, and horizon= are required"},
      {"poisson:seed=1,rate=0,horizon=5", "rate must be > 0"},
      {"poisson:seed=1,rate=1,horizon=5,burst=2", "burst=/period= do not apply to poisson"},
      {"poisson:seed=1,rate=1,horizon=5,period=3", "burst=/period= do not apply to poisson"},
      {"bursty:seed=1,rate=1,horizon=5", "bursty traces require burst= and period="},
      {"diurnal:seed=1,rate=1,horizon=5", "diurnal traces require period="},
      // period= is *required* for diurnal, so only burst= may be called foreign here.
      {"diurnal:seed=1,rate=1,horizon=5,period=3,burst=2",
       "burst= only applies to bursty traces"},
      {"poisson:seed=1,rate=1,horizon=5,seed=2", "duplicate trace option 'seed'"},
      {"poisson:seed=1,rate=999,horizon=99999", "lower rate or horizon"},
  };
  for (const auto& c : cases) {
    const StatusOr<std::vector<JobSpec>> parsed = GenerateTrace(c.spec, 4, 1, "toy");
    ASSERT_FALSE(parsed.ok()) << c.spec;
    EXPECT_NE(parsed.status().ToString().find(c.why_fragment), std::string::npos)
        << c.spec << " -> " << parsed.status().ToString();
  }
}

TEST(ValidateJobsTest, RejectsBadGangsModelsAndHopelessQuotas) {
  ClusterSchedulerConfig config = SmallCluster(/*nodes=*/2, /*gpus_per_node=*/4);
  {
    const Status bad = ValidateJobs({TrainJob(0, "a", 6, 2)}, config);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("whole-node multiples"), std::string::npos)
        << bad.message();
  }
  {
    const Status bad = ValidateJobs({TrainJob(0, "a", 16, 2)}, config);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("exceeds the cluster"), std::string::npos);
  }
  {
    JobSpec job = TrainJob(0, "a", 2, 2);
    job.model = "nonexistent-model";
    EXPECT_FALSE(ValidateJobs({job}, config).ok());
  }
  {
    // Each cluster-spec factor may be up to 1<<20, so the unwidened product overflows
    // int; the widened total must be bounded for library callers too (ParseClusterSpec
    // only guards the CLI path).
    ClusterSchedulerConfig huge = SmallCluster(/*nodes=*/1 << 20, /*gpus_per_node=*/1 << 20);
    const Status bad = ValidateJobs({}, huge);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("exceeds the supported maximum"), std::string::npos)
        << bad.message();
    // The limit itself stays admissible.
    ClusterSchedulerConfig at_limit = SmallCluster(/*nodes=*/1 << 18, /*gpus_per_node=*/4);
    EXPECT_TRUE(ValidateJobs({}, at_limit).ok());
  }
  {
    // toy training state (weights + grads + opt) is 3 GiB: a 2 GiB quota means the job
    // could never be admitted, which is a spec error rather than an eternal queue stall.
    config.quotas.tenants["a"].host_mem_bytes = 2 * kGiB;
    const Status bad = ValidateJobs({TrainJob(0, "a", 2, 2)}, config);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.message().find("could never be admitted"), std::string::npos)
        << bad.message();
  }
}

// ---- 2. serving plans -------------------------------------------------------------------

TEST(ServingTest, PlansAreForwardOnly) {
  const Model model = ModelByName("toy").value();
  SessionConfig config;
  config.server.num_gpus = 4;
  config.scheme = Scheme::kServing;
  config.microbatches = 4;
  config.microbatch_size = 1;
  config.iterations = 2;
  config.sim_threads = 1;
  ASSERT_TRUE(ValidateSessionConfig(model, config).ok());
  Machine machine = MakeSessionMachine(config);
  TensorRegistry registry;
  const Plan plan = BuildPlanForConfig(model, machine, &registry, config);
  ASSERT_FALSE(plan.tasks.empty());
  for (const Task& task : plan.tasks) {
    EXPECT_EQ(task.kind, TaskKind::kForward) << TaskKindName(task.kind);
  }
  EXPECT_EQ(plan.num_iterations, 2);
  EXPECT_EQ(plan.samples_per_iteration, 4);
}

TEST(ServingTest, WeightsNeverWriteBack) {
  const Model model = ModelByName("toy").value();
  SessionConfig config;
  config.server.num_gpus = 4;
  config.scheme = Scheme::kServing;
  config.microbatches = 4;
  config.microbatch_size = 1;
  config.iterations = 3;
  config.sim_threads = 1;
  const SessionResult result = RunTraining(model, config);
  ASSERT_FALSE(result.report.failed);
  ASSERT_EQ(result.report.iterations.size(), 3u);
  for (const IterationStats& it : result.report.iterations) {
    // A served model is immutable: weight evictions are clean drops, and no gradient or
    // optimizer state exists at all.
    EXPECT_EQ(it.swap_out_by_class[static_cast<int>(TensorClass::kWeight)], 0);
    EXPECT_EQ(it.swap_in_by_class[static_cast<int>(TensorClass::kWeightGrad)], 0);
    EXPECT_EQ(it.swap_out_by_class[static_cast<int>(TensorClass::kWeightGrad)], 0);
    EXPECT_EQ(it.swap_in_by_class[static_cast<int>(TensorClass::kOptimizerState)], 0);
    EXPECT_EQ(it.swap_out_by_class[static_cast<int>(TensorClass::kOptimizerState)], 0);
  }
}

// ---- 3 + 4. determinism grid and conservation -------------------------------------------

void CheckConservation(const ClusterReport& report) {
  double busy = 0.0;
  for (const JobOutcome& job : report.jobs) {
    ASSERT_TRUE(job.completed) << "job " << job.spec.id;
    // Zero lost iterations: preempted or not, every planned iteration ran exactly once.
    EXPECT_EQ(job.iterations_done, job.spec.iterations) << "job " << job.spec.id;
    EXPECT_EQ(static_cast<int>(job.iteration_sec.size()), job.iterations_done);
    EXPECT_GT(job.samples_done, 0);
    // Time conservation: arrival→finish partitions exactly into queueing and service.
    EXPECT_NEAR(job.finish - job.spec.arrival, job.queue_wait + job.service, 1e-6)
        << "job " << job.spec.id;
    double service = 0.0;
    for (const SegmentOutcome& seg : job.segments) {
      EXPECT_GE(seg.duration, 0.0);
      service += seg.duration;
      busy += seg.duration * static_cast<double>(job.spec.gpus);
      if (!seg.preempted) {
        EXPECT_EQ(seg.checkpoint, 0) << "only preemption drains commit checkpoints";
      }
      if (seg.start_iteration == 0) {
        EXPECT_EQ(seg.restore, 0) << "first admission restores nothing";
      } else {
        EXPECT_GT(seg.restore, 0) << "re-admission must re-stage model state";
      }
    }
    EXPECT_NEAR(service, job.service, 1e-6);
    EXPECT_LE(job.spec.arrival, job.first_start);
  }
  EXPECT_NEAR(busy, report.gpu_seconds_busy, 1e-6);
  double tenant_busy = 0.0;
  int tenant_jobs = 0;
  for (const TenantSlo& slo : report.tenants) {
    tenant_busy += slo.gpu_seconds;
    tenant_jobs += slo.jobs;
  }
  EXPECT_NEAR(tenant_busy, report.gpu_seconds_busy, 1e-6);
  EXPECT_EQ(tenant_jobs, static_cast<int>(report.jobs.size()));
}

TEST(SchedDeterminismTest, TracePolicyThreadGridIsByteIdentical) {
  const char* traces[] = {
      "poisson:seed=7,rate=0.5,horizon=12,serve_frac=0.4",
      "bursty:seed=19,rate=0.2,horizon=12,burst=2,period=6",
      "diurnal:seed=5,rate=0.6,horizon=12,period=8",
  };
  for (const char* trace : traces) {
    for (const SchedPolicy policy : {SchedPolicy::kFifo, SchedPolicy::kPriority}) {
      std::string baseline;
      for (const int threads : {1, 2, 8}) {
        ClusterSchedulerConfig config = SmallCluster(/*nodes=*/2, /*gpus_per_node=*/4);
        config.policy = policy;
        config.sim_threads = threads;
        config.quotas.tenants["t0"].bw_fraction = 0.5;
        const StatusOr<std::vector<JobSpec>> jobs =
            GenerateTrace(trace, config.server.num_gpus, config.num_nodes, "toy");
        ASSERT_TRUE(jobs.ok()) << trace << ": " << jobs.status().ToString();
        const StatusOr<ClusterReport> report = RunJobStream(jobs.value(), config);
        ASSERT_TRUE(report.ok()) << trace << ": " << report.status().ToString();
        const std::string signature = report.value().Render();
        if (threads == 1) {
          baseline = signature;
          CheckConservation(report.value());
        } else {
          // Byte-identical run signature at any worker-thread count.
          EXPECT_EQ(signature, baseline)
              << trace << " policy=" << SchedPolicyName(policy) << " threads=" << threads;
        }
      }
    }
  }
}

// ---- 5. preemption ----------------------------------------------------------------------

TEST(PreemptionTest, CheckpointReleaseReadmitRestoreLosesNothing) {
  ClusterSchedulerConfig config = SmallCluster(/*nodes=*/1, /*gpus_per_node=*/4);
  config.policy = SchedPolicy::kPriority;
  const std::vector<JobSpec> jobs = {
      TrainJob(0.0, "low", /*gpus=*/4, /*iters=*/4, /*priority=*/0),
      TrainJob(1.0, "hi", /*gpus=*/4, /*iters=*/2, /*priority=*/5),
  };
  const StatusOr<ClusterReport> report = RunJobStream(jobs, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckConservation(report.value());
  EXPECT_EQ(report.value().preemptions, 1);

  const JobOutcome& low = report.value().jobs[0];
  const JobOutcome& hi = report.value().jobs[1];
  ASSERT_EQ(low.spec.tenant, "low");
  EXPECT_EQ(low.preemptions, 1);
  ASSERT_EQ(low.segments.size(), 2u);
  EXPECT_TRUE(low.segments[0].preempted);
  EXPECT_GT(low.segments[0].iterations, 0) << "the in-flight iteration completes";
  EXPECT_GT(low.segments[0].checkpoint, 0) << "the drain commits a real checkpoint";
  EXPECT_FALSE(low.segments[1].preempted);
  EXPECT_GT(low.segments[1].restore, 0) << "re-admission pays the model-state re-stage";
  EXPECT_EQ(low.segments[0].iterations + low.segments[1].iterations, 4);

  // The high-priority job starts as soon as the victim's drain releases the gang, and is
  // never preempted itself.
  EXPECT_EQ(hi.preemptions, 0);
  ASSERT_EQ(hi.segments.size(), 1u);
  EXPECT_NEAR(hi.first_start, low.segments[0].start + low.segments[0].duration, 1e-9);
  // The victim resumes only after the high-priority job finishes.
  EXPECT_GE(low.segments[1].start, hi.finish - 1e-9);
}

TEST(PreemptionTest, FinalIterationDrainDoesNotDisablePreemption) {
  // When the victim's final iteration is already in flight, Preempt() lets the segment
  // finish naturally: the job drains through OnComplete, not OnRelease. The draining
  // counter must drop there too, or priority preemption stays gated off for the rest of
  // the job stream.
  ClusterSchedulerConfig config = SmallCluster(/*nodes=*/1, /*gpus_per_node=*/4);
  config.policy = SchedPolicy::kPriority;
  // A is mid final (only) iteration when B arrives, so B's preemption attempt takes the
  // drain-to-natural-completion path.
  const JobSpec a = TrainJob(0.0, "low", /*gpus=*/4, /*iters=*/1, /*priority=*/0);
  const JobSpec b = TrainJob(0.1, "hi", /*gpus=*/4, /*iters=*/2, /*priority=*/5);

  // Probe run pins B's finish time so the second high-priority job can be dropped one
  // second into C's segment (C is granted the instant B releases the gang).
  const StatusOr<ClusterReport> probe = RunJobStream({a, b}, config);
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  ASSERT_TRUE(probe.value().jobs[1].completed);
  EXPECT_EQ(probe.value().preemptions, 0) << "a natural drain is not a preemption";
  // B waits out A's in-flight iteration rather than cutting it short.
  EXPECT_NEAR(probe.value().jobs[1].first_start, probe.value().jobs[0].finish, 1e-9);
  const double b_finish = probe.value().jobs[1].finish;

  const std::vector<JobSpec> jobs = {
      a, b,
      TrainJob(0.2, "low2", /*gpus=*/4, /*iters=*/4, /*priority=*/0),       // C
      TrainJob(b_finish + 1.0, "hi", /*gpus=*/4, /*iters=*/2, /*priority=*/5),  // D
  };
  const StatusOr<ClusterReport> report = RunJobStream(jobs, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckConservation(report.value());

  const JobOutcome& a_out = report.value().jobs[0];
  const JobOutcome& c_out = report.value().jobs[2];
  const JobOutcome& d_out = report.value().jobs[3];
  // A drained to its natural end: one unpreempted segment, no preemption counted.
  EXPECT_EQ(a_out.preemptions, 0);
  ASSERT_EQ(a_out.segments.size(), 1u);
  EXPECT_FALSE(a_out.segments[0].preempted);
  // The leak would leave draining_ stuck at 1, silently downgrading D to waiting; the
  // later preemption must still fire.
  EXPECT_EQ(report.value().preemptions, 1);
  EXPECT_EQ(c_out.preemptions, 1);
  ASSERT_GE(c_out.segments.size(), 2u);
  EXPECT_TRUE(c_out.segments[0].preempted);
  // D runs as soon as C's drain releases the gang, well before C's natural finish.
  EXPECT_LT(d_out.first_start, c_out.finish);
}

TEST(PreemptionTest, FifoNeverPreempts) {
  ClusterSchedulerConfig config = SmallCluster(/*nodes=*/1, /*gpus_per_node=*/4);
  config.policy = SchedPolicy::kFifo;
  const std::vector<JobSpec> jobs = {
      TrainJob(0.0, "low", 4, 4, /*priority=*/0),
      TrainJob(1.0, "hi", 4, 2, /*priority=*/5),
  };
  const StatusOr<ClusterReport> report = RunJobStream(jobs, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckConservation(report.value());
  EXPECT_EQ(report.value().preemptions, 0);
  // Arrival order wins regardless of priority: hi waits for low to finish.
  EXPECT_GE(report.value().jobs[1].first_start, report.value().jobs[0].finish - 1e-9);
}

// ---- quotas -----------------------------------------------------------------------------

TEST(QuotaTest, MemoryQuotaDefersWithoutBlockingOtherTenants) {
  ClusterSchedulerConfig config = SmallCluster(/*nodes=*/1, /*gpus_per_node=*/4);
  // toy training state is 3 GiB; a 4 GiB cap lets tenant `a` run one job at a time.
  config.quotas.tenants["a"].host_mem_bytes = 4 * kGiB;
  const std::vector<JobSpec> jobs = {
      TrainJob(0.0, "a", 2, 2),
      TrainJob(0.1, "a", 2, 2),
      TrainJob(0.2, "b", 2, 2),
  };
  const StatusOr<ClusterReport> report = RunJobStream(jobs, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckConservation(report.value());
  const JobOutcome& a0 = report.value().jobs[0];
  const JobOutcome& a1 = report.value().jobs[1];
  const JobOutcome& b = report.value().jobs[2];
  // The second `a` job was passed over while the first held the tenant's budget...
  EXPECT_TRUE(a1.quota_deferred);
  EXPECT_GE(a1.first_start, a0.finish - 1e-9);
  // ...but it did not block tenant `b`, which ran alongside a0 on the free GPUs.
  EXPECT_FALSE(b.quota_deferred);
  EXPECT_LT(b.first_start, a0.finish);
  for (const TenantSlo& slo : report.value().tenants) {
    if (slo.tenant == "a") {
      EXPECT_EQ(slo.quota_deferred, 1);
    }
  }
}

TEST(QuotaTest, BandwidthReservationsSerializeWhenOversubscribed) {
  ClusterSchedulerConfig config = SmallCluster(/*nodes=*/1, /*gpus_per_node=*/4);
  // Two 0.6 reservations cannot share one node's uplink (0.6 + 0.6 > 1): the second job
  // waits even though half the GPUs are free.
  config.quotas.tenants["a"].bw_fraction = 0.6;
  const std::vector<JobSpec> jobs = {
      TrainJob(0.0, "a", 2, 2),
      TrainJob(0.1, "a", 2, 2),
  };
  const StatusOr<ClusterReport> report = RunJobStream(jobs, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CheckConservation(report.value());
  EXPECT_GE(report.value().jobs[1].first_start, report.value().jobs[0].finish - 1e-9);

  // The same pair with full-bandwidth (best-effort) tenants co-runs immediately.
  ClusterSchedulerConfig relaxed = SmallCluster(/*nodes=*/1, /*gpus_per_node=*/4);
  const StatusOr<ClusterReport> co = RunJobStream(jobs, relaxed);
  ASSERT_TRUE(co.ok());
  EXPECT_LT(co.value().jobs[1].first_start, co.value().jobs[0].finish);
}

TEST(QuotaTest, BandwidthQuotaSlowsASessionDown) {
  // The reservation is enforced inside the inner session: a half-bandwidth tenant's job
  // takes strictly longer than the same job at full bandwidth (weight staging and swaps
  // ride the capped host uplink).
  const std::vector<JobSpec> jobs = {TrainJob(0.0, "a", 2, 2)};
  ClusterSchedulerConfig full = SmallCluster();
  ClusterSchedulerConfig halved = SmallCluster();
  halved.quotas.tenants["a"].bw_fraction = 0.5;
  const StatusOr<ClusterReport> fast = RunJobStream(jobs, full);
  const StatusOr<ClusterReport> slow = RunJobStream(jobs, halved);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow.value().jobs[0].service, fast.value().jobs[0].service);
}

}  // namespace
}  // namespace harmony
